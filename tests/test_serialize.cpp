// Binary database image round-trips and corruption handling.
#include <gtest/gtest.h>

#include <sstream>

#include "seq/generate.h"
#include "seq/serialize.h"

namespace cusw::seq {
namespace {

TEST(Serialize, RoundTripsArbitraryDatabase) {
  const auto db = lognormal_db(80, 200, 150, 17);
  std::stringstream buf;
  write_db(buf, db);
  const auto back = read_db(buf);
  ASSERT_EQ(back.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back[i].name, db[i].name);
    EXPECT_EQ(back[i].residues, db[i].residues);
  }
}

TEST(Serialize, RoundTripsEmptyAndEdgeCases) {
  SequenceDB db;
  db.add(Sequence("empty-seq", std::vector<Code>{}));
  db.add(Sequence("", std::vector<Code>{1, 2, 3}));
  db.add(Sequence(std::string(300, 'n'), std::vector<Code>(1, 19)));
  std::stringstream buf;
  write_db(buf, db);
  const auto back = read_db(buf);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].residues.empty());
  EXPECT_TRUE(back[1].name.empty());
  EXPECT_EQ(back[2].name.size(), 300u);

  SequenceDB none;
  std::stringstream buf2;
  write_db(buf2, none);
  EXPECT_EQ(read_db(buf2).size(), 0u);
}

TEST(Serialize, RejectsBadMagicAndTruncation) {
  std::stringstream bad("not a database image at all");
  EXPECT_THROW(read_db(bad), std::invalid_argument);

  const auto db = uniform_db(5, 10, 20, 1);
  std::stringstream buf;
  write_db(buf, db);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_db(truncated), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip) {
  const auto db = uniform_db(12, 30, 60, 9);
  const std::string path = "/tmp/cusw_test_db.bin";
  write_db_file(path, db);
  const auto back = read_db_file(path);
  ASSERT_EQ(back.size(), db.size());
  EXPECT_EQ(back[7].residues, db[7].residues);
  EXPECT_THROW(read_db_file("/nonexistent/nope.bin"), std::invalid_argument);
}

}  // namespace
}  // namespace cusw::seq
