// Run capsules (obs/capsule.h): a registry-diff capsule of a real kernel
// run validates, carries provenance (git sha, threads, memo state) and the
// exact per-kernel stall/site tree, composes contributed sections sorted
// by name, round-trips through write_capsule, and the validator rejects
// structurally broken documents (unordered time series).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/launch.h"
#include "obs/capsule.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "sw/scoring.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace cusw {
namespace {

/// Arm the global sampler for one test and disarm it on exit, so tests in
/// this binary stay order-independent.
class SamplerGuard {
 public:
  explicit SamplerGuard(double every_ms) {
    obs::Sampler::global().configure(every_ms);
    obs::Sampler::global().clear();
  }
  ~SamplerGuard() { obs::Sampler::global().disable(); }
};

gpusim::Device one_sm_c1060() {
  auto spec = gpusim::DeviceSpec::tesla_c1060();
  return gpusim::Device(spec.scaled(1.0 / spec.sm_count));
}

seq::SequenceDB small_db(std::uint64_t seed) {
  seq::SequenceDB db;
  Rng rng(seed);
  for (const std::size_t len : {3200, 3600}) {
    db.add(seq::random_protein(len, rng));
  }
  return db;
}

/// One isolated run capsule: fresh device, registry snapshot diff.
std::string run_capsule(const std::string& run) {
  obs::capsule_clear_sections();
  const obs::Snapshot before = obs::Registry::global().snapshot();
  auto dev = one_sm_c1060();
  cudasw::run_intra_task_original(dev, test::random_codes(128, 7),
                                  small_db(11), sw::ScoringMatrix::blosum62(),
                                  {10, 2}, {});
  return obs::capsule_to_json(obs::Registry::global().snapshot().diff(before),
                              run);
}

TEST(Capsule, RunCapsuleValidatesAndCarriesTheKernelTree) {
  SamplerGuard sampler(0.5);
  const std::string capsule = run_capsule("test_run");
  const obs::CapsuleCheck check = obs::validate_capsule(capsule);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.kernels, 1u);
  EXPECT_GE(check.series, 1u);
  EXPECT_GE(check.points, 1u);

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(capsule, doc, &error)) << error;
  const obs::json::Value* kernels = doc.find("kernels");
  ASSERT_NE(kernels, nullptr);
  ASSERT_EQ(kernels->array.size(), 1u);
  const obs::json::Value& k = kernels->array[0];
  EXPECT_EQ(k.find("label")->string, "intra_task_original");

  // The stall rows are exact integer ticks and sum to "charged".
  const obs::json::Value* stall = k.find("stall_ticks");
  ASSERT_NE(stall, nullptr);
  double charged = 0.0, sum = 0.0;
  for (const auto& [reason, v] : stall->object) {
    ASSERT_EQ(v.kind, obs::json::Value::Kind::kNumber) << reason;
    if (reason == "charged") {
      charged = v.number;
    } else {
      sum += v.number;
    }
  }
  EXPECT_GT(charged, 0.0);
  EXPECT_EQ(sum, charged);

  const obs::json::Value* sites = k.find("sites");
  ASSERT_NE(sites, nullptr);
  EXPECT_GT(sites->array.size(), 0u);
}

TEST(Capsule, ProvenanceNamesShaThreadsAndMemoState) {
  SamplerGuard sampler(0.25);
  const std::string capsule = run_capsule("prov");
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(capsule, doc, &error)) << error;
  const obs::json::Value* prov = doc.find("provenance");
  ASSERT_NE(prov, nullptr);
  const obs::json::Value* sha = prov->find("git_sha");
  ASSERT_NE(sha, nullptr);
  EXPECT_EQ(sha->kind, obs::json::Value::Kind::kString);
  EXPECT_FALSE(sha->string.empty());
  EXPECT_GE(prov->find("threads")->number, 1.0);
  const std::string memo = prov->find("memo")->string;
  EXPECT_TRUE(memo == "on" || memo == "off") << memo;
  EXPECT_EQ(prov->find("sample_every_ms")->number, 0.25);
}

TEST(Capsule, SectionsComposeSortedByName) {
  obs::capsule_clear_sections();
  obs::capsule_note_section("zeta", "{\"a\": 1}");
  obs::capsule_note_section("alpha", "[1, 2]");
  const std::string capsule = obs::capsule_to_json("sections");
  obs::capsule_clear_sections();

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(capsule, doc, &error)) << error;
  const obs::json::Value* sections = doc.find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_NE(sections->find("zeta"), nullptr);
  EXPECT_EQ(sections->find("zeta")->find("a")->number, 1.0);
  ASSERT_NE(sections->find("alpha"), nullptr);
  EXPECT_EQ(sections->find("alpha")->array.size(), 2u);
  EXPECT_LT(capsule.find("\"alpha\""), capsule.find("\"zeta\""));
}

TEST(Capsule, WriteCapsuleRoundTrips) {
  const std::string path = testing::TempDir() + "cusw_capsule_test.json";
  ASSERT_TRUE(obs::write_capsule(path, "roundtrip"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const obs::CapsuleCheck check = obs::validate_capsule(text);
  EXPECT_TRUE(check.ok) << check.error;
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(text, doc, &error)) << error;
  EXPECT_EQ(doc.find("run")->string, "roundtrip");
}

TEST(Capsule, DiffCapsuleOmitsKernelsThatDidNotRun) {
  // Ensure the process registry has kernel metrics from earlier activity,
  // then capsule an empty window: no kernel may survive the diff filter.
  {
    auto dev = one_sm_c1060();
    cudasw::run_intra_task_original(
        dev, test::random_codes(64, 3), small_db(5),
        sw::ScoringMatrix::blosum62(), {10, 2}, {});
  }
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const std::string capsule =
      obs::capsule_to_json(snap.diff(snap), "empty_window");
  const obs::CapsuleCheck check = obs::validate_capsule(capsule);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.kernels, 0u);
}

TEST(Capsule, RejectsUnorderedTimeSeries) {
  const std::string bad = R"({
    "capsule_version": 1,
    "provenance": {},
    "series": {"every_ms": 1, "capacity": 4, "series": [
      {"name": "s", "dropped": 0, "points": [
        {"t_ms": 2, "values": {"x": 1}},
        {"t_ms": 1, "values": {"x": 2}}
      ]}
    ]}
  })";
  const obs::CapsuleCheck check = obs::validate_capsule(bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("unordered"), std::string::npos) << check.error;
}

TEST(Capsule, RejectsNonNumericChannelValues) {
  const std::string bad = R"({
    "capsule_version": 1,
    "provenance": {},
    "series": {"every_ms": 1, "capacity": 4, "series": [
      {"name": "s", "dropped": 0, "points": [
        {"t_ms": 1, "values": {"x": "oops"}}
      ]}
    ]}
  })";
  const obs::CapsuleCheck check = obs::validate_capsule(bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("not numeric"), std::string::npos) << check.error;
}

}  // namespace
}  // namespace cusw
