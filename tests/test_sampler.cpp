// Simulated-time telemetry sampling (obs/sampler.h): the serialized
// series are byte-identical across CUSW_THREADS and memo on/off, the ring
// bound evicts oldest-first with a dropped count, rendered counter tracks
// pass the Chrome-trace validator, and the validator's sample-extent rule
// rejects counters outside their run's span.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/launch.h"
#include "obs/capsule.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "sw/scoring.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace cusw {
namespace {

/// Scoped environment override that restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_prev_)
      setenv(name_.c_str(), prev_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_prev_ = false;
  std::string prev_;
};

class SamplerGuard {
 public:
  explicit SamplerGuard(double every_ms, std::size_t capacity = 4096) {
    obs::Sampler::global().configure(every_ms, capacity);
    obs::Sampler::global().clear();
  }
  ~SamplerGuard() { obs::Sampler::global().disable(); }
};

seq::SequenceDB workload_db(std::uint64_t seed) {
  seq::SequenceDB db;
  Rng rng(seed);
  for (const std::size_t len : {3200, 4000, 4800, 3600}) {
    db.add(seq::random_protein(len, rng));
  }
  return db;
}

/// One fresh-device run of the intra-task kernel (multi-block, so host
/// parallelism actually shards it) and the sampler JSON it produced.
std::string sampled_run_json() {
  obs::Sampler::global().clear();
  auto spec = gpusim::DeviceSpec::tesla_c1060();
  gpusim::Device dev(spec.scaled(1.0 / spec.sm_count));
  cudasw::run_intra_task_original(dev, test::random_codes(256, 21),
                                  workload_db(33),
                                  sw::ScoringMatrix::blosum62(), {10, 2}, {});
  return obs::Sampler::global().to_json();
}

TEST(Sampler, DisarmedByDefault) {
  ASSERT_EQ(obs::Sampler::global().every_ms(), 0.0);
  EXPECT_EQ(obs::Sampler::active(), nullptr);
  // Disarmed record calls are dropped, not queued.
  obs::Sampler::global().record_point("s", 1.0, {{"x", 1.0}});
  EXPECT_TRUE(obs::Sampler::global().series().empty());
}

TEST(Sampler, ConfigureRejectsBadArguments) {
  EXPECT_THROW(obs::Sampler::global().configure(0.0), std::invalid_argument);
  EXPECT_THROW(obs::Sampler::global().configure(-1.0), std::invalid_argument);
  EXPECT_THROW(obs::Sampler::global().configure(1.0, 0),
               std::invalid_argument);
  EXPECT_EQ(obs::Sampler::active(), nullptr);
}

TEST(Sampler, SeriesAreByteIdenticalAcrossThreadCounts) {
  SamplerGuard sampler(0.5);
  std::string serial, parallel;
  {
    EnvGuard threads("CUSW_THREADS", "1");
    serial = sampled_run_json();
  }
  {
    EnvGuard threads("CUSW_THREADS", "4");
    parallel = sampled_run_json();
  }
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("gpusim."), std::string::npos) << serial;
}

TEST(Sampler, SeriesAreByteIdenticalAcrossMemoStates) {
  SamplerGuard sampler(0.5);
  std::string off, on;
  {
    EnvGuard memo("CUSW_SIM_MEMO", "off");
    off = sampled_run_json();
  }
  {
    EnvGuard memo("CUSW_SIM_MEMO", "1");
    on = sampled_run_json();
  }
  EXPECT_EQ(off, on);
}

TEST(Sampler, LaunchSeriesCarriesGcupsAndStallFractions) {
  SamplerGuard sampler(0.5);
  sampled_run_json();
  const std::vector<obs::SampleSeries> all = obs::Sampler::global().series();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name.rfind("gpusim.", 0), 0u) << all[0].name;
  ASSERT_FALSE(all[0].points.empty());
  double last_t = -1.0;
  for (const obs::SamplePoint& p : all[0].points) {
    EXPECT_GE(p.t_ms, last_t);
    last_t = p.t_ms;
    bool have_gcups = false, have_stall = false;
    for (const auto& [channel, v] : p.values) {
      if (channel == "gcups") {
        have_gcups = true;
        EXPECT_GE(v, 0.0);
      }
      if (channel.rfind("stall_frac.", 0) == 0) {
        have_stall = true;
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0 + 1e-9);
      }
    }
    EXPECT_TRUE(have_gcups);
    EXPECT_TRUE(have_stall);
  }
}

TEST(Sampler, PointRingEvictsOldestAndCounts) {
  SamplerGuard sampler(1.0, 2);
  obs::Sampler& s = obs::Sampler::global();
  s.record_point("serve", 1.0, {{"b", 2.0}, {"a", 1.0}});
  s.record_point("serve", 2.0, {{"a", 3.0}});
  s.record_point("serve", 3.0, {{"a", 4.0}});
  const std::vector<obs::SampleSeries> all = s.series();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].dropped, 1u);
  ASSERT_EQ(all[0].points.size(), 2u);
  EXPECT_EQ(all[0].points[0].t_ms, 2.0);
  EXPECT_EQ(all[0].points[1].t_ms, 3.0);
}

TEST(Sampler, RecordPointSortsChannels) {
  SamplerGuard sampler(1.0);
  obs::Sampler& s = obs::Sampler::global();
  s.record_point("serve", 1.0, {{"zeta", 2.0}, {"alpha", 1.0}});
  const std::vector<obs::SampleSeries> all = s.series();
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(all[0].points.size(), 1u);
  ASSERT_EQ(all[0].points[0].values.size(), 2u);
  EXPECT_EQ(all[0].points[0].values[0].first, "alpha");
  EXPECT_EQ(all[0].points[0].values[1].first, "zeta");
}

TEST(Sampler, RenderedCounterTracksPassTraceValidation) {
  SamplerGuard sampler(0.5);
  sampled_run_json();
  const std::vector<obs::SampleSeries> all = obs::Sampler::global().series();
  ASSERT_FALSE(all.empty());
  double max_t_us = 0.0;
  for (const obs::SampleSeries& s : all) {
    for (const obs::SamplePoint& p : s.points) {
      max_t_us = std::max(max_t_us, p.t_ms * 1000.0);
    }
  }

  obs::TraceWriter tw("unwritten.json");
  // The run span the samples must fall inside (in a real trace the device
  // launch spans provide it; see gpusim/launch.cpp).
  obs::TraceEvent run;
  run.name = "launch";
  run.cat = "gpusim";
  run.pid = 100;
  run.tid = 0;
  run.ts_us = 0.0;
  run.dur_us = max_t_us;
  tw.span(std::move(run));
  obs::Sampler::global().render_trace(tw);

  const obs::TraceCheck check = obs::validate_chrome_trace(tw.to_json());
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.samples, 0u);
  EXPECT_EQ(check.counters, check.samples);
}

TEST(Sampler, ValidatorRejectsSampleOutsideRunSpan) {
  obs::TraceWriter tw("unwritten.json");
  obs::TraceEvent run;
  run.name = "launch";
  run.cat = "gpusim";
  run.pid = 100;
  run.tid = 0;
  run.ts_us = 0.0;
  run.dur_us = 10.0;
  tw.span(std::move(run));
  obs::TraceEvent sample;
  sample.name = "gpusim.dev";
  sample.cat = "sample";
  sample.pid = obs::kSamplerPid;
  sample.tid = 0;
  sample.ts_us = 50.0;  // past the only run span
  sample.args_json = "\"gcups\": 1.0";
  tw.counter(std::move(sample));
  const obs::TraceCheck check = obs::validate_chrome_trace(tw.to_json());
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("outside its run's span"), std::string::npos)
      << check.error;
}

TEST(Sampler, RingOverflowPublishesDroppedGauge) {
  SamplerGuard sampler(1.0, 2);
  obs::Sampler& s = obs::Sampler::global();
  const obs::Snapshot before = obs::Registry::global().snapshot();
  s.record_point("serve", 1.0, {{"a", 1.0}});
  s.record_point("serve", 2.0, {{"a", 2.0}});
  s.record_point("serve", 3.0, {{"a", 3.0}});
  s.record_point("serve", 4.0, {{"a", 4.0}});
  const obs::Snapshot diff =
      obs::Registry::global().snapshot().diff(before);
  EXPECT_EQ(diff.gauge("obs.sampler.dropped"), 2.0);
}

TEST(Sampler, DroppedSeriesWarnsButValidates) {
  SamplerGuard sampler(1.0, 2);
  obs::Sampler& s = obs::Sampler::global();
  for (int i = 1; i <= 5; ++i) {
    s.record_point("serve", static_cast<double>(i), {{"a", 1.0}});
  }
  const std::string capsule =
      obs::capsule_to_json(obs::Registry::global().snapshot(), "overflow");
  const obs::CapsuleCheck check = obs::validate_capsule(capsule);
  EXPECT_TRUE(check.ok) << check.error;
  ASSERT_EQ(check.warnings.size(), 1u);
  EXPECT_NE(check.warnings[0].find("'serve' dropped 3 point(s)"),
            std::string::npos)
      << check.warnings[0];
}

TEST(Sampler, ValidatorRejectsSampleWithNoRunEvents) {
  obs::TraceWriter tw("unwritten.json");
  obs::TraceEvent sample;
  sample.name = "gpusim.dev";
  sample.cat = "sample";
  sample.pid = obs::kSamplerPid;
  sample.tid = 0;
  sample.ts_us = 1.0;
  sample.args_json = "\"gcups\": 1.0";
  tw.counter(std::move(sample));
  const obs::TraceCheck check = obs::validate_chrome_trace(tw.to_json());
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("no run events"), std::string::npos)
      << check.error;
}

}  // namespace
}  // namespace cusw
