// Full search pipeline: dispatch correctness, score integrity in original
// database order, stats bookkeeping, kernel-choice equivalence.
#include <gtest/gtest.h>

#include "cudasw/pipeline.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::IntraKernel;
using cudasw::SearchConfig;
using sw::ScoringMatrix;

gpusim::Device mini1060() {
  return gpusim::Device(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
}

seq::SequenceDB mixed_db(std::uint64_t seed) {
  // Short sequences plus a long tail that crosses the test threshold.
  seq::SequenceDB db = seq::lognormal_db(120, 150, 80, seed);
  Rng rng(seed + 1);
  db.add(seq::random_protein(900, rng, "long1"));
  db.add(seq::random_protein(1500, rng, "long2"));
  // Shuffle-ish: long ones are at the end; pipeline must restore order.
  return db;
}

TEST(Pipeline, ScoresMatchReferenceInOriginalOrder) {
  auto dev = mini1060();
  const auto query = test::random_codes(96, 7);
  const auto db = mixed_db(8);
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig cfg;
  cfg.threshold = 600;
  const auto report = cudasw::search(dev, query, db, matrix, cfg);
  const auto want = test::reference_scores(query, db, matrix, cfg.gap);
  ASSERT_EQ(report.scores.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.scores[i], want[i]) << "db index " << i;
  }
}

TEST(Pipeline, BothIntraKernelsGiveIdenticalScores) {
  auto dev = mini1060();
  const auto query = test::random_codes(80, 9);
  const auto db = mixed_db(10);
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig a, b;
  a.threshold = b.threshold = 500;
  a.intra_kernel = IntraKernel::kOriginal;
  b.intra_kernel = IntraKernel::kImproved;
  const auto ra = cudasw::search(dev, query, db, matrix, a);
  const auto rb = cudasw::search(dev, query, db, matrix, b);
  EXPECT_EQ(ra.scores, rb.scores);
}

TEST(Pipeline, ThresholdControlsDispatchCounts) {
  auto dev = mini1060();
  const auto query = test::random_codes(50, 11);
  const auto db = mixed_db(12);
  const auto& matrix = ScoringMatrix::blosum62();
  const auto stats = db.length_stats();

  for (std::size_t thr : {300u, 600u, 1200u, 4000u}) {
    SearchConfig cfg;
    cfg.threshold = thr;
    const auto report = cudasw::search(dev, query, db, matrix, cfg);
    std::size_t want_above = 0;
    for (auto len : stats.lengths) {
      if (len > thr) ++want_above;
    }
    EXPECT_EQ(report.intra_sequences, want_above) << thr;
    EXPECT_EQ(report.inter_sequences + report.intra_sequences, db.size());
    EXPECT_EQ(report.cells(), query.size() * db.total_residues());
  }
}

TEST(Pipeline, AllSequencesAboveOrBelowThreshold) {
  auto dev = mini1060();
  const auto query = test::random_codes(40, 13);
  const auto db = seq::uniform_db(50, 100, 200, 14);
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig all_inter;
  all_inter.threshold = 10000;
  const auto ri = cudasw::search(dev, query, db, matrix, all_inter);
  EXPECT_EQ(ri.intra_sequences, 0u);
  EXPECT_EQ(ri.intra_seconds, 0.0);
  EXPECT_EQ(ri.intra_time_fraction(), 0.0);

  SearchConfig all_intra;
  all_intra.threshold = 1;
  const auto ra = cudasw::search(dev, query, db, matrix, all_intra);
  EXPECT_EQ(ra.inter_sequences, 0u);
  EXPECT_EQ(ra.intra_sequences, 50u);
  EXPECT_EQ(ra.scores, ri.scores);
}

TEST(Pipeline, EmptyDatabase) {
  auto dev = mini1060();
  const auto report = cudasw::search(dev, test::random_codes(10, 1),
                                     seq::SequenceDB{},
                                     ScoringMatrix::blosum62(), {});
  EXPECT_TRUE(report.scores.empty());
  EXPECT_EQ(report.gcups(), 0.0);
}

TEST(Pipeline, GroupCountMatchesGroupSize) {
  auto dev = mini1060();
  const auto query = test::random_codes(30, 15);
  const std::size_t group =
      cudasw::inter_task_group_size(dev.spec(), cudasw::InterTaskParams{});
  const auto db = seq::uniform_db(group + 5, 50, 60, 16);
  SearchConfig cfg;
  const auto report =
      cudasw::search(dev, query, db, ScoringMatrix::blosum62(), cfg);
  EXPECT_EQ(report.groups, 2u);
}

TEST(Pipeline, StatsAccumulateAcrossGroups) {
  auto dev = mini1060();
  const auto query = test::random_codes(30, 17);
  const auto db = mixed_db(18);
  SearchConfig cfg;
  cfg.threshold = 600;
  const auto report =
      cudasw::search(dev, query, db, ScoringMatrix::blosum62(), cfg);
  EXPECT_GT(report.inter_stats.global.transactions, 0u);
  EXPECT_GT(report.intra_stats.global.transactions, 0u);
  EXPECT_GT(report.inter_seconds, 0.0);
  EXPECT_GT(report.intra_seconds, 0.0);
  EXPECT_NEAR(report.intra_time_fraction(),
              report.intra_seconds / report.seconds(), 1e-12);
  EXPECT_GT(report.gcups(), 0.0);
}

TEST(Pipeline, PreparedDatabaseMatchesAdHocSearch) {
  auto dev = mini1060();
  const auto query = test::random_codes(60, 19);
  const auto db = mixed_db(20);
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig cfg;
  cfg.threshold = 700;

  const cudasw::PreparedDatabase prepared(db, cfg.threshold);
  EXPECT_EQ(prepared.below().size() + prepared.above().size(), db.size());
  // below() is sorted by length and respects the threshold.
  for (std::size_t k = 1; k < prepared.below().size(); ++k) {
    EXPECT_LE(db[prepared.below()[k - 1]].length(),
              db[prepared.below()[k]].length());
  }
  for (std::size_t idx : prepared.above()) {
    EXPECT_GT(db[idx].length(), cfg.threshold);
  }

  const auto a = cudasw::search(dev, query, prepared, matrix, cfg);
  const auto b = cudasw::search(dev, query, db, matrix, cfg);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.groups, b.groups);

  // Mismatched threshold is rejected.
  SearchConfig other;
  other.threshold = 100;
  EXPECT_THROW(cudasw::search(dev, query, prepared, matrix, other),
               std::invalid_argument);
}

TEST(Pipeline, SearchBatchMatchesIndividualSearches) {
  auto dev = mini1060();
  const auto db = mixed_db(21);
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig cfg;
  cfg.threshold = 600;
  std::vector<std::vector<seq::Code>> queries = {
      test::random_codes(40, 22), test::random_codes(90, 23),
      test::random_codes(10, 24)};
  const auto batch = cudasw::search_batch(dev, queries, db, matrix, cfg);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = cudasw::search(dev, queries[i], db, matrix, cfg);
    EXPECT_EQ(batch[i].scores, single.scores) << i;
  }
}

}  // namespace
}  // namespace cusw
