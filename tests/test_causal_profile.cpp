// causal_profile (tools/causal_profile_lib.h): target enumeration from a
// capsule's counter tree, the factor sweep's self-checks (factor 1.0 is a
// zero-gain no-op, ranking is sorted, the dominant memory site tops the
// list), the locally-hot/causally-flat verdict, and byte-identical JSON
// reports across CUSW_THREADS and memo on/off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/whatif.h"
#include "tools/causal_profile_lib.h"
#include "tools/perf_explain_lib.h"

namespace cusw {
namespace {

/// Scoped environment override that restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_prev_)
      setenv(name_.c_str(), prev_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_prev_ = false;
  std::string prev_;
};

TEST(CausalProfile, EnumeratesTargetsFromCapsule) {
  const std::string capsule = tools::canonical_capsule_original(200);
  std::string error;
  const std::vector<tools::CausalTarget> targets =
      tools::enumerate_targets(capsule, 16, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_FALSE(targets.empty());
  double share_sum = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const tools::CausalTarget& t = targets[i];
    // Ranked by local stall ticks, descending.
    if (i > 0) {
      EXPECT_LE(t.ticks, targets[i - 1].ticks) << t.spec;
    }
    EXPECT_GT(t.local_share, 0.0) << t.spec;
    share_sum += t.local_share;
    // The memory reasons are excluded (sites decompose them exactly) and
    // the unattributed catch-all row is not an actionable target.
    EXPECT_EQ(t.spec.find("stall:mem_issue"), std::string::npos);
    EXPECT_EQ(t.spec.find("stall:txn_issue"), std::string::npos);
    EXPECT_EQ(t.spec.find("stall:exposed_latency"), std::string::npos);
    EXPECT_EQ(t.spec.find("unattributed"), std::string::npos);
    // Every mined spec parses under the what-if grammar.
    EXPECT_NO_THROW(obs::whatif::parse_plan(t.spec + "*0.5")) << t.spec;
    if (t.spec.rfind("site:", 0) == 0) {
      EXPECT_EQ(t.kernel, "intra_task_original") << t.spec;
    } else {
      EXPECT_EQ(t.kernel, "") << t.spec;
    }
  }
  // Sites + non-memory reasons partition the charge, so shares can't
  // exceed 1 (unattributed rows may leave a gap below it).
  EXPECT_LE(share_sum, 1.0 + 1e-9);
  EXPECT_EQ(targets[0].spec, "site:wavefront.load@global");

  // top_n truncates the same ranking.
  const std::vector<tools::CausalTarget> top =
      tools::enumerate_targets(capsule, 2, &error);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].spec, targets[0].spec);
  EXPECT_EQ(top[1].spec, targets[1].spec);
}

TEST(CausalProfile, EnumerateRejectsInvalidCapsule) {
  std::string error;
  const std::vector<tools::CausalTarget> targets =
      tools::enumerate_targets("{\"not\": \"a capsule\"}", 4, &error);
  EXPECT_TRUE(targets.empty());
  EXPECT_FALSE(error.empty());
}

TEST(CausalProfile, SweepSelfChecksAndRanks) {
  tools::CausalOptions opts;
  opts.factors = {0.5, 1.0, 0.0};
  opts.top_n = 3;
  opts.db_sequences = 400;
  opts.flat_ratio = 10.0;  // absurd bound: every ranked target reads flat
  opts.min_local_share = 0.0;
  const tools::CausalReport rep = tools::causal_profile_canonical(opts);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.base_charged_cycles, 0.0);
  EXPECT_GT(rep.base_gcups, 0.0);
  ASSERT_EQ(rep.ranked.size(), 3u);
  for (std::size_t i = 0; i < rep.ranked.size(); ++i) {
    const tools::TargetResult& r = rep.ranked[i];
    if (i > 0) {
      EXPECT_LE(r.max_gain, rep.ranked[i - 1].max_gain);
    }
    ASSERT_EQ(r.points.size(), 3u);
    EXPECT_EQ(r.points[0].factor, 0.5);
    EXPECT_EQ(r.points[1].factor, 1.0);
    EXPECT_EQ(r.points[2].factor, 0.0);
    // Factor 1.0 is a byte-exact no-op, so its gain is exactly zero.
    EXPECT_EQ(r.points[1].gain, 0.0) << r.target.spec;
    EXPECT_EQ(r.points[1].charged_cycles, rep.base_charged_cycles)
        << r.target.spec;
    // More virtual speedup never loses end-to-end time.
    EXPECT_GE(r.points[2].gain, r.points[0].gain - 1e-12) << r.target.spec;
    EXPECT_TRUE(r.causally_flat) << r.target.spec;  // flat_ratio = 10
  }
  // The dominant memory site wins, causally, not just locally.
  EXPECT_EQ(rep.ranked[0].target.spec, "site:wavefront.load@global");
  EXPECT_GT(rep.ranked[0].max_gain, 0.25);
  EXPECT_GT(rep.ranked[0].slope, 0.0);
  // Cross-validation ran and agreed on the ranking (the error bound is
  // calibrated for the full canonical db, so rel_error is not asserted).
  EXPECT_TRUE(rep.xval.ran);
  EXPECT_EQ(rep.xval.site_spec, "site:wavefront.load@global");
  EXPECT_TRUE(rep.xval.ranking_agrees) << rep.xval.detail;
  EXPECT_NE(rep.to_ascii().find("wavefront.load"), std::string::npos);
}

TEST(CausalProfile, ReportJsonIsIdenticalAcrossThreadsAndMemo) {
  tools::CausalOptions opts;
  opts.factors = {0.5};
  opts.top_n = 2;
  opts.db_sequences = 300;
  std::string first;
  for (const auto& [threads, memo] :
       std::vector<std::pair<const char*, const char*>>{{"1", "0"},
                                                        {"4", "1"}}) {
    EnvGuard tg("CUSW_THREADS", threads);
    EnvGuard mg("CUSW_SIM_MEMO", memo);
    const tools::CausalReport rep = tools::causal_profile_canonical(opts);
    ASSERT_TRUE(rep.ok) << rep.error;
    const std::string json = rep.to_json();
    if (first.empty()) {
      first = json;
    } else {
      EXPECT_EQ(json, first) << "threads=" << threads << " memo=" << memo;
    }
  }
  EXPECT_NE(first.find("\"cross_validation\""), std::string::npos);
}

}  // namespace
}  // namespace cusw
