// seq: alphabets, FASTA round-trip, database operations, synthetic
// generators and the paper-database profiles.
#include <gtest/gtest.h>

#include <sstream>

#include "seq/fasta.h"
#include "seq/generate.h"

namespace cusw::seq {
namespace {

TEST(Alphabet, AminoAcidEncodesBlosumOrder) {
  const auto& aa = Alphabet::amino_acid();
  EXPECT_EQ(aa.size(), 24u);
  EXPECT_EQ(aa.encode('A'), 0);
  EXPECT_EQ(aa.encode('R'), 1);
  EXPECT_EQ(aa.encode('V'), 19);
  EXPECT_EQ(aa.encode('*'), 23);
  EXPECT_EQ(aa.encode('a'), aa.encode('A'));  // case-insensitive
  EXPECT_EQ(aa.letter(aa.encode('W')), 'W');
  EXPECT_THROW(aa.encode('J'), std::invalid_argument);
  EXPECT_EQ(aa.encode_lenient('J'), aa.wildcard());
  EXPECT_EQ(aa.letter(aa.wildcard()), 'X');
}

TEST(Alphabet, RoundTripString) {
  const auto& aa = Alphabet::amino_acid();
  const std::string s = "MKVLAADWY";
  EXPECT_EQ(aa.decode(aa.encode(s)), s);
}

TEST(Sequence, ConstructFromLetters) {
  const Sequence s("test", "ACDEF");
  EXPECT_EQ(s.length(), 5u);
  EXPECT_EQ(s.residues[0], Alphabet::amino_acid().encode('A'));
}

TEST(Fasta, ParsesMultiRecordWithWrappingAndComments) {
  std::istringstream in(
      ">seq1 description here\n"
      "MKVL\n"
      "AAD\n"
      "\n"
      "; old-style comment\n"
      ">seq2\n"
      "WYYW\r\n");
  const SequenceDB db = read_fasta(in);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].name, "seq1 description here");
  EXPECT_EQ(db[0].length(), 7u);
  EXPECT_EQ(db[1].length(), 4u);
}

TEST(Fasta, ThrowsOnResiduesBeforeHeader) {
  std::istringstream in("MKVL\n>seq\nAA\n");
  EXPECT_THROW(read_fasta(in), std::invalid_argument);
}

TEST(Fasta, RoundTripsThroughWriter) {
  SequenceDB db;
  db.add(Sequence("a", "MKVLAADWYMKVLAADWY"));
  db.add(Sequence("b", "WW"));
  std::ostringstream out;
  write_fasta(out, db, Alphabet::amino_acid(), 5);  // force line wrapping
  std::istringstream in(out.str());
  const SequenceDB back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].residues, db[0].residues);
  EXPECT_EQ(back[1].residues, db[1].residues);
  EXPECT_EQ(back[0].name, "a");
}

TEST(Database, LengthStatsAndThresholdSplit) {
  SequenceDB db;
  db.add(Sequence("s1", std::vector<Code>(10, 0)));
  db.add(Sequence("s2", std::vector<Code>(30, 0)));
  db.add(Sequence("s3", std::vector<Code>(20, 0)));
  const auto st = db.length_stats();
  EXPECT_EQ(st.count, 3u);
  EXPECT_EQ(st.total_residues, 60u);
  EXPECT_EQ(st.min_length, 10u);
  EXPECT_EQ(st.max_length, 30u);
  EXPECT_DOUBLE_EQ(st.mean_length, 20.0);
  EXPECT_DOUBLE_EQ(st.fraction_over(15), 2.0 / 3.0);

  const auto [below, above] = db.split_by_threshold(20);
  EXPECT_EQ(below.size(), 2u);
  EXPECT_EQ(above.size(), 1u);
  EXPECT_EQ(above[0].length(), 30u);
}

TEST(Database, SortAndPartition) {
  SequenceDB db;
  for (std::size_t len : {50u, 10u, 30u, 20u, 40u}) {
    db.add(Sequence("x", std::vector<Code>(len, 0)));
  }
  EXPECT_FALSE(db.is_sorted_by_length());
  db.sort_by_length();
  EXPECT_TRUE(db.is_sorted_by_length());
  const auto groups = db.partition_groups(2);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(groups[2], (std::pair<std::size_t, std::size_t>{4, 5}));
  EXPECT_THROW(db.partition_groups(0), std::invalid_argument);
}

TEST(Database, FilterSliceSampleAppend) {
  SequenceDB db;
  for (std::size_t len : {10u, 20u, 30u, 40u, 50u, 60u}) {
    db.add(Sequence("len" + std::to_string(len), std::vector<Code>(len, 0)));
  }
  const auto mid = db.filter_by_length(20, 40);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0].length(), 20u);
  EXPECT_EQ(mid[2].length(), 40u);
  EXPECT_THROW(db.filter_by_length(40, 20), std::invalid_argument);

  const auto s = db.slice(1, 4);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].length(), 20u);
  EXPECT_THROW(db.slice(4, 99), std::invalid_argument);

  const auto every2 = db.sample_stride(2);
  ASSERT_EQ(every2.size(), 3u);
  EXPECT_EQ(every2[1].length(), 30u);
  const auto every2_off = db.sample_stride(2, 1);
  EXPECT_EQ(every2_off[0].length(), 20u);
  EXPECT_THROW(db.sample_stride(0), std::invalid_argument);

  SequenceDB combined = mid;
  combined.append(every2);
  EXPECT_EQ(combined.size(), 6u);
  EXPECT_EQ(combined[3].length(), 10u);
}

TEST(Generate, DeterministicBySeed) {
  const auto a = lognormal_db(50, 300, 200, 42);
  const auto b = lognormal_db(50, 300, 200, 42);
  const auto c = lognormal_db(50, 300, 200, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].residues, b[i].residues);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].residues != c[i].residues;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generate, LognormalMomentsMatch) {
  const auto db = lognormal_db(4000, 360, 300, 7);
  const auto st = db.length_stats();
  EXPECT_NEAR(st.mean_length, 360.0, 20.0);
  EXPECT_NEAR(st.stddev_length, 300.0, 40.0);
}

TEST(Generate, UniformBoundsRespected) {
  const auto db = uniform_db(500, 100, 200, 5);
  const auto st = db.length_stats();
  EXPECT_GE(st.min_length, 100u);
  EXPECT_LE(st.max_length, 200u);
}

TEST(Generate, ResidueFrequenciesLookLikeProteins) {
  // Leucine (L) must be the most common standard residue; Tryptophan (W)
  // the rarest. All residues drawn from the 20 standard ones.
  Rng rng(3);
  const auto s = random_protein(200000, rng);
  std::array<int, 24> counts{};
  for (Code c : s.residues) {
    ASSERT_LT(c, 20);
    ++counts[c];
  }
  const auto& aa = Alphabet::amino_acid();
  const int leu = counts[aa.encode('L')];
  const int trp = counts[aa.encode('W')];
  for (int a = 0; a < 20; ++a) {
    EXPECT_LE(counts[a], leu);
    EXPECT_GE(counts[a], trp);
  }
  EXPECT_NEAR(static_cast<double>(leu) / 200000, 0.091, 0.01);
}

class PaperProfile : public ::testing::TestWithParam<DatabaseProfile> {};

TEST_P(PaperProfile, SynthesizedTailMatchesPublishedColumn) {
  const DatabaseProfile prof = GetParam();
  const auto db = prof.synthesize(4000, 123);
  EXPECT_EQ(db.size(), 4000u);
  const auto st = db.length_stats();
  // Mean within 15% (tail planting perturbs it slightly at small n).
  EXPECT_NEAR(st.mean_length, prof.mean_length, prof.mean_length * 0.15);
  // The over-3072 fraction matches the paper's Table II column, up to the
  // 1/n quantisation of planting whole sequences.
  const double want = prof.pct_over_3072 / 100.0;
  const double got = st.fraction_over(3072);
  EXPECT_NEAR(got, std::max(want, 1.0 / 4000.0), 1.1 / 4000.0)
      << prof.name;
  EXPECT_GE(st.fraction_over(3072), 1.0 / 4000.0);  // tail always present
}

INSTANTIATE_TEST_SUITE_P(
    AllDatabases, PaperProfile,
    ::testing::ValuesIn(DatabaseProfile::all_paper_databases()),
    [](const ::testing::TestParamInfo<DatabaseProfile>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cusw::seq
