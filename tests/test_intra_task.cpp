// Intra-task kernels (original wavefront and improved tiled): functional
// correctness against the scalar reference across strip/tile shapes and
// feature toggles, plus the paper's memory-transaction claims.
#include <gtest/gtest.h>

#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::ImprovedIntraParams;
using cudasw::run_intra_task_improved;
using cudasw::run_intra_task_original;
using sw::GapPenalty;
using sw::ScoringMatrix;

gpusim::Device c1060() { return gpusim::Device(gpusim::DeviceSpec::tesla_c1060()); }
gpusim::Device c2050() { return gpusim::Device(gpusim::DeviceSpec::tesla_c2050()); }

TEST(IntraOriginal, MatchesReference) {
  auto dev = c1060();
  const auto query = test::random_codes(91, 21);
  const auto db = seq::uniform_db(6, 40, 400, 22);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto run = run_intra_task_original(dev, query, db, matrix, gap, {});
  const auto want = test::reference_scores(query, db, matrix, gap);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(run.scores[i], want[i]) << "seq " << i;
  }
}

TEST(IntraOriginal, MatchesReferenceWhenDiagonalExceedsBlock) {
  // Query longer than the 256-thread block: diagonals need multiple chunks.
  auto dev = c1060();
  const auto query = test::random_codes(300, 23);
  const auto db = seq::uniform_db(2, 500, 600, 24);
  const auto& matrix = ScoringMatrix::blosum50();
  const GapPenalty gap{8, 2};
  const auto run = run_intra_task_original(dev, query, db, matrix, gap, {});
  const auto want = test::reference_scores(query, db, matrix, gap);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(run.scores[i], want[i]);
  }
}

struct ImprovedCase {
  int threads;
  int tile_height;
  int tile_width;
  std::size_t query_len;
  std::size_t target_len;
};

class ImprovedMatchesReference
    : public ::testing::TestWithParam<ImprovedCase> {};

TEST_P(ImprovedMatchesReference, Scores) {
  const ImprovedCase c = GetParam();
  auto dev = c1060();
  const auto query = test::random_codes(c.query_len, 31 + c.query_len);
  seq::SequenceDB db;
  Rng rng(32);
  db.add(seq::random_protein(c.target_len, rng));
  db.add(seq::random_protein(c.target_len / 2 + 1, rng));
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};

  ImprovedIntraParams p;
  p.threads_per_block = c.threads;
  p.tile_height = c.tile_height;
  p.tile_width = c.tile_width;
  const auto run = run_intra_task_improved(dev, query, db, matrix, gap, p);
  const auto want = test::reference_scores(query, db, matrix, gap);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(run.scores[i], want[i]) << "seq " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StripShapes, ImprovedMatchesReference,
    ::testing::Values(
        // Single pass, tiny block.
        ImprovedCase{4, 4, 1, 16, 40},
        // Multiple passes (query longer than the strip).
        ImprovedCase{4, 4, 1, 70, 55},
        ImprovedCase{8, 4, 1, 200, 150},
        // Partial final strip and partial final tile.
        ImprovedCase{4, 4, 1, 33, 29},
        ImprovedCase{4, 4, 1, 31, 29},
        // Tile height 8 (the §IV-A parameter sweep).
        ImprovedCase{4, 8, 1, 90, 70},
        // Tile width 2 (§III-C: width 1 is optimal, but width >1 must be
        // correct to be benchmarked).
        ImprovedCase{4, 4, 2, 70, 51},
        ImprovedCase{8, 4, 3, 120, 90},
        // Query shorter than one tile row.
        ImprovedCase{8, 4, 1, 3, 50},
        // Full-size block.
        ImprovedCase{256, 4, 1, 600, 500}));

TEST(IntraImproved, AllFeatureTogglesPreserveScores) {
  auto dev = c2050();
  const auto query = test::random_codes(150, 41);
  const auto db = seq::uniform_db(3, 200, 300, 42);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto want = test::reference_scores(query, db, matrix, gap);

  for (int mask = 0; mask < 64; ++mask) {
    ImprovedIntraParams p;
    p.threads_per_block = 16;
    p.deep_swap = mask & 1;
    p.unroll_profile_loop = mask & 2;
    p.packed_profile = mask & 4;
    p.coalesced_strip_io = mask & 8;
    p.shared_only = mask & 16;
    p.persistent_pipeline = mask & 32;
    const auto run = run_intra_task_improved(dev, query, db, matrix, gap, p);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(run.scores[i], want[i]) << "mask=" << mask << " seq=" << i;
    }
  }
}

TEST(IntraImproved, FarFewerGlobalTransactionsThanOriginal) {
  // Table I's claim at small scale: the improved kernel's global traffic is
  // orders of magnitude below the original's.
  auto dev = c1060();
  const auto query = test::random_codes(256, 51);
  const auto db = seq::uniform_db(2, 1000, 1200, 52);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};

  const auto orig = run_intra_task_original(dev, query, db, matrix, gap, {});
  const auto imp = run_intra_task_improved(dev, query, db, matrix, gap, {});
  EXPECT_EQ(orig.scores, imp.scores);
  EXPECT_GT(orig.stats.global_memory_transactions(),
            10 * imp.stats.global_memory_transactions());
}

TEST(IntraImproved, RegisterSpillVariantsAddLocalTraffic) {
  auto dev = c1060();
  const auto query = test::random_codes(128, 61);
  const auto db = seq::uniform_db(1, 500, 500, 62);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};

  ImprovedIntraParams good;
  ImprovedIntraParams spilled;
  spilled.deep_swap = false;
  spilled.unroll_profile_loop = false;
  const auto a = run_intra_task_improved(dev, query, db, matrix, gap, good);
  const auto b = run_intra_task_improved(dev, query, db, matrix, gap, spilled);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.stats.local.transactions, 0u);
  EXPECT_GT(b.stats.local.transactions, 0u);
  EXPECT_GT(b.stats.seconds, a.stats.seconds);
}

TEST(IntraImproved, PackedProfileQuartersTextureRequests) {
  auto dev = c1060();
  const auto query = test::random_codes(128, 71);
  const auto db = seq::uniform_db(1, 400, 400, 72);
  const auto& matrix = ScoringMatrix::blosum62();

  ImprovedIntraParams packed;
  ImprovedIntraParams plain;
  plain.packed_profile = false;
  const auto a = run_intra_task_improved(dev, query, db, matrix, {10, 2}, packed);
  const auto b = run_intra_task_improved(dev, query, db, matrix, {10, 2}, plain);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_NEAR(static_cast<double>(b.stats.texture.requests) /
                  static_cast<double>(a.stats.texture.requests),
              4.0, 0.05);
}

TEST(IntraImproved, SharedOnlyModeEliminatesStripGlobalTraffic) {
  auto dev = c2050();
  // Two passes so the strip boundary actually matters.
  const auto query = test::random_codes(160, 81);
  const auto db = seq::uniform_db(1, 600, 600, 82);
  const auto& matrix = ScoringMatrix::blosum62();

  ImprovedIntraParams base;
  base.threads_per_block = 16;  // strip = 64 rows -> 3 passes
  ImprovedIntraParams shared = base;
  shared.shared_only = true;
  const auto a = run_intra_task_improved(dev, query, db, matrix, {10, 2}, base);
  const auto b =
      run_intra_task_improved(dev, query, db, matrix, {10, 2}, shared);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_LT(b.stats.global.transactions, a.stats.global.transactions);
  EXPECT_GT(b.stats.shared_accesses, a.stats.shared_accesses);
}

TEST(IntraImproved, PersistentPipelineReducesSyncs) {
  auto dev = c1060();
  const auto query = test::random_codes(300, 91);  // several strips
  const auto db = seq::uniform_db(1, 400, 400, 92);
  const auto& matrix = ScoringMatrix::blosum62();

  ImprovedIntraParams base;
  base.threads_per_block = 32;
  ImprovedIntraParams persistent = base;
  persistent.persistent_pipeline = true;
  const auto a = run_intra_task_improved(dev, query, db, matrix, {10, 2}, base);
  const auto b =
      run_intra_task_improved(dev, query, db, matrix, {10, 2}, persistent);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_LT(b.stats.syncs, a.stats.syncs);
  EXPECT_LT(b.stats.seconds, a.stats.seconds);
}

}  // namespace
}  // namespace cusw
