// sw: scoring matrices, the reference aligners (hand-computed cases,
// textbook examples, property tests), and query profiles.
#include <gtest/gtest.h>

#include <sstream>

#include "seq/generate.h"
#include "sw/query_profile.h"
#include "sw/smith_waterman.h"
#include "test_helpers.h"

namespace cusw::sw {
namespace {

using seq::Alphabet;
using seq::Code;

std::vector<Code> enc(const std::string& s) {
  return Alphabet::amino_acid().encode(s);
}

TEST(Scoring, Blosum62KnownEntries) {
  const auto& m = ScoringMatrix::blosum62();
  const auto& aa = Alphabet::amino_acid();
  auto sc = [&](char a, char b) { return m.score(aa.encode(a), aa.encode(b)); };
  EXPECT_EQ(sc('A', 'A'), 4);
  EXPECT_EQ(sc('W', 'W'), 11);
  EXPECT_EQ(sc('C', 'C'), 9);
  EXPECT_EQ(sc('A', 'R'), -1);
  EXPECT_EQ(sc('W', 'C'), -2);
  EXPECT_EQ(sc('I', 'L'), 2);
  EXPECT_EQ(sc('X', 'X'), -1);
  EXPECT_EQ(m.max_score(), 11);
}

TEST(Scoring, Blosum50KnownEntries) {
  const auto& m = ScoringMatrix::blosum50();
  const auto& aa = Alphabet::amino_acid();
  auto sc = [&](char a, char b) { return m.score(aa.encode(a), aa.encode(b)); };
  EXPECT_EQ(sc('W', 'W'), 15);
  EXPECT_EQ(sc('C', 'C'), 13);
  EXPECT_EQ(sc('A', 'A'), 5);
  EXPECT_EQ(sc('E', 'Q'), 2);
  EXPECT_EQ(m.max_score(), 15);
}

TEST(Scoring, MatricesAreSymmetric) {
  for (const ScoringMatrix* m :
       {&ScoringMatrix::blosum62(), &ScoringMatrix::blosum50()}) {
    for (std::size_t a = 0; a < m->dim(); ++a) {
      for (std::size_t b = 0; b < m->dim(); ++b) {
        ASSERT_EQ(m->score(static_cast<Code>(a), static_cast<Code>(b)),
                  m->score(static_cast<Code>(b), static_cast<Code>(a)));
      }
    }
  }
}

TEST(Scoring, ParseNcbiLoadsCustomMatrix) {
  // A custom DNA matrix in NCBI format (transitions cheaper than
  // transversions).
  std::istringstream in(
      "A C G T N\n"
      "A 5 -4 -1 -4 0\n"
      "C -4 5 -4 -1 0\n"
      "G -1 -4 5 -4 0\n"
      "T -4 -1 -4 5 0\n"
      "N 0 0 0 0 0\n");
  const auto m =
      ScoringMatrix::parse_ncbi(Alphabet::dna(), "transition", in);
  const auto& dna = Alphabet::dna();
  EXPECT_EQ(m.score(dna.encode('A'), dna.encode('G')), -1);
  EXPECT_EQ(m.score(dna.encode('A'), dna.encode('C')), -4);
  EXPECT_EQ(m.score(dna.encode('T'), dna.encode('T')), 5);
  EXPECT_EQ(m.name(), "transition");

  // Asymmetric input is rejected.
  std::istringstream bad(
      "A C\n"
      "A 1 2\n"
      "C 3 1\n");
  EXPECT_THROW(ScoringMatrix::parse_ncbi(Alphabet::dna(), "bad", bad),
               std::logic_error);
}

TEST(Scoring, MatchMismatchMatrix) {
  const auto m = ScoringMatrix::match_mismatch(Alphabet::dna(), 2, -3);
  const auto& dna = Alphabet::dna();
  EXPECT_EQ(m.score(dna.encode('A'), dna.encode('A')), 2);
  EXPECT_EQ(m.score(dna.encode('A'), dna.encode('C')), -3);
}

TEST(SmithWaterman, IdenticalSequencesScoreFullMatch) {
  const auto q = enc("MKVLAADWY");
  const auto& m = ScoringMatrix::blosum62();
  int want = 0;
  for (Code c : q) want += m.score(c, c);
  EXPECT_EQ(sw_score(q, q, m, {10, 2}), want);
}

TEST(SmithWaterman, HandComputedSingleGap) {
  // Match/mismatch +2/-1, gap open cost rho = open+extend = 3, extend 1.
  // q = ACGT, t = ACT: best local alignment ACGT vs AC-T = 2+2-3+2 = 3, or
  // drop the gap: "AC" = 4. So the optimum is 4.
  const auto m = ScoringMatrix::match_mismatch(Alphabet::dna(), 2, -1);
  const auto& dna = Alphabet::dna();
  EXPECT_EQ(sw_score(dna.encode("ACGT"), dna.encode("ACT"), m, {2, 1}), 4);
  // With a cheap gap (rho = 1): ACGT vs AC-T = 2+2-1+2 = 5.
  EXPECT_EQ(sw_score(dna.encode("ACGT"), dna.encode("ACT"), m, {0, 1}), 5);
}

TEST(SmithWaterman, LocalAlignmentIgnoresBadPrefix) {
  // A strong match embedded in junk scores the same as the match alone.
  const auto m = ScoringMatrix::match_mismatch(Alphabet::dna(), 3, -2);
  const auto& dna = Alphabet::dna();
  const int embedded = sw_score(dna.encode("TTTTTACGTACGTTTTT"),
                                dna.encode("CCCCACGTACGCCCC"), m, {5, 2});
  const int alone = sw_score(dna.encode("ACGTACG"), dna.encode("ACGTACG"), m,
                             {5, 2});
  EXPECT_EQ(embedded, alone);
}

TEST(SmithWaterman, ScoreIsSymmetricInArguments) {
  const auto& m = ScoringMatrix::blosum62();
  for (int i = 0; i < 20; ++i) {
    const auto a = test::random_codes(40 + i, 100 + i);
    const auto b = test::random_codes(60 - i, 200 + i);
    EXPECT_EQ(sw_score(a, b, m, {10, 2}), sw_score(b, a, m, {10, 2}));
  }
}

TEST(SmithWaterman, NeverNegativeAndZeroForEmptyInputs) {
  const auto& m = ScoringMatrix::blosum62();
  EXPECT_EQ(sw_score({}, enc("MKVL"), m, {10, 2}), 0);
  EXPECT_EQ(sw_score(enc("MKVL"), {}, m, {10, 2}), 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(sw_score(test::random_codes(5, i), test::random_codes(5, 50 + i),
                       m, {10, 2}),
              0);
  }
}

TEST(SmithWaterman, LinearSpaceMatchesFullTable) {
  const auto& m = ScoringMatrix::blosum62();
  for (int i = 0; i < 25; ++i) {
    const auto q = test::random_codes(1 + i * 3, i);
    const auto t = test::random_codes(2 + i * 2, 1000 + i);
    const auto table = sw_full_table(q, t, m, {10, 2});
    int best = 0;
    for (const auto& row : table)
      for (int v : row) best = std::max(best, v);
    EXPECT_EQ(sw_score(q, t, m, {10, 2}), best) << "case " << i;
  }
}

TEST(SmithWaterman, MonotoneInGapPenalty) {
  const auto& m = ScoringMatrix::blosum62();
  const auto q = test::random_codes(80, 1);
  const auto t = test::random_codes(90, 2);
  const int cheap = sw_score(q, t, m, {4, 1});
  const int costly = sw_score(q, t, m, {15, 3});
  EXPECT_GE(cheap, costly);
}

TEST(Traceback, AlignmentIsConsistentWithScore) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  for (int i = 0; i < 15; ++i) {
    const seq::Sequence q("q", test::random_codes(50, 300 + i));
    const seq::Sequence t("t", test::random_codes(70, 400 + i));
    const LocalAlignment a = sw_align(q, t, m, gap);
    EXPECT_EQ(a.score, sw_score(q.residues, t.residues, m, gap));
    ASSERT_EQ(a.query_aligned.size(), a.target_aligned.size());
    // Re-score the reported alignment; it must reproduce the score.
    int rescore = 0;
    bool in_gap = false;
    const auto& aa = Alphabet::amino_acid();
    for (std::size_t k = 0; k < a.query_aligned.size(); ++k) {
      const char qc = a.query_aligned[k];
      const char tc = a.target_aligned[k];
      if (qc == '-' || tc == '-') {
        rescore -= in_gap ? gap.extend : gap.open_cost();
        in_gap = true;
      } else {
        rescore += m.score(aa.encode(qc), aa.encode(tc));
        in_gap = false;
      }
    }
    EXPECT_EQ(rescore, a.score) << "alignment does not re-score";
    // Aligned region bounds are consistent.
    EXPECT_LE(a.query_end, q.length());
    EXPECT_LE(a.target_end, t.length());
    EXPECT_LE(a.query_begin, a.query_end);
  }
}

TEST(Traceback, EmptyAlignmentWhenNothingScoresPositive) {
  const auto m = ScoringMatrix::match_mismatch(Alphabet::dna(), 1, -2);
  const auto& dna = Alphabet::dna();
  const seq::Sequence q("q", dna.encode("AAAA"));
  const seq::Sequence t("t", dna.encode("CCCC"));
  const LocalAlignment a = sw_align(q, t, m, {5, 1});
  EXPECT_EQ(a.score, 0);
  EXPECT_TRUE(a.query_aligned.empty());
}

TEST(NeedlemanWunsch, GlobalForcesEndToEnd) {
  const auto m = ScoringMatrix::match_mismatch(Alphabet::dna(), 2, -1);
  const auto& dna = Alphabet::dna();
  // Global must pay for the trailing mismatch/gap; local does not.
  const auto q = dna.encode("ACGT");
  const auto t = dna.encode("ACGTTTTT");
  EXPECT_EQ(nw_score(q, q, m, {2, 1}), 8);
  EXPECT_LT(nw_score(q, t, m, {2, 1}), sw_score(q, t, m, {2, 1}));
  // Semi-global forgives the target overhang.
  EXPECT_EQ(semiglobal_score(q, t, m, {2, 1}), 8);
}

TEST(NeedlemanWunsch, AllGapsBaseline) {
  const auto m = ScoringMatrix::match_mismatch(Alphabet::dna(), 1, -1);
  const auto& dna = Alphabet::dna();
  // Aligning against an empty-ish target: q of length 3 vs t of length 1,
  // best global = match + gap of 2 = 1 - (rho + sigma) with rho=2, sigma=1.
  EXPECT_EQ(nw_score(dna.encode("AAA"), dna.encode("A"), m, {1, 1}), 1 - 3);
}

TEST(QueryProfile, MatchesMatrixLookups) {
  const auto q = test::random_codes(37, 9);
  const auto& m = ScoringMatrix::blosum62();
  const QueryProfile prof(q, m);
  EXPECT_EQ(prof.query_length(), 37u);
  for (std::size_t a = 0; a < m.dim(); ++a) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      ASSERT_EQ(prof.score(static_cast<Code>(a), i),
                m.score(q[i], static_cast<Code>(a)));
    }
  }
}

TEST(PackedQueryProfile, PacksFourScoresPerWord) {
  const auto q = test::random_codes(10, 11);  // not a multiple of 4
  const auto& m = ScoringMatrix::blosum62();
  const PackedQueryProfile prof(q, m);
  EXPECT_EQ(prof.words_per_symbol(), 3u);
  for (std::size_t a = 0; a < m.dim(); ++a) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Packed4 w = prof.packed(static_cast<Code>(a), i / 4);
      ASSERT_EQ(w.get(static_cast<int>(i % 4)),
                m.score(q[i], static_cast<Code>(a)));
    }
    // Padding lanes hold the matrix minimum so they can never win a max.
    const Packed4 last = prof.packed(static_cast<Code>(a), 2);
    EXPECT_EQ(last.get(2), m.min_score());
    EXPECT_EQ(last.get(3), m.min_score());
  }
}

TEST(PackedQueryProfile, TexelIndexIsRowMajor) {
  const auto q = test::random_codes(8, 13);
  const PackedQueryProfile prof(q, ScoringMatrix::blosum62());
  EXPECT_EQ(prof.texel_index(0, 0), 0u);
  EXPECT_EQ(prof.texel_index(0, 1), 1u);
  EXPECT_EQ(prof.texel_index(1, 0), prof.words_per_symbol());
}

}  // namespace
}  // namespace cusw::sw
