// Simulated-cycle stall attribution (gpusim/stall.h): the exact sum
// invariant (per-reason ticks sum to the charged total) for all four
// CUDASW++ kernels serial and parallel, bit-identical breakdowns across
// CUSW_THREADS, the per-site stall distribution, the registry mirror,
// the GCUPS / stall-fraction counter tracks in emitted traces, and the
// roofline verdict in the CUSW_COUNTERS report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cudasw/inter_task.h"
#include "cudasw/inter_task_simd.h"
#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/launch.h"
#include "gpusim/report.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "test_helpers.h"

namespace cusw {
namespace {

class ThreadsGuard {
 public:
  explicit ThreadsGuard(const char* value) {
    const char* prev = std::getenv("CUSW_THREADS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("CUSW_THREADS", value, 1);
  }
  ~ThreadsGuard() {
    if (had_prev_)
      setenv("CUSW_THREADS", prev_.c_str(), 1);
    else
      unsetenv("CUSW_THREADS");
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

struct TraceGuard {
  ~TraceGuard() { obs::disable_trace(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

gpusim::Device one_sm_c1060() {
  auto spec = gpusim::DeviceSpec::tesla_c1060();
  return gpusim::Device(spec.scaled(1.0 / spec.sm_count));
}

seq::SequenceDB long_db(std::uint64_t seed) {
  seq::SequenceDB db;
  Rng rng(seed);
  for (const std::size_t len : {3200, 4000, 4800, 3600})
    db.add(seq::random_protein(len, rng));
  return db;
}

seq::SequenceDB short_db(std::uint64_t seed) {
  seq::SequenceDB db = seq::lognormal_db(64, 180, 60, seed);
  db.sort_by_length();
  return db;
}

std::vector<std::uint64_t> reasons(const gpusim::StallBreakdown& b) {
  std::vector<std::uint64_t> v;
  gpusim::for_each_stall_reason(
      b, [&](const char*, std::uint64_t x) { v.push_back(x); });
  return v;
}

std::uint64_t reason_sum(const gpusim::StallBreakdown& b) {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : reasons(b)) sum += v;
  return sum;
}

/// The tentpole invariants, checked on one kernel run:
///  1. the seven reasons sum to `charged` exactly;
///  2. per-space stall_ticks sum to the launch's memory ticks exactly;
///  3. per-site stall_ticks sum to their space's total exactly
///     (covered field-for-field by test_sites too; restated here so a
///     stall-specific regression fails in the stall suite).
void expect_stall_invariants(const gpusim::LaunchStats& s) {
  EXPECT_GT(s.stall.charged, 0u);
  EXPECT_EQ(reason_sum(s.stall), s.stall.charged);

  const std::uint64_t space_ticks = s.global.stall_ticks +
                                    s.local.stall_ticks +
                                    s.texture.stall_ticks;
  EXPECT_EQ(space_ticks, s.stall.memory_ticks());

  for (const gpusim::Space sp :
       {gpusim::Space::Global, gpusim::Space::Local, gpusim::Space::Texture}) {
    std::uint64_t site_ticks = 0;
    for (const gpusim::SiteCounters& sc : s.sites) {
      if (sc.space == sp) site_ticks += sc.counters.stall_ticks;
    }
    EXPECT_EQ(site_ticks, s.counters_for(sp).stall_ticks)
        << gpusim::space_name(sp);
  }
}

const sw::ScoringMatrix& blosum() { return sw::ScoringMatrix::blosum62(); }

TEST(Stall, ReasonsSumToChargedForAllFourKernels) {
  for (const char* threads : {"1", "8"}) {
    ThreadsGuard guard(threads);
    auto dev = one_sm_c1060();
    const auto longs = long_db(61);
    const auto shorts = short_db(62);
    const auto query = test::random_codes(567, 63);
    const auto short_query = test::random_codes(120, 64);

    expect_stall_invariants(
        cudasw::run_intra_task_improved(dev, query, longs, blosum(), {10, 2},
                                        {})
            .stats);
    expect_stall_invariants(
        cudasw::run_intra_task_original(dev, query, longs, blosum(), {10, 2},
                                        {})
            .stats);
    expect_stall_invariants(
        cudasw::run_inter_task(dev, short_query, shorts, blosum(), {10, 2},
                               {})
            .stats);
    expect_stall_invariants(
        cudasw::run_inter_task_simd(dev, short_query, shorts, blosum(),
                                    {10, 2}, {})
            .stats);
  }
}

TEST(Stall, BreakdownIsBitIdenticalAcrossThreadCounts) {
  const auto db = long_db(65);
  const auto query = test::random_codes(1500, 66);
  const auto run_at = [&](const char* threads) {
    ThreadsGuard guard(threads);
    auto dev = one_sm_c1060();
    return cudasw::run_intra_task_improved(dev, query, db, blosum(), {10, 2},
                                           {});
  };
  const auto serial = run_at("1");
  expect_stall_invariants(serial.stats);
  for (const char* threads : {"2", "8"}) {
    const auto parallel = run_at(threads);
    EXPECT_EQ(reasons(parallel.stats.stall), reasons(serial.stats.stall))
        << threads << " threads";
    EXPECT_EQ(parallel.stats.stall.charged, serial.stats.stall.charged);
    ASSERT_EQ(parallel.stats.sites.size(), serial.stats.sites.size());
    for (std::size_t i = 0; i < serial.stats.sites.size(); ++i) {
      EXPECT_EQ(parallel.stats.sites[i].counters.stall_ticks,
                serial.stats.sites[i].counters.stall_ticks);
    }
  }
}

TEST(Stall, ChargedMinusIdleMatchesTotalBlockTicksExactly) {
  auto dev = one_sm_c1060();
  const auto run = cudasw::run_intra_task_improved(
      dev, test::random_codes(567, 67), long_db(68), blosum(), {10, 2}, {});
  const gpusim::LaunchStats& s = run.stats;
  ASSERT_GE(s.stall.charged, s.stall.occupancy_idle);
  // Each window is charged the tick-rounded *cumulative* block time minus
  // what earlier windows already took (the remainder carries across
  // windows), so the identity holds exactly — no per-window rounding slop.
  EXPECT_EQ(s.stall.charged - s.stall.occupancy_idle, s.total_block_ticks);
  // And the tick total is the rounding of the block-cycle total itself:
  // each block contributes round(block_cycles * ticks_per_cycle), so the
  // residual error is at most half a tick per block.
  const double block_cycles = gpusim::stall_ticks_to_cycles(s.total_block_ticks);
  EXPECT_NEAR(block_cycles, s.total_block_cycles,
              0.5 * static_cast<double>(s.blocks) /
                  static_cast<double>(gpusim::kStallTicksPerCycle));
}

TEST(Stall, RegistryMirrorsBreakdownAndCells) {
  auto dev = one_sm_c1060();
  const auto db = long_db(69);
  const auto query = test::random_codes(567, 70);
  const obs::Snapshot before = obs::Registry::global().snapshot();
  const auto run =
      cudasw::run_intra_task_improved(dev, query, db, blosum(), {10, 2}, {});
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);

  const std::string p = "gpusim.kernel.intra_task_improved.";
  EXPECT_EQ(delta.counter(p + "cells"), run.cells);
  std::uint64_t mirrored = 0;
  gpusim::for_each_stall_reason(
      run.stats.stall, [&](const char* reason, std::uint64_t v) {
        EXPECT_EQ(delta.counter(p + "stall." + reason), v) << reason;
        mirrored += delta.counter(p + "stall." + reason);
      });
  EXPECT_EQ(delta.counter(p + "stall.charged"), run.stats.stall.charged);
  EXPECT_EQ(mirrored, run.stats.stall.charged);
}

TEST(Stall, LaunchReportShowsBreakdownAndJsonIsGuarded) {
  auto dev = one_sm_c1060();
  const auto run = cudasw::run_intra_task_improved(
      dev, test::random_codes(567, 71), long_db(72), blosum(), {10, 2}, {});
  const std::string report =
      gpusim::format_launch_report(run.stats, dev.spec());
  EXPECT_NE(report.find("stall"), std::string::npos) << report;
  EXPECT_NE(report.find("compute"), std::string::npos) << report;

  const std::string json = gpusim::site_breakdown_json(run.stats);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  obs::json::Value v;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, v, &error)) << error;
  for (const auto& row : v.array) {
    // Derived ratios are always present (0.0 for request-only rows) and
    // every row carries its stall cycles.
    ASSERT_NE(row.find("coalescing_efficiency"), nullptr);
    ASSERT_NE(row.find("hit_rate"), nullptr);
    ASSERT_NE(row.find("stall_cycles"), nullptr);
  }
}

TEST(Stall, CountersReportCarriesGcupsVerdictAndStallColumns) {
  auto dev = one_sm_c1060();
  const auto db = long_db(73);
  const auto query = test::random_codes(567, 74);
  const obs::Snapshot before = obs::Registry::global().snapshot();
  cudasw::run_intra_task_improved(dev, query, db, blosum(), {10, 2}, {});
  cudasw::run_intra_task_original(dev, query, db, blosum(), {10, 2}, {});
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);

  const std::string json = obs::counters_to_json(delta);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, doc, &error)) << error;
  const obs::json::Value* kernels = doc.find("kernels");
  ASSERT_NE(kernels, nullptr);
  bool saw_kernel = false;
  for (const auto& k : kernels->array) {
    const obs::json::Value* label = k.find("label");
    if (label == nullptr || label->string.rfind("intra_task", 0) != 0)
      continue;
    saw_kernel = true;
    const obs::json::Value* derived = k.find("derived");
    ASSERT_NE(derived, nullptr) << label->string;
    const obs::json::Value* gcups = derived->find("gcups");
    ASSERT_NE(gcups, nullptr);
    EXPECT_GT(gcups->number, 0.0);
    const obs::json::Value* bound = derived->find("bound");
    ASSERT_NE(bound, nullptr);
    EXPECT_NE(bound->string, "unknown") << label->string;
    const obs::json::Value* stall = k.find("stall");
    ASSERT_NE(stall, nullptr);
    EXPECT_NE(stall->find("charged_cycles"), nullptr);
  }
  EXPECT_TRUE(saw_kernel);

  const std::string table = obs::format_counters_table(delta);
  EXPECT_NE(table.find("GCUPS"), std::string::npos) << table;
  EXPECT_NE(table.find("-bound"), std::string::npos) << table;
  EXPECT_NE(table.find("stall %"), std::string::npos) << table;
  EXPECT_EQ(table.find("nan"), std::string::npos) << table;
}

TEST(Stall, DeviceTraceCarriesCounterTracksAndValidates) {
  TraceGuard guard;
  const std::string path = testing::TempDir() + "cusw_stall_trace.json";
  obs::configure_trace(path);
  {
    auto dev = one_sm_c1060();
    cudasw::run_intra_task_improved(dev, test::random_codes(567, 75),
                                    long_db(76), blosum(), {10, 2}, {});
  }
  ASSERT_EQ(obs::flush_trace(), path);
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());

  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.spans, 0u);
  // GCUPS level + drop, stall-fraction level + drop.
  EXPECT_GE(check.counters, 4u);
  EXPECT_NE(text.find("\"GCUPS\""), std::string::npos);
  EXPECT_NE(text.find("\"stall fraction\""), std::string::npos);
  EXPECT_NE(text.find("charged_cycles"), std::string::npos);
}

TEST(TraceCheck, AcceptsCounterEvents) {
  const char* text = R"({"traceEvents": [
    {"name": "GCUPS", "ph": "C", "pid": 100, "tid": 0, "ts": 0.0,
     "args": {"gcups": 1.5}},
    {"name": "GCUPS", "ph": "C", "pid": 100, "tid": 0, "ts": 10.0,
     "args": {"gcups": 0.0}}
  ]})";
  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.counters, 2u);
  EXPECT_EQ(check.spans, 0u);
}

TEST(TraceCheck, RejectsMalformedCounterEvents) {
  // Counter with a dur.
  EXPECT_FALSE(obs::validate_chrome_trace(
                   R"({"traceEvents": [{"name": "c", "ph": "C", "pid": 1,
                       "tid": 0, "ts": 0, "dur": 5, "args": {"v": 1}}]})")
                   .ok);
  // Counter without args.
  EXPECT_FALSE(obs::validate_chrome_trace(
                   R"({"traceEvents": [{"name": "c", "ph": "C", "pid": 1,
                       "tid": 0, "ts": 0}]})")
                   .ok);
  // Counter with a non-numeric series.
  EXPECT_FALSE(obs::validate_chrome_trace(
                   R"({"traceEvents": [{"name": "c", "ph": "C", "pid": 1,
                       "tid": 0, "ts": 0, "args": {"v": "high"}}]})")
                   .ok);
  // Counter that travels back in time on its track.
  EXPECT_FALSE(obs::validate_chrome_trace(
                   R"({"traceEvents": [
                     {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 9,
                      "args": {"v": 1}},
                     {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 2,
                      "args": {"v": 0}}]})")
                   .ok);
}

TEST(TraceCheck, RejectsSpanWhoseStallSumExceedsCharged) {
  // stall_compute + stall_sync = 12 > charged_cycles = 10: corrupt.
  const obs::TraceCheck bad = obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "k", "ph": "X", "pid": 1, "tid": 0,
          "ts": 0, "dur": 5,
          "args": {"charged_cycles": 10, "stall_compute": 8,
                   "stall_sync": 4}}]})");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("stall"), std::string::npos) << bad.error;
  // An exact partition passes.
  const obs::TraceCheck good = obs::validate_chrome_trace(
      R"({"traceEvents": [{"name": "k", "ph": "X", "pid": 1, "tid": 0,
          "ts": 0, "dur": 5,
          "args": {"charged_cycles": 10, "stall_compute": 8,
                   "stall_sync": 2}}]})");
  EXPECT_TRUE(good.ok) << good.error;
}

}  // namespace
}  // namespace cusw
