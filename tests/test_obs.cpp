// cusw::obs: registry semantics (atomic updates, snapshot/diff, JSON),
// trace emission + Chrome-trace schema validation, profiler hooks on
// gpusim::launch, and the zero-overhead contract of the unobserved path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "cudasw/pipeline.h"
#include "gpusim/launch.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using obs::Registry;
using obs::Snapshot;

// Unique-per-test metric names keep the process-global registry tests
// independent of each other and of the launches other tests run.
std::string uniq(const std::string& stem) {
  static int n = 0;
  return "test." + stem + "." + std::to_string(n++);
}

// Tracing is process-global: make sure a failing test never leaves it
// enabled for the rest of the binary.
struct TraceGuard {
  ~TraceGuard() { obs::disable_trace(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

gpusim::Device mini1060() {
  return gpusim::Device(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
}

seq::SequenceDB small_db(std::uint64_t seed) {
  seq::SequenceDB db = seq::lognormal_db(60, 150, 80, seed);
  Rng rng(seed + 1);
  db.add(seq::random_protein(900, rng, "long1"));
  return db;
}

// A tiny kernel touching every counter family: global loads, a barrier,
// shared accesses with a conflicting stride, texture reads. Texture and
// local traffic carries attribution sites; the global loads stay
// unattributed so both site paths are exercised.
gpusim::LaunchStats run_unit_kernel(gpusim::Device& dev, const char* label,
                                    int blocks = 4) {
  gpusim::LaunchConfig cfg;
  cfg.blocks = blocks;
  cfg.threads_per_block = 64;
  cfg.label = label;
  const gpusim::SiteId tex_site = gpusim::intern_site("unit.tex");
  const gpusim::SiteId spill_site = gpusim::intern_site("unit.spill");
  auto tex = dev.make_texture(std::vector<int>(256, 1));
  return dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
    for (int lane = 0; lane < ctx.threads(); ++lane) {
      ctx.access(gpusim::Space::Global, lane,
                 0x10000 + static_cast<std::uint64_t>(lane) * 4, 4, false);
      ctx.tex(tex, static_cast<std::size_t>(lane % 256), lane, tex_site);
    }
    ctx.sync();
    for (int lane = 0; lane < ctx.threads(); ++lane) {
      ctx.shared_access_strided(lane, 2, 2);
      ctx.local_access(lane, 0, 0, 4, true, spill_site);
    }
    ctx.charge_uniform(5.0);
  });
}

TEST(Metrics, CounterGaugeHistogramBasics) {
  auto& reg = Registry::global();
  const std::string c = uniq("counter"), g = uniq("gauge"), h = uniq("hist");
  reg.counter(c).inc();
  reg.counter(c).add(41);
  EXPECT_EQ(reg.counter(c).value(), 42u);

  reg.gauge(g).set(1.5);
  reg.gauge(g).add(2.0);
  EXPECT_DOUBLE_EQ(reg.gauge(g).value(), 3.5);

  auto& hist = reg.histogram(h, {1.0, 10.0});
  hist.observe(0.5);
  hist.observe(5.0);
  hist.observe(100.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 105.5);
  EXPECT_EQ(hist.buckets(), (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  auto& reg = Registry::global();
  const std::string name = uniq("stable");
  obs::Counter& a = reg.counter(name);
  obs::Counter& b = reg.counter(name);
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, ConcurrentUpdatesAndCreatesAreClean) {
  auto& reg = Registry::global();
  const std::string shared_name = uniq("race");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix lock-free updates with lookups and creations under the lock.
      obs::Counter& c = reg.counter(shared_name);
      for (int i = 0; i < kIters; ++i) c.inc();
      reg.gauge(shared_name + ".gauge." + std::to_string(t % 2)).add(1.0);
      reg.histogram(shared_name + ".hist", {1.0}).observe(static_cast<double>(t));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter(shared_name).value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram(shared_name + ".hist", {1.0}).count(),
            static_cast<std::uint64_t>(kThreads));
}

TEST(Metrics, SnapshotDiffSubtracts) {
  auto& reg = Registry::global();
  const std::string c = uniq("diff.counter"), g = uniq("diff.gauge"),
                    h = uniq("diff.hist");
  reg.counter(c).add(10);
  reg.gauge(g).set(2.0);
  reg.histogram(h, {5.0}).observe(1.0);
  const Snapshot before = reg.snapshot();
  reg.counter(c).add(7);
  reg.gauge(g).add(0.5);
  reg.histogram(h, {5.0}).observe(10.0);
  const Snapshot diff = reg.snapshot().diff(before);
  EXPECT_EQ(diff.counter(c), 7u);
  EXPECT_DOUBLE_EQ(diff.gauge(g), 0.5);
  const obs::MetricSample* hs = diff.find(h);
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 1u);
  EXPECT_EQ(hs->buckets, (std::vector<std::uint64_t>{0, 1}));
}

TEST(Metrics, SnapshotJsonIsValidJson) {
  auto& reg = Registry::global();
  reg.counter(uniq("json \"quoted\" name")).inc();
  const std::string json = reg.snapshot().to_json();
  obs::json::Value v;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, v, &error)) << error;
  const obs::json::Value* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->kind, obs::json::Value::Kind::kArray);
  EXPECT_FALSE(metrics->array.empty());
}

TEST(Metrics, LaunchPublishesStatsBitForBit) {
  auto dev = mini1060();
  const Snapshot before = Registry::global().snapshot();
  const auto stats = run_unit_kernel(dev, "obs_unit_exact");
  const Snapshot d = Registry::global().snapshot().diff(before);

  const std::string p = "gpusim.kernel.obs_unit_exact.";
  EXPECT_EQ(d.counter(p + "launches"), 1u);
  EXPECT_EQ(d.counter(p + "blocks"), static_cast<std::uint64_t>(stats.blocks));
  EXPECT_EQ(d.counter(p + "windows"), stats.windows);
  EXPECT_EQ(d.counter(p + "syncs"), stats.syncs);
  EXPECT_EQ(d.counter(p + "shared.accesses"), stats.shared_accesses);
  EXPECT_EQ(d.counter(p + "shared.bank_conflict_cycles"),
            stats.bank_conflict_cycles);
  // Iterate the canonical field visitor rather than naming fields by
  // hand: a field added to SpaceCounters is published and checked here
  // without touching either file (the visitor's static_assert pins the
  // struct size, so it cannot silently fall behind).
  const auto expect_space = [&](const std::string& prefix,
                                const gpusim::SpaceCounters& c) {
    gpusim::for_each_space_counter_field(
        c, [&](const char* field, std::uint64_t v) {
          EXPECT_EQ(d.counter(prefix + field), v) << prefix << field;
        });
  };
  expect_space(p + "global.", stats.global);
  expect_space(p + "local.", stats.local);
  expect_space(p + "texture.", stats.texture);
  // Per-site attribution rows mirror field-for-field under the same
  // visitor; the unit kernel produces attributed texture/local rows plus
  // the unattributed global row.
  ASSERT_FALSE(stats.sites.empty());
  bool saw_attributed = false, saw_unattributed = false;
  for (const gpusim::SiteCounters& sc : stats.sites) {
    expect_space(p + "site." + gpusim::site_name(sc.site) + "." +
                     gpusim::space_name(sc.space) + ".",
                 sc.counters);
    (sc.site == gpusim::kSiteUnattributed ? saw_unattributed
                                          : saw_attributed) = true;
  }
  EXPECT_TRUE(saw_attributed);
  EXPECT_TRUE(saw_unattributed);
  // The per-kernel seconds gauge started from zero (unique label), so one
  // launch leaves exactly stats.seconds in it.
  EXPECT_EQ(d.gauge(p + "seconds"), stats.seconds);
  // Device-wide aggregates move by the same amounts.
  EXPECT_EQ(d.counter("gpusim.global.transactions"),
            stats.global.transactions);
  EXPECT_EQ(d.counter("gpusim.global_memory.transactions"),
            stats.global_memory_transactions());
}

TEST(Profile, KernelTableMatchesLaunchStats) {
  auto dev = mini1060();
  const Snapshot before = Registry::global().snapshot();
  const auto stats = run_unit_kernel(dev, "obs_prof_table");
  const Snapshot d = Registry::global().snapshot().diff(before);
  const std::string table = obs::format_kernel_profile(d);
  ASSERT_FALSE(table.empty());
  EXPECT_NE(table.find("obs_prof_table"), std::string::npos) << table;
  // The profiler's "global txns" is global + local, exactly as LaunchStats
  // reports it; texture and shared columns match the struct too.
  EXPECT_NE(table.find(std::to_string(stats.global_memory_transactions())),
            std::string::npos)
      << table;
  EXPECT_NE(table.find(std::to_string(stats.texture.transactions)),
            std::string::npos)
      << table;
  EXPECT_NE(table.find(std::to_string(stats.shared_accesses)),
            std::string::npos)
      << table;
}

// Collects observer callbacks; thread-safe as the contract requires.
class RecordingObserver final : public gpusim::LaunchObserver {
 public:
  void on_window(const gpusim::WindowEvent& e) override {
    std::lock_guard<std::mutex> lk(mu_);
    windows_.push_back(e);
  }
  void on_block(const gpusim::BlockEvent& e) override {
    std::lock_guard<std::mutex> lk(mu_);
    blocks_.push_back({e.block_id, e.cycles});
  }
  void on_launch(const gpusim::LaunchConfig&,
                 const gpusim::LaunchStats& s) override {
    std::lock_guard<std::mutex> lk(mu_);
    ++launches_;
    last_ = s;
  }

  std::mutex mu_;
  std::vector<gpusim::WindowEvent> windows_;
  std::vector<std::pair<int, double>> blocks_;
  int launches_ = 0;
  gpusim::LaunchStats last_;
};

TEST(Observer, WindowAndBlockEventsAreConsistent) {
  setenv("CUSW_THREADS", "8", 1);
  auto dev = mini1060();
  RecordingObserver rec;
  dev.set_observer(&rec);
  const int blocks = 6;
  const auto stats = run_unit_kernel(dev, "obs_observer", blocks);
  dev.set_observer(nullptr);
  unsetenv("CUSW_THREADS");

  EXPECT_EQ(rec.launches_, 1);
  EXPECT_EQ(rec.last_.windows, stats.windows);
  EXPECT_EQ(rec.last_.global.transactions, stats.global.transactions);
  ASSERT_EQ(rec.blocks_.size(), static_cast<std::size_t>(blocks));
  EXPECT_EQ(rec.windows_.size(), stats.windows);

  // Every block's windows tile its execution: starts are monotonic within
  // the block and the cycles sum to the block total reported by on_block.
  std::vector<double> window_sum(blocks, 0.0);
  std::vector<double> last_start(blocks, -1.0);
  std::vector<std::uint64_t> txn_sum(blocks, 0);
  for (const auto& w : rec.windows_) {
    ASSERT_GE(w.block_id, 0);
    ASSERT_LT(w.block_id, blocks);
    EXPECT_GT(w.start_cycles, last_start[w.block_id]);
    last_start[w.block_id] = w.start_cycles;
    window_sum[w.block_id] += w.cycles;
    txn_sum[w.block_id] += w.transactions;
  }
  double total = 0.0;
  std::uint64_t txn_total = 0;
  for (const auto& [id, cycles] : rec.blocks_) {
    EXPECT_DOUBLE_EQ(window_sum[id], cycles) << "block " << id;
    total += cycles;
    txn_total += txn_sum[id];
  }
  EXPECT_DOUBLE_EQ(total, stats.total_block_cycles);
  EXPECT_EQ(txn_total, stats.global.transactions + stats.local.transactions +
                           stats.texture.transactions);
}

TEST(Observer, UnobservedSearchAllocatesNoMetrics) {
  auto dev = mini1060();
  const auto query = test::random_codes(80, 21);
  const auto db = small_db(22);
  const auto& matrix = sw::ScoringMatrix::blosum62();
  cudasw::SearchConfig cfg;
  cfg.threshold = 600;
  // First search may create this workload's metrics lazily...
  const auto first = cudasw::search(dev, query, db, matrix, cfg);
  const std::size_t metrics = Registry::global().metric_count();
  // ...but steady state is allocation-free: an identical search creates
  // nothing, so the per-window path provably never touches the registry.
  const auto second = cudasw::search(dev, query, db, matrix, cfg);
  EXPECT_EQ(Registry::global().metric_count(), metrics);
  EXPECT_EQ(first.scores, second.scores);
}

TEST(Trace, PipelineRunEmitsValidTwoDomainTrace) {
  TraceGuard guard;
  const std::string path = testing::TempDir() + "cusw_obs_trace.json";
  obs::configure_trace(path);

  setenv("CUSW_THREADS", "8", 1);
  auto dev = mini1060();
  const auto db = small_db(31);
  const auto& matrix = sw::ScoringMatrix::blosum62();
  cudasw::SearchConfig cfg;
  cfg.threshold = 600;
  std::vector<std::vector<seq::Code>> queries;
  queries.push_back(test::random_codes(60, 32));
  queries.push_back(test::random_codes(90, 33));
  const auto reports = cudasw::search_batch(dev, queries, db, matrix, cfg);
  unsetenv("CUSW_THREADS");
  ASSERT_EQ(reports.size(), 2u);

  ASSERT_EQ(obs::flush_trace(), path);
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());

  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.spans, 0u);
  EXPECT_GE(check.tracks, 2u);

  // Both clock domains are present: wall-clock host spans on pid 1 and
  // simulated device spans on pid >= 100.
  obs::json::Value v;
  ASSERT_TRUE(obs::json::parse(text, v, nullptr));
  const obs::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool host_span = false, device_span = false, window_span = false;
  for (const auto& e : events->array) {
    const obs::json::Value* ph = e.find("ph");
    const obs::json::Value* pid = e.find("pid");
    if (ph == nullptr || pid == nullptr || ph->string != "X") continue;
    if (pid->number == obs::kHostPid) host_span = true;
    if (pid->number >= obs::kFirstDevicePid) device_span = true;
    const obs::json::Value* cat = e.find("cat");
    if (cat != nullptr && cat->string == "window") window_span = true;
  }
  EXPECT_TRUE(host_span);
  EXPECT_TRUE(device_span);
  EXPECT_TRUE(window_span);
}

TEST(Trace, HostSpansCarryWorkerThreadIds) {
  TraceGuard guard;
  const std::string path = testing::TempDir() + "cusw_obs_host.json";
  obs::configure_trace(path);
  {
    obs::HostSpan outer("outer");
    obs::HostSpan inner("inner");
  }
  ASSERT_EQ(obs::flush_trace(), path);
  const std::string text = read_file(path);
  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.spans, 2u);
  EXPECT_NE(text.find("\"main\""), std::string::npos);
}

TEST(TraceCheck, AcceptsMinimalValidTrace) {
  const char* text = R"({"traceEvents": [
    {"name": "p", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": 10.0},
    {"name": "c", "ph": "X", "pid": 1, "tid": 0, "ts": 2.0, "dur": 3.0},
    {"name": "m", "ph": "M", "pid": 1, "tid": 0}
  ]})";
  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 3u);
  EXPECT_EQ(check.spans, 2u);
  EXPECT_EQ(check.tracks, 1u);
}

TEST(TraceCheck, RejectsStructuralViolations) {
  // Malformed JSON.
  EXPECT_FALSE(obs::validate_chrome_trace("{not json").ok);
  // Missing traceEvents.
  EXPECT_FALSE(obs::validate_chrome_trace(R"({"foo": []})").ok);
  // Event without ph.
  EXPECT_FALSE(obs::validate_chrome_trace(
                   R"({"traceEvents": [{"name": "x", "pid": 1, "tid": 0}]})")
                   .ok);
  // Negative duration.
  EXPECT_FALSE(
      obs::validate_chrome_trace(
          R"({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0,
              "ts": 0, "dur": -1}]})")
          .ok);
  // Non-monotonic starts within one track.
  EXPECT_FALSE(
      obs::validate_chrome_trace(
          R"({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 5, "dur": 1},
            {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 1}
          ]})")
          .ok);
  // Straddling spans: b starts inside a but ends after it.
  EXPECT_FALSE(
      obs::validate_chrome_trace(
          R"({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 10},
            {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 5, "dur": 10}
          ]})")
          .ok);
}

}  // namespace
}  // namespace cusw
