// capsule_summary (tools/capsule_summary_lib.h): the one-screen digest
// names the run, surfaces validator warnings, tops the kernel and site
// tables with the right rows, and renders SLO standing from any serve
// section embedded in the capsule.
#include <gtest/gtest.h>

#include <string>

#include "obs/capsule.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "tools/capsule_summary_lib.h"
#include "tools/perf_explain_lib.h"

namespace cusw {
namespace {

class SamplerGuard {
 public:
  explicit SamplerGuard(double every_ms, std::size_t capacity = 4096) {
    obs::Sampler::global().configure(every_ms, capacity);
    obs::Sampler::global().clear();
  }
  ~SamplerGuard() { obs::Sampler::global().disable(); }
};

TEST(CapsuleSummary, DigestsCanonicalCapsule) {
  const std::string capsule = tools::canonical_capsule_original(200);
  bool ok = false;
  const std::string digest =
      tools::summarize_capsule(capsule, {}, &ok);
  ASSERT_TRUE(ok) << digest;
  EXPECT_NE(digest.find("capsule: run '"), std::string::npos) << digest;
  EXPECT_NE(digest.find("provenance:"), std::string::npos) << digest;
  EXPECT_NE(digest.find("top kernels by charged cycles:"),
            std::string::npos)
      << digest;
  EXPECT_NE(digest.find("intra_task_original"), std::string::npos)
      << digest;
  EXPECT_NE(digest.find("top sites by stall ticks:"), std::string::npos)
      << digest;
  EXPECT_NE(digest.find("wavefront.load (global)"), std::string::npos)
      << digest;
  // No serve section was noted, so no SLO block appears.
  EXPECT_EQ(digest.find("SLO standing"), std::string::npos) << digest;
}

TEST(CapsuleSummary, TopNTruncatesSiteTable) {
  const std::string capsule = tools::canonical_capsule_original(200);
  tools::SummaryOptions opts;
  opts.top_n = 1;
  bool ok = false;
  const std::string digest = tools::summarize_capsule(capsule, opts, &ok);
  ASSERT_TRUE(ok) << digest;
  EXPECT_NE(digest.find("(+"), std::string::npos) << digest;
  // The truncated table keeps the hottest site…
  EXPECT_NE(digest.find("wavefront.load (global)"), std::string::npos);
  // …and drops the rest.
  EXPECT_EQ(digest.find("query.symbol_load"), std::string::npos) << digest;
}

TEST(CapsuleSummary, RejectsInvalidCapsule) {
  bool ok = true;
  const std::string digest =
      tools::summarize_capsule("{\"not\": \"a capsule\"}", {}, &ok);
  EXPECT_FALSE(ok);
  EXPECT_NE(digest.find("invalid capsule"), std::string::npos) << digest;
}

TEST(CapsuleSummary, RendersSloStandingFromSections) {
  obs::capsule_clear_sections();
  obs::capsule_note_section(
      "serve",
      "{\"slo\": ["
      "{\"objective\": \"p99<30ms\", \"observed\": 41.5, \"bound\": 30.0, "
      "\"burn_rate\": 12.5, \"ok\": false}, "
      "{\"objective\": \"goodput>0.9\", \"observed\": 0.95, "
      "\"bound\": 0.9, \"burn_rate\": 0.5, \"ok\": true}]}");
  const std::string capsule =
      obs::capsule_to_json(obs::Registry::global().snapshot(), "slo");
  obs::capsule_clear_sections();
  bool ok = false;
  const std::string digest = tools::summarize_capsule(capsule, {}, &ok);
  ASSERT_TRUE(ok) << digest;
  EXPECT_NE(digest.find("SLO standing (section 'serve'):"),
            std::string::npos)
      << digest;
  EXPECT_NE(digest.find("VIOLATED"), std::string::npos) << digest;
  EXPECT_NE(digest.find("p99<30ms"), std::string::npos) << digest;
  EXPECT_NE(digest.find("goodput>0.9"), std::string::npos) << digest;
}

TEST(CapsuleSummary, SurfacesDroppedPointWarnings) {
  SamplerGuard sampler(1.0, 2);
  for (int i = 1; i <= 4; ++i) {
    obs::Sampler::global().record_point("serve", static_cast<double>(i),
                                        {{"a", 1.0}});
  }
  const std::string capsule =
      obs::capsule_to_json(obs::Registry::global().snapshot(), "overflow");
  bool ok = false;
  const std::string digest = tools::summarize_capsule(capsule, {}, &ok);
  ASSERT_TRUE(ok) << digest;  // warnings are non-fatal
  EXPECT_NE(digest.find("warning:"), std::string::npos) << digest;
  EXPECT_NE(digest.find("dropped 2 point(s)"), std::string::npos) << digest;
}

}  // namespace
}  // namespace cusw
