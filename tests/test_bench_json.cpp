// The bench JSON sink (bench/bench_common.h): every emitted
// BENCH_<name>.json carries the provenance stamp — schema version,
// effective worker threads, device-slice factor, git sha and memo state —
// stays valid JSON, and doubles as a capsule section.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "obs/trace_check.h"
#include "util/parallel.h"

namespace cusw {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class EmitGuard {
 public:
  explicit EmitGuard(std::string name)
      : path_("BENCH_" + std::move(name) + ".json") {}
  ~EmitGuard() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(BenchJson, EmitJsonStampsProvenanceHeader) {
  bench::slice_factor_slot() = 1.0 / 30.0;  // as a C1060 slice would set
  bench::device_name_slot() = "Tesla C1060";
  bench::rng_seed_slot() = 0;
  bench::note_seed(0xFA17);
  bench::note_seed(99);  // first call wins: the primary workload seed
  EmitGuard guard("test_stamp");
  ASSERT_TRUE(bench::emit_json(
      "test_stamp", "{\n  \"bench\": \"unit\",\n  \"tables\": []\n}\n"));

  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(read_file(guard.path()), doc, &error))
      << error;

  const obs::json::Value* version = doc.find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, bench::kBenchJsonSchemaVersion);

  const obs::json::Value* threads = doc.find("threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(threads->number, static_cast<double>(util::parallelism()));

  const obs::json::Value* factor = doc.find("slice_factor");
  ASSERT_NE(factor, nullptr);
  EXPECT_NEAR(factor->number, 1.0 / 30.0, 1e-12);

  // v2: the workload seed and device-spec name make the run reproducible
  // from its own file.
  const obs::json::Value* seed = doc.find("seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->number, static_cast<double>(0xFA17));

  const obs::json::Value* device = doc.find("device");
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->string, "Tesla C1060");

  // v3: commit and simulator fast-path provenance.
  const obs::json::Value* sha = doc.find("git_sha");
  ASSERT_NE(sha, nullptr);
  EXPECT_EQ(sha->kind, obs::json::Value::Kind::kString);
  EXPECT_FALSE(sha->string.empty());
  const obs::json::Value* memo = doc.find("memo");
  ASSERT_NE(memo, nullptr);
  EXPECT_TRUE(memo->string == "on" || memo->string == "off") << memo->string;

  // The original payload survives around the stamp.
  ASSERT_NE(doc.find("bench"), nullptr);
  EXPECT_EQ(doc.find("bench")->string, "unit");
  bench::slice_factor_slot() = 1.0;
  bench::device_name_slot() = "";
  bench::rng_seed_slot() = 0;
}

TEST(BenchJson, EmitJsonContributesACapsuleSection) {
  obs::capsule_clear_sections();
  EmitGuard guard("test_section");
  ASSERT_TRUE(bench::emit_json("test_section",
                               "{\n  \"bench\": \"unit\",\n  \"x\": 1\n}\n"));
  const std::string capsule = obs::capsule_to_json("bench_test");
  obs::capsule_clear_sections();
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(capsule, doc, &error)) << error;
  const obs::json::Value* sections = doc.find("sections");
  ASSERT_NE(sections, nullptr);
  const obs::json::Value* section = sections->find("bench.test_section");
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->find("bench")->string, "unit");
  EXPECT_EQ(section->find("x")->number, 1.0);
  // The section carries the stamped document, schema version included.
  EXPECT_EQ(section->find("schema_version")->number,
            bench::kBenchJsonSchemaVersion);
}

TEST(BenchJson, EmitJsonLeavesEmptyObjectsAlone) {
  EmitGuard guard("test_empty");
  ASSERT_TRUE(bench::emit_json("test_empty", "{}\n"));
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(read_file(guard.path()), doc, &error))
      << error;
  EXPECT_EQ(doc.find("schema_version"), nullptr);
}

TEST(BenchJson, StallWaterfallAttributesTheFullGap) {
  gpusim::StallBreakdown orig, improved;
  orig.compute = 4096 * 1024;
  orig.txn_issue = 2048 * 1024;
  orig.charged = orig.compute + orig.txn_issue;
  improved.compute = 4096 * 1024;
  improved.txn_issue = 512 * 1024;
  improved.charged = improved.compute + improved.txn_issue;

  const Table t = bench::stall_waterfall(orig, improved);
  const std::string json = t.to_json();
  obs::json::Value rows;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, rows, &error)) << error;
  // Seven reasons plus the "(charged)" total row.
  ASSERT_EQ(rows.array.size(), 8u);

  double share_sum = 0.0;
  for (const auto& row : rows.array) {
    const obs::json::Value* reason = row.find("reason");
    ASSERT_NE(reason, nullptr);
    const obs::json::Value* share = row.find("gap share %");
    ASSERT_NE(share, nullptr);
    if (reason->string == "(charged)") {
      EXPECT_DOUBLE_EQ(share->number, 100.0);
      EXPECT_DOUBLE_EQ(row.find("delta cycles")->number, 1536.0);
    } else {
      share_sum += share->number;
      if (reason->string == "txn_issue") {
        EXPECT_DOUBLE_EQ(share->number, 100.0);
      }
    }
  }
  // The per-reason shares partition the gap.
  EXPECT_NEAR(share_sum, 100.0, 1e-9);
}

}  // namespace
}  // namespace cusw
