// gpusim: cache behaviour, occupancy, the coalescer, the cost model's
// qualitative properties, and the block scheduler.
#include <gtest/gtest.h>

#include "gpusim/cache.h"
#include "gpusim/launch.h"
#include "gpusim/occupancy.h"

namespace cusw::gpusim {
namespace {

TEST(Cache, HitsAfterFillAndTracksLru) {
  Cache c(1024, 128, 2);  // 8 lines, 4 sets x 2 ways
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same line
  EXPECT_FALSE(c.access(128));
  // Two more lines mapping to set 0: 0, 512, 1024 -> evict LRU (0).
  EXPECT_FALSE(c.access(512));
  EXPECT_TRUE(c.access(0));     // still resident (2 ways)
  EXPECT_FALSE(c.access(1024)); // evicts 512 (LRU)
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(512));
}

TEST(Cache, DisabledCacheNeverHits) {
  Cache c(0, 128, 4);
  EXPECT_FALSE(c.enabled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(c.access(0));
}

TEST(Cache, InvalidateDropsLine) {
  Cache c(1024, 128, 2);
  c.access(256);
  EXPECT_TRUE(c.access(256));
  c.invalidate(256);
  EXPECT_FALSE(c.access(256));
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes) {
  Cache c(4096, 128, 4);  // 32 lines
  // Stream 64 lines cyclically twice: second pass still misses (LRU).
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 64; ++i) c.access(static_cast<std::uint64_t>(i) * 128);
  }
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Occupancy, ThreadLimited) {
  const auto dev = DeviceSpec::tesla_c1060();  // 1024 threads/SM, 8 blocks
  const auto occ = compute_occupancy(dev, 256, 0, 0);
  EXPECT_EQ(occ.blocks_per_sm, 4);
  EXPECT_EQ(occ.warps_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const auto dev = DeviceSpec::tesla_c1060();  // 16384 regs/SM
  const auto occ = compute_occupancy(dev, 256, 0, 32);  // 8192 regs/block
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

TEST(Occupancy, SharedMemoryLimited) {
  const auto dev = DeviceSpec::tesla_c1060();  // 16 KB shared/SM
  const auto occ = compute_occupancy(dev, 64, 8 * 1024, 0);
  EXPECT_EQ(occ.blocks_per_sm, 2);
}

TEST(Occupancy, RejectsOversizedBlock) {
  const auto dev = DeviceSpec::tesla_c1060();
  EXPECT_THROW(compute_occupancy(dev, 2048, 0, 0), std::invalid_argument);
}

TEST(DeviceSpec, PresetsAndCacheToggle) {
  const auto c1060 = DeviceSpec::tesla_c1060();
  EXPECT_FALSE(c1060.has_l1);
  EXPECT_FALSE(c1060.has_l2);
  const auto c2050 = DeviceSpec::tesla_c2050();
  EXPECT_TRUE(c2050.has_l1);
  EXPECT_TRUE(c2050.has_l2);
  const auto off = c2050.with_caches_disabled();
  EXPECT_FALSE(off.has_l1);
  EXPECT_FALSE(off.has_l2);
  EXPECT_EQ(off.sm_count, c2050.sm_count);
}

TEST(DeviceSpec, ScaledShrinksThroughputProportionally) {
  const auto full = DeviceSpec::tesla_c1060();
  const auto mini = full.scaled(0.1);
  EXPECT_EQ(mini.sm_count, 3);
  EXPECT_NEAR(mini.mem_bandwidth_gbs, full.mem_bandwidth_gbs * 0.1, 1e-9);
  EXPECT_EQ(mini.cores_per_sm, full.cores_per_sm);
  EXPECT_EQ(mini.dram_latency, full.dram_latency);
}

TEST(Launch, CoalescedWarpRunIsOneTransactionPer128Bytes) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto base = dev.reserve(4096);
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    ctx.warp_access(Space::Global, 0, base, 128, false);     // 1 segment
    ctx.warp_access(Space::Global, 0, base + 512, 256, false);  // 2 segments
  });
  EXPECT_EQ(stats.global.transactions, 3u);
  EXPECT_EQ(stats.global.requests, 2u);
  EXPECT_EQ(stats.global.dram_transactions, 3u);  // no cache on C1060
}

TEST(Launch, PerLaneAccessesToOneSegmentCoalesce) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 64;  // two warps
  const auto base = dev.reserve(4096);
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    for (int lane = 0; lane < 64; ++lane) {
      ctx.access(Space::Global, lane, base + static_cast<std::uint64_t>(lane) * 4,
                 4, false);
    }
  });
  // 64 contiguous 4-byte reads = 256 bytes, but coalescing is per warp:
  // warp 0 covers segment 0, warp 1 covers segment 1 -> 2 transactions.
  EXPECT_EQ(stats.global.requests, 64u);
  EXPECT_EQ(stats.global.transactions, 2u);
}

TEST(Launch, DuplicateSegmentAccessesWithinWindowMerge) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto base = dev.reserve(4096);
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    for (int rep = 0; rep < 10; ++rep)
      ctx.warp_access(Space::Global, 0, base, 128, false);
    ctx.sync();
    ctx.warp_access(Space::Global, 0, base, 128, false);  // new window
  });
  EXPECT_EQ(stats.global.transactions, 2u);
}

TEST(Launch, ReadsAndWritesAreSeparateTransactions) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto base = dev.reserve(4096);
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    ctx.warp_access(Space::Global, 0, base, 128, false);
    ctx.warp_access(Space::Global, 0, base, 128, true);
  });
  EXPECT_EQ(stats.global.transactions, 2u);
}

TEST(Launch, FermiCachesReduceDramTraffic) {
  const auto run = [](const DeviceSpec& spec) {
    Device dev(spec);
    LaunchConfig cfg;
    cfg.blocks = 1;
    cfg.threads_per_block = 32;
    const auto base = dev.reserve(1 << 16);
    return dev.launch(cfg, [&](BlockCtx& ctx) {
      // Write then repeatedly re-read a small working set.
      for (int rep = 0; rep < 8; ++rep) {
        for (int i = 0; i < 16; ++i) {
          ctx.warp_access(Space::Global, 0, base + i * 128u, 128,
                          rep == 0);
        }
        ctx.sync();
      }
    });
  };
  const auto fermi = run(DeviceSpec::tesla_c2050());
  const auto fermi_off = run(DeviceSpec::tesla_c2050().with_caches_disabled());
  const auto gt200 = run(DeviceSpec::tesla_c1060());
  EXPECT_GT(fermi.global.l2_hits + fermi.global.l1_hits, 0u);
  EXPECT_LT(fermi.global.dram_transactions, fermi_off.global.dram_transactions);
  EXPECT_EQ(gt200.global.l1_hits + gt200.global.l2_hits, 0u);
  EXPECT_LT(fermi.seconds, fermi_off.seconds);
}

TEST(Launch, TextureCacheHitsOnReuse) {
  Device dev(DeviceSpec::tesla_c1060());
  auto tex = dev.make_texture(std::vector<int>(64, 7));
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    int sink = 0;
    for (int rep = 0; rep < 4; ++rep) {
      for (int i = 0; i < 8; ++i) sink += ctx.tex(tex, static_cast<std::size_t>(i), 0);
      ctx.sync();
    }
    EXPECT_EQ(sink, 7 * 8 * 4);
  });
  EXPECT_GT(stats.texture.tex_hits, 0u);
  EXPECT_LT(stats.texture.dram_transactions, stats.texture.transactions);
}

TEST(Launch, LocalMemoryCountsSeparately) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto stats = dev.launch(cfg, [&](BlockCtx& ctx) {
    for (int lane = 0; lane < 32; ++lane) ctx.local_access(lane, 0, 3, 4, true);
  });
  EXPECT_EQ(stats.local.requests, 32u);
  EXPECT_EQ(stats.local.transactions, 1u);  // interleaved layout coalesces
  EXPECT_EQ(stats.global.requests, 0u);
  EXPECT_EQ(stats.global_memory_transactions(), 1u);
}

TEST(Launch, MoreComputeMeansMoreTime) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 8;
  cfg.threads_per_block = 64;
  const auto quick = dev.launch(cfg, [](BlockCtx& ctx) {
    ctx.charge_uniform(1000);
  });
  const auto slow = dev.launch(cfg, [](BlockCtx& ctx) {
    ctx.charge_uniform(10000);
  });
  EXPECT_GT(slow.seconds, quick.seconds);
  EXPECT_GT(slow.makespan_cycles, 9.0 * quick.makespan_cycles / 10.0);
}

TEST(Launch, SchedulerOverlapsIndependentBlocks) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.blocks = 1;
  const auto one = dev.launch(cfg, [](BlockCtx& ctx) { ctx.charge_uniform(1e6); });
  cfg.blocks = 100;  // fits in 30 SMs x several blocks
  const auto many = dev.launch(cfg, [](BlockCtx& ctx) { ctx.charge_uniform(1e6); });
  // 100 blocks over 30 SMs: compute throughput is conserved, so the
  // makespan is ~100/30 of one block's solo time — nowhere near 100x.
  EXPECT_LT(many.makespan_cycles, 3.6 * one.makespan_cycles);
  EXPECT_GE(many.makespan_cycles, 2.8 * one.makespan_cycles);
}

TEST(Launch, ImbalancedBlocksSetTheMakespan) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.threads_per_block = 64;
  cfg.blocks = 60;
  const auto stats = dev.launch(cfg, [](BlockCtx& ctx) {
    ctx.charge_uniform(ctx.block_id() == 59 ? 1e7 : 1e4);
  });
  // The single slow block dominates.
  EXPECT_GT(stats.makespan_cycles, 1e6);
}

TEST(Launch, SyncsAreCountedAndCharged) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto a = dev.launch(cfg, [](BlockCtx& ctx) {
    for (int i = 0; i < 100; ++i) ctx.sync();
  });
  EXPECT_EQ(a.syncs, 100u);
  const auto b = dev.launch(cfg, [](BlockCtx&) {});
  EXPECT_GT(a.makespan_cycles, b.makespan_cycles);
}

TEST(Launch, HeavyDramTrafficIsBandwidthBound) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 30;
  cfg.threads_per_block = 64;
  const auto base = dev.reserve(1 << 26);
  auto run = [&](std::uint64_t bytes_per_window) {
    return dev.launch(cfg, [&](BlockCtx& ctx) {
      for (int step = 0; step < 50; ++step) {
        ctx.charge_uniform(10.0);
        ctx.warp_access(Space::Global, 0,
                        base + static_cast<std::uint64_t>(step) *
                                   bytes_per_window,
                        bytes_per_window, true);
        ctx.sync();
      }
    });
  };
  const auto light = run(128);
  const auto heavy = run(1 << 20);
  EXPECT_GT(heavy.seconds, 20.0 * light.seconds);
}

TEST(Launch, UncoalescedAccessesCostMoreTransactionsAndTime) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  const auto base = dev.reserve(1 << 22);
  auto run = [&](std::uint64_t stride) {
    return dev.launch(cfg, [&](BlockCtx& ctx) {
      for (int step = 0; step < 1000; ++step) {
        for (int lane = 0; lane < 32; ++lane) {
          ctx.access(Space::Global, lane,
                     base + (static_cast<std::uint64_t>(step) * 32 +
                             static_cast<std::uint64_t>(lane)) *
                                4 * stride,
                     4, false);
        }
        ctx.sync();
      }
    });
  };
  const auto coalesced = run(1);     // one 128 B segment per warp per step
  const auto scattered = run(32);    // 32 segments per warp per step
  EXPECT_EQ(coalesced.global.transactions, 1000u);
  EXPECT_EQ(scattered.global.transactions, 32000u);
  // A single warp hides most of the latency either way; the extra
  // transaction-issue cost still shows.
  EXPECT_GT(scattered.makespan_cycles, 1.3 * coalesced.makespan_cycles);
}

TEST(Launch, PreferL1GrowsL1AndShrinksShared) {
  Device dev(DeviceSpec::tesla_c2050());
  LaunchConfig big_shared;
  big_shared.blocks = 1;
  big_shared.threads_per_block = 32;
  big_shared.shared_bytes_per_block = 40 * 1024;  // fits the 48 KB split
  EXPECT_NO_THROW(dev.launch(big_shared, [](BlockCtx&) {}));
  big_shared.prefer_l1 = true;  // 16 KB shared: no longer fits
  EXPECT_THROW(dev.launch(big_shared, [](BlockCtx&) {}),
               std::invalid_argument);
}

TEST(Launch, ZeroBlocksIsANoop) {
  Device dev(DeviceSpec::tesla_c1060());
  LaunchConfig cfg;
  cfg.blocks = 0;
  const auto stats = dev.launch(cfg, [](BlockCtx&) { FAIL(); });
  EXPECT_EQ(stats.seconds, 0.0);
}

TEST(Launch, BuffersAreFunctional) {
  Device dev(DeviceSpec::tesla_c1060());
  auto buf = dev.alloc<int>(128);
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  dev.launch(cfg, [&](BlockCtx& ctx) {
    for (int lane = 0; lane < 32; ++lane)
      ctx.st(buf, static_cast<std::size_t>(lane), lane * 10, lane);
  });
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(buf[static_cast<std::size_t>(lane)], lane * 10);
}

TEST(Launch, DistinctAllocationsDoNotOverlap) {
  Device dev(DeviceSpec::tesla_c1060());
  auto a = dev.alloc<int>(100);
  auto b = dev.alloc<char>(10);
  const auto r = dev.reserve(1000);
  EXPECT_GE(b.device_addr(), a.device_addr(100));
  EXPECT_GE(r, b.device_addr(10));
}

}  // namespace
}  // namespace cusw::gpusim
