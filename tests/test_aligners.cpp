// Banded and linear-space aligners against the quadratic references.
#include <gtest/gtest.h>

#include "sw/banded.h"
#include "sw/linear_align.h"
#include "test_helpers.h"

namespace cusw::sw {
namespace {

TEST(Banded, WideBandEqualsFullScore) {
  const auto& m = ScoringMatrix::blosum62();
  for (int i = 0; i < 20; ++i) {
    const auto q = test::random_codes(40 + i * 5, 10 + i);
    const auto t = test::random_codes(50 + i * 4, 60 + i);
    const int full = sw_score(q, t, m, {10, 2});
    const int banded = sw_banded_score(q, t, m, {10, 2},
                                       q.size() + t.size());
    EXPECT_EQ(banded, full) << i;
  }
}

TEST(Banded, ScoreIsMonotoneInBandwidthAndBounded) {
  const auto& m = ScoringMatrix::blosum62();
  const auto q = test::random_codes(200, 1);
  const auto t = test::random_codes(220, 2);
  const int full = sw_score(q, t, m, {10, 2});
  int prev = 0;
  for (std::size_t band : {0u, 2u, 8u, 32u, 128u, 512u}) {
    const int s = sw_banded_score(q, t, m, {10, 2}, band);
    EXPECT_GE(s, prev) << band;
    EXPECT_LE(s, full) << band;
    prev = s;
  }
  EXPECT_EQ(prev, full);
}

TEST(Banded, ZeroBandIsDiagonalOnly) {
  // With bandwidth 0 and offset 0 only the main diagonal is computed: the
  // best run of consecutive diagonal matches (gaps are impossible).
  const auto dna = seq::Alphabet::dna();
  const auto m = ScoringMatrix::match_mismatch(dna, 2, -1);
  const auto a = dna.encode("ACGTACGT");
  EXPECT_EQ(sw_banded_score(a, a, m, {5, 1}, 0), 16);
  // One mismatch on the diagonal: 3 matches - 1 mismatch + 4 matches = 13.
  const auto b = dna.encode("ACGAACGT");
  EXPECT_EQ(sw_banded_score(a, b, m, {5, 1}, 0), 13);
}

TEST(Banded, DiagonalOffsetShiftsTheBand) {
  const auto dna = seq::Alphabet::dna();
  const auto m = ScoringMatrix::match_mismatch(dna, 2, -1);
  // Target = query with a 3-residue prefix: the alignment lives on the
  // diagonal i - j = -3.
  const auto q = dna.encode("ACGTACGTAC");
  const auto t = dna.encode("TTTACGTACGTAC");
  EXPECT_EQ(sw_banded_score(q, t, m, {5, 1}, 0, -3), 20);
  // A narrow band at the wrong offset misses it.
  EXPECT_LT(sw_banded_score(q, t, m, {5, 1}, 0, 0), 20);
}

TEST(Banded, EmptyInputsScoreZero) {
  const auto& m = ScoringMatrix::blosum62();
  EXPECT_EQ(sw_banded_score({}, test::random_codes(5, 1), m, {10, 2}, 3), 0);
  EXPECT_EQ(sw_banded_score(test::random_codes(5, 1), {}, m, {10, 2}, 3), 0);
}

TEST(LinearGlobal, MatchesNeedlemanWunschScore) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  for (int i = 0; i < 40; ++i) {
    const auto q = test::random_codes(1 + (i * 7) % 90, 100 + i);
    const auto t = test::random_codes(1 + (i * 11) % 80, 300 + i);
    const auto a = nw_align_linear(q, t, m, gap);
    EXPECT_EQ(a.score, nw_score(q, t, m, gap)) << i;
    // The edit script consumes both sequences exactly.
    std::size_t qc = 0, tc = 0;
    for (char op : a.ops) {
      if (op != 'I') ++qc;
      if (op != 'D') ++tc;
    }
    EXPECT_EQ(qc, q.size());
    EXPECT_EQ(tc, t.size());
    EXPECT_EQ(a.query_aligned.size(), a.target_aligned.size());
  }
}

TEST(LinearGlobal, GappyAndDegenerateShapes) {
  const auto& m = ScoringMatrix::blosum62();
  // Very asymmetric lengths force long gap runs through the midline split.
  for (const auto& [ql, tl] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 50}, {50, 1}, {2, 40}, {40, 2}, {3, 3}, {64, 65}}) {
    const auto q = test::random_codes(ql, ql * 3 + 1);
    const auto t = test::random_codes(tl, tl * 5 + 2);
    for (const GapPenalty gap : {GapPenalty{10, 2}, GapPenalty{2, 1}}) {
      const auto a = nw_align_linear(q, t, m, gap);
      EXPECT_EQ(a.score, nw_score(q, t, m, gap))
          << ql << "x" << tl << " gap " << gap.open;
    }
  }
}

TEST(LinearLocal, MatchesQuadraticScoreOnRandomPairs) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  for (int i = 0; i < 30; ++i) {
    const seq::Sequence q("q", test::random_codes(30 + (i * 13) % 150, i));
    const seq::Sequence t("t", test::random_codes(40 + (i * 17) % 160, 77 + i));
    const auto lin = sw_align_linear(q, t, m, gap);
    const auto quad = sw_align(q, t, m, gap);
    ASSERT_EQ(lin.score, quad.score) << i;
    // Both alignments re-score to the optimum (checked internally by
    // sw_align_linear via CUSW_CHECK; verify the coordinates make sense).
    EXPECT_LE(lin.query_end, q.length());
    EXPECT_LE(lin.target_end, t.length());
    if (lin.score > 0) {
      EXPECT_LT(lin.query_begin, lin.query_end);
      EXPECT_LT(lin.target_begin, lin.target_end);
      EXPECT_FALSE(lin.query_aligned.empty());
    }
  }
}

TEST(LinearLocal, AgreesWithQuadraticOnGapHeavyOptimum) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{1, 1};  // cheap gaps exercise the gap-join logic
  Rng rng(55);
  for (int i = 0; i < 20; ++i) {
    std::vector<seq::Code> qv, tv;
    for (int k = 0; k < 50 + i; ++k)
      qv.push_back(static_cast<seq::Code>(rng.uniform_int(0, 3)));
    for (int k = 0; k < 70 + i; ++k)
      tv.push_back(static_cast<seq::Code>(rng.uniform_int(0, 3)));
    const seq::Sequence q("q", qv), t("t", tv);
    EXPECT_EQ(sw_align_linear(q, t, m, gap).score,
              sw_align(q, t, m, gap).score)
        << i;
  }
}

TEST(LinearLocal, ZeroScorePair) {
  const auto dna = seq::Alphabet::dna();
  const auto m = ScoringMatrix::match_mismatch(dna, 1, -2);
  const seq::Sequence q("q", dna.encode("AAAA"));
  const seq::Sequence t("t", dna.encode("CCCC"));
  const auto a = sw_align_linear(q, t, m, {5, 1});
  EXPECT_EQ(a.score, 0);
  EXPECT_TRUE(a.query_aligned.empty());
}

TEST(LinearLocal, LongPairStaysInLinearMemoryRegime) {
  // A pair long enough that the quadratic traceback tables would be ~1.6
  // GB; the linear-space version must handle it (and agree with the
  // linear-space score-only pass).
  const auto& m = ScoringMatrix::blosum62();
  const seq::Sequence q("q", test::random_codes(20000, 1));
  const seq::Sequence t("t", test::random_codes(20000, 2));
  const auto a = sw_align_linear(q, t, m, {10, 2});
  EXPECT_EQ(a.score, sw_score(q.residues, t.residues, m, {10, 2}));
}

}  // namespace
}  // namespace cusw::sw
