// Determinism contract of the host-parallel execution model (DESIGN.md §5):
// SearchReport — scores, every LaunchStats counter, and the simulated
// seconds — must be bit-identical for any CUSW_THREADS value.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "cudasw/pipeline.h"
#include "gpusim/launch.h"
#include "gpusim/device_spec.h"
#include "seq/generate.h"
#include "sw/scoring.h"

namespace cusw {
namespace {

/// Scoped CUSW_THREADS override (restores the previous value on exit).
class ThreadsGuard {
 public:
  explicit ThreadsGuard(const char* value) {
    const char* prev = std::getenv("CUSW_THREADS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("CUSW_THREADS", value, 1);
  }
  ~ThreadsGuard() {
    if (had_prev_)
      setenv("CUSW_THREADS", prev_.c_str(), 1);
    else
      unsetenv("CUSW_THREADS");
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

void expect_counters_eq(const gpusim::SpaceCounters& a,
                        const gpusim::SpaceCounters& b) {
  gpusim::for_each_space_counter_field(a, [&](const char* field,
                                              std::uint64_t av) {
    gpusim::for_each_space_counter_field(b, [&](const char* bf,
                                                std::uint64_t bv) {
      if (std::string_view(field) == bf) {
        EXPECT_EQ(av, bv) << field;
      }
    });
  });
}

void expect_stats_eq(const gpusim::LaunchStats& a,
                     const gpusim::LaunchStats& b) {
  expect_counters_eq(a.global, b.global);
  expect_counters_eq(a.local, b.local);
  expect_counters_eq(a.texture, b.texture);
  // Site attribution rows are part of the contract too: same rows in the
  // same (first-touch, block-index-order) order, same values bit for bit.
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(gpusim::site_name(a.sites[i].site),
              gpusim::site_name(b.sites[i].site));
    EXPECT_EQ(a.sites[i].space, b.sites[i].space);
    expect_counters_eq(a.sites[i].counters, b.sites[i].counters);
  }
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.bank_conflict_cycles, b.bank_conflict_cycles);
  EXPECT_EQ(a.syncs, b.syncs);
  EXPECT_EQ(a.windows, b.windows);
  // EXPECT_EQ on doubles is exact comparison — the contract is
  // bit-identical, not approximately equal.
  EXPECT_EQ(a.total_block_cycles, b.total_block_cycles);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.concurrent_blocks, b.concurrent_blocks);
}

void expect_reports_eq(const cudasw::SearchReport& a,
                       const cudasw::SearchReport& b) {
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.inter_seconds, b.inter_seconds);
  EXPECT_EQ(a.intra_seconds, b.intra_seconds);
  EXPECT_EQ(a.inter_cells, b.inter_cells);
  EXPECT_EQ(a.intra_cells, b.intra_cells);
  EXPECT_EQ(a.inter_sequences, b.inter_sequences);
  EXPECT_EQ(a.intra_sequences, b.intra_sequences);
  EXPECT_EQ(a.groups, b.groups);
  expect_stats_eq(a.inter_stats, b.inter_stats);
  expect_stats_eq(a.intra_stats, b.intra_stats);
}

/// One-SM slice (as the benches use) so the scaled database spans several
/// occupancy-sized inter-task groups — the groups then really launch
/// concurrently when CUSW_THREADS > 1.
gpusim::DeviceSpec sliced(const gpusim::DeviceSpec& base) {
  return base.scaled(1.0 / base.sm_count);
}

/// Swiss-Prot-profile workload whose threshold routes sequences to both
/// kernels in every run.
struct Workload {
  seq::SequenceDB db = seq::DatabaseProfile::swissprot().synthesize(900, 11);
  std::vector<seq::Code> query;
  const sw::ScoringMatrix& matrix = sw::ScoringMatrix::blosum62();
  cudasw::SearchConfig cfg;

  Workload() {
    Rng rng(7);
    query = seq::random_protein(160, rng).residues;
    // Lower the dispatch threshold so the scaled database exercises the
    // intra-task kernel with several blocks, not just the planted tail.
    cfg.threshold = 512;
  }
};

cudasw::SearchReport run_at(const Workload& w, const char* threads,
                            cudasw::IntraKernel kernel) {
  ThreadsGuard guard(threads);
  gpusim::Device dev(sliced(gpusim::DeviceSpec::tesla_c1060()));
  cudasw::SearchConfig cfg = w.cfg;
  cfg.intra_kernel = kernel;
  return cudasw::search(dev, w.query, w.db, w.matrix, cfg);
}

TEST(HostParallel, SearchIsBitIdenticalAcrossThreadCountsImprovedKernel) {
  const Workload w;
  const auto serial = run_at(w, "1", cudasw::IntraKernel::kImproved);
  ASSERT_GT(serial.inter_sequences, 0u);
  ASSERT_GT(serial.intra_sequences, 0u);
  ASSERT_GT(serial.groups, 1u);  // several concurrent inter-task launches
  expect_reports_eq(serial, run_at(w, "2", cudasw::IntraKernel::kImproved));
  expect_reports_eq(serial, run_at(w, "8", cudasw::IntraKernel::kImproved));
}

TEST(HostParallel, SearchIsBitIdenticalAcrossThreadCountsOriginalKernel) {
  const Workload w;
  const auto serial = run_at(w, "1", cudasw::IntraKernel::kOriginal);
  ASSERT_GT(serial.intra_sequences, 0u);
  expect_reports_eq(serial, run_at(w, "2", cudasw::IntraKernel::kOriginal));
  expect_reports_eq(serial, run_at(w, "8", cudasw::IntraKernel::kOriginal));
}

TEST(HostParallel, SearchBatchIsBitIdenticalAcrossThreadCounts) {
  const Workload w;
  Rng rng(23);
  std::vector<std::vector<seq::Code>> queries;
  for (std::size_t len : {96, 144, 192}) {
    queries.push_back(seq::random_protein(len, rng).residues);
  }

  const auto run_batch = [&](const char* threads) {
    ThreadsGuard guard(threads);
    gpusim::Device dev(sliced(gpusim::DeviceSpec::tesla_c1060()));
    return cudasw::search_batch(dev, queries, w.db, w.matrix, w.cfg);
  };

  const auto serial = run_batch("1");
  ASSERT_EQ(serial.size(), queries.size());
  for (const char* threads : {"2", "8"}) {
    const auto parallel = run_batch(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t q = 0; q < serial.size(); ++q) {
      expect_reports_eq(serial[q], parallel[q]);
    }
  }
}

TEST(HostParallel, ScoresMatchFermiDeviceAcrossThreadCounts) {
  // The C2050 path exercises the real L2 (capacity-scaled, cleared per
  // block) — determinism must hold there too.
  const Workload w;
  const auto run = [&](const char* threads) {
    ThreadsGuard guard(threads);
    gpusim::Device dev(sliced(gpusim::DeviceSpec::tesla_c2050()));
    return cudasw::search(dev, w.query, w.db, w.matrix, w.cfg);
  };
  const auto serial = run("1");
  expect_reports_eq(serial, run("8"));
}

}  // namespace
}  // namespace cusw
