// Fault injection and graceful degradation (DESIGN.md §8): the FaultPlan
// spec, the deterministic injector, backoff, and the fleet drivers'
// retry / failover / CPU-degradation ladder. The load-bearing invariant —
// any fault schedule yields bit-identical scores to the clean run — is
// asserted on every scenario.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cudasw/chunked.h"
#include "cudasw/multi_gpu.h"
#include "gpusim/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "test_helpers.h"
#include "util/backoff.h"
#include "util/env.h"

namespace cusw {
namespace {

using cudasw::ChunkedConfig;
using cudasw::MultiGpuConfig;
using cudasw::SearchConfig;
using gpusim::DeviceLost;
using gpusim::FaultError;
using gpusim::FaultInjector;
using gpusim::FaultKind;
using gpusim::FaultPlan;
using gpusim::TransientFault;
using sw::ScoringMatrix;

struct TraceGuard {
  ~TraceGuard() { obs::disable_trace(); }
};

struct EnvGuard {
  ~EnvGuard() { unsetenv("CUSW_FAULTS"); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

gpusim::DeviceSpec mini_spec() {
  return gpusim::DeviceSpec::tesla_c1060().scaled(0.1);
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, DefaultIsDisabled) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.lose_device, -1);
}

TEST(FaultPlan, ParsesFullSpec) {
  const auto plan = FaultPlan::parse("seed=42,transfer=0.25,launch=0.1,lose=1@3");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.transfer_fail_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.launch_fail_rate, 0.1);
  EXPECT_EQ(plan.lose_device, 1);
  EXPECT_EQ(plan.lose_at, 3u);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, LoseWithoutOrdinalMeansImmediately) {
  const auto plan = FaultPlan::parse("lose=2");
  EXPECT_EQ(plan.lose_device, 2);
  EXPECT_EQ(plan.lose_at, 0u);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("transfer=notanumber"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("transfer=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("launch=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("=3"), std::invalid_argument);
}

TEST(FaultPlan, FromEnvReadsAndDefaultsOff) {
  EnvGuard guard;
  unsetenv("CUSW_FAULTS");
  EXPECT_FALSE(FaultPlan::from_env().enabled());
  setenv("CUSW_FAULTS", "seed=9,transfer=0.5", 1);
  const auto plan = FaultPlan::from_env();
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.transfer_fail_rate, 0.5);
}

TEST(KvSpec, TrimsSkipsAndRejects) {
  const auto kv = util::parse_kv_spec(" a=1 , b = two ,, c=3 ");
  ASSERT_EQ(kv.size(), 3u);
  EXPECT_EQ(kv[0].first, "a");
  EXPECT_EQ(kv[1].second, "two");
  EXPECT_EQ(kv[2].first, "c");
  EXPECT_THROW(util::parse_kv_spec("=oops"), std::invalid_argument);
}

// ------------------------------------------------------------------ Backoff

TEST(Backoff, GrowsGeometricallyAndCaps) {
  util::BackoffPolicy p;
  p.base_seconds = 1e-3;
  p.multiplier = 2.0;
  p.max_seconds = 5e-3;
  EXPECT_DOUBLE_EQ(p.delay_seconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(p.delay_seconds(1), 2e-3);
  EXPECT_DOUBLE_EQ(p.delay_seconds(2), 4e-3);
  EXPECT_DOUBLE_EQ(p.delay_seconds(3), 5e-3);   // capped
  EXPECT_DOUBLE_EQ(p.delay_seconds(10), 5e-3);  // stays capped
  EXPECT_DOUBLE_EQ(p.total_delay_seconds(3), 1e-3 + 2e-3 + 4e-3);
}

// ----------------------------------------------------------------- Injector

TEST(FaultInjector, ZeroRatesNeverFault) {
  FaultInjector inj(FaultPlan{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(inj.on_transfer(0));
    EXPECT_NO_THROW(inj.on_launch(0));
  }
  EXPECT_EQ(inj.injected_transfer_faults(), 0u);
  EXPECT_EQ(inj.injected_launch_faults(), 0u);
}

TEST(FaultInjector, RateOneFaultsEveryTime) {
  FaultPlan plan;
  plan.transfer_fail_rate = 1.0;
  FaultInjector inj(plan);
  for (int i = 0; i < 10; ++i) {
    try {
      inj.on_transfer(3);
      FAIL() << "expected a transfer fault";
    } catch (const TransientFault& f) {
      EXPECT_EQ(f.kind(), FaultKind::kTransfer);
      EXPECT_EQ(f.device_id(), 3);
    }
  }
  EXPECT_EQ(inj.injected_transfer_faults(), 10u);
}

TEST(FaultInjector, DecisionsAreSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.transfer_fail_rate = 0.4;
  const auto pattern = [&] {
    FaultInjector inj(plan);
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      try {
        inj.on_transfer(0);
        bits += '.';
      } catch (const TransientFault&) {
        bits += 'F';
      }
    }
    return bits;
  };
  const std::string a = pattern();
  const std::string b = pattern();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find('F'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);

  plan.seed = 1235;  // a different seed draws a different schedule
  FaultInjector other(plan);
  std::string c;
  for (int i = 0; i < 200; ++i) {
    try {
      other.on_transfer(0);
      c += '.';
    } catch (const TransientFault&) {
      c += 'F';
    }
  }
  EXPECT_NE(a, c);
}

TEST(FaultInjector, DeviceLossIsStickyAcrossHooks) {
  FaultPlan plan;
  plan.lose_device = 0;
  plan.lose_at = 2;
  FaultInjector inj(plan);
  EXPECT_NO_THROW(inj.on_launch(0));
  EXPECT_NO_THROW(inj.on_launch(0));
  EXPECT_THROW(inj.on_launch(0), DeviceLost);
  EXPECT_TRUE(inj.device_lost(0));
  // Once lost, every operation on the device fails, transfers included.
  EXPECT_THROW(inj.on_transfer(0), DeviceLost);
  EXPECT_THROW(inj.on_launch(0), DeviceLost);
  // Other devices are unaffected.
  EXPECT_NO_THROW(inj.on_launch(1));
  EXPECT_FALSE(inj.device_lost(1));
}

TEST(FaultInjector, RejectsOutOfRangeDeviceIds) {
  FaultInjector inj(FaultPlan{});
  EXPECT_THROW(inj.on_launch(-1), std::invalid_argument);
  EXPECT_THROW(inj.on_launch(FaultInjector::kMaxDevices),
               std::invalid_argument);
}

// ------------------------------------------------------- multi_gpu_search

TEST(MultiGpuFault, TransientAndLossYieldIdenticalScores) {
  const auto spec = mini_spec();
  const auto query = test::random_codes(48, 11);
  const auto db = seq::lognormal_db(40, 160, 90, 12);
  const auto& matrix = ScoringMatrix::blosum62();

  const auto clean =
      cudasw::multi_gpu_search(spec, 3, query, db, matrix, SearchConfig{});

  MultiGpuConfig cfg;
  cfg.faults = FaultPlan::parse("seed=7,transfer=0.5,lose=1@0");
  cfg.backoff.max_retries = 10;
  const auto faulted = cudasw::multi_gpu_search(spec, 3, query, db, matrix, cfg);

  EXPECT_EQ(faulted.scores, clean.scores);
  EXPECT_EQ(faulted.faults.devices_lost, 1u);
  EXPECT_GE(faulted.faults.failovers, 1u);
  EXPECT_GE(faulted.faults.retries, 1u);
  EXPECT_GE(faulted.faults.transfer_faults, 1u);
  EXPECT_FALSE(faulted.faults.degraded_to_cpu);
  EXPECT_GT(faulted.faults.backoff_seconds, 0.0);
  // Faults only ever cost time; they never un-count cells.
  EXPECT_EQ(faulted.cells, clean.cells);
  EXPECT_GE(faulted.seconds, clean.seconds);
}

TEST(MultiGpuFault, FaultedRunsAreDeterministic) {
  const auto spec = mini_spec();
  const auto query = test::random_codes(40, 21);
  const auto db = seq::uniform_db(30, 80, 160, 22);
  const auto& matrix = ScoringMatrix::blosum62();

  MultiGpuConfig cfg;
  cfg.faults = FaultPlan::parse("seed=99,transfer=0.4,lose=0@1");
  cfg.backoff.max_retries = 10;
  const auto a = cudasw::multi_gpu_search(spec, 2, query, db, matrix, cfg);
  const auto b = cudasw::multi_gpu_search(spec, 2, query, db, matrix, cfg);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.faults.transfer_faults, b.faults.transfer_faults);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.failovers, b.faults.failovers);
  EXPECT_EQ(a.faults.devices_lost, b.faults.devices_lost);
  EXPECT_DOUBLE_EQ(a.faults.backoff_seconds, b.faults.backoff_seconds);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(MultiGpuFault, FullLadderDegradesToCpuWithExactScores) {
  const auto spec = mini_spec();
  const auto query = test::random_codes(36, 31);
  const auto db = seq::uniform_db(20, 60, 140, 32);
  const auto& matrix = ScoringMatrix::blosum62();

  const auto clean =
      cudasw::multi_gpu_search(spec, 2, query, db, matrix, SearchConfig{});

  // Every kernel launch faults: retries exhaust on each device, failover
  // finds no survivor, and the whole scan lands on the CPU engine.
  MultiGpuConfig cfg;
  cfg.faults = FaultPlan::parse("seed=1,launch=1.0");
  cfg.backoff.max_retries = 1;
  const auto faulted = cudasw::multi_gpu_search(spec, 2, query, db, matrix, cfg);

  EXPECT_EQ(faulted.scores, clean.scores);
  EXPECT_TRUE(faulted.faults.degraded_to_cpu);
  EXPECT_EQ(faulted.faults.devices_lost, 2u);
  EXPECT_GE(faulted.faults.launch_faults, 2u);
  EXPECT_TRUE(faulted.per_gpu.empty());  // no shard ever completed on-device
}

TEST(MultiGpuFault, ThrowsWhenFallbackForbidden) {
  const auto spec = mini_spec();
  const auto query = test::random_codes(30, 41);
  const auto db = seq::uniform_db(10, 50, 100, 42);
  MultiGpuConfig cfg;
  cfg.faults = FaultPlan::parse("launch=1.0");
  cfg.backoff.max_retries = 0;
  cfg.allow_cpu_fallback = false;
  EXPECT_THROW(cudasw::multi_gpu_search(spec, 2, query, db,
                                        ScoringMatrix::blosum62(), cfg),
               FaultError);
}

TEST(MultiGpuFault, PublishesFaultMetrics) {
  const auto spec = mini_spec();
  const auto query = test::random_codes(32, 51);
  const auto db = seq::uniform_db(24, 70, 150, 52);
  const auto& matrix = ScoringMatrix::blosum62();

  MultiGpuConfig cfg;
  cfg.faults = FaultPlan::parse("seed=5,transfer=0.5,lose=1@0");
  cfg.backoff.max_retries = 10;

  const auto before = obs::Registry::global().snapshot();
  const auto r = cudasw::multi_gpu_search(spec, 2, query, db, matrix, cfg);
  const auto delta = obs::Registry::global().snapshot().diff(before);

  EXPECT_EQ(delta.counter("fault.retries"), r.faults.retries);
  EXPECT_EQ(delta.counter("fault.failovers"), r.faults.failovers);
  EXPECT_EQ(delta.counter("fault.devices_failed"), r.faults.devices_lost);
  EXPECT_GE(delta.counter("fault.transfer.injected"),
            r.faults.transfer_faults);
  EXPECT_EQ(delta.counter("fault.device.lost"), 1u);
  EXPECT_NEAR(delta.gauge("fault.backoff_seconds"), r.faults.backoff_seconds,
              1e-12);
}

TEST(MultiGpuFault, CleanRunsPublishNothing) {
  const auto spec = mini_spec();
  const auto query = test::random_codes(32, 61);
  const auto db = seq::uniform_db(10, 60, 120, 62);
  const auto before = obs::Registry::global().snapshot();
  (void)cudasw::multi_gpu_search(spec, 2, query, db,
                                 ScoringMatrix::blosum62(), SearchConfig{});
  const auto delta = obs::Registry::global().snapshot().diff(before);
  EXPECT_EQ(delta.counter("fault.retries"), 0u);
  EXPECT_EQ(delta.counter("fault.transfer.injected"), 0u);
}

TEST(MultiGpuFault, EnvSpecDrivesConvenienceOverload) {
  EnvGuard guard;
  const auto spec = mini_spec();
  const auto query = test::random_codes(28, 71);
  const auto db = seq::uniform_db(16, 60, 120, 72);
  const auto& matrix = ScoringMatrix::blosum62();

  const auto clean =
      cudasw::multi_gpu_search(spec, 2, query, db, matrix, SearchConfig{});
  setenv("CUSW_FAULTS", "seed=3,transfer=0.5", 1);
  const auto faulted =
      cudasw::multi_gpu_search(spec, 2, query, db, matrix, SearchConfig{});
  unsetenv("CUSW_FAULTS");

  EXPECT_EQ(faulted.scores, clean.scores);
  EXPECT_GE(faulted.faults.transfer_faults, 1u);
  EXPECT_GE(faulted.faults.retries, 1u);
}

TEST(MultiGpuFault, FaultedRunEmitsTraceInstants) {
  TraceGuard guard;
  const std::string path = testing::TempDir() + "cusw_fault_trace.json";
  obs::configure_trace(path);

  const auto spec = mini_spec();
  const auto query = test::random_codes(32, 81);
  const auto db = seq::uniform_db(20, 70, 140, 82);
  MultiGpuConfig cfg;
  cfg.faults = FaultPlan::parse("seed=7,transfer=0.9,lose=1@0");
  cfg.backoff.max_retries = 40;
  (void)cudasw::multi_gpu_search(spec, 2, query, db,
                                 ScoringMatrix::blosum62(), cfg);

  ASSERT_EQ(obs::flush_trace(), path);
  const std::string text = read_file(path);
  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GE(check.instants, 2u);  // injected faults + failover markers
  EXPECT_NE(text.find("fault: transfer"), std::string::npos);
  EXPECT_NE(text.find("failover: reshard"), std::string::npos);
}

// --------------------------------------------------------- chunked_search

TEST(ChunkedFault, TransferRetriesPreserveScoreOrder) {
  gpusim::Device dev(mini_spec());
  const auto query = test::random_codes(50, 91);
  // Shuffled lengths: the length-sorted chunk order differs from the
  // database order, so any merge slip under retry shows up as a mismatch.
  const auto db = seq::lognormal_db(60, 170, 100, 92);
  const auto& matrix = ScoringMatrix::blosum62();

  ChunkedConfig clean_cfg;
  clean_cfg.device_memory_bytes = std::uint64_t{1} << 16;
  const auto clean = cudasw::chunked_search(dev, query, db, matrix, clean_cfg);
  ASSERT_GT(clean.chunks, 1u);

  ChunkedConfig cfg = clean_cfg;
  cfg.faults = FaultPlan::parse("seed=13,transfer=0.5");
  cfg.backoff.max_retries = 20;
  const auto faulted = cudasw::chunked_search(dev, query, db, matrix, cfg);

  EXPECT_EQ(faulted.scores, clean.scores);
  EXPECT_EQ(faulted.scores, test::reference_scores(query, db, matrix,
                                                   clean_cfg.search.gap));
  EXPECT_GE(faulted.faults.retries, 1u);
  EXPECT_GE(faulted.faults.transfer_faults, 1u);
  // Every retried copy is paid for again.
  EXPECT_GT(faulted.transfer_seconds, clean.transfer_seconds);
  EXPECT_GT(faulted.total_seconds, clean.total_seconds);
}

TEST(ChunkedFault, MidRunDeviceLossDegradesToCpu) {
  gpusim::Device dev(mini_spec());
  const auto query = test::random_codes(44, 101);
  const auto db = seq::uniform_db(80, 80, 200, 102);
  const auto& matrix = ScoringMatrix::blosum62();

  ChunkedConfig clean_cfg;
  clean_cfg.device_memory_bytes = std::uint64_t{1} << 16;
  const auto clean = cudasw::chunked_search(dev, query, db, matrix, clean_cfg);
  ASSERT_GT(clean.chunks, 2u);

  ChunkedConfig cfg = clean_cfg;
  // One kernel launch per chunk on this workload: the device survives the
  // first two chunks and dies scanning the third.
  cfg.faults = FaultPlan::parse("lose=0@2");
  const auto faulted = cudasw::chunked_search(dev, query, db, matrix, cfg);

  EXPECT_EQ(faulted.scores, clean.scores);
  EXPECT_TRUE(faulted.faults.degraded_to_cpu);
  EXPECT_EQ(faulted.faults.devices_lost, 1u);
  // Some chunks completed on the device before it died.
  EXPECT_GT(faulted.kernel_seconds, 0.0);
  EXPECT_LT(faulted.kernel_seconds, clean.kernel_seconds);
}

TEST(ChunkedFault, ThrowsWhenFallbackForbidden) {
  gpusim::Device dev(mini_spec());
  const auto query = test::random_codes(30, 111);
  const auto db = seq::uniform_db(10, 60, 120, 112);
  ChunkedConfig cfg;
  cfg.faults = FaultPlan::parse("lose=0@0");
  cfg.allow_cpu_fallback = false;
  EXPECT_THROW(cudasw::chunked_search(dev, query, db,
                                      ScoringMatrix::blosum62(), cfg),
               FaultError);
}

TEST(ChunkedFault, InjectorDetachesFromBorrowedDevice) {
  // chunked_search borrows the caller's Device; after a faulted run the
  // device must be injector-free so later clean scans see no faults.
  gpusim::Device dev(mini_spec());
  const auto query = test::random_codes(30, 121);
  const auto db = seq::uniform_db(12, 60, 120, 122);
  const auto& matrix = ScoringMatrix::blosum62();

  ChunkedConfig cfg;
  cfg.faults = FaultPlan::parse("seed=2,launch=0.3");
  cfg.backoff.max_retries = 20;
  const auto faulted = cudasw::chunked_search(dev, query, db, matrix, cfg);
  EXPECT_EQ(dev.fault_injector(), nullptr);

  const auto clean = cudasw::chunked_search(dev, query, db, matrix,
                                            ChunkedConfig{});
  EXPECT_EQ(clean.scores, faulted.scores);
  EXPECT_EQ(clean.faults.retries, 0u);
}

}  // namespace
}  // namespace cusw
