// cusw::serve: log-bucketed histogram quantile guarantees, arrival /
// admission / batching determinism, SLO parsing and burn rates, and the
// end-to-end service scheduler — including the bit-identity contract
// across CUSW_THREADS and the async request lanes in the Chrome trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/log_histogram.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "serve/service.h"

namespace cusw {
namespace {

using obs::LogHistogram;

// ------------------------------------------------------------ helpers

struct EnvVarGuard {
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, 1);
    }
  }
  ~EnvVarGuard() {
    if (had_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  const char* name_;
  bool had_ = false;
  std::string old_;
};

struct TraceGuard {
  ~TraceGuard() { obs::disable_trace(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Wrap hand-written trace events into a full Chrome trace document.
std::string trace_doc(const std::string& events) {
  return "{\"traceEvents\": [" + events + "]}";
}

/// One async event line; pass id_json as "\"1\"" or "7".
std::string async_ev(const char* ph, const char* name, double ts,
                     const std::string& id_json,
                     const char* cat = "serve.request") {
  std::ostringstream os;
  os << "{\"name\": \"" << name << "\", \"ph\": \"" << ph
     << "\", \"pid\": 50, \"tid\": 0, \"cat\": \"" << cat
     << "\", \"ts\": " << ts << ", \"id\": " << id_json << "}";
  return os.str();
}

/// A small service fixture: tiny device slices, a tiny database, a pool of
/// two queries. Scans are memoized, so each run costs two simulations.
struct ServiceFixture {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::tesla_c1060().scaled(1.0 / 30);
  seq::SequenceDB db = seq::lognormal_db(24, 120, 40, 0xD8);
  const sw::ScoringMatrix& matrix = sw::ScoringMatrix::blosum62();
  std::vector<std::vector<seq::Code>> pool;

  ServiceFixture() {
    Rng rng(0x9001);
    pool.push_back(seq::random_protein(40, rng).residues);
    pool.push_back(seq::random_protein(90, rng).residues);
  }

  serve::Executor make_exec(const cudasw::MultiGpuConfig& cfg = {}) {
    return serve::Executor(spec, 2, db, matrix, cfg);
  }
};

serve::ServiceConfig small_config() {
  serve::ServiceConfig cfg;
  cfg.arrival.rate_rps = 500.0;
  cfg.num_requests = 120;
  cfg.max_batch = 4;
  cfg.deadline_ms = 50.0;
  cfg.window_ms = 100.0;
  cfg.seed = 0xCAFE;
  cfg.slo = serve::SloSpec::parse("p90<25ms,goodput>0.5");
  return cfg;
}

// ------------------------------------------------- LogHistogram quantiles

TEST(LogHistogram, EmptyHistogramReportsZeros) {
  LogHistogram h(1.0, 1000.0, 0.01);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.min_recorded(), 0.0);
  EXPECT_EQ(h.max_recorded(), 0.0);
}

TEST(LogHistogram, SingleSampleIsEveryQuantile) {
  LogHistogram h(1.0, 1000.0, 0.01);
  h.record(42.0);
  EXPECT_EQ(h.count(), 1u);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(h.quantile(q), 42.0, 42.0 * h.relative_error())
        << "q=" << q;
  }
}

TEST(LogHistogram, AllSamplesInOverflowReportExactMax) {
  LogHistogram h(1.0, 10.0, 0.01);
  h.record(50.0);
  h.record(99.0);
  h.record(1000.0);
  EXPECT_EQ(h.overflow(), 3u);
  EXPECT_EQ(h.count(), 3u);
  // The overflow bucket's representative is the exact recorded maximum —
  // never a clamped edge-bucket midpoint.
  EXPECT_EQ(h.quantile(0.5), 1000.0);
  EXPECT_EQ(h.quantile(0.99), 1000.0);
  EXPECT_EQ(h.min_recorded(), 50.0);
}

TEST(LogHistogram, AllSamplesInUnderflowReportExactMin) {
  LogHistogram h(1.0, 10.0, 0.01);
  h.record(0.5);
  h.record(0.2);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.quantile(0.5), 0.2);
  EXPECT_EQ(h.quantile(1.0), 0.2);
}

TEST(LogHistogram, QuantilesStayWithinAdvertisedRelativeError) {
  LogHistogram h(1e-3, 1e7, 0.01);
  Rng rng(0x9A17);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.lognormal(3.0, 1.2));
  for (const double v : samples) h.record(v);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);

  std::sort(samples.begin(), samples.end());
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[std::max<std::size_t>(rank, 1) - 1];
    const double got = h.quantile(q);
    EXPECT_LE(std::abs(got - exact) / exact, h.relative_error() + 1e-12)
        << "q=" << q << " exact=" << exact << " got=" << got;
  }
}

TEST(LogHistogram, TotalsInvariantAndMerge) {
  LogHistogram a(1.0, 100.0, 0.05), b(1.0, 100.0, 0.05);
  a.record(0.5);
  a.record(5.0);
  b.record(50.0);
  b.record(500.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  std::uint64_t binned = 0;
  for (std::size_t i = 0; i < a.bucket_count(); ++i) binned += a.bucket(i);
  EXPECT_EQ(a.underflow() + binned + a.overflow(), a.count());
  EXPECT_EQ(a.min_recorded(), 0.5);
  EXPECT_EQ(a.max_recorded(), 500.0);

  LogHistogram c(1.0, 100.0, 0.05), d(2.0, 100.0, 0.05);
  EXPECT_THROW(c.merge(d), std::exception);  // geometry mismatch
}

TEST(LogHistogram, EqualitySeesEveryField) {
  LogHistogram a(1.0, 100.0, 0.01), b(1.0, 100.0, 0.01);
  EXPECT_TRUE(a == b);
  a.record(7.0);
  EXPECT_TRUE(a != b);
  b.record(7.0);
  EXPECT_TRUE(a == b);
  a.record(0.1);  // underflow only
  b.record(0.2);  // different underflow value -> different sum/min
  EXPECT_TRUE(a != b);
}

TEST(LogHistogram, ToJsonIsValidAndListsOnlyNonEmptyBuckets) {
  LogHistogram h(1.0, 1000.0, 0.01);
  h.record(2.0);
  h.record(900.0);
  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(h.to_json(), v, &err)) << err;
  EXPECT_EQ(v.find("count")->number, 2.0);
  EXPECT_EQ(v.find("buckets")->array.size(), 2u);
}

// ----------------------------------------------------------- arrivals

TEST(Arrival, SameSeedSameGaps) {
  serve::ArrivalConfig cfg;
  cfg.rate_rps = 250.0;
  serve::ArrivalProcess a(cfg, 42), b(cfg, 42), c(cfg, 43);
  bool any_diff = false;
  for (int i = 0; i < 200; ++i) {
    const double ga = a.next_gap_ms();
    EXPECT_EQ(ga, b.next_gap_ms());
    if (ga != c.next_gap_ms()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // a different seed is a different stream
}

TEST(Arrival, PoissonGapsMatchTheConfiguredRate) {
  serve::ArrivalConfig cfg;
  cfg.rate_rps = 200.0;  // mean gap 5 ms
  serve::ArrivalProcess p(cfg, 7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double gap = p.next_gap_ms();
    EXPECT_GT(gap, 0.0);
    sum += gap;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
  EXPECT_FALSE(p.in_burst());  // Poisson never bursts
}

TEST(Arrival, BurstyAlternatesStatesAndTightensGaps) {
  serve::ArrivalConfig cfg;
  cfg.kind = serve::ArrivalConfig::Kind::kBursty;
  cfg.rate_rps = 100.0;  // calm: 10 ms gaps; burst defaults to 4x -> 2.5 ms
  serve::ArrivalProcess p(cfg, 11);
  double sum = 0.0;
  bool saw_burst = false, saw_calm = false;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += p.next_gap_ms();
    (p.in_burst() ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_calm);
  const double mean = sum / n;
  EXPECT_LT(mean, 10.0);  // bursts tighten the average below pure calm
  EXPECT_GT(mean, 2.5);   // but it never beats pure burst
}

TEST(Arrival, KindParsesAndRejects) {
  EXPECT_EQ(serve::parse_arrival_kind("poisson"),
            serve::ArrivalConfig::Kind::kPoisson);
  EXPECT_EQ(serve::parse_arrival_kind("bursty"),
            serve::ArrivalConfig::Kind::kBursty);
  EXPECT_THROW(serve::parse_arrival_kind("fractal"), std::invalid_argument);
}

// ----------------------------------------------------------- admission

TEST(Admission, QueueAndConcurrencyCapsReject) {
  serve::AdmissionConfig cfg;
  cfg.max_queue = 2;
  cfg.max_inflight = 3;
  serve::AdmissionController adm(cfg);
  EXPECT_EQ(adm.admit(0.0, 10, 1, 1), serve::Outcome::kPending);
  EXPECT_EQ(adm.admit(0.0, 10, 2, 1), serve::Outcome::kRejectedQueue);
  EXPECT_EQ(adm.admit(0.0, 10, 1, 3), serve::Outcome::kRejectedConcurrency);
}

TEST(Admission, ZeroCapsMeanUnbounded) {
  serve::AdmissionConfig cfg;
  cfg.max_queue = 0;
  cfg.max_inflight = 0;
  serve::AdmissionController adm(cfg);
  EXPECT_EQ(adm.admit(0.0, 10, 100000, 100000), serve::Outcome::kPending);
}

TEST(Admission, TokenBucketSpendsAndRefills) {
  serve::AdmissionConfig cfg;
  cfg.cells_per_second = 1000.0;  // bucket defaults to 1000 cells
  serve::AdmissionController adm(cfg);
  EXPECT_EQ(adm.admit(0.0, 600, 0, 0), serve::Outcome::kPending);
  EXPECT_EQ(adm.admit(0.0, 600, 0, 0), serve::Outcome::kRejectedBudget);
  EXPECT_DOUBLE_EQ(adm.tokens(0.0), 400.0);
  // 500 simulated ms refills 500 cells (capped at the burst size).
  EXPECT_EQ(adm.admit(500.0, 600, 0, 0), serve::Outcome::kPending);
  // Rejections never spend tokens.
  EXPECT_EQ(adm.admit(500.0, 600, 0, 0), serve::Outcome::kRejectedBudget);
  EXPECT_NEAR(adm.tokens(500.0), 300.0, 1e-9);
}

// ------------------------------------------------------------ batching

serve::Request req(serve::RequestId id, std::size_t len, double deadline) {
  serve::Request r;
  r.id = id;
  r.query_length = len;
  r.deadline_ms = deadline;
  return r;
}

TEST(Batching, FifoPreservesArrivalOrderAndCapsBatch) {
  serve::BatchQueue q(serve::BatchPolicy::kFifo, 2);
  q.push(req(1, 300, 0));
  q.push(req(2, 100, 0));
  q.push(req(3, 200, 0));
  const auto batch = q.pop_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Batching, ShortestQueryFirstSortsByLength) {
  serve::BatchQueue q(serve::BatchPolicy::kShortestFirst, 2);
  q.push(req(1, 300, 0));
  q.push(req(2, 100, 0));
  q.push(req(3, 200, 0));
  const auto batch = q.pop_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 2u);
  EXPECT_EQ(batch[1].id, 3u);
  // The long query is still queued, not starved out of the structure.
  EXPECT_EQ(q.pop_batch()[0].id, 1u);
}

TEST(Batching, DeadlineOrdersEarliestFirstAndNoDeadlineLast) {
  serve::BatchQueue q(serve::BatchPolicy::kDeadline, 3);
  q.push(req(1, 100, 50.0));
  q.push(req(2, 100, 20.0));
  q.push(req(3, 100, 0.0));  // no deadline sorts after every deadline
  const auto batch = q.pop_batch();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 2u);
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_EQ(batch[2].id, 3u);
}

// ----------------------------------------------------------------- SLO

TEST(Slo, ParsesQuantileAndGoodputObjectives) {
  const auto spec = serve::SloSpec::parse("p99<40ms, goodput>0.95");
  ASSERT_EQ(spec.objectives.size(), 2u);
  EXPECT_EQ(spec.objectives[0].kind,
            serve::SloObjective::Kind::kQuantileLatency);
  EXPECT_DOUBLE_EQ(spec.objectives[0].quantile, 0.99);
  EXPECT_DOUBLE_EQ(spec.objectives[0].latency_bound_ms, 40.0);
  EXPECT_EQ(spec.objectives[0].label(), "p99<40ms");
  EXPECT_NEAR(spec.objectives[0].budget(), 0.01, 1e-12);
  EXPECT_EQ(spec.objectives[1].kind, serve::SloObjective::Kind::kGoodput);
  EXPECT_DOUBLE_EQ(spec.objectives[1].goodput_target, 0.95);
  EXPECT_EQ(spec.objectives[1].label(), "goodput>0.95");
}

TEST(Slo, ParsesLatencyUnits) {
  EXPECT_DOUBLE_EQ(
      serve::SloSpec::parse("p99.9<1.5s").objectives[0].latency_bound_ms,
      1500.0);
  EXPECT_DOUBLE_EQ(
      serve::SloSpec::parse("p50<250us").objectives[0].latency_bound_ms, 0.25);
  EXPECT_DOUBLE_EQ(serve::SloSpec::parse("p99.9<1.5s").objectives[0].quantile,
                   0.999);
}

TEST(Slo, RejectsMalformedSpecs) {
  EXPECT_THROW(serve::SloSpec::parse("p99"), std::invalid_argument);
  EXPECT_THROW(serve::SloSpec::parse("p0<10ms"), std::invalid_argument);
  EXPECT_THROW(serve::SloSpec::parse("p100<10ms"), std::invalid_argument);
  EXPECT_THROW(serve::SloSpec::parse("goodput>1.5"), std::invalid_argument);
  EXPECT_THROW(serve::SloSpec::parse("latency<10ms"), std::invalid_argument);
  EXPECT_THROW(serve::SloSpec::parse("p99<-3ms"), std::invalid_argument);
}

TEST(Slo, BurnRatesScaleByErrorBudget) {
  // p99 tolerates 1% violations; 2% observed burns at 2x.
  EXPECT_NEAR(serve::latency_burn_rate(2, 100, 0.99), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(serve::latency_burn_rate(0, 100, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(serve::latency_burn_rate(0, 0, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(serve::goodput_burn_rate(0.8, 0.9, 10), 2.0);
  EXPECT_DOUBLE_EQ(serve::goodput_burn_rate(1.0, 0.9, 10), 0.0);
  EXPECT_DOUBLE_EQ(serve::goodput_burn_rate(0.0, 0.9, 0), 0.0);
}

// ------------------------------------------------------- config parsing

TEST(ServiceConfig, SpecOverlaysEveryKnob) {
  serve::ServiceConfig cfg;
  cfg.apply_spec(
      "arrivals=bursty,rate=123,burst_rate=400,queue=5,inflight=9,"
      "cells_per_s=2e9,policy=sqf,batch=16,deadline_ms=25,requests=77,"
      "seed=99,window_ms=50");
  EXPECT_EQ(cfg.arrival.kind, serve::ArrivalConfig::Kind::kBursty);
  EXPECT_DOUBLE_EQ(cfg.arrival.rate_rps, 123.0);
  EXPECT_DOUBLE_EQ(cfg.arrival.burst_rate_rps, 400.0);
  EXPECT_EQ(cfg.admission.max_queue, 5u);
  EXPECT_EQ(cfg.admission.max_inflight, 9u);
  EXPECT_DOUBLE_EQ(cfg.admission.cells_per_second, 2e9);
  EXPECT_EQ(cfg.policy, serve::BatchPolicy::kShortestFirst);
  EXPECT_EQ(cfg.max_batch, 16u);
  EXPECT_DOUBLE_EQ(cfg.deadline_ms, 25.0);
  EXPECT_EQ(cfg.num_requests, 77u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_DOUBLE_EQ(cfg.window_ms, 50.0);
  EXPECT_THROW(cfg.apply_spec("warp_speed=9"), std::invalid_argument);
}

TEST(ServiceConfig, AppliesEnvSpecAndSlo) {
  EnvVarGuard serve_env("CUSW_SERVE", "rate=33,policy=edf");
  EnvVarGuard slo_env("CUSW_SLO", "p90<5ms");
  serve::ServiceConfig cfg;
  cfg.apply_env();
  EXPECT_DOUBLE_EQ(cfg.arrival.rate_rps, 33.0);
  EXPECT_EQ(cfg.policy, serve::BatchPolicy::kDeadline);
  ASSERT_EQ(cfg.slo.objectives.size(), 1u);
  EXPECT_EQ(cfg.slo.objectives[0].label(), "p90<5ms");
}

// -------------------------------------------------------------- service

TEST(Service, ReportInvariantsHold) {
  ServiceFixture fx;
  auto exec = fx.make_exec();
  serve::ServiceConfig cfg = small_config();
  cfg.arrival.rate_rps = 20000.0;  // far past the tiny fleet's capacity
  cfg.admission.max_queue = 2;     // so the waiting room overflows
  cfg.max_batch = 2;
  serve::Service svc(cfg, exec, fx.pool);
  const serve::ServiceReport rep = svc.run();

  EXPECT_EQ(rep.arrivals, cfg.num_requests);
  EXPECT_EQ(rep.requests.size(), cfg.num_requests);
  EXPECT_EQ(rep.admitted + rep.rejected(), rep.arrivals);
  EXPECT_EQ(rep.completed, rep.admitted);  // the queue always drains
  EXPECT_GT(rep.rejected(), 0u);
  EXPECT_EQ(rep.latency_ms.count(), rep.completed);
  EXPECT_EQ(rep.queue_delay_ms.count(), rep.completed);
  EXPECT_EQ(rep.batch_size.count(), rep.batches);
  EXPECT_GT(rep.sim_seconds, 0.0);
  EXPECT_GE(rep.goodput(), 0.0);
  EXPECT_LE(rep.goodput(), 1.0);

  std::uint64_t win_arrivals = 0, win_completed = 0;
  for (const serve::WindowStats& w : rep.windows) {
    win_arrivals += w.arrivals;
    win_completed += w.completed;
  }
  EXPECT_EQ(win_arrivals, rep.arrivals);
  EXPECT_EQ(win_completed, rep.completed);

  for (const serve::RequestRecord& r : rep.requests) {
    EXPECT_NE(r.outcome, serve::Outcome::kPending);
    if (r.completed()) {
      EXPECT_GE(r.start_ms, r.arrival_ms);
      EXPECT_GE(r.end_ms, r.start_ms);
      EXPECT_GE(r.done_ms, r.end_ms);
      EXPECT_NE(r.batch, serve::kNoBatch);
    }
  }

  ASSERT_EQ(rep.slo.size(), 2u);
  EXPECT_EQ(rep.slo[0].label, "p90<25ms");
  EXPECT_FALSE(rep.dashboard().empty());

  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(rep.to_json(), v, &err)) << err;
  EXPECT_EQ(v.find("arrivals")->number,
            static_cast<double>(cfg.num_requests));
  EXPECT_EQ(v.find("slo")->array.size(), 2u);
  EXPECT_FALSE(v.find("windows")->array.empty());
}

TEST(Service, SameSeedIsBitIdentical) {
  ServiceFixture fx;
  serve::ServiceConfig cfg = small_config();
  auto exec1 = fx.make_exec();
  auto exec2 = fx.make_exec();
  serve::Service s1(cfg, exec1, fx.pool);
  serve::Service s2(cfg, exec2, fx.pool);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_EQ(r1.requests, r2.requests);
  EXPECT_TRUE(r1.latency_ms == r2.latency_ms);
  EXPECT_TRUE(r1.queue_delay_ms == r2.queue_delay_ms);
  EXPECT_EQ(r1.rejected(), r2.rejected());

  serve::ServiceConfig other = cfg;
  other.seed = cfg.seed + 1;
  auto exec3 = fx.make_exec();
  serve::Service s3(other, exec3, fx.pool);
  EXPECT_FALSE(s3.run().requests == r1.requests);
}

TEST(Service, LatencyHistogramsAreThreadCountInvariant) {
  ServiceFixture fx;
  serve::ServiceConfig cfg = small_config();
  serve::ServiceReport reports[2];
  const char* threads[2] = {"1", "3"};
  for (int i = 0; i < 2; ++i) {
    EnvVarGuard guard("CUSW_THREADS", threads[i]);
    auto exec = fx.make_exec();
    serve::Service svc(cfg, exec, fx.pool);
    reports[i] = svc.run();
  }
  // The whole report — admission decisions, timestamps, histograms — is a
  // function of the simulated clock only, never of host parallelism.
  EXPECT_EQ(reports[0].requests, reports[1].requests);
  EXPECT_TRUE(reports[0].latency_ms == reports[1].latency_ms);
  EXPECT_TRUE(reports[0].queue_delay_ms == reports[1].queue_delay_ms);
  EXPECT_TRUE(reports[0].batch_size == reports[1].batch_size);
  EXPECT_DOUBLE_EQ(reports[0].sim_seconds, reports[1].sim_seconds);
}

TEST(Service, DegradedFleetComposesWithFaultLayer) {
  ServiceFixture fx;
  cudasw::MultiGpuConfig mg;
  mg.faults.lose_device = 0;
  mg.faults.lose_at = 0;
  auto clean = fx.make_exec();
  auto degraded = fx.make_exec(mg);
  serve::ServiceConfig cfg = small_config();
  serve::Service sc(cfg, clean, fx.pool);
  serve::Service sd(cfg, degraded, fx.pool);
  const auto rc = sc.run();
  const auto rd = sd.run();
  EXPECT_GT(rd.failovers, 0u);
  EXPECT_EQ(rc.failovers, 0u);
  // Losing a device never loses work, it loses time.
  EXPECT_GT(rd.sim_seconds, rc.sim_seconds);
}

TEST(Service, TraceCarriesRequestLanesAndSloCounters) {
  TraceGuard guard;
  const std::string path = "test_serve_trace.json";
  obs::configure_trace(path);
  ServiceFixture fx;
  auto exec = fx.make_exec();
  serve::ServiceConfig cfg = small_config();
  cfg.arrival.rate_rps = 20000.0;  // overload: rejected lanes appear too
  cfg.admission.max_queue = 2;
  cfg.max_batch = 2;
  serve::Service svc(cfg, exec, fx.pool);
  const auto rep = svc.run();
  ASSERT_EQ(obs::flush_trace(), path);

  const std::string text = read_file(path);
  const obs::TraceCheck check = obs::validate_chrome_trace(text);
  EXPECT_TRUE(check.ok) << check.error;
  // One async lane per arrival (rejected requests get a lane too), plus
  // per-window SLO burn-rate / goodput counter samples.
  EXPECT_EQ(check.lanes, rep.arrivals);
  EXPECT_GE(check.counters, rep.windows.size());
  EXPECT_GT(check.asyncs, 2 * rep.arrivals);
  std::remove(path.c_str());
}

// ------------------------------------------------- trace_check (asyncs)

TEST(TraceCheckAsync, AcceptsBalancedNestedLanes) {
  const std::string doc = trace_doc(
      async_ev("b", "request", 0, "\"1\"") + "," +
      async_ev("b", "queue", 0, "\"1\"") + "," +
      async_ev("e", "queue", 4, "\"1\"") + "," +
      async_ev("b", "execute", 4, "\"1\"") + "," +
      async_ev("n", "retry", 5, "\"1\"") + "," +
      async_ev("e", "execute", 9, "\"1\"") + "," +
      async_ev("e", "request", 9, "\"1\"") + "," +
      async_ev("b", "request", 2, "\"2\"") + "," +
      async_ev("e", "request", 3, "\"2\""));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.asyncs, 9u);
  EXPECT_EQ(check.lanes, 2u);
}

TEST(TraceCheckAsync, NumericIdsFormTheirOwnLanes) {
  const std::string doc = trace_doc(async_ev("b", "request", 0, "7") + "," +
                                    async_ev("e", "request", 1, "7"));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.lanes, 1u);
}

TEST(TraceCheckAsync, RejectsEndBeforeBegin) {
  const std::string doc = trace_doc(async_ev("b", "request", 10, "\"1\"") +
                                    "," + async_ev("e", "request", 5, "\"1\""));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("ends before it begins"), std::string::npos)
      << check.error;
}

TEST(TraceCheckAsync, RejectsMismatchedEndName) {
  const std::string doc = trace_doc(async_ev("b", "request", 0, "\"1\"") + "," +
                                    async_ev("b", "queue", 1, "\"1\"") + "," +
                                    async_ev("e", "request", 2, "\"1\""));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("does not match open"), std::string::npos)
      << check.error;
}

TEST(TraceCheckAsync, RejectsUnclosedLaneAtEndOfFile) {
  const std::string doc = trace_doc(async_ev("b", "request", 0, "\"1\""));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("never ends"), std::string::npos) << check.error;
}

TEST(TraceCheckAsync, RejectsEventsAfterLaneCloses) {
  const std::string doc = trace_doc(async_ev("b", "request", 0, "\"1\"") + "," +
                                    async_ev("e", "request", 5, "\"1\"") + "," +
                                    async_ev("n", "late", 6, "\"1\""));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("outermost span closed"), std::string::npos)
      << check.error;
}

TEST(TraceCheckAsync, RejectsInstantOutsideAnySpan) {
  const std::string doc = trace_doc(async_ev("n", "lost", 0, "\"1\""));
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("outside any open span"), std::string::npos)
      << check.error;
}

TEST(TraceCheckAsync, RequiresCatAndId) {
  const std::string no_cat =
      "{\"traceEvents\": [{\"name\": \"r\", \"ph\": \"b\", \"pid\": 50, "
      "\"tid\": 0, \"ts\": 0, \"id\": \"1\"}]}";
  EXPECT_FALSE(obs::validate_chrome_trace(no_cat).ok);
  const std::string no_id =
      "{\"traceEvents\": [{\"name\": \"r\", \"ph\": \"b\", \"pid\": 50, "
      "\"tid\": 0, \"cat\": \"c\", \"ts\": 0}]}";
  EXPECT_FALSE(obs::validate_chrome_trace(no_id).ok);
}

TEST(TraceCheckAsync, RejectsDurOnAsyncEvents) {
  const std::string doc =
      "{\"traceEvents\": [{\"name\": \"r\", \"ph\": \"b\", \"pid\": 50, "
      "\"tid\": 0, \"cat\": \"c\", \"ts\": 0, \"dur\": 3, \"id\": \"1\"}]}";
  const auto check = obs::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("carries a dur"), std::string::npos)
      << check.error;
}

}  // namespace
}  // namespace cusw
