// Virtualised SIMD inter-task kernel (the CUDASW++ 2.0 companion kernel):
// correctness against the reference and the variance-tolerance property
// that motivated it.
#include <gtest/gtest.h>

#include "cudasw/inter_task_simd.h"
#include "cudasw/pipeline.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::InterTaskSimdParams;
using cudasw::run_inter_task;
using cudasw::run_inter_task_simd;
using sw::GapPenalty;
using sw::ScoringMatrix;

gpusim::Device c1060() {
  return gpusim::Device(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
}

TEST(InterTaskSimd, MatchesReferenceOnSmallGroup) {
  auto dev = c1060();
  const auto query = test::random_codes(61, 1);
  const auto db = seq::uniform_db(37, 5, 150, 2);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto run = run_inter_task_simd(dev, query, db, matrix, gap, {});
  const auto want = test::reference_scores(query, db, matrix, gap);
  ASSERT_EQ(run.scores.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(run.scores[i], want[i]) << "sequence " << i;
  }
}

TEST(InterTaskSimd, MatchesReferenceAcrossBandBoundaries) {
  // Query lengths around multiples of the quad width stress the band
  // partition (empty bands, 1-row bands, uneven bands).
  auto dev = c1060();
  const auto db = seq::uniform_db(9, 20, 120, 3);
  const auto& matrix = ScoringMatrix::blosum50();
  const GapPenalty gap{12, 3};
  for (std::size_t ml : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 33u, 64u, 130u}) {
    const auto query = test::random_codes(ml, 100 + ml);
    const auto run = run_inter_task_simd(dev, query, db, matrix, gap, {});
    const auto want = test::reference_scores(query, db, matrix, gap);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(run.scores[i], want[i]) << "m=" << ml << " seq=" << i;
    }
  }
}

TEST(InterTaskSimd, AgreesWithSimtKernelAndCheapGaps) {
  auto dev = c1060();
  const auto query = test::random_codes(90, 5);
  const auto db = seq::lognormal_db(50, 120, 70, 6);
  const auto& matrix = ScoringMatrix::blosum62();
  for (const GapPenalty gap : {GapPenalty{10, 2}, GapPenalty{1, 1}}) {
    const auto simd = run_inter_task_simd(dev, query, db, matrix, gap, {});
    const auto simt = run_inter_task(dev, query, db, matrix, gap, {});
    EXPECT_EQ(simd.scores, simt.scores);
    EXPECT_EQ(simd.cells, simt.cells);
  }
}

TEST(InterTaskSimd, GroupSizeIsQuarterOfSimtAtEqualOccupancy) {
  const auto spec = gpusim::DeviceSpec::tesla_c1060();
  InterTaskSimdParams simd;
  cudasw::InterTaskParams simt;
  simt.threads_per_block = simd.threads_per_block;
  simt.regs_per_thread = simd.regs_per_thread;  // same occupancy
  const std::size_t simd_group = cudasw::inter_task_simd_group_size(spec, simd);
  const std::size_t simt_group = cudasw::inter_task_group_size(spec, simt);
  EXPECT_EQ(simd_group * InterTaskSimdParams::kQuadLanes, simt_group);
}

TEST(InterTaskSimd, LessSensitiveToLengthVarianceThanSimt) {
  // The motivation for the virtualised SIMD kernel: a block carries 4x
  // fewer sequences, so a straggler blocks a narrower slice of the launch.
  auto dev = c1060();
  const auto query = test::random_codes(64, 7);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};

  auto make = [&](double stddev, std::uint64_t seed) {
    auto db = seq::lognormal_db(128, 400, stddev, seed, 16, 6000);
    db.sort_by_length();
    return db;
  };
  const auto uniform = make(40, 8);
  const auto skewed = make(800, 9);

  auto gcups = [](const cudasw::KernelRun& r) {
    return static_cast<double>(r.cells) / r.stats.seconds;
  };
  const double simt_drop =
      gcups(run_inter_task(dev, query, uniform, matrix, gap, {})) /
      gcups(run_inter_task(dev, query, skewed, matrix, gap, {}));
  const double simd_drop =
      gcups(run_inter_task_simd(dev, query, uniform, matrix, gap, {})) /
      gcups(run_inter_task_simd(dev, query, skewed, matrix, gap, {}));
  EXPECT_GT(simt_drop, 1.2);            // SIMT suffers from the variance
  EXPECT_LT(simd_drop, simt_drop);      // vSIMD suffers less
}

TEST(InterTaskSimd, EmptyInputs) {
  auto dev = c1060();
  const auto& matrix = ScoringMatrix::blosum62();
  const auto a = run_inter_task_simd(dev, test::random_codes(5, 1),
                                     seq::SequenceDB{}, matrix, {10, 2}, {});
  EXPECT_TRUE(a.scores.empty());
  const auto db = seq::uniform_db(2, 5, 9, 1);
  const auto b = run_inter_task_simd(dev, {}, db, matrix, {10, 2}, {});
  EXPECT_EQ(b.scores, (std::vector<int>{0, 0}));
}

}  // namespace
}  // namespace cusw
