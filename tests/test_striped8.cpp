// 8-bit striped kernel and the adaptive 8/16-bit engine.
#include <gtest/gtest.h>

#include "swps3/striped8.h"
#include "test_helpers.h"

namespace cusw::swps3 {
namespace {

using sw::GapPenalty;
using sw::ScoringMatrix;

TEST(Striped8, MatchesReferenceBelowSaturation) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  for (int i = 0; i < 50; ++i) {
    const auto q = test::random_codes(1 + (i * 19) % 140, 700 + i);
    const auto t = test::random_codes(1 + (i * 23) % 160, 800 + i);
    const StripedProfile8 prof(q, m);
    const auto r = striped8_sw_score(prof, t, gap);
    // Random pairs score far below 255 - bias: no overflow expected.
    ASSERT_FALSE(r.overflow) << i;
    ASSERT_EQ(r.score, sw::sw_score(q, t, m, gap)) << i;
  }
}

TEST(Striped8, OverflowsOnStrongMatches) {
  const auto& m = ScoringMatrix::blosum62();
  // Self-alignment of a 200-residue query scores far above 255.
  const auto q = test::random_codes(200, 3);
  const StripedProfile8 prof(q, m);
  const auto r = striped8_sw_score(prof, q, {10, 2});
  EXPECT_TRUE(r.overflow);
}

TEST(Striped8, LazyFNeededForGappyOptima) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{1, 1};
  Rng rng(91);
  for (int i = 0; i < 25; ++i) {
    std::vector<seq::Code> q, t;
    for (int k = 0; k < 50 + i; ++k) q.push_back(k % 3 == 0 ? 19 : 0);
    for (int k = 0; k < 60 + i; ++k)
      t.push_back(static_cast<seq::Code>(rng.uniform_int(0, 2) == 0 ? 19 : 0));
    const StripedProfile8 prof(q, m);
    const auto r = striped8_sw_score(prof, t, gap);
    if (!r.overflow) {
      ASSERT_EQ(r.score, sw::sw_score(q, t, m, gap)) << i;
    }
  }
}

TEST(Striped8, PaddingLanesStayNeutralOnShortQueries) {
  // Regression: the profile's padding lanes used to carry matrix.min_score()
  // instead of the neutral biased zero. Scores were never wrong — a padding
  // lane can only lose to the real lanes — but the negative values kept the
  // lazy-F correction loop spinning on queries that are not a multiple of
  // 16 lanes. The pin is therefore the iteration counter: this workload
  // takes ~331k correction steps pre-fix and ~142k post-fix.
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{1, 1};
  std::uint64_t total = 0;
  for (int seed = 0; seed < 200; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 17);
    std::vector<seq::Code> q, t;
    for (int k = 0; k < 17; ++k) {
      q.push_back(static_cast<seq::Code>(
          rng.uniform_u64(3) == 0 ? 19 : rng.uniform_u64(20)));
    }
    for (int k = 0; k < 120; ++k) {
      t.push_back(static_cast<seq::Code>(
          rng.uniform_u64(3) == 0 ? 19 : rng.uniform_u64(20)));
    }
    const StripedProfile8 prof(q, m);
    const auto r = striped8_sw_score(prof, t, gap);
    if (!r.overflow) {
      ASSERT_EQ(r.score, sw::sw_score(q, t, m, gap)) << seed;
    }
    total += r.lazy_f_iterations;
  }
  EXPECT_GT(total, 0u);
  EXPECT_LT(total, 220000u);
}

TEST(Striped8, ExactScoreAtSaturationBoundary) {
  // Regression: overflow used to be decided by inspecting the final peak
  // (peak + bias >= 255), which conservatively rejected the exact,
  // never-clamped score 251 = 255 - bias. Detection now happens at each
  // add, so the full representable range stays exact.
  const auto& m = ScoringMatrix::blosum62();
  const seq::Code w = m.alphabet().encode('W');
  const seq::Code c = m.alphabet().encode('C');
  std::vector<seq::Code> q(22, w);
  q.push_back(c);  // self-alignment: 22 * 11 + 9 = 251
  ASSERT_EQ(sw::sw_score(q, q, m, {10, 2}), 251);
  const StripedProfile8 prof(q, m);
  ASSERT_EQ(255 - prof.bias(), 251);
  const auto r = striped8_sw_score(prof, q, {10, 2});
  EXPECT_FALSE(r.overflow);
  EXPECT_EQ(r.score, 251);
}

TEST(Striped8, SaturationBoundaryFuzz) {
  // Near the 8-bit ceiling the kernel must be exactly right in both
  // directions: a score that fits (<= 255 - bias) is reported exactly with
  // no overflow, and a score past the ceiling always raises overflow (the
  // optimal path's adds must clamp).
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  int exact = 0, overflowed = 0;
  for (int seed = 0; seed < 400 && (exact < 10 || overflowed < 10); ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
    const auto q = seq::random_protein(40 + rng.uniform_u64(40), rng).residues;
    auto t = q;
    for (auto& code : t) {
      if (rng.uniform01() < 0.3) {
        code = static_cast<seq::Code>(rng.uniform_u64(20));
      }
    }
    const int want = sw::sw_score(q, t, m, gap);
    if (want < 200 || want > 320) continue;
    const StripedProfile8 prof(q, m);
    const int limit = 255 - prof.bias();
    const auto r = striped8_sw_score(prof, t, gap);
    if (want > limit) {
      EXPECT_TRUE(r.overflow) << "seed " << seed << " score " << want;
      ++overflowed;
    } else {
      EXPECT_FALSE(r.overflow) << "seed " << seed << " score " << want;
      EXPECT_EQ(r.score, want) << "seed " << seed;
      ++exact;
    }
  }
  EXPECT_GE(exact, 10);
  EXPECT_GE(overflowed, 10);
}

TEST(StripedEngine, FallsBackExactlyWhenNeeded) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto q = test::random_codes(150, 5);
  const StripedEngine engine(q, m, gap);

  // A batch of random targets (no fallback) plus the query itself
  // (fallback): every score must match the reference.
  seq::SequenceDB db = seq::uniform_db(30, 50, 200, 6);
  db.add(seq::Sequence("self", q));
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(engine.score(db[i].residues),
              sw::sw_score(q, db[i].residues, m, gap))
        << i;
  }
  EXPECT_EQ(engine.scored(), db.size());
  EXPECT_GE(engine.fallbacks(), 1u);
  EXPECT_LT(engine.fallbacks(), db.size() / 2);  // fallback stays rare
}

TEST(StripedEngine, EmptyTarget) {
  const auto q = test::random_codes(20, 7);
  const StripedEngine engine(q, ScoringMatrix::blosum62(), {10, 2});
  EXPECT_EQ(engine.score({}), 0);
}

}  // namespace
}  // namespace cusw::swps3
