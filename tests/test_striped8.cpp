// 8-bit striped kernel and the adaptive 8/16-bit engine.
#include <gtest/gtest.h>

#include "swps3/striped8.h"
#include "test_helpers.h"

namespace cusw::swps3 {
namespace {

using sw::GapPenalty;
using sw::ScoringMatrix;

TEST(Striped8, MatchesReferenceBelowSaturation) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  for (int i = 0; i < 50; ++i) {
    const auto q = test::random_codes(1 + (i * 19) % 140, 700 + i);
    const auto t = test::random_codes(1 + (i * 23) % 160, 800 + i);
    const StripedProfile8 prof(q, m);
    const auto r = striped8_sw_score(prof, t, gap);
    // Random pairs score far below 255 - bias: no overflow expected.
    ASSERT_FALSE(r.overflow) << i;
    ASSERT_EQ(r.score, sw::sw_score(q, t, m, gap)) << i;
  }
}

TEST(Striped8, OverflowsOnStrongMatches) {
  const auto& m = ScoringMatrix::blosum62();
  // Self-alignment of a 200-residue query scores far above 255.
  const auto q = test::random_codes(200, 3);
  const StripedProfile8 prof(q, m);
  const auto r = striped8_sw_score(prof, q, {10, 2});
  EXPECT_TRUE(r.overflow);
}

TEST(Striped8, LazyFNeededForGappyOptima) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{1, 1};
  Rng rng(91);
  for (int i = 0; i < 25; ++i) {
    std::vector<seq::Code> q, t;
    for (int k = 0; k < 50 + i; ++k) q.push_back(k % 3 == 0 ? 19 : 0);
    for (int k = 0; k < 60 + i; ++k)
      t.push_back(static_cast<seq::Code>(rng.uniform_int(0, 2) == 0 ? 19 : 0));
    const StripedProfile8 prof(q, m);
    const auto r = striped8_sw_score(prof, t, gap);
    if (!r.overflow) {
      ASSERT_EQ(r.score, sw::sw_score(q, t, m, gap)) << i;
    }
  }
}

TEST(StripedEngine, FallsBackExactlyWhenNeeded) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto q = test::random_codes(150, 5);
  const StripedEngine engine(q, m, gap);

  // A batch of random targets (no fallback) plus the query itself
  // (fallback): every score must match the reference.
  seq::SequenceDB db = seq::uniform_db(30, 50, 200, 6);
  db.add(seq::Sequence("self", q));
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(engine.score(db[i].residues),
              sw::sw_score(q, db[i].residues, m, gap))
        << i;
  }
  EXPECT_EQ(engine.scored(), db.size());
  EXPECT_GE(engine.fallbacks(), 1u);
  EXPECT_LT(engine.fallbacks(), db.size() / 2);  // fallback stays rare
}

TEST(StripedEngine, EmptyTarget) {
  const auto q = test::random_codes(20, 7);
  const StripedEngine engine(q, ScoringMatrix::blosum62(), {10, 2});
  EXPECT_EQ(engine.score({}), 0);
}

}  // namespace
}  // namespace cusw::swps3
