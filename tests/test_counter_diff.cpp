// The counter baseline gate (tools/counter_diff): tolerance resolution,
// diff semantics, baseline round-trip, and the end-to-end check against
// the checked-in baselines — including that a perturbed baseline fails.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tools/counter_diff_lib.h"

#ifndef CUSW_BASELINE_DIR
#error "CUSW_BASELINE_DIR must point at the checked-in baselines directory"
#endif

namespace cusw::tools {
namespace {

TEST(CounterDiff, ToleranceLongestSubstringWins) {
  const std::map<std::string, double> tol = {
      {"default", 0.0},
      {"derived.", 0.02},
      {"derived.q567.", 0.10},
  };
  EXPECT_DOUBLE_EQ(tolerance_for(tol, "q567.intra.global.transactions"), 0.0);
  EXPECT_DOUBLE_EQ(tolerance_for(tol, "derived.q1500.global_txn_ratio"), 0.02);
  // Both "derived." and "derived.q567." match; the longer key wins.
  EXPECT_DOUBLE_EQ(tolerance_for(tol, "derived.q567.global_txn_ratio"), 0.10);
  // "default" is a fallback, never a substring match.
  EXPECT_DOUBLE_EQ(tolerance_for(tol, "contains.default.inside"), 0.0);
  EXPECT_DOUBLE_EQ(tolerance_for({}, "anything"), 0.0);
}

TEST(CounterDiff, DiffPassesWithinToleranceAndFailsOutside) {
  const std::map<std::string, double> base = {{"a.x", 100.0}, {"b.y", 2.0}};
  const std::map<std::string, double> tol = {{"default", 0.0}, {"b.", 0.05}};

  auto r = diff_counters(base, base, tol);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.compared, 2u);

  // Within the 5% tolerance on b.*.
  r = diff_counters({{"a.x", 100.0}, {"b.y", 2.08}}, base, tol);
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures.front());

  // Exact key drifts by one count: fail.
  r = diff_counters({{"a.x", 101.0}, {"b.y", 2.0}}, base, tol);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures.front().find("a.x"), std::string::npos);
}

TEST(CounterDiff, MissingKeysCompareAsZeroOnEitherSide) {
  const std::map<std::string, double> tol = {{"default", 0.0}};
  // Site disappears from the current run: fail.
  auto r = diff_counters({}, {{"gone.site", 7.0}}, tol);
  EXPECT_FALSE(r.ok);
  // New site appears that the baseline has never seen: fail too.
  r = diff_counters({{"new.site", 7.0}}, {}, tol);
  EXPECT_FALSE(r.ok);
  // Zero baseline + zero current is fine.
  r = diff_counters({{"z", 0.0}}, {}, tol);
  EXPECT_TRUE(r.ok);
}

TEST(CounterDiff, BaselineJsonRoundTrips) {
  const std::map<std::string, double> counters = {
      {"q567.intra_task_improved.global.transactions", 226197.0},
      {"derived.q567.global_txn_ratio", 36.5},
  };
  const std::map<std::string, double> tol = default_tolerances();
  const std::string text = baseline_to_json(counters, tol);

  std::map<std::string, double> counters2, tol2;
  std::string error;
  ASSERT_TRUE(load_baseline(text, counters2, tol2, &error)) << error;
  EXPECT_EQ(counters2, counters);
  EXPECT_EQ(tol2, tol);

  std::map<std::string, double> c3, t3;
  EXPECT_FALSE(load_baseline("not json", c3, t3, &error));
  EXPECT_FALSE(error.empty());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CounterDiff, CanonicalWorkloadMatchesCheckedInBaseline) {
  std::map<std::string, double> base, tol;
  std::string error;
  const std::string path =
      std::string(CUSW_BASELINE_DIR) + "/counter_baseline.json";
  ASSERT_TRUE(load_baseline(read_file(path), base, tol, &error))
      << path << ": " << error;
  ASSERT_FALSE(base.empty());

  const auto current = run_canonical_workload();
  const DiffResult r = diff_counters(current, base, tol);
  std::string joined;
  for (const auto& f : r.failures) joined += f + "\n";
  EXPECT_TRUE(r.ok) << joined;
  EXPECT_EQ(r.compared, base.size());
  EXPECT_GT(current.count("derived.q567.global_txn_ratio"), 0u);
  EXPECT_GT(current.count("derived.q1500.global_txn_ratio"), 0u);
}

TEST(CounterDiff, PerturbedBaselineFails) {
  std::map<std::string, double> base, tol;
  std::string error;
  const std::string path =
      std::string(CUSW_BASELINE_DIR) + "/counter_baseline.json";
  ASSERT_TRUE(load_baseline(read_file(path), base, tol, &error)) << error;

  // Pretend the improved kernel used to emit 30% fewer global
  // transactions — today's run must trip the gate.
  const std::string key = "q567.intra_task_improved.global.transactions";
  ASSERT_GT(base.count(key), 0u);
  base[key] *= 0.7;
  // And drift the headline ratio past its 2% window.
  base["derived.q567.global_txn_ratio"] *= 1.5;

  const DiffResult r = diff_counters(run_canonical_workload(), base, tol);
  EXPECT_FALSE(r.ok);
  std::string joined;
  for (const auto& f : r.failures) joined += f + "\n";
  EXPECT_NE(joined.find(key), std::string::npos) << joined;
  EXPECT_NE(joined.find("derived.q567.global_txn_ratio"), std::string::npos)
      << joined;
}

}  // namespace
}  // namespace cusw::tools
