// swps3: the portable SIMD vector and the striped (Farrar) kernel with the
// lazy-F loop, validated against the scalar reference.
#include <gtest/gtest.h>

#include "simd/vec.h"
#include "swps3/search.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using simd::VecI16;
using swps3::StripedProfile;
using swps3::striped_sw_score;
using sw::GapPenalty;
using sw::ScoringMatrix;

TEST(Vec, SplatLoadStore) {
  const auto v = VecI16::splat(7);
  for (int i = 0; i < VecI16::lanes; ++i) EXPECT_EQ(v[i], 7);
  std::int16_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto w = VecI16::load(buf);
  std::int16_t out[8];
  w.store(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], buf[i]);
}

TEST(Vec, SaturatingArithmetic) {
  const auto big = VecI16::splat(32000);
  const auto r = adds(big, VecI16::splat(1000));
  EXPECT_EQ(r[0], 32767);
  const auto small = VecI16::splat(-32000);
  const auto s = subs(small, VecI16::splat(1000));
  EXPECT_EQ(s[0], -32768);
  const auto t = adds(VecI16::splat(5), VecI16::splat(-3));
  EXPECT_EQ(t[0], 2);
}

TEST(Vec, ShiftInAndCompare) {
  std::int16_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto v = VecI16::load(buf);
  const auto s = shift_in(v, std::int16_t{-9});
  EXPECT_EQ(s[0], -9);
  EXPECT_EQ(s[1], 1);
  EXPECT_EQ(s[7], 7);
  EXPECT_TRUE(any_gt(v, VecI16::splat(7)));
  EXPECT_FALSE(any_gt(v, VecI16::splat(8)));
  EXPECT_EQ(horizontal_max(v), 8);
}

TEST(Striped, MatchesReferenceOnRandomPairs) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  for (int i = 0; i < 60; ++i) {
    const std::size_t qlen = 1 + (i * 13) % 120;
    const std::size_t tlen = 1 + (i * 29) % 150;
    const auto q = test::random_codes(qlen, 500 + i);
    const auto t = test::random_codes(tlen, 900 + i);
    const StripedProfile prof(q, m);
    const int got = striped_sw_score(prof, t, gap).score;
    const int want = sw::sw_score(q, t, m, gap);
    ASSERT_EQ(got, want) << "qlen=" << qlen << " tlen=" << tlen;
  }
}

TEST(Striped, MatchesReferenceWithGappyOptimum) {
  // Force alignments that need F-propagation across stripe boundaries:
  // cheap gaps + repetitive sequences make vertical runs optimal, which is
  // exactly what the lazy-F loop has to fix up.
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{1, 1};
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    std::vector<seq::Code> q, t;
    for (int k = 0; k < 60 + i; ++k) q.push_back(k % 3 == 0 ? 19 : 0);
    for (int k = 0; k < 40 + 2 * i; ++k)
      t.push_back(static_cast<seq::Code>(rng.uniform_int(0, 2) == 0 ? 19 : 0));
    const StripedProfile prof(q, m);
    ASSERT_EQ(striped_sw_score(prof, t, gap).score,
              sw::sw_score(q, t, m, gap))
        << i;
  }
}

TEST(Striped, LazyFRegressionCrossLaneExitCondition) {
  // Regression: with a single-vector segment (query <= 8 residues) every
  // vertical-gap propagation crosses a lane boundary, so an exit test that
  // compares the un-shifted F against the just-processed position stops one
  // lane short. Minimal case found by fuzzing (gap open 0, extend 1):
  // q = GRWGL, t = YYAGRL; optimum is GR--L vs ..GRL-ish scoring 13.
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{0, 1};
  const std::vector<seq::Code> q = {7, 1, 18, 7, 10};
  const std::vector<seq::Code> t = {17, 17, 0, 7, 1, 10};
  ASSERT_EQ(sw::sw_score(q, t, m, gap), 13);
  const StripedProfile prof(q, m);
  EXPECT_EQ(striped_sw_score(prof, t, gap).score, 13);
}

TEST(Striped, QueryShorterThanVectorWidth) {
  const auto& m = ScoringMatrix::blosum62();
  for (std::size_t qlen : {1u, 2u, 7u, 8u, 9u}) {
    const auto q = test::random_codes(qlen, qlen);
    const auto t = test::random_codes(50, 1000 + qlen);
    const StripedProfile prof(q, m);
    EXPECT_EQ(striped_sw_score(prof, t, {10, 2}).score,
              sw::sw_score(q, t, m, {10, 2}))
        << qlen;
  }
}

TEST(Striped, EmptyTargetScoresZero) {
  const auto q = test::random_codes(20, 1);
  const StripedProfile prof(q, ScoringMatrix::blosum62());
  const auto r = striped_sw_score(prof, {}, {10, 2});
  EXPECT_EQ(r.score, 0);
  EXPECT_EQ(r.lazy_f_iterations, 0u);
}

TEST(Search, ParallelSearchMatchesReferenceAndIsDeterministic) {
  const auto& m = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto query = test::random_codes(64, 3);
  const auto db = seq::lognormal_db(200, 120, 60, 4);
  ThreadPool pool2(2), pool4(4);
  const auto r2 = swps3::search(query, db, m, gap, pool2);
  const auto r4 = swps3::search(query, db, m, gap, pool4);
  EXPECT_EQ(r2.scores, r4.scores);  // thread count never changes results
  const auto want = test::reference_scores(query, db, m, gap);
  EXPECT_EQ(r2.scores, want);
  EXPECT_EQ(r2.cells, 64u * db.total_residues());
  EXPECT_GT(r2.gcups(), 0.0);
}

}  // namespace
}  // namespace cusw
