// The perf-regression gate (tools/perf_diff): workload determinism and
// round-trip, the end-to-end check against the checked-in
// perf_baseline.json, and — the acceptance criterion — that perturbing a
// single CostModel constant trips the gate.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gpusim/cost_model.h"
#include "tools/counter_diff_lib.h"
#include "tools/perf_diff_lib.h"

#ifndef CUSW_BASELINE_DIR
#error "CUSW_BASELINE_DIR must point at the checked-in baselines directory"
#endif

namespace cusw::tools {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(PerfDiff, WorkloadRoundTripsThroughBaselineJson) {
  const auto current = run_perf_workload();
  ASSERT_FALSE(current.empty());
  // Every headline key the doc promises exists.
  EXPECT_GT(current.count("raw.table1.intra_task_improved.stall_cycles.charged"),
            0u);
  EXPECT_GT(current.count("raw.fig2.inter_task.makespan_cycles"), 0u);
  EXPECT_GT(current.count("rate.table1.intra_task_original.gcups"), 0u);
  EXPECT_GT(current.count("rate.fig2.inter_task_simd.stall_share.compute"),
            0u);
  // Raw keys are whole cycle counts, so %.12g serialisation is lossless.
  for (const auto& [key, value] : current) {
    if (key.rfind("raw.", 0) == 0) {
      EXPECT_EQ(value, std::floor(value)) << key;
    }
  }

  const auto tol = default_perf_tolerances();
  const std::string text = baseline_to_json(current, tol);
  std::map<std::string, double> current2, tol2;
  std::string error;
  ASSERT_TRUE(load_baseline(text, current2, tol2, &error)) << error;
  EXPECT_EQ(tol2, tol);
  ASSERT_EQ(current2.size(), current.size());
  // Raw integer-cycle keys survive the %.12g serialisation bit for bit;
  // rate keys may lose trailing bits, which their tolerance absorbs.
  for (const auto& [key, value] : current) {
    if (key.rfind("raw.", 0) == 0) {
      ASSERT_GT(current2.count(key), 0u) << key;
      EXPECT_EQ(current2.at(key), value) << key;
    }
  }

  // Lossless round-trip means the self-diff passes at tolerance 0.
  const DiffResult r = diff_counters(current2, current, tol);
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures.front());
  EXPECT_EQ(r.compared, current.size());
}

TEST(PerfDiff, BenchDocumentFlattensNumericScalars) {
  const std::string doc = R"({
    "bench": "host_parallel_speedup",
    "workload": "swissprot-profile",
    "hardware_threads": 8,
    "parallel_threads": 8,
    "hardware_limited": false,
    "serial_wall_seconds": 4.2,
    "parallel_wall_seconds": 1.1,
    "speedup": 3.8,
    "simulated_identical": true,
    "simulated_gcups": 1.25
  })";
  std::map<std::string, double> out;
  std::string error;
  ASSERT_TRUE(load_bench_document(doc, out, &error)) << error;
  // Numeric scalars land under bench.<name>.<field>; strings and bools do
  // not become keys.
  EXPECT_EQ(out.at("bench.host_parallel_speedup.speedup"), 3.8);
  EXPECT_EQ(out.at("bench.host_parallel_speedup.serial_wall_seconds"), 4.2);
  EXPECT_EQ(out.at("bench.host_parallel_speedup.simulated_gcups"), 1.25);
  EXPECT_EQ(out.count("bench.host_parallel_speedup.workload"), 0u);
  EXPECT_EQ(out.count("bench.host_parallel_speedup.simulated_identical"), 0u);
  EXPECT_EQ(out.size(), 6u);
  // The default tolerances carry a bench.* entry so wall-clock noise does
  // not trip the gate.
  EXPECT_GT(tolerance_for(default_perf_tolerances(),
                          "bench.host_parallel_speedup.speedup"),
            0.0);
}

TEST(PerfDiff, BenchDocumentDropsWallClockKeysWhenHardwareLimited) {
  const std::string doc = R"({
    "bench": "host_parallel_speedup",
    "hardware_threads": 1,
    "parallel_threads": 1,
    "hardware_limited": true,
    "serial_wall_seconds": 4.2,
    "parallel_wall_seconds": 4.3,
    "speedup": 0.983,
    "simulated_gcups": 1.25
  })";
  std::map<std::string, double> out;
  std::string error;
  ASSERT_TRUE(load_bench_document(doc, out, &error)) << error;
  // The meaningless 1-hardware-thread "speedup" and its wall-clock inputs
  // must not become gated keys; the simulated figures still do.
  EXPECT_EQ(out.count("bench.host_parallel_speedup.speedup"), 0u);
  EXPECT_EQ(out.count("bench.host_parallel_speedup.serial_wall_seconds"), 0u);
  EXPECT_EQ(out.count("bench.host_parallel_speedup.parallel_wall_seconds"),
            0u);
  EXPECT_EQ(out.at("bench.host_parallel_speedup.simulated_gcups"), 1.25);
  EXPECT_EQ(out.at("bench.host_parallel_speedup.hardware_threads"), 1.0);
}

TEST(PerfDiff, BenchDocumentRejectsMalformedJson) {
  std::map<std::string, double> out;
  std::string error;
  EXPECT_FALSE(load_bench_document("not json", out, &error));
  EXPECT_FALSE(load_bench_document("[1, 2]", out, &error));
  EXPECT_TRUE(out.empty());
}

TEST(PerfDiff, CanonicalWorkloadMatchesCheckedInBaseline) {
  std::map<std::string, double> base, tol;
  std::string error;
  const std::string path =
      std::string(CUSW_BASELINE_DIR) + "/perf_baseline.json";
  ASSERT_TRUE(load_baseline(read_file(path), base, tol, &error))
      << path << ": " << error;
  ASSERT_FALSE(base.empty());

  const DiffResult r = diff_counters(run_perf_workload(), base, tol);
  std::string joined;
  for (const auto& f : r.failures) joined += f + "\n";
  EXPECT_TRUE(r.ok) << joined;
  EXPECT_EQ(r.compared, base.size());
}

TEST(PerfDiff, PerturbedCostModelTripsTheGate) {
  std::map<std::string, double> base, tol;
  std::string error;
  const std::string path =
      std::string(CUSW_BASELINE_DIR) + "/perf_baseline.json";
  ASSERT_TRUE(load_baseline(read_file(path), base, tol, &error)) << error;

  // One extra cycle per memory transaction — the kind of "small" cost
  // model tweak the gate exists to catch. The transaction-heavy original
  // kernel's raw charged cycles must drift outside tolerance 0.
  gpusim::CostModel cost;
  cost.txn_issue_cycles += 1.0;
  const DiffResult r = diff_counters(run_perf_workload(cost), base, tol);
  EXPECT_FALSE(r.ok);
  std::string joined;
  for (const auto& f : r.failures) joined += f + "\n";
  EXPECT_NE(
      joined.find("raw.table1.intra_task_original.stall_cycles.charged"),
      std::string::npos)
      << joined;
}

}  // namespace
}  // namespace cusw::tools
