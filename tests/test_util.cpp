// util: RNG determinism and distributions, online stats, histogram,
// log-normal fitting, inverse normal CDF, table rendering, thread pool, CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace cusw {
namespace {

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(CUSW_REQUIRE(false, "nope"), std::invalid_argument);
  EXPECT_NO_THROW(CUSW_REQUIRE(true, ""));
  EXPECT_THROW(CUSW_CHECK(false, "bug"), std::logic_error);
}

TEST(Check, CheckedNarrow) {
  EXPECT_EQ(checked_narrow<std::int8_t>(127), 127);
  EXPECT_EQ(checked_narrow<std::int8_t>(-128), -128);
  EXPECT_THROW(checked_narrow<std::int8_t>(128), std::range_error);
  EXPECT_THROW(checked_narrow<std::uint8_t>(-1), std::range_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  OnlineStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMatchesFittedParams) {
  const auto p = lognormal_from_mean_stddev(360.0, 300.0);
  Rng rng(13);
  OnlineStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.lognormal(p.mu, p.sigma));
  EXPECT_NEAR(st.mean(), 360.0, 5.0);
  EXPECT_NEAR(st.stddev(), 300.0, 15.0);
}

TEST(Stats, OnlineStatsBasics) {
  OnlineStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(st.min(), 2.0);
  EXPECT_EQ(st.max(), 9.0);
}

TEST(Stats, HistogramSurfacesOutliersInsteadOfClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(0.5);
  h.add(9.5);
  h.add(100.0);
  EXPECT_EQ(h.total(), 4u);
  // Out-of-range samples land in explicit underflow/overflow counters,
  // never silently in the edge bins.
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.in_range(), 2u);
  // The totals invariant: every sample is accounted for exactly once.
  std::uint64_t binned = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.bin(i);
  EXPECT_EQ(binned + h.underflow() + h.overflow(), h.total());
  // The upper bound itself is out of range ([lo, hi) is half-open).
  h.add(10.0);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Stats, LogNormalTailFitHitsTarget) {
  // Swiss-Prot-like: mean 360, 0.12% of mass above 3072.
  const auto p = lognormal_from_mean_tail(360.0, 3072.0, 0.0012);
  EXPECT_NEAR(p.mean(), 360.0, 1.0);
  EXPECT_NEAR(p.tail_above(3072.0), 0.0012, 1e-5);
}

TEST(Stats, LogNormalTailFitRejectsUnreachable) {
  EXPECT_THROW(lognormal_from_mean_tail(360.0, 3072.0, 0.4),
               std::invalid_argument);
  EXPECT_THROW(lognormal_from_mean_tail(360.0, 100.0, 0.01),
               std::invalid_argument);
}

TEST(Stats, InverseNormalCdfRoundTrips) {
  for (double p : {0.001, 0.01, 0.2, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-6) << p;
  }
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_GT(inverse_normal_cdf(0.999), 3.0);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "gcups"});
  t.add_row({std::string("a"), 1.25});
  t.add_row({std::string("bb"), std::int64_t{7}});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name | gcups |"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,gcups\na,1.25\nbb,7\n"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), std::invalid_argument);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int count = 0;
  std::mutex mu;
  pool.parallel_for(1, [&](std::size_t) {
    std::lock_guard<std::mutex> lk(mu);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ThreadPool pool(0);  // 0 requested threads still yields a working pool
  int ran = 0;
  pool.parallel_for(1, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, RunIndexedVisitsEveryIndexOnceWithValidWorkerIds) {
  ThreadPool pool(4);
  const std::size_t workers = 3;
  std::vector<std::atomic<int>> hits(500);
  std::atomic<bool> bad_worker{false};
  pool.run_indexed(500, workers, [&](std::size_t worker, std::size_t i) {
    if (worker >= workers) bad_worker = true;
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(bad_worker.load());
}

TEST(ThreadPool, RunIndexedSerialFallbackRunsOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.run_indexed(8, 1, [&](std::size_t worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, RunIndexedPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_indexed(64, 4,
                       [](std::size_t, std::size_t i) {
                         if (i == 5) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, NestedRunIndexedOnSharedPoolCompletes) {
  // A parallel pipeline issuing parallel launches nests run_indexed calls
  // on one pool. With a pool smaller than the nesting demands, callers
  // must make progress themselves rather than deadlock waiting for queued
  // helpers.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.run_indexed(6, 4, [&](std::size_t, std::size_t) {
    pool.run_indexed(8, 4,
                     [&](std::size_t, std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 6 * 8);
}

TEST(Parallelism, HonorsCuswThreadsEnvVar) {
  const char* saved = std::getenv("CUSW_THREADS");
  const std::string restore = saved ? saved : "";

  setenv("CUSW_THREADS", "8", 1);
  EXPECT_EQ(util::parallelism(), 8u);
  setenv("CUSW_THREADS", "1", 1);
  EXPECT_EQ(util::parallelism(), 1u);
  setenv("CUSW_THREADS", "0", 1);  // 0 = serial fallback
  EXPECT_EQ(util::parallelism(), 1u);
  setenv("CUSW_THREADS", "not-a-number", 1);
  EXPECT_EQ(util::parallelism(), ThreadPool::default_thread_count());
  unsetenv("CUSW_THREADS");
  EXPECT_EQ(util::parallelism(), ThreadPool::default_thread_count());

  if (saved)
    setenv("CUSW_THREADS", restore.c_str(), 1);
  else
    unsetenv("CUSW_THREADS");
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--n=42", "--name=abc", "--flag",
                        "--ratio=2.5", "--off=false"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_EQ(cli.get("name", ""), "abc");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("off", true));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), std::invalid_argument);
}

}  // namespace
}  // namespace cusw
