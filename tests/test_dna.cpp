// DNA/RNA workloads end to end — the paper's intro: "a query sequence of
// nucleotides (DNA, RNA) or amino acids (proteins) is compared to a large
// database". Everything generic over the alphabet must work with the DNA
// alphabet and a match/mismatch matrix.
#include <gtest/gtest.h>

#include "cudasw/pipeline.h"
#include "swps3/striped_sw.h"
#include "test_helpers.h"

namespace cusw {
namespace {

seq::SequenceDB random_dna_db(std::size_t n, std::size_t max_len,
                              std::uint64_t seed) {
  Rng rng(seed);
  seq::SequenceDB db;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<seq::Code> codes;
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_len)));
    for (std::size_t k = 0; k < len; ++k) {
      codes.push_back(static_cast<seq::Code>(rng.uniform_int(0, 3)));
    }
    db.add(seq::Sequence("dna_" + std::to_string(i), std::move(codes)));
  }
  return db;
}

TEST(Dna, PipelineScansNucleotideDatabase) {
  const auto& dna = seq::Alphabet::dna();
  const auto matrix = sw::ScoringMatrix::match_mismatch(dna, 2, -3);
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));

  const auto q = dna.encode("ACGTACGTTTGACCAGTACGTAGCATCG");
  const auto db = random_dna_db(40, 300, 7);
  cudasw::SearchConfig cfg;
  cfg.threshold = 150;
  cfg.gap = {5, 2};
  const auto report = cudasw::search(dev, q, db, matrix, cfg);
  const auto want = test::reference_scores(q, db, matrix, cfg.gap);
  EXPECT_EQ(report.scores, want);
}

TEST(Dna, StripedKernelHandlesSmallAlphabet) {
  const auto& dna = seq::Alphabet::dna();
  const auto matrix = sw::ScoringMatrix::match_mismatch(dna, 1, -1);
  const auto q = dna.encode("ACGTGGGTTACGATCGATCG");
  const auto db = random_dna_db(30, 200, 9);
  const swps3::StripedProfile prof(q, matrix);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(swps3::striped_sw_score(prof, db[i].residues, {3, 1}).score,
              sw::sw_score(q, db[i].residues, matrix, {3, 1}))
        << i;
  }
}

TEST(Dna, ExactRepeatFindsPerfectScore) {
  const auto& dna = seq::Alphabet::dna();
  const auto matrix = sw::ScoringMatrix::match_mismatch(dna, 2, -3);
  const auto q = dna.encode("TTAGGCATCGA");
  // Embed the query exactly inside a longer sequence.
  const auto t = dna.encode("CCCCCTTAGGCATCGACCCCC");
  EXPECT_EQ(sw::sw_score(q, t, matrix, {5, 2}),
            2 * static_cast<int>(q.size()));
}

}  // namespace
}  // namespace cusw
