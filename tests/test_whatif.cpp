// Causal what-if plans (obs/whatif.h, DESIGN.md §14): plan parsing and
// precedence, the byte-exactness contract (factor 1.0 is a no-op, scores
// never change, Σ reasons == charged at every factor, removed ticks
// reconcile exactly), provenance stamping, and bit-identical results
// across CUSW_THREADS and memo on/off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/launch.h"
#include "gpusim/stall.h"
#include "obs/capsule.h"
#include "obs/metrics.h"
#include "obs/whatif.h"
#include "tools/perf_explain_lib.h"

namespace cusw {
namespace {

namespace whatif = obs::whatif;

/// Scoped environment override that restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_prev_)
      setenv(name_.c_str(), prev_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_prev_ = false;
  std::string prev_;
};

/// Clears the programmatic plan on scope exit, whatever the test did.
struct PlanGuard {
  ~PlanGuard() { whatif::clear_plan(); }
};

/// One fresh-device run of the canonical workload, shrunk for tests.
cudasw::KernelRun run_workload() {
  static const tools::CanonicalWorkload& w =
      *new tools::CanonicalWorkload(tools::canonical_workload(400));
  gpusim::Device dev(w.spec);
  return cudasw::run_intra_task_original(dev, w.query, w.longs, *w.matrix,
                                         w.gap, {});
}

std::vector<std::uint64_t> stall_vector(const gpusim::StallBreakdown& b) {
  std::vector<std::uint64_t> v;
  gpusim::for_each_stall_reason(
      b, [&](const char*, std::uint64_t x) { v.push_back(x); });
  return v;
}

std::uint64_t reason_sum(const gpusim::StallBreakdown& b) {
  std::uint64_t sum = 0;
  gpusim::for_each_stall_reason(
      b, [&](const char*, std::uint64_t x) { sum += x; });
  return sum;
}

std::uint64_t site_tick_sum(const gpusim::LaunchStats& s) {
  std::uint64_t sum = 0;
  for (const gpusim::SiteCounters& sc : s.sites) sum += sc.counters.stall_ticks;
  return sum;
}

TEST(WhatIfPlan, ParsesEveryTargetKind) {
  const whatif::Plan plan = whatif::parse_plan(
      "site:wavefront.load@global*0.5,site:x*0,stall:sync*2,"
      "kernel:intra_task_original*0.25,param:dram_latency*0.75");
  ASSERT_EQ(plan.targets.size(), 5u);
  EXPECT_EQ(plan.targets[0].kind, whatif::Target::Kind::kSite);
  EXPECT_EQ(plan.targets[0].name, "wavefront.load");
  EXPECT_EQ(plan.targets[0].space, "global");
  EXPECT_EQ(plan.targets[0].factor, 0.5);
  EXPECT_EQ(plan.targets[1].space, "");  // any space
  EXPECT_EQ(plan.targets[2].kind, whatif::Target::Kind::kStall);
  EXPECT_EQ(plan.targets[3].kind, whatif::Target::Kind::kKernel);
  EXPECT_EQ(plan.targets[4].kind, whatif::Target::Kind::kParam);
  // The canonical spec round-trips.
  EXPECT_EQ(whatif::parse_plan(plan.spec).spec, plan.spec);
}

TEST(WhatIfPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(whatif::parse_plan("site:x"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("site:x*"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("site:x*-1"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("bogus:x*1"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("nocolon*1"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("stall:naptime*1"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("site:x@shared*1"), std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("param:warp_size*1"),
               std::invalid_argument);
  EXPECT_THROW(whatif::parse_plan("site:*1"), std::invalid_argument);
  EXPECT_TRUE(whatif::parse_plan("").empty());
  EXPECT_TRUE(whatif::parse_plan(",,").empty());
}

TEST(WhatIfPlan, EverySimulatorStallReasonIsAddressable) {
  // The parser mirrors gpusim/stall.h's reason list (obs sits below
  // gpusim); this breaks if a reason is added there but not here.
  gpusim::StallBreakdown b;
  gpusim::for_each_stall_reason(b, [](const char* name, std::uint64_t) {
    EXPECT_NO_THROW(
        whatif::parse_plan(std::string("stall:") + name + "*0.5"))
        << name;
  });
}

TEST(WhatIfPlan, ProgrammaticPlanWinsOverEnvironment) {
  PlanGuard guard;
  EnvGuard env("CUSW_WHATIF", "stall:sync*0.5");
  const whatif::Plan* p = whatif::active_plan();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->spec, "stall:sync*0.5");
  whatif::set_plan(whatif::parse_plan("stall:compute*0.25"));
  p = whatif::active_plan();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->spec, "stall:compute*0.25");
  whatif::clear_plan();
  p = whatif::active_plan();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->spec, "stall:sync*0.5");
}

TEST(WhatIfPlan, NoPlanWhenEnvironmentUnset) {
  whatif::clear_plan();
  unsetenv("CUSW_WHATIF");
  EXPECT_EQ(whatif::active_plan(), nullptr);
}

TEST(WhatIfPlan, MalformedEnvironmentThrowsOnFirstUse) {
  PlanGuard guard;
  EnvGuard env("CUSW_WHATIF", "stall:naptime*1");
  EXPECT_THROW(whatif::active_plan(), std::invalid_argument);
}

TEST(WhatIfSim, FactorOneIsByteIdenticalNoOp) {
  PlanGuard guard;
  whatif::clear_plan();
  const cudasw::KernelRun base = run_workload();
  whatif::set_plan(whatif::parse_plan(
      "site:wavefront.load@global*1,stall:compute*1,stall:occupancy_idle*1,"
      "kernel:intra_task_original*1,param:dram_latency*1"));
  const cudasw::KernelRun same = run_workload();
  EXPECT_EQ(base.scores, same.scores);
  EXPECT_EQ(stall_vector(base.stats.stall), stall_vector(same.stats.stall));
  EXPECT_EQ(base.stats.stall.charged, same.stats.stall.charged);
  EXPECT_EQ(base.stats.total_block_ticks, same.stats.total_block_ticks);
  EXPECT_EQ(base.stats.seconds, same.stats.seconds);  // exact, not approx
  EXPECT_EQ(base.stats.makespan_cycles, same.stats.makespan_cycles);
  EXPECT_EQ(same.stats.whatif_removed_ticks, 0);
  ASSERT_EQ(base.stats.sites.size(), same.stats.sites.size());
  for (std::size_t i = 0; i < base.stats.sites.size(); ++i) {
    EXPECT_EQ(base.stats.sites[i].counters.stall_ticks,
              same.stats.sites[i].counters.stall_ticks)
        << i;
  }
}

TEST(WhatIfSim, PartitionInvariantsHoldAtEveryFactor) {
  PlanGuard guard;
  whatif::clear_plan();
  const cudasw::KernelRun base = run_workload();
  ASSERT_EQ(reason_sum(base.stats.stall), base.stats.stall.charged);

  const char* plans[] = {
      "site:wavefront.load@global*0.5",
      "site:wavefront.load@global*0",
      "site:wavefront.load*0.25",  // any-space form
      "stall:compute*0",
      "stall:occupancy_idle*0",
      "stall:exposed_latency*0.5",
      "kernel:intra_task_original*0.25",
      "site:wavefront.load@global*0.5,stall:sync*0",
      "site:wavefront.load@global*2",  // virtual slowdown
  };
  for (const char* spec : plans) {
    whatif::set_plan(whatif::parse_plan(spec));
    const cudasw::KernelRun run = run_workload();
    // The score path is untouched: a what-if run answers only "what
    // would the clock have said".
    EXPECT_EQ(run.scores, base.scores) << spec;
    // Σ reasons == charged, bit-for-bit, at every factor.
    EXPECT_EQ(reason_sum(run.stats.stall), run.stats.stall.charged) << spec;
    // Site rows still decompose the memory reasons exactly.
    EXPECT_EQ(site_tick_sum(run.stats), run.stats.stall.memory_ticks())
        << spec;
    // Removed ticks reconcile: base charge minus scaled charge.
    EXPECT_EQ(static_cast<std::int64_t>(base.stats.stall.charged) -
                  static_cast<std::int64_t>(run.stats.stall.charged),
              run.stats.whatif_removed_ticks)
        << spec;
  }

  // Virtual slowdowns add ticks: removed is negative.
  whatif::set_plan(whatif::parse_plan("site:wavefront.load@global*2"));
  const cudasw::KernelRun slow = run_workload();
  EXPECT_LT(slow.stats.whatif_removed_ticks, 0);
  EXPECT_GT(slow.stats.stall.charged, base.stats.stall.charged);
}

TEST(WhatIfSim, ParamTargetRepricesWithoutTickAccounting) {
  PlanGuard guard;
  whatif::clear_plan();
  const cudasw::KernelRun base = run_workload();
  whatif::set_plan(whatif::parse_plan("param:dram_latency*0.5"));
  const cudasw::KernelRun run = run_workload();
  EXPECT_EQ(run.scores, base.scores);
  // The parameter reprices windows through the cost model rather than
  // scaling recorded ticks, so the removed-ticks ledger stays empty...
  EXPECT_EQ(run.stats.whatif_removed_ticks, 0);
  // ...but the partition invariant still holds for whatever was charged.
  EXPECT_EQ(reason_sum(run.stats.stall), run.stats.stall.charged);
}

TEST(WhatIfSim, BitIdenticalAcrossThreadsAndMemo) {
  PlanGuard guard;
  whatif::set_plan(
      whatif::parse_plan("site:wavefront.load@global*0.5,stall:sync*0"));
  std::vector<std::uint64_t> first_stall;
  std::vector<int> first_scores;
  double first_seconds = 0.0;
  bool have_first = false;
  for (const char* memo : {"0", "1"}) {
    for (const char* threads : {"1", "4"}) {
      EnvGuard mg("CUSW_SIM_MEMO", memo);
      EnvGuard tg("CUSW_THREADS", threads);
      const cudasw::KernelRun run = run_workload();
      if (!have_first) {
        first_stall = stall_vector(run.stats.stall);
        first_scores = run.scores;
        first_seconds = run.stats.seconds;
        have_first = true;
        continue;
      }
      EXPECT_EQ(stall_vector(run.stats.stall), first_stall)
          << "memo=" << memo << " threads=" << threads;
      EXPECT_EQ(run.scores, first_scores)
          << "memo=" << memo << " threads=" << threads;
      EXPECT_EQ(run.stats.seconds, first_seconds)
          << "memo=" << memo << " threads=" << threads;
    }
  }
}

TEST(WhatIfSim, MemoKeyIsSaltedWithThePlan) {
  PlanGuard guard;
  EnvGuard memo("CUSW_SIM_MEMO", "1");
  // Same workload, alternating plans: if the memo replayed blocks across
  // plans, the second unplanned run would see the scaled numbers.
  whatif::clear_plan();
  const cudasw::KernelRun base = run_workload();
  whatif::set_plan(whatif::parse_plan("site:wavefront.load@global*0.5"));
  const cudasw::KernelRun scaled = run_workload();
  whatif::clear_plan();
  const cudasw::KernelRun again = run_workload();
  EXPECT_LT(scaled.stats.stall.charged, base.stats.stall.charged);
  EXPECT_EQ(again.stats.stall.charged, base.stats.stall.charged);
  EXPECT_EQ(stall_vector(again.stats.stall), stall_vector(base.stats.stall));
}

TEST(WhatIfSim, CapsuleProvenanceStampsActivePlan) {
  PlanGuard guard;
  whatif::set_plan(whatif::parse_plan("stall:sync*0.5"));
  const std::string stamped =
      obs::capsule_to_json(obs::Registry::global().snapshot(), "stamped");
  EXPECT_NE(stamped.find("\"whatif\": \"stall:sync*0.5\""),
            std::string::npos);
  whatif::clear_plan();
  unsetenv("CUSW_WHATIF");
  const std::string clean =
      obs::capsule_to_json(obs::Registry::global().snapshot(), "clean");
  EXPECT_EQ(clean.find("\"whatif\""), std::string::npos);
}

}  // namespace
}  // namespace cusw
