// Per-site memory-hierarchy attribution (gpusim/site.h): interning
// semantics, the exact sum invariant (site rows reproduce the space
// totals bit for bit) for all four CUDASW++ kernels serial and parallel,
// and the cusw-counters report built from the registry mirror.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cudasw/inter_task.h"
#include "cudasw/inter_task_simd.h"
#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/launch.h"
#include "gpusim/report.h"
#include "gpusim/site.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "test_helpers.h"

namespace cusw {
namespace {

class ThreadsGuard {
 public:
  explicit ThreadsGuard(const char* value) {
    const char* prev = std::getenv("CUSW_THREADS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("CUSW_THREADS", value, 1);
  }
  ~ThreadsGuard() {
    if (had_prev_)
      setenv("CUSW_THREADS", prev_.c_str(), 1);
    else
      unsetenv("CUSW_THREADS");
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

std::vector<std::pair<std::string, std::uint64_t>> fields(
    const gpusim::SpaceCounters& c) {
  std::vector<std::pair<std::string, std::uint64_t>> v;
  gpusim::for_each_space_counter_field(
      c, [&](const char* n, std::uint64_t x) { v.emplace_back(n, x); });
  return v;
}

/// The tentpole invariant: for every space, summing the site attribution
/// rows reproduces the space totals exactly, field for field.
void expect_sites_sum_to_totals(const gpusim::LaunchStats& s) {
  for (const gpusim::Space sp :
       {gpusim::Space::Global, gpusim::Space::Local, gpusim::Space::Texture}) {
    gpusim::SpaceCounters sum;
    for (const gpusim::SiteCounters& sc : s.sites) {
      if (sc.space == sp) sum += sc.counters;
    }
    EXPECT_EQ(fields(sum), fields(s.counters_for(sp)))
        << gpusim::space_name(sp);
  }
}

void expect_site_present(const gpusim::LaunchStats& s, const char* name,
                         gpusim::Space sp) {
  const gpusim::SpaceCounters* c = s.find_site(name, sp);
  ASSERT_NE(c, nullptr) << name << " in " << gpusim::space_name(sp);
  EXPECT_GT(c->requests, 0u) << name;
}

gpusim::Device one_sm_c1060() {
  auto spec = gpusim::DeviceSpec::tesla_c1060();
  return gpusim::Device(spec.scaled(1.0 / spec.sm_count));
}

/// A few over-threshold sequences for the intra-task kernels.
seq::SequenceDB long_db(std::uint64_t seed) {
  seq::SequenceDB db;
  Rng rng(seed);
  for (const std::size_t len : {3200, 4000, 4800, 3600})
    db.add(seq::random_protein(len, rng));
  return db;
}

/// A short-sequence group for the inter-task kernels.
seq::SequenceDB short_db(std::uint64_t seed) {
  seq::SequenceDB db = seq::lognormal_db(64, 180, 60, seed);
  db.sort_by_length();
  return db;
}

TEST(Sites, InterningIsStableAndNamed) {
  const gpusim::SiteId a = gpusim::intern_site("test.site_a");
  const gpusim::SiteId b = gpusim::intern_site("test.site_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, gpusim::intern_site("test.site_a"));
  EXPECT_EQ(gpusim::site_name(a), "test.site_a");
  EXPECT_EQ(gpusim::site_name(gpusim::kSiteUnattributed), "unattributed");
  EXPECT_GE(gpusim::site_count(), 3u);
}

TEST(Sites, ImprovedIntraKernelSitesSumToTotals) {
  auto dev = one_sm_c1060();
  const auto db = long_db(41);
  const auto query = test::random_codes(1500, 42);  // two strips
  const auto run = cudasw::run_intra_task_improved(
      dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, {});
  expect_sites_sum_to_totals(run.stats);
  expect_site_present(run.stats, "profile.tex_fetch", gpusim::Space::Texture);
  expect_site_present(run.stats, "db.symbol_load", gpusim::Space::Global);
  expect_site_present(run.stats, "strip.boundary_load", gpusim::Space::Global);
  expect_site_present(run.stats, "strip.boundary_store",
                      gpusim::Space::Global);
  // The default configuration spills nothing to local memory.
  EXPECT_EQ(run.stats.find_site("local.spill", gpusim::Space::Local), nullptr);
  EXPECT_EQ(run.stats.local.transactions, 0u);
}

TEST(Sites, ImprovedIntraSpillVariantAttributesLocalTraffic) {
  auto dev = one_sm_c1060();
  const auto db = long_db(43);
  const auto query = test::random_codes(600, 44);
  cudasw::ImprovedIntraParams params;
  params.deep_swap = false;  // §III-A: registers demoted to local memory
  const auto run = cudasw::run_intra_task_improved(
      dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, params);
  expect_sites_sum_to_totals(run.stats);
  expect_site_present(run.stats, "local.spill", gpusim::Space::Local);
  const gpusim::SpaceCounters* spill =
      run.stats.find_site("local.spill", gpusim::Space::Local);
  // The spill site owns ALL local traffic: its row equals the space total.
  EXPECT_EQ(fields(*spill), fields(run.stats.local));
}

TEST(Sites, OriginalIntraKernelSitesSumToTotals) {
  auto dev = one_sm_c1060();
  const auto db = long_db(45);
  const auto query = test::random_codes(567, 46);
  const auto run = cudasw::run_intra_task_original(
      dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, {});
  expect_sites_sum_to_totals(run.stats);
  expect_site_present(run.stats, "wavefront.load", gpusim::Space::Global);
  expect_site_present(run.stats, "wavefront.store", gpusim::Space::Global);
  expect_site_present(run.stats, "query.symbol_load", gpusim::Space::Global);
  expect_site_present(run.stats, "db.symbol_load", gpusim::Space::Global);
  // The wavefront working set dominates, as Table I reports.
  const auto* load =
      run.stats.find_site("wavefront.load", gpusim::Space::Global);
  const auto* db_site =
      run.stats.find_site("db.symbol_load", gpusim::Space::Global);
  EXPECT_GT(load->transactions, db_site->transactions);
}

TEST(Sites, InterTaskKernelSitesSumToTotals) {
  auto dev = one_sm_c1060();
  const auto db = short_db(47);
  const auto query = test::random_codes(120, 48);
  const auto run = cudasw::run_inter_task(
      dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, {});
  expect_sites_sum_to_totals(run.stats);
  expect_site_present(run.stats, "profile.tex_fetch", gpusim::Space::Texture);
  expect_site_present(run.stats, "db.symbol_load", gpusim::Space::Global);
  expect_site_present(run.stats, "row.load", gpusim::Space::Global);
  expect_site_present(run.stats, "row.store", gpusim::Space::Global);
  expect_site_present(run.stats, "score.store", gpusim::Space::Global);
}

TEST(Sites, InterTaskSimdKernelSitesSumToTotals) {
  auto dev = one_sm_c1060();
  const auto db = short_db(49);
  const auto query = test::random_codes(100, 50);
  const auto run = cudasw::run_inter_task_simd(
      dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, {});
  expect_sites_sum_to_totals(run.stats);
  expect_site_present(run.stats, "profile.tex_fetch", gpusim::Space::Texture);
  expect_site_present(run.stats, "db.symbol_load", gpusim::Space::Global);
  expect_site_present(run.stats, "score.store", gpusim::Space::Global);
}

TEST(Sites, SiteCountersAreBitIdenticalAcrossThreadCounts) {
  const auto db = long_db(51);
  const auto query = test::random_codes(1500, 52);
  const auto run_at = [&](const char* threads) {
    ThreadsGuard guard(threads);
    auto dev = one_sm_c1060();
    return cudasw::run_intra_task_improved(
        dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, {});
  };
  const auto serial = run_at("1");
  expect_sites_sum_to_totals(serial.stats);
  for (const char* threads : {"2", "8"}) {
    const auto parallel = run_at(threads);
    // Same rows in the same order (block-index-order reduction), same
    // values bit for bit — attribution is part of the determinism
    // contract, not just the aggregates.
    ASSERT_EQ(parallel.stats.sites.size(), serial.stats.sites.size());
    for (std::size_t i = 0; i < serial.stats.sites.size(); ++i) {
      EXPECT_EQ(parallel.stats.sites[i].site, serial.stats.sites[i].site);
      EXPECT_EQ(parallel.stats.sites[i].space, serial.stats.sites[i].space);
      EXPECT_EQ(fields(parallel.stats.sites[i].counters),
                fields(serial.stats.sites[i].counters));
    }
  }
}

TEST(Sites, BreakdownJsonIsValidAndSorted) {
  auto dev = one_sm_c1060();
  const auto db = long_db(53);
  const auto query = test::random_codes(1500, 54);
  const auto run = cudasw::run_intra_task_improved(
      dev, query, db, sw::ScoringMatrix::blosum62(), {10, 2}, {});
  const std::string json = gpusim::site_breakdown_json(run.stats);
  obs::json::Value v;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, v, &error)) << error << "\n" << json;
  ASSERT_EQ(v.kind, obs::json::Value::Kind::kArray);
  ASSERT_EQ(v.array.size(), run.stats.sites.size());
  std::string prev;
  for (const auto& row : v.array) {
    const obs::json::Value* site = row.find("site");
    ASSERT_NE(site, nullptr);
    EXPECT_GE(site->string, prev);  // sorted by site name
    prev = site->string;
    ASSERT_NE(row.find("transactions"), nullptr);
    ASSERT_NE(row.find("requests"), nullptr);
  }
}

// The acceptance gate: the CUSW_COUNTERS report (built from the registry
// mirror, not from LaunchStats) shows per-site rows for both intra-task
// kernels, and summing them per space is bit-identical to the aggregate
// LaunchStats.
TEST(Sites, CountersReportMatchesLaunchStatsForBothIntraKernels) {
  auto dev = one_sm_c1060();
  const auto db = long_db(55);
  const auto query = test::random_codes(1500, 56);
  const auto& matrix = sw::ScoringMatrix::blosum62();

  const obs::Snapshot before = obs::Registry::global().snapshot();
  const auto imp =
      cudasw::run_intra_task_improved(dev, query, db, matrix, {10, 2}, {});
  const auto orig =
      cudasw::run_intra_task_original(dev, query, db, matrix, {10, 2}, {});
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);

  // The JSON document parses and covers both kernels.
  const std::string json = obs::counters_to_json(delta);
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(json, doc, &error)) << error;
  EXPECT_NE(json.find("intra_task_improved"), std::string::npos);
  EXPECT_NE(json.find("intra_task_original"), std::string::npos);
  EXPECT_NE(json.find("profile.tex_fetch"), std::string::npos);
  EXPECT_NE(json.find("wavefront.load"), std::string::npos);

  // Reassembled per-site counters sum to the LaunchStats aggregates.
  const auto check = [&](const std::string& label,
                         const gpusim::LaunchStats& stats) {
    for (const obs::KernelCounters& k : obs::collect_kernel_counters(delta)) {
      if (k.label != label) continue;
      EXPECT_EQ(k.cells, label == "intra_task_improved" ? imp.cells
                                                        : orig.cells);
      for (const gpusim::Space sp : {gpusim::Space::Global,
                                     gpusim::Space::Local,
                                     gpusim::Space::Texture}) {
        std::map<std::string, std::uint64_t> sum;
        for (const auto& [key, f] : k.sites) {
          if (key.second != gpusim::space_name(sp)) continue;
          for (const auto& [fname, v] : f) sum[fname] += v;
        }
        gpusim::for_each_space_counter_field(
            stats.counters_for(sp), [&](const char* n, std::uint64_t v) {
              EXPECT_EQ(sum[n], v) << label << " " << gpusim::space_name(sp)
                                   << " " << n;
            });
      }
      return;
    }
    FAIL() << label << " missing from counters report";
  };
  check("intra_task_improved", imp.stats);
  check("intra_task_original", orig.stats);

  // The ncu-style table renders rows for the annotated sites.
  const std::string table = obs::format_counters_table(delta);
  EXPECT_NE(table.find("db.symbol_load"), std::string::npos) << table;
  EXPECT_NE(table.find("(total)"), std::string::npos) << table;
}

}  // namespace
}  // namespace cusw
