// Randomised cross-validation: every engine in the repository must produce
// identical optimal local-alignment scores on randomly drawn workloads and
// randomly drawn kernel configurations. Seeded and deterministic.
#include <gtest/gtest.h>

#include "cudasw/pipeline.h"
#include "swps3/striped8.h"
#include "sw/banded.h"
#include "sw/linear_align.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using sw::GapPenalty;
using sw::ScoringMatrix;

TEST(Fuzz, AllEnginesAgreeOnRandomWorkloads) {
  Rng rng(0xF022);
  const auto& blosum62 = ScoringMatrix::blosum62();
  const auto& blosum50 = ScoringMatrix::blosum50();

  for (int iter = 0; iter < 25; ++iter) {
    const auto& matrix = (iter % 3 == 0) ? blosum50 : blosum62;
    const GapPenalty gap{static_cast<int>(rng.uniform_int(1, 14)),
                         static_cast<int>(rng.uniform_int(1, 4))};
    const auto qlen = static_cast<std::size_t>(rng.uniform_int(1, 280));
    const auto query = seq::random_protein(qlen, rng).residues;

    seq::SequenceDB db;
    const auto n_seqs = static_cast<std::size_t>(rng.uniform_int(1, 12));
    for (std::size_t s = 0; s < n_seqs; ++s) {
      db.add(seq::random_protein(
          static_cast<std::size_t>(rng.uniform_int(1, 400)), rng));
    }
    const auto want = test::reference_scores(query, db, matrix, gap);

    // Random device + kernel configuration.
    gpusim::Device dev(rng.uniform01() < 0.5
                           ? gpusim::DeviceSpec::tesla_c1060().scaled(0.1)
                           : gpusim::DeviceSpec::tesla_c2050().scaled(0.1));
    cudasw::ImprovedIntraParams ip;
    ip.threads_per_block = static_cast<int>(rng.uniform_int(1, 8)) * 8;
    ip.tile_height = rng.uniform01() < 0.5 ? 4 : 8;
    ip.tile_width = static_cast<int>(rng.uniform_int(1, 3));
    ip.deep_swap = rng.uniform01() < 0.8;
    ip.unroll_profile_loop = rng.uniform01() < 0.8;
    ip.packed_profile = ip.tile_height % 4 == 0 && rng.uniform01() < 0.8;
    ip.coalesced_strip_io = rng.uniform01() < 0.3;
    ip.persistent_pipeline = rng.uniform01() < 0.3;

    const auto imp =
        cudasw::run_intra_task_improved(dev, query, db, matrix, gap, ip);
    EXPECT_EQ(imp.scores, want) << "improved, iter " << iter;

    cudasw::OriginalIntraParams op;
    op.threads_per_block = static_cast<int>(rng.uniform_int(1, 8)) * 32;
    const auto orig =
        cudasw::run_intra_task_original(dev, query, db, matrix, gap, op);
    EXPECT_EQ(orig.scores, want) << "original, iter " << iter;

    cudasw::InterTaskParams ep;
    ep.threads_per_block = static_cast<int>(rng.uniform_int(1, 4)) * 32;
    const auto inter = cudasw::run_inter_task(dev, query, db, matrix, gap, ep);
    EXPECT_EQ(inter.scores, want) << "inter, iter " << iter;

    // CPU engines.
    const swps3::StripedProfile prof16(query, matrix);
    const swps3::StripedEngine engine(query, matrix, gap);
    for (std::size_t s = 0; s < db.size(); ++s) {
      EXPECT_EQ(swps3::striped_sw_score(prof16, db[s].residues, gap).score,
                want[s])
          << "striped16, iter " << iter << " seq " << s;
      EXPECT_EQ(engine.score(db[s].residues), want[s])
          << "striped8/16, iter " << iter << " seq " << s;
      EXPECT_EQ(sw::sw_banded_score(query, db[s].residues, matrix, gap,
                                    qlen + db[s].length()),
                want[s])
          << "banded, iter " << iter << " seq " << s;
    }

    // Linear-space alignment agrees on a sampled pair.
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n_seqs) - 1));
    const seq::Sequence qq("q", query);
    EXPECT_EQ(sw::sw_align_linear(qq, db[pick], matrix, gap).score,
              want[pick])
        << "linear align, iter " << iter;
  }
}

TEST(Fuzz, PipelineMatchesReferenceAtRandomThresholds) {
  Rng rng(0xF023);
  const auto& matrix = ScoringMatrix::blosum62();
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  for (int iter = 0; iter < 6; ++iter) {
    const auto query =
        seq::random_protein(static_cast<std::size_t>(rng.uniform_int(8, 200)),
                            rng)
            .residues;
    seq::SequenceDB db;
    for (int s = 0; s < 60; ++s) {
      db.add(seq::random_protein(
          static_cast<std::size_t>(rng.uniform_int(4, 900)), rng));
    }
    cudasw::SearchConfig cfg;
    cfg.threshold = static_cast<std::size_t>(rng.uniform_int(50, 1000));
    cfg.intra_kernel = rng.uniform01() < 0.5 ? cudasw::IntraKernel::kOriginal
                                             : cudasw::IntraKernel::kImproved;
    const auto report = cudasw::search(dev, query, db, matrix, cfg);
    EXPECT_EQ(report.scores,
              test::reference_scores(query, db, matrix, cfg.gap))
        << "iter " << iter << " thr " << cfg.threshold;
  }
}

}  // namespace
}  // namespace cusw
