// §VI future-work extensions: threshold autotuner, multi-GPU scaling,
// streamed host-to-device transfer model.
#include <gtest/gtest.h>

#include <algorithm>

#include "cudasw/autotune.h"
#include "cudasw/multi_gpu.h"
#include "cudasw/pipeline.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::SearchConfig;
using cudasw::ThresholdAutotuner;
using sw::ScoringMatrix;

TEST(Autotune, CalibratedRatesAreSane) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  SearchConfig cfg;
  const ThresholdAutotuner tuner(dev, ScoringMatrix::blosum62(), cfg, 64);
  EXPECT_GT(tuner.inter_seconds_per_cell_column(), 0.0);
  EXPECT_GT(tuner.intra_seconds_per_cell(), 0.0);
  // The improved intra kernel's per-cell rate must be within an order of
  // magnitude of the inter-task rate; the original's far slower.
  SearchConfig orig_cfg;
  orig_cfg.intra_kernel = cudasw::IntraKernel::kOriginal;
  const ThresholdAutotuner orig(dev, ScoringMatrix::blosum62(), orig_cfg, 64);
  EXPECT_GT(orig.intra_seconds_per_cell(), tuner.intra_seconds_per_cell());
}

TEST(Autotune, PredictionTracksSimulationOrdering) {
  // The tuner's predicted times across thresholds must rank candidate
  // thresholds in the same order as full simulation, at least for the
  // extremes (that is all the transition-point detection needs).
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig cfg;
  const ThresholdAutotuner tuner(dev, matrix, cfg, 64);

  // High-variance database: lowering the threshold should help (improved
  // kernel); the tuner must prefer a lower threshold than 3072.
  auto db = seq::lognormal_db(600, 900, 1400, 5);
  std::vector<std::size_t> lengths;
  for (const auto& s : db.sequences()) lengths.push_back(s.length());
  std::sort(lengths.begin(), lengths.end());

  const double t_low = tuner.predict_seconds(lengths, 64, 1500);
  const double t_high = tuner.predict_seconds(lengths, 64, 100000);
  EXPECT_LT(t_low, t_high);

  const auto pick = tuner.tune(db, 64, {1000, 1500, 3072, 100000});
  EXPECT_LT(pick.threshold, 100000u);
  EXPECT_GT(pick.predicted_seconds, 0.0);
}

TEST(Autotune, RequiresSortedLengthsAndCandidates) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  SearchConfig cfg;
  const ThresholdAutotuner tuner(dev, ScoringMatrix::blosum62(), cfg, 32);
  EXPECT_THROW(tuner.predict_seconds({5, 3, 4}, 32, 100),
               std::invalid_argument);
  EXPECT_THROW(tuner.tune(seq::SequenceDB{}, 32, {}), std::invalid_argument);
}

TEST(MultiGpu, ScalesNearLinearlyAndPreservesScores) {
  const auto spec = gpusim::DeviceSpec::tesla_c1060().scaled(0.1);
  const auto query = test::random_codes(48, 3);
  // Near-uniform lengths so the comparison is not dominated by a single
  // straggler block (which caps speedup at any scale).
  const auto db = seq::uniform_db(1200, 150, 250, 4);
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig cfg;

  const auto one = cudasw::multi_gpu_search(spec, 1, query, db, matrix, cfg);
  const auto two = cudasw::multi_gpu_search(spec, 2, query, db, matrix, cfg);
  EXPECT_EQ(one.cells, two.cells);
  // "The running time will scale almost linearly with the number of GPUs."
  EXPECT_GT(one.seconds / two.seconds, 1.4);
  EXPECT_LT(one.seconds / two.seconds, 2.3);

  // Union of shard scores equals the single-device scores (as multisets of
  // per-sequence results; shards partition the database).
  std::size_t total = 0;
  for (const auto& r : two.per_gpu) total += r.scores.size();
  EXPECT_EQ(total, db.size());
}

TEST(MultiGpu, MoreGpusThanSequences) {
  // Regression: a fleet larger than the database used to hand every surplus
  // device an empty shard and run a full (empty) search on it. Now only
  // min(gpus, db.size()) devices are instantiated, each with a non-empty
  // shard, and the scores still cover the whole database.
  const auto spec = gpusim::DeviceSpec::tesla_c1060().scaled(0.1);
  const auto query = test::random_codes(40, 7);
  seq::SequenceDB db;
  db.add(seq::Sequence("a", test::random_codes(90, 8)));
  db.add(seq::Sequence("b", test::random_codes(140, 9)));
  db.add(seq::Sequence("c", test::random_codes(60, 10)));
  const auto& matrix = ScoringMatrix::blosum62();
  SearchConfig cfg;

  const auto r = cudasw::multi_gpu_search(spec, 8, query, db, matrix, cfg);
  EXPECT_EQ(r.scores, test::reference_scores(query, db, matrix, cfg.gap));
  ASSERT_EQ(r.per_gpu.size(), 3u);  // one shard per sequence, no idle device
  for (const auto& shard : r.per_gpu) EXPECT_EQ(shard.scores.size(), 1u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(MultiGpu, EmptyDatabase) {
  const auto spec = gpusim::DeviceSpec::tesla_c1060().scaled(0.1);
  const auto query = test::random_codes(30, 11);
  const auto r = cudasw::multi_gpu_search(spec, 4, query, seq::SequenceDB{},
                                          ScoringMatrix::blosum62(),
                                          SearchConfig{});
  EXPECT_TRUE(r.scores.empty());
  EXPECT_TRUE(r.per_gpu.empty());
  EXPECT_EQ(r.seconds, 0.0);
}

TEST(Streaming, OverlapSavesTimeWhenComputeDominates) {
  // 100 MB database, 1 s of compute: the copy (~18 ms) hides entirely.
  const auto r = cudasw::model_streaming_transfer(100'000'000, 1.0, 16);
  EXPECT_GT(r.saved_seconds, 0.0);
  EXPECT_LT(r.streamed_total, r.blocking_total);
  EXPECT_NEAR(r.streamed_total, 1.0 + r.transfer_seconds / 16, 0.01);
}

TEST(Streaming, TransferBoundWhenComputeIsTiny) {
  const auto r = cudasw::model_streaming_transfer(2'000'000'000, 0.01, 8);
  // Total can never beat the raw copy time.
  EXPECT_GE(r.streamed_total, r.transfer_seconds * 0.99);
  EXPECT_LE(r.streamed_total, r.blocking_total);
}

TEST(Streaming, ChunkOverheadChargedConsistently) {
  // Regression: the blocking schedule used to charge the per-chunk setup
  // overhead once while transfer_seconds charged it per chunk, so the two
  // schedules compared different copy plans. Both now move the same plan,
  // and saved_seconds isolates the overlap alone.
  const cudasw::TransferModel xfer;
  const double compute = 0.05;
  const auto one = cudasw::model_streaming_transfer(1'000'000'000, compute, 1,
                                                    xfer);
  const auto four = cudasw::model_streaming_transfer(1'000'000'000, compute, 4,
                                                     xfer);
  EXPECT_NEAR(four.transfer_seconds - one.transfer_seconds,
              3.0 * xfer.chunk_overhead_us * 1e-6, 1e-12);
  EXPECT_DOUBLE_EQ(one.blocking_total, one.transfer_seconds + compute);
  EXPECT_DOUBLE_EQ(four.blocking_total, four.transfer_seconds + compute);
  // saved = min(compute, transfer * (1 - 1/chunks)); one chunk overlaps
  // nothing.
  EXPECT_NEAR(one.saved_seconds, 0.0, 1e-15);
  EXPECT_NEAR(four.saved_seconds,
              std::min(compute, four.transfer_seconds * 0.75), 1e-12);
}

TEST(Streaming, RejectsZeroChunks) {
  EXPECT_THROW(cudasw::model_streaming_transfer(1000, 1.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cusw
