// Integration tests asserting the paper's qualitative results at test
// scale — fast versions of the claims the bench harnesses reproduce in
// full. Each test names the figure/table it guards.
#include <gtest/gtest.h>

#include "cudasw/pipeline.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::IntraKernel;
using cudasw::SearchConfig;
using sw::ScoringMatrix;

const auto& kMatrix = ScoringMatrix::blosum62();
const sw::GapPenalty kGap{10, 2};

TEST(Experiments, Fig2_InterTaskSensitiveToVariance_IntraIsNot) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(128, 1);

  const auto uniform = seq::lognormal_db(192, 600, 60, 2, 16, 4000);
  const auto skewed = seq::lognormal_db(192, 600, 1200, 3, 16, 4000);

  const auto inter_u = cudasw::run_inter_task(dev, query, uniform, kMatrix, kGap, {});
  const auto inter_s = cudasw::run_inter_task(dev, query, skewed, kMatrix, kGap, {});
  const double inter_drop =
      cudasw::kernel_gcups(inter_u) / cudasw::kernel_gcups(inter_s);

  cudasw::OriginalIntraParams op;
  const auto intra_u =
      cudasw::run_intra_task_original(dev, query, uniform, kMatrix, kGap, op);
  const auto intra_s =
      cudasw::run_intra_task_original(dev, query, skewed, kMatrix, kGap, op);
  const double intra_drop =
      cudasw::kernel_gcups(intra_u) / cudasw::kernel_gcups(intra_s);

  // Load imbalance hits the inter-task kernel much harder.
  EXPECT_GT(inter_drop, 1.5);
  EXPECT_LT(intra_drop, inter_drop / 1.3);
}

TEST(Experiments, Fig5a_ImprovedKernelNeverSlower_GainGrowsWithTail) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(150, 5);
  const auto db = seq::DatabaseProfile::swissprot().synthesize(700, 6);

  double prev_gain = 0.0;
  for (std::size_t thr : {3072u, 1000u, 500u}) {
    SearchConfig orig, imp;
    orig.threshold = imp.threshold = thr;
    orig.intra_kernel = IntraKernel::kOriginal;
    imp.intra_kernel = IntraKernel::kImproved;
    const auto ro = cudasw::search(dev, query, db, kMatrix, orig);
    const auto ri = cudasw::search(dev, query, db, kMatrix, imp);
    const double gain = ri.gcups() / ro.gcups();
    EXPECT_GE(gain, 0.99) << "thr=" << thr;
    EXPECT_GE(gain, prev_gain * 0.9) << "thr=" << thr;
    prev_gain = gain;
  }
  EXPECT_GT(prev_gain, 1.3);  // at a fat tail the gain is large
}

TEST(Experiments, Fig5b_ImprovedSpendsLessTimeInIntraTask) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(150, 7);
  const auto db = seq::DatabaseProfile::swissprot().synthesize(700, 8);
  SearchConfig orig, imp;
  orig.threshold = imp.threshold = 800;
  orig.intra_kernel = IntraKernel::kOriginal;
  imp.intra_kernel = IntraKernel::kImproved;
  const auto ro = cudasw::search(dev, query, db, kMatrix, orig);
  const auto ri = cudasw::search(dev, query, db, kMatrix, imp);
  EXPECT_LT(ri.intra_time_fraction(), ro.intra_time_fraction() / 1.5);
}

TEST(Experiments, Fig6_FermiCachesExplainOriginalKernelGains) {
  const auto query = test::random_codes(256, 9);
  const auto db = seq::uniform_db(12, 2000, 2500, 10);

  gpusim::Device fermi(gpusim::DeviceSpec::tesla_c2050().scaled(0.2));
  gpusim::Device fermi_off(
      gpusim::DeviceSpec::tesla_c2050().scaled(0.2).with_caches_disabled());
  gpusim::Device gt200(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));

  cudasw::OriginalIntraParams op;
  const double g_fermi = cudasw::kernel_gcups(
      cudasw::run_intra_task_original(fermi, query, db, kMatrix, kGap, op));
  const double g_off = cudasw::kernel_gcups(
      cudasw::run_intra_task_original(fermi_off, query, db, kMatrix, kGap, op));
  // Caches buy the original kernel a lot; turning them off removes most of
  // the advantage (the paper's Fig. 6 observation).
  EXPECT_GT(g_fermi, 1.5 * g_off);

  // The improved kernel barely cares.
  cudasw::ImprovedIntraParams ip;
  const double i_fermi = cudasw::kernel_gcups(
      cudasw::run_intra_task_improved(fermi, query, db, kMatrix, kGap, ip));
  const double i_off = cudasw::kernel_gcups(cudasw::run_intra_task_improved(
      fermi_off, query, db, kMatrix, kGap, ip));
  EXPECT_LT(i_fermi / i_off, g_fermi / g_off);
}

TEST(Experiments, TableI_TransactionReductionIsLarge) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto db = seq::uniform_db(3, 3500, 4500, 11);
  for (std::size_t qlen : {256u, 1024u}) {
    const auto query = test::random_codes(qlen, 12 + qlen);
    const auto orig =
        cudasw::run_intra_task_original(dev, query, db, kMatrix, kGap, {});
    const auto imp =
        cudasw::run_intra_task_improved(dev, query, db, kMatrix, kGap, {});
    const double ratio =
        static_cast<double>(orig.stats.global_memory_transactions()) /
        static_cast<double>(imp.stats.global_memory_transactions());
    EXPECT_GT(ratio, 10.0) << "qlen=" << qlen;
    EXPECT_EQ(orig.scores, imp.scores);
  }
}

TEST(Experiments, SectionIIIA_IncrementalFixesEachHelp) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(512, 13);
  const auto db = seq::uniform_db(6, 3200, 3600, 14);

  auto time_with = [&](bool deep_swap, bool unroll, bool packed) {
    cudasw::ImprovedIntraParams p;
    p.deep_swap = deep_swap;
    p.unroll_profile_loop = unroll;
    p.packed_profile = packed;
    return cudasw::run_intra_task_improved(dev, query, db, kMatrix, kGap, p)
        .stats.seconds;
  };
  const double v0 = time_with(false, false, false);
  const double v1 = time_with(true, false, false);
  const double v2 = time_with(true, true, false);
  const double v3 = time_with(true, true, true);
  EXPECT_LT(v1, v0);
  EXPECT_LT(v2, v1);
  EXPECT_LT(v3, v2);
  // "Fixing both these issues yielded about a two-fold performance
  // increase" — the register fixes alone buy a lot.
  EXPECT_GT(v0 / v2, 1.5);
}

TEST(Experiments, SectionIVA_StripHeightIsTheRelevantParameter) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(1100, 15);
  const auto db = seq::uniform_db(6, 3200, 3600, 16);

  auto gcups_with = [&](int threads, int tile_h) {
    cudasw::ImprovedIntraParams p;
    p.threads_per_block = threads;
    p.tile_height = tile_h;
    return cudasw::kernel_gcups(
        cudasw::run_intra_task_improved(dev, query, db, kMatrix, kGap, p));
  };
  // Same strip height (512), different decompositions: performance close.
  const double a = gcups_with(128, 4);
  const double b = gcups_with(64, 8);
  EXPECT_NEAR(a / b, 1.0, 0.35);
}

TEST(Experiments, SectionIIIC_TileWidthOneIsOptimal) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(512, 17);
  const auto db = seq::uniform_db(6, 3200, 3600, 18);
  auto gcups_with = [&](int tw) {
    cudasw::ImprovedIntraParams p;
    p.tile_width = tw;
    return cudasw::kernel_gcups(
        cudasw::run_intra_task_improved(dev, query, db, kMatrix, kGap, p));
  };
  const double w1 = gcups_with(1);
  const double w4 = gcups_with(4);
  EXPECT_GE(w1, w4 * 0.98);
}

TEST(Experiments, CalibrationAnchorsHold) {
  // Guard the three calibration anchors from DESIGN.md §5 against cost
  // model regressions. Bands are generous: only order-of-magnitude drift
  // should fail.
  const auto& matrix = kMatrix;
  Rng rng(1);
  const auto query = seq::random_protein(567, rng).residues;
  // A 0.1 slice keeps the test fast; per-block behaviour matches the full
  // device, so full-device-equivalent GCUPs = raw / 0.1.
  const double f = 0.1;
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(f));

  // (a) inter-task on a near-uniform occupancy-sized group: ~15-17 GCUPs.
  {
    const std::size_t s =
        cudasw::inter_task_group_size(dev.spec(), cudasw::InterTaskParams{});
    const auto db = seq::uniform_db(s, 330, 390, 2);
    const auto run = cudasw::run_inter_task(dev, query, db, matrix, kGap, {});
    const double g = cudasw::kernel_gcups(run) / f;
    EXPECT_GT(g, 8.0);
    EXPECT_LT(g, 40.0);
  }

  // (b) original intra-task, device loaded: ~1.5-2 GCUPs; (c) improved
  // ~an order of magnitude faster.
  {
    const auto db = seq::uniform_db(24, 3500, 5000, 3);
    const auto orig =
        cudasw::run_intra_task_original(dev, query, db, matrix, kGap, {});
    const auto imp =
        cudasw::run_intra_task_improved(dev, query, db, matrix, kGap, {});
    const double g_orig = cudasw::kernel_gcups(orig) / f;
    const double g_imp = cudasw::kernel_gcups(imp) / f;
    EXPECT_GT(g_orig, 0.8);
    EXPECT_LT(g_orig, 4.0);
    EXPECT_GT(g_imp / g_orig, 6.0);   // "over 11 times" with slack
    EXPECT_LT(g_imp / g_orig, 20.0);
  }
}

}  // namespace
}  // namespace cusw
