// Block memoization (DESIGN.md §12): replayed blocks must be invisible in
// every reported number. Scores, per-space counters, per-site rows, stall
// breakdowns and simulated cycles are bit-identical with CUSW_SIM_MEMO on
// vs off, across CUSW_THREADS, for all four CUDASW++ kernels; the memo
// actually engages on repeated block shapes; and memoization composes with
// fault injection (an aborted launch neither consults nor pollutes the
// store).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "cudasw/inter_task.h"
#include "cudasw/inter_task_simd.h"
#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "cudasw/multi_gpu.h"
#include "gpusim/device_spec.h"
#include "gpusim/fault.h"
#include "gpusim/launch.h"
#include "obs/metrics.h"
#include "seq/generate.h"
#include "sw/scoring.h"
#include "test_helpers.h"

namespace cusw {
namespace {

/// Scoped environment override that restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_prev_)
      setenv(name_.c_str(), prev_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_prev_ = false;
  std::string prev_;
};

void expect_counters_eq(const gpusim::SpaceCounters& a,
                        const gpusim::SpaceCounters& b) {
  gpusim::for_each_space_counter_field(
      a, [&](const char* field, std::uint64_t av) {
        gpusim::for_each_space_counter_field(
            b, [&](const char* bf, std::uint64_t bv) {
              if (std::string_view(field) == bf) {
                EXPECT_EQ(av, bv) << field;
              }
            });
      });
}

std::vector<std::uint64_t> stall_reasons(const gpusim::StallBreakdown& b) {
  std::vector<std::uint64_t> v;
  gpusim::for_each_stall_reason(
      b, [&](const char*, std::uint64_t x) { v.push_back(x); });
  return v;
}

/// Full bit-identity: every counter, site row, stall row and simulated
/// cycle figure (EXPECT_EQ on doubles is deliberate — the contract is
/// bit-identical, not approximately equal).
void expect_stats_eq(const gpusim::LaunchStats& a,
                     const gpusim::LaunchStats& b) {
  expect_counters_eq(a.global, b.global);
  expect_counters_eq(a.local, b.local);
  expect_counters_eq(a.texture, b.texture);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(gpusim::site_name(a.sites[i].site),
              gpusim::site_name(b.sites[i].site));
    EXPECT_EQ(a.sites[i].space, b.sites[i].space);
    expect_counters_eq(a.sites[i].counters, b.sites[i].counters);
  }
  EXPECT_EQ(stall_reasons(a.stall), stall_reasons(b.stall));
  EXPECT_EQ(a.stall.charged, b.stall.charged);
  EXPECT_EQ(a.stall.occupancy_idle, b.stall.occupancy_idle);
  EXPECT_EQ(a.total_block_ticks, b.total_block_ticks);
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.bank_conflict_cycles, b.bank_conflict_cycles);
  EXPECT_EQ(a.syncs, b.syncs);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.total_block_cycles, b.total_block_cycles);
  EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.concurrent_blocks, b.concurrent_blocks);
}

gpusim::Device one_sm_c1060() {
  auto spec = gpusim::DeviceSpec::tesla_c1060();
  return gpusim::Device(spec.scaled(1.0 / spec.sm_count));
}

const sw::ScoringMatrix& blosum() { return sw::ScoringMatrix::blosum62(); }

/// A database with heavy block-shape repetition so the memo engages within
/// a single launch: `copies` equal-length (and for the improved kernel's
/// content-keyed memo, *identical*) long sequences plus a short tail of
/// equal-length ones for the inter-task kernels.
seq::SequenceDB repeated_long_db(std::uint64_t seed, int copies) {
  seq::SequenceDB db;
  Rng rng(seed);
  const seq::Sequence s = seq::random_protein(3200, rng);
  for (int i = 0; i < copies; ++i) db.add(s);
  return db;
}

seq::SequenceDB uniform_short_db(std::uint64_t seed, int count,
                                 std::size_t len) {
  seq::SequenceDB db;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) db.add(seq::random_protein(len, rng));
  return db;
}

using KernelFn = cudasw::KernelRun (*)(gpusim::Device&,
                                       const std::vector<seq::Code>&,
                                       const seq::SequenceDB&);

cudasw::KernelRun run_inter(gpusim::Device& dev,
                            const std::vector<seq::Code>& q,
                            const seq::SequenceDB& db) {
  return cudasw::run_inter_task(dev, q, db, blosum(), {10, 2}, {});
}
cudasw::KernelRun run_simd(gpusim::Device& dev,
                           const std::vector<seq::Code>& q,
                           const seq::SequenceDB& db) {
  return cudasw::run_inter_task_simd(dev, q, db, blosum(), {10, 2}, {});
}
cudasw::KernelRun run_original(gpusim::Device& dev,
                               const std::vector<seq::Code>& q,
                               const seq::SequenceDB& db) {
  return cudasw::run_intra_task_original(dev, q, db, blosum(), {10, 2}, {});
}
cudasw::KernelRun run_improved(gpusim::Device& dev,
                               const std::vector<seq::Code>& q,
                               const seq::SequenceDB& db) {
  return cudasw::run_intra_task_improved(dev, q, db, blosum(), {10, 2}, {});
}

struct KernelCase {
  const char* name;
  KernelFn run;
  bool intra;  // long-sequence workload vs many-short-sequence workload
};

const KernelCase kKernels[] = {
    {"inter_task", &run_inter, false},
    {"inter_task_simd", &run_simd, false},
    {"intra_task_original", &run_original, true},
    {"intra_task_improved", &run_improved, true},
};

TEST(SimMemo, BitIdenticalOnVsOffAcrossKernelsAndThreads) {
  for (const KernelCase& k : kKernels) {
    SCOPED_TRACE(k.name);
    const auto query = test::random_codes(k.intra ? 567 : 120, 41);
    // Mix repeated shapes (which replay) with unique ones (which do not).
    seq::SequenceDB db = k.intra ? repeated_long_db(42, 4)
                                 : uniform_short_db(43, 192, 200);
    if (k.intra) {
      Rng rng(44);
      db.add(seq::random_protein(2800, rng));
    } else {
      db.append(seq::lognormal_db(64, 180, 60, 45));
    }
    db.sort_by_length();

    cudasw::KernelRun off;
    {
      EnvGuard memo("CUSW_SIM_MEMO", "off");
      EnvGuard threads("CUSW_THREADS", "1");
      auto dev = one_sm_c1060();
      off = k.run(dev, query, db);
    }
    for (const char* threads : {"1", "4"}) {
      SCOPED_TRACE(threads);
      EnvGuard memo("CUSW_SIM_MEMO", "on");
      EnvGuard tg("CUSW_THREADS", threads);
      auto dev = one_sm_c1060();
      const auto on = k.run(dev, query, db);
      EXPECT_EQ(on.scores, off.scores);
      EXPECT_EQ(on.cells, off.cells);
      expect_stats_eq(on.stats, off.stats);
    }
  }
}

TEST(SimMemo, EngagesOnRepeatedShapesAndCountsInRegistry) {
  for (const KernelCase& k : kKernels) {
    SCOPED_TRACE(k.name);
    EnvGuard memo("CUSW_SIM_MEMO", "on");
    const auto query = test::random_codes(k.intra ? 567 : 120, 51);
    seq::SequenceDB db = k.intra ? repeated_long_db(52, 4)
                                 : uniform_short_db(53, 256, 180);
    auto dev = one_sm_c1060();
    const obs::Snapshot before = obs::Registry::global().snapshot();
    k.run(dev, query, db);
    const obs::Snapshot delta =
        obs::Registry::global().snapshot().diff(before);
    EXPECT_GT(delta.counter("gpusim.memo.hits"), 0u);
    EXPECT_GT(delta.counter("gpusim.memo.misses"), 0u);
    EXPECT_EQ(delta.counter("gpusim.memo.blocks_replayed"),
              delta.counter("gpusim.memo.hits"));
    EXPECT_GT(dev.memo_entries(), 0u);
    dev.memo_clear();
    EXPECT_EQ(dev.memo_entries(), 0u);
  }
}

TEST(SimMemo, StorePersistsAcrossLaunchesOfOneDevice) {
  // The second identical run replays every block: per-run arenas make
  // addresses run-invariant, so cross-launch reuse is sound (the serving
  // scenario bench/sim_speed measures).
  EnvGuard memo("CUSW_SIM_MEMO", "on");
  const auto query = test::random_codes(567, 61);
  const auto db = repeated_long_db(62, 3);
  auto dev = one_sm_c1060();
  const auto first = run_improved(dev, query, db);
  const std::size_t entries = dev.memo_entries();
  ASSERT_GT(entries, 0u);

  const obs::Snapshot before = obs::Registry::global().snapshot();
  const auto second = run_improved(dev, query, db);
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);
  EXPECT_EQ(delta.counter("gpusim.memo.misses"), 0u);
  EXPECT_EQ(delta.counter("gpusim.memo.hits"),
            static_cast<std::uint64_t>(second.stats.blocks));
  EXPECT_EQ(dev.memo_entries(), entries);
  EXPECT_EQ(second.scores, first.scores);
  expect_stats_eq(second.stats, first.stats);
}

TEST(SimMemo, OffDisablesTheStoreAndPublishesNoCounters) {
  EnvGuard memo("CUSW_SIM_MEMO", "off");
  const auto query = test::random_codes(567, 71);
  const auto db = repeated_long_db(72, 3);
  auto dev = one_sm_c1060();
  const obs::Snapshot before = obs::Registry::global().snapshot();
  run_improved(dev, query, db);
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);
  EXPECT_EQ(dev.memo_entries(), 0u);
  EXPECT_EQ(delta.counter("gpusim.memo.hits"), 0u);
  EXPECT_EQ(delta.counter("gpusim.memo.misses"), 0u);
}

TEST(SimMemo, ComposesWithFaultInjection) {
  // Fault injection aborts a launch before any block is simulated, so a
  // faulted attempt neither consults nor pollutes the memo store, and the
  // retried launch replays exactly what a clean memoized run would.
  const auto spec = gpusim::DeviceSpec::tesla_c1060().scaled(0.1);
  const auto query = test::random_codes(48, 81);
  seq::SequenceDB db = uniform_short_db(82, 48, 160);
  const auto& matrix = sw::ScoringMatrix::blosum62();

  cudasw::MultiGpuConfig faulted_cfg;
  faulted_cfg.faults =
      gpusim::FaultPlan::parse("seed=7,transfer=0.4,launch=0.4");
  faulted_cfg.backoff.max_retries = 10;

  std::vector<int> clean_off, clean_on, faulted_on;
  {
    EnvGuard memo("CUSW_SIM_MEMO", "off");
    clean_off = cudasw::multi_gpu_search(spec, 2, query, db, matrix,
                                         cudasw::SearchConfig{})
                    .scores;
  }
  {
    EnvGuard memo("CUSW_SIM_MEMO", "on");
    clean_on = cudasw::multi_gpu_search(spec, 2, query, db, matrix,
                                        cudasw::SearchConfig{})
                   .scores;
    const auto faulted =
        cudasw::multi_gpu_search(spec, 2, query, db, matrix, faulted_cfg);
    faulted_on = faulted.scores;
    EXPECT_GE(faulted.faults.retries, 1u);
  }
  EXPECT_EQ(clean_on, clean_off);
  EXPECT_EQ(faulted_on, clean_off);
}

}  // namespace
}  // namespace cusw
