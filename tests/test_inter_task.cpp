// Inter-task kernel: functional correctness against the scalar reference,
// plus accounting sanity (transactions, cells, load imbalance).
#include <gtest/gtest.h>

#include "cudasw/inter_task.h"
#include "cudasw/pipeline.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::InterTaskParams;
using cudasw::run_inter_task;
using sw::GapPenalty;
using sw::ScoringMatrix;

gpusim::Device c1060() { return gpusim::Device(gpusim::DeviceSpec::tesla_c1060()); }

TEST(InterTask, MatchesReferenceOnSmallGroup) {
  auto dev = c1060();
  const auto query = test::random_codes(57, 1);
  const auto db = seq::uniform_db(40, 5, 120, 2);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{10, 2};
  const auto run = run_inter_task(dev, query, db, matrix, gap, {});
  const auto want = test::reference_scores(query, db, matrix, gap);
  ASSERT_EQ(run.scores.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(run.scores[i], want[i]) << "sequence " << i;
  }
}

TEST(InterTask, MatchesReferenceAcrossQueryLengths) {
  // Exercise partial tiles: query lengths around the 4-row tile boundary.
  auto dev = c1060();
  const auto db = seq::uniform_db(12, 30, 200, 3);
  const auto& matrix = ScoringMatrix::blosum62();
  const GapPenalty gap{12, 3};
  for (std::size_t m : {1u, 3u, 4u, 5u, 8u, 63u, 64u, 65u, 200u}) {
    const auto query = test::random_codes(m, 100 + m);
    const auto run = run_inter_task(dev, query, db, matrix, gap, {});
    const auto want = test::reference_scores(query, db, matrix, gap);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(run.scores[i], want[i]) << "m=" << m << " seq=" << i;
    }
  }
}

TEST(InterTask, MatchesReferenceWithBlosum50AndDifferentGaps) {
  auto dev = c1060();
  const auto query = test::random_codes(80, 5);
  const auto db = seq::lognormal_db(30, 150, 80, 6);
  const auto& matrix = ScoringMatrix::blosum50();
  for (const GapPenalty gap : {GapPenalty{10, 2}, GapPenalty{5, 1},
                               GapPenalty{20, 1}}) {
    const auto run = run_inter_task(dev, query, db, matrix, gap, {});
    const auto want = test::reference_scores(query, db, matrix, gap);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(run.scores[i], want[i]);
    }
  }
}

TEST(InterTask, EmptyGroupAndEmptyQuery) {
  auto dev = c1060();
  const auto& matrix = ScoringMatrix::blosum62();
  const auto run = run_inter_task(dev, test::random_codes(10, 1),
                                  seq::SequenceDB{}, matrix, {10, 2}, {});
  EXPECT_TRUE(run.scores.empty());
  EXPECT_EQ(run.cells, 0u);

  const auto db = seq::uniform_db(3, 10, 20, 1);
  const auto run2 =
      run_inter_task(dev, {}, db, matrix, {10, 2}, {});
  EXPECT_EQ(run2.scores, (std::vector<int>{0, 0, 0}));
}

TEST(InterTask, CellCountMatchesWorkload) {
  auto dev = c1060();
  const auto query = test::random_codes(33, 7);
  const auto db = seq::uniform_db(10, 50, 100, 8);
  const auto run = run_inter_task(dev, query, db,
                                  ScoringMatrix::blosum62(), {10, 2}, {});
  EXPECT_EQ(run.cells, 33u * db.total_residues());
  EXPECT_GT(run.stats.global.transactions, 0u);
  EXPECT_GT(run.stats.seconds, 0.0);
}

TEST(InterTask, LaunchTimeTracksLongestSequence) {
  // Two groups with the same total residues; the one with a single long
  // straggler must take substantially longer (the Fig. 2 effect).
  auto dev = c1060();
  const auto query = test::random_codes(64, 9);
  const auto& matrix = ScoringMatrix::blosum62();

  seq::SequenceDB uniform = seq::uniform_db(64, 500, 500, 10);
  Rng rng(11);
  seq::SequenceDB skewed;
  for (int i = 0; i < 63; ++i)
    skewed.add(seq::random_protein(450, rng));
  skewed.add(seq::random_protein(500 * 64 - 450 * 63, rng));

  const auto run_u = run_inter_task(dev, query, uniform, matrix, {10, 2}, {});
  const auto run_s = run_inter_task(dev, query, skewed, matrix, {10, 2}, {});
  EXPECT_NEAR(static_cast<double>(run_u.cells),
              static_cast<double>(run_s.cells), 64.0 * 64.0);
  EXPECT_GT(run_s.stats.seconds, 2.0 * run_u.stats.seconds);
}

TEST(InterTask, QueryProfileCutsFetchesFourfold) {
  auto dev = c1060();
  const auto query = test::random_codes(64, 13);
  const auto db = seq::uniform_db(20, 100, 100, 14);
  InterTaskParams with, without;
  without.use_query_profile = false;
  const auto a =
      run_inter_task(dev, query, db, ScoringMatrix::blosum62(), {10, 2}, with);
  const auto b = run_inter_task(dev, query, db, ScoringMatrix::blosum62(),
                                {10, 2}, without);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_NEAR(static_cast<double>(b.stats.texture.requests) /
                  static_cast<double>(a.stats.texture.requests),
              4.0, 0.2);
  EXPECT_LT(a.stats.seconds, b.stats.seconds);
}

TEST(InterTask, GroupSizeFollowsOccupancy) {
  const auto spec = gpusim::DeviceSpec::tesla_c1060();
  InterTaskParams p;
  const std::size_t s = cudasw::inter_task_group_size(spec, p);
  const auto occ =
      gpusim::compute_occupancy(spec, p.threads_per_block, 0, p.regs_per_thread);
  EXPECT_EQ(s, static_cast<std::size_t>(spec.sm_count) * occ.blocks_per_sm *
                   p.threads_per_block);
  EXPECT_GT(s, 0u);
}

}  // namespace
}  // namespace cusw
