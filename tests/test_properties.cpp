// Property-based sweeps (parameterised gtest): invariants that must hold
// across the parameter spaces of the aligners and the simulator.
#include <gtest/gtest.h>

#include "cudasw/intra_task_improved.h"
#include "gpusim/occupancy.h"
#include "swps3/striped_sw.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using sw::GapPenalty;
using sw::ScoringMatrix;

// ---- gap penalty sweep: striped vs scalar -------------------------------

class GapSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GapSweep, StripedMatchesScalarReference) {
  const auto [open, extend] = GetParam();
  const GapPenalty gap{open, extend};
  const auto& m = ScoringMatrix::blosum62();
  for (int i = 0; i < 8; ++i) {
    const auto q = test::random_codes(20 + i * 17, 4000 + i);
    const auto t = test::random_codes(30 + i * 13, 5000 + i);
    const swps3::StripedProfile prof(q, m);
    ASSERT_EQ(swps3::striped_sw_score(prof, t, gap).score,
              sw::sw_score(q, t, m, gap))
        << "open=" << open << " extend=" << extend << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, GapSweep,
    ::testing::Values(std::pair{0, 1}, std::pair{1, 1}, std::pair{5, 1},
                      std::pair{10, 2}, std::pair{12, 3}, std::pair{20, 1},
                      std::pair{3, 3}),
    [](const auto& info) {
      return "open" + std::to_string(info.param.first) + "_ext" +
             std::to_string(info.param.second);
    });

// ---- occupancy properties over the launch-shape space -------------------

class OccupancySweep : public ::testing::TestWithParam<int> {};

TEST_P(OccupancySweep, InvariantsHold) {
  const int threads = GetParam();
  for (const auto& dev : {gpusim::DeviceSpec::tesla_c1060(),
                          gpusim::DeviceSpec::tesla_c2050()}) {
    if (threads > dev.max_threads_per_block) continue;
    for (int regs : {0, 16, 32, 64}) {
      for (std::size_t shared : {std::size_t{0}, std::size_t{4096},
                                 std::size_t{16384}}) {
        if (shared > dev.shared_mem_per_sm) continue;
        const auto occ = gpusim::compute_occupancy(dev, threads, shared, regs);
        // Never exceeds any per-SM cap.
        EXPECT_LE(occ.blocks_per_sm * threads, dev.max_threads_per_sm);
        EXPECT_LE(occ.blocks_per_sm, dev.max_blocks_per_sm);
        if (shared > 0) {
          EXPECT_LE(static_cast<std::size_t>(occ.blocks_per_sm) * shared,
                    dev.shared_mem_per_sm);
        }
        if (regs > 0) {
          EXPECT_LE(static_cast<std::size_t>(occ.blocks_per_sm) *
                        static_cast<std::size_t>(regs * threads),
                    dev.registers_per_sm);
        }
        EXPECT_GE(occ.occupancy, 0.0);
        EXPECT_LE(occ.occupancy, 1.0);
        // Monotonicity: more registers never increases residency.
        const auto occ2 =
            gpusim::compute_occupancy(dev, threads, shared, regs + 16);
        EXPECT_LE(occ2.blocks_per_sm, occ.blocks_per_sm);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BlockShapes, OccupancySweep,
                         ::testing::Values(32, 64, 96, 128, 192, 256, 320,
                                           512));

// ---- improved-kernel invariants over strip shapes ------------------------

struct StripShape {
  int threads;
  int tile_h;
};

class StripSweep : public ::testing::TestWithParam<StripShape> {};

TEST_P(StripSweep, TransactionsShrinkAsStripsGrow) {
  // Larger strips -> fewer passes -> fewer strip-boundary global
  // transactions (the §III-C tradeoff), never more.
  const auto p = GetParam();
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(640, 1);
  const auto db = seq::uniform_db(2, 700, 800, 2);
  const auto& m = ScoringMatrix::blosum62();

  cudasw::ImprovedIntraParams small, big;
  small.threads_per_block = p.threads;
  small.tile_height = p.tile_h;
  big.threads_per_block = p.threads * 2;
  big.tile_height = p.tile_h;
  const auto r_small =
      cudasw::run_intra_task_improved(dev, query, db, m, {10, 2}, small);
  const auto r_big =
      cudasw::run_intra_task_improved(dev, query, db, m, {10, 2}, big);
  EXPECT_EQ(r_small.scores, r_big.scores);
  EXPECT_GE(r_small.stats.global.transactions,
            r_big.stats.global.transactions);
}

INSTANTIATE_TEST_SUITE_P(Shapes, StripSweep,
                         ::testing::Values(StripShape{16, 4}, StripShape{32, 4},
                                           StripShape{64, 4}, StripShape{16, 8},
                                           StripShape{32, 8}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param.threads) +
                                  "_h" + std::to_string(info.param.tile_h);
                         });

// ---- scoring-system sanity over both embedded matrices -------------------

class MatrixSweep : public ::testing::TestWithParam<const ScoringMatrix*> {};

TEST_P(MatrixSweep, SelfAlignmentDominates) {
  const auto& m = *GetParam();
  for (int i = 0; i < 10; ++i) {
    const auto q = test::random_codes(60, 9000 + i);
    const auto t = test::random_codes(60, 9100 + i);
    const int self = sw::sw_score(q, q, m, {10, 2});
    EXPECT_GE(self, sw::sw_score(q, t, m, {10, 2}));
    // Self score equals the sum of diagonal scores.
    int diag = 0;
    for (auto c : q) diag += m.score(c, c);
    EXPECT_EQ(self, diag);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrices, MatrixSweep,
                         ::testing::Values(&ScoringMatrix::blosum62(),
                                           &ScoringMatrix::blosum50()),
                         [](const auto& info) {
                           return info.param->name();
                         });

}  // namespace
}  // namespace cusw
