// Chunked scanning of databases larger than device memory (§VI), plus the
// gpusim profiler report and bank-conflict model.
#include <gtest/gtest.h>

#include <algorithm>

#include "cudasw/chunked.h"
#include "gpusim/report.h"
#include "test_helpers.h"

namespace cusw {
namespace {

using cudasw::ChunkedConfig;
using cudasw::chunked_search;
using sw::ScoringMatrix;

TEST(Chunked, ScoresMatchSingleSearchAcrossChunkCounts) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(60, 1);
  const auto db = seq::lognormal_db(150, 200, 120, 2);
  const auto& matrix = ScoringMatrix::blosum62();

  cudasw::SearchConfig plain;
  const auto want = cudasw::search(dev, query, db, matrix, plain).scores;

  for (std::uint64_t budget : {std::uint64_t{1} << 36, std::uint64_t{1} << 20,
                               std::uint64_t{1} << 16}) {
    ChunkedConfig cfg;
    cfg.device_memory_bytes = budget;
    const auto r = chunked_search(dev, query, db, matrix, cfg);
    EXPECT_EQ(r.scores, want) << "budget " << budget;
    EXPECT_GE(r.chunks, 1u);
    EXPECT_GT(r.total_seconds, 0.0);
  }
}

TEST(Chunked, SmallerBudgetMeansMoreChunks) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(40, 3);
  const auto db = seq::uniform_db(200, 100, 300, 4);
  const auto& matrix = ScoringMatrix::blosum62();
  ChunkedConfig big, small;
  big.device_memory_bytes = std::uint64_t{1} << 36;
  small.device_memory_bytes = std::uint64_t{1} << 19;
  const auto rb = chunked_search(dev, query, db, matrix, big);
  const auto rs = chunked_search(dev, query, db, matrix, small);
  EXPECT_EQ(rb.chunks, 1u);
  EXPECT_GT(rs.chunks, rb.chunks);
  EXPECT_GT(rs.transfer_seconds, 0.0);
}

TEST(Chunked, OverlapNeverSlowerThanBlocking) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(80, 5);
  const auto db = seq::uniform_db(300, 150, 400, 6);
  const auto& matrix = ScoringMatrix::blosum62();
  ChunkedConfig overlapped, blocking;
  overlapped.device_memory_bytes = blocking.device_memory_bytes =
      std::uint64_t{1} << 20;
  blocking.overlap_transfers = false;
  const auto ro = chunked_search(dev, query, db, matrix, overlapped);
  const auto rb = chunked_search(dev, query, db, matrix, blocking);
  EXPECT_EQ(ro.scores, rb.scores);
  EXPECT_LE(ro.total_seconds, rb.total_seconds * 1.0001);
}

TEST(Chunked, TinyBudgetDegradesToOneSequencePerChunk) {
  // Arbitrarily small budgets must still make progress: one sequence per
  // chunk, scores untouched.
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(50, 9);
  const auto db = seq::uniform_db(25, 80, 200, 10);
  const auto& matrix = ScoringMatrix::blosum62();

  ChunkedConfig cfg;
  cfg.device_memory_bytes = 1;
  const auto r = chunked_search(dev, query, db, matrix, cfg);
  EXPECT_EQ(r.chunks, db.size());
  EXPECT_EQ(r.scores,
            test::reference_scores(query, db, matrix, cfg.search.gap));
}

TEST(Chunked, TimingAccountingPins) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060().scaled(0.1));
  const auto query = test::random_codes(70, 11);
  const auto db = seq::uniform_db(250, 120, 350, 12);
  const auto& matrix = ScoringMatrix::blosum62();
  ChunkedConfig overlapped, blocking;
  overlapped.device_memory_bytes = blocking.device_memory_bytes =
      std::uint64_t{1} << 18;
  blocking.overlap_transfers = false;
  const auto ro = chunked_search(dev, query, db, matrix, overlapped);
  const auto rb = chunked_search(dev, query, db, matrix, blocking);
  ASSERT_GT(rb.chunks, 1u);
  // Blocking is exactly serial: every copy, then every kernel.
  EXPECT_NEAR(rb.total_seconds, rb.transfer_seconds + rb.kernel_seconds,
              1e-12 * rb.total_seconds);
  // Overlap can hide copies behind kernels but can never beat either the
  // total copy time or the total kernel time.
  EXPECT_GE(ro.total_seconds,
            std::max(ro.transfer_seconds, ro.kernel_seconds) * (1 - 1e-12));
  EXPECT_LE(ro.total_seconds, rb.total_seconds * (1 + 1e-12));
  // Same work either way.
  EXPECT_EQ(ro.kernel_seconds, rb.kernel_seconds);
  EXPECT_EQ(ro.transfer_seconds, rb.transfer_seconds);
}

TEST(Chunked, FootprintGrowsWithWorkload) {
  cudasw::SearchConfig cfg;
  const auto small = cudasw::device_footprint_bytes(1000, 10, 100, cfg);
  const auto more_res = cudasw::device_footprint_bytes(100000, 10, 100, cfg);
  const auto more_seq = cudasw::device_footprint_bytes(1000, 1000, 100, cfg);
  EXPECT_GT(more_res, small);
  EXPECT_GT(more_seq, small);
}

TEST(Report, FormatsLaunchSummary) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  auto buf = dev.alloc<int>(1024);
  gpusim::LaunchConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 64;
  const auto stats = dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
    for (int lane = 0; lane < 64; ++lane) {
      ctx.st(buf, static_cast<std::size_t>(lane), 1, lane);
    }
    ctx.shared_access(0, 5);
    ctx.sync();
  });
  const std::string report = gpusim::format_launch_report(stats, dev.spec());
  EXPECT_NE(report.find("Tesla C2050"), std::string::npos);
  EXPECT_NE(report.find("global"), std::string::npos);
  EXPECT_NE(report.find("barriers 2"), std::string::npos);
  const std::string line = gpusim::format_launch_line("k", stats);
  EXPECT_NE(line.find("k: "), std::string::npos);
}

TEST(BankConflicts, DegreeFollowsGcdRule) {
  using gpusim::BlockCtx;
  EXPECT_EQ(BlockCtx::bank_conflict_degree(1), 1);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(3), 1);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(2), 2);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(4), 4);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(8), 8);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(16), 16);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(32), 32);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(64), 32);
  EXPECT_EQ(BlockCtx::bank_conflict_degree(0), 1);   // broadcast
  EXPECT_EQ(BlockCtx::bank_conflict_degree(-2), 2);
}

TEST(BankConflicts, StridedAccessesCostMoreTime) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c1060());
  gpusim::LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  auto run = [&](int stride) {
    return dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
      for (int lane = 0; lane < 32; ++lane) {
        ctx.shared_access_strided(lane, 1000, stride);
      }
      ctx.sync();
    });
  };
  const auto unit = run(1);
  const auto conflicted = run(32);
  EXPECT_EQ(unit.bank_conflict_cycles, 0u);
  EXPECT_GT(conflicted.bank_conflict_cycles, 0u);
  EXPECT_GT(conflicted.makespan_cycles, 10.0 * unit.makespan_cycles);
}

}  // namespace
}  // namespace cusw
