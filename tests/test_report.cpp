// gpusim/report.cpp: golden-string coverage for the launch report
// formatters, and the LaunchStats occupancy-range merge they display.
#include <gtest/gtest.h>

#include "gpusim/device_spec.h"
#include "gpusim/report.h"

namespace cusw::gpusim {
namespace {

LaunchStats sample_stats() {
  LaunchStats s;
  s.blocks = 4;
  s.occupancy.blocks_per_sm = 2;
  s.occupancy.warps_per_sm = 16;
  s.occupancy.occupancy = 0.25;
  s.occupancy_min = 0.25;
  s.occupancy_max = 0.25;
  s.seconds = 1.25e-3;
  s.makespan_cycles = 1500.0;
  s.total_block_cycles = 3000.0;
  s.global.requests = 10;
  s.global.transactions = 20;
  s.global.dram_transactions = 5;
  s.global.l1_hits = 10;
  s.shared_accesses = 7;
  s.bank_conflict_cycles = 3;
  s.syncs = 2;
  s.windows = 6;
  return s;
}

DeviceSpec named_spec() {
  DeviceSpec spec = DeviceSpec::tesla_c1060();
  spec.name = "Test GPU";
  return spec;
}

TEST(Report, FormatLaunchReportGolden) {
  const std::string got = format_launch_report(sample_stats(), named_spec());
  const std::string want =
      "launch on Test GPU: 4 blocks x (2 resident/SM, occupancy 0.25)\n"
      "  time 1.250e-03 s  (1500 cycles makespan, 3000 block-cycles total)\n"
      "  global   requests           10  transactions           20  dram "
      "           5  hit-rate 50.0%\n"
      "  local    requests            0  transactions            0  dram "
      "           0\n"
      "  texture  requests            0  transactions            0  dram "
      "           0\n"
      "  shared   accesses            7  bank conflicts 3 cycles\n"
      "  barriers 2 (windows 6)\n";
  EXPECT_EQ(got, want);
}

TEST(Report, FormatLaunchReportShowsOccupancyRangeWhenMerged) {
  LaunchStats s = sample_stats();
  s.occupancy_min = 0.25;
  s.occupancy_max = 0.75;
  const std::string got = format_launch_report(s, named_spec());
  EXPECT_NE(got.find("occupancy 0.25 [0.25..0.75])"), std::string::npos)
      << got;
  // A single launch (min == max) keeps the plain form.
  const std::string single =
      format_launch_report(sample_stats(), named_spec());
  EXPECT_NE(single.find("occupancy 0.25)"), std::string::npos) << single;
  EXPECT_EQ(single.find(".."), std::string::npos) << single;
}

TEST(Report, FormatLaunchLineGolden) {
  const std::string got = format_launch_line("inter", sample_stats());
  EXPECT_EQ(got,
            "inter: 1.250e-03 s, global txns 20, tex 0, shared 7, syncs 2");
}

TEST(Report, OccupancyMergeTracksMinAndMax) {
  LaunchStats a = sample_stats();  // occupancy 0.25, min == max == 0.25
  LaunchStats b = sample_stats();
  b.occupancy.occupancy = 0.75;
  b.occupancy_min = 0.75;
  b.occupancy_max = 0.75;
  a += b;
  // The first launch's occupancy is kept for shape context...
  EXPECT_DOUBLE_EQ(a.occupancy.occupancy, 0.25);
  // ...and the range records the spread instead of dropping it.
  EXPECT_DOUBLE_EQ(a.occupancy_min, 0.25);
  EXPECT_DOUBLE_EQ(a.occupancy_max, 0.75);

  LaunchStats c = sample_stats();
  c.occupancy.occupancy = 0.5;
  c.occupancy_min = 0.5;
  c.occupancy_max = 0.5;
  a += c;  // inside the existing range
  EXPECT_DOUBLE_EQ(a.occupancy_min, 0.25);
  EXPECT_DOUBLE_EQ(a.occupancy_max, 0.75);
}

TEST(Report, OccupancyMergeIntoDefaultAdoptsRange) {
  LaunchStats sum;  // default-constructed accumulator, as reports build
  LaunchStats b = sample_stats();
  b.occupancy.occupancy = 0.75;
  b.occupancy_min = 0.5;
  b.occupancy_max = 0.75;
  sum += b;
  EXPECT_DOUBLE_EQ(sum.occupancy.occupancy, 0.75);
  EXPECT_DOUBLE_EQ(sum.occupancy_min, 0.5);
  EXPECT_DOUBLE_EQ(sum.occupancy_max, 0.75);
}

TEST(Report, OccupancyMergeIgnoresSampleLessStats) {
  // Merging a default-constructed (zero-launch) stats object must not let
  // its zero-valued min clobber the real minimum — a zero-launch side
  // carries no occupancy sample at all.
  LaunchStats a = sample_stats();
  a.occupancy.occupancy = 0.75;
  a.occupancy_min = 0.5;
  a.occupancy_max = 0.75;
  a += LaunchStats{};
  EXPECT_DOUBLE_EQ(a.occupancy_min, 0.5);
  EXPECT_DOUBLE_EQ(a.occupancy_max, 0.75);

  // Shape-only stats (blocks_per_sm set, all occupancy figures zero) are
  // likewise sample-less and must not drag the minimum to zero.
  LaunchStats shape_only;
  shape_only.occupancy.blocks_per_sm = 4;
  a += shape_only;
  EXPECT_DOUBLE_EQ(a.occupancy_min, 0.5);
  EXPECT_DOUBLE_EQ(a.occupancy_max, 0.75);

  // The symmetric direction: accumulating real stats into a shape-only
  // accumulator adopts the range rather than pinning the minimum at zero.
  LaunchStats sum;
  sum.occupancy.blocks_per_sm = 2;
  sum += a;
  EXPECT_DOUBLE_EQ(sum.occupancy_min, 0.5);
  EXPECT_DOUBLE_EQ(sum.occupancy_max, 0.75);
}

TEST(Report, OccupancyMergeFallsBackToPointOccupancy) {
  // Hand-built stats (tests, tools) often set `occupancy` but not the
  // range; merging treats them as a point at occupancy.occupancy.
  LaunchStats a;
  a.occupancy.blocks_per_sm = 2;
  a.occupancy.occupancy = 0.25;
  LaunchStats b;
  b.occupancy.blocks_per_sm = 4;
  b.occupancy.occupancy = 1.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.occupancy_min, 0.25);
  EXPECT_DOUBLE_EQ(a.occupancy_max, 1.0);
}

}  // namespace
}  // namespace cusw::gpusim
