// Karlin-Altschul statistics: conversions, presets, the simulation fitter,
// and hit ranking.
#include <gtest/gtest.h>

#include "sw/statistics.h"
#include "test_helpers.h"

namespace cusw::sw {
namespace {

TEST(Statistics, BitScoreAndEvalueRelations) {
  const auto p = KarlinAltschulParams::blosum62_gapped();
  // Higher raw score -> higher bit score, lower E-value.
  EXPECT_GT(p.bit_score(100), p.bit_score(50));
  EXPECT_LT(p.evalue(100, 300, 1'000'000), p.evalue(50, 300, 1'000'000));
  // E-value scales linearly with the search space.
  EXPECT_NEAR(p.evalue(80, 300, 2'000'000) / p.evalue(80, 300, 1'000'000),
              2.0, 1e-9);
  // P-value is a probability and ~E for tiny E.
  const double e = p.evalue(200, 300, 1'000'000);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 1e-6);
  EXPECT_NEAR(p.pvalue(200, 300, 1'000'000), e, e * 1e-3);
  EXPECT_LE(p.pvalue(10, 300, 1'000'000), 1.0);
}

TEST(Statistics, ScoreForEvalueInvertsEvalue) {
  const auto p = KarlinAltschulParams::blosum62_gapped();
  for (double target : {10.0, 1e-3, 1e-10}) {
    const int s = p.score_for_evalue(target, 567, 180'000'000);
    EXPECT_LE(p.evalue(s, 567, 180'000'000), target);
    EXPECT_GT(p.evalue(s - 1, 567, 180'000'000), target);
  }
}

TEST(Statistics, UninitialisedParamsThrow) {
  KarlinAltschulParams p;
  EXPECT_THROW(p.bit_score(10), std::invalid_argument);
  EXPECT_THROW(p.evalue(10, 10, 10), std::invalid_argument);
}

TEST(Statistics, FitterRecoversPlausibleGumbelParams) {
  // Fit on random pairs; the fitted lambda for gapped BLOSUM62 should be in
  // the physically sensible band around the published 0.267 (the method of
  // moments on short sequences is biased, so the tolerance is loose).
  const auto fit = fit_karlin_altschul(ScoringMatrix::blosum62(), {10, 2},
                                       120, 120, 300, 42);
  EXPECT_GT(fit.lambda, 0.1);
  EXPECT_LT(fit.lambda, 0.6);
  EXPECT_GT(fit.k, 0.0);
  EXPECT_LT(fit.k, 1.0);
  // Deterministic in the seed.
  const auto fit2 = fit_karlin_altschul(ScoringMatrix::blosum62(), {10, 2},
                                        120, 120, 300, 42);
  EXPECT_DOUBLE_EQ(fit.lambda, fit2.lambda);
  EXPECT_DOUBLE_EQ(fit.k, fit2.k);
}

TEST(Statistics, FittedParamsMakeRandomScoresInsignificant) {
  // A random pair's score should not look significant under parameters
  // fitted to random pairs; a strong self-match should.
  const auto& m = ScoringMatrix::blosum62();
  const auto fit = fit_karlin_altschul(m, {10, 2}, 100, 100, 200, 7);
  const auto q = test::random_codes(100, 1);
  const auto t = test::random_codes(100, 2);
  const int random_score = sw_score(q, t, m, {10, 2});
  const int self_score = sw_score(q, q, m, {10, 2});
  const double e_random = fit.evalue(random_score, 100, 100 * 1000);
  const double e_self = fit.evalue(self_score, 100, 100 * 1000);
  EXPECT_GT(e_random, 1e-3);
  EXPECT_LT(e_self, 1e-6);
}

TEST(Statistics, RankHitsFiltersSortsAndLimits) {
  const auto p = KarlinAltschulParams::blosum62_gapped();
  const std::vector<int> scores = {30, 120, 55, 120, 90};
  const auto all = rank_hits(scores, p, 200, 1'000'000, 1e10);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].score, 120);
  EXPECT_EQ(all[0].db_index, 1u);  // stable: first 120 wins
  EXPECT_EQ(all[1].db_index, 3u);
  EXPECT_EQ(all.back().score, 30);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i].evalue, all[i - 1].evalue);
  }

  const auto top2 = rank_hits(scores, p, 200, 1'000'000, 1e10, 2);
  ASSERT_EQ(top2.size(), 2u);

  const double cut = p.evalue(100, 200, 1'000'000);
  const auto significant = rank_hits(scores, p, 200, 1'000'000, cut);
  for (const auto& h : significant) EXPECT_GE(h.score, 100);
  EXPECT_EQ(significant.size(), 2u);
}

}  // namespace
}  // namespace cusw::sw
