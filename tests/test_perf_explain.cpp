// tools/perf_explain_lib.h: differential capsule attribution. A capsule
// explained against itself is a zero delta; a perturbed stall row is
// attributed exactly to its leaf (and nothing else); a charged total that
// disagrees with its reasons trips the residue bound; site perturbations
// land on the (site, space) row; lone unmatched kernels pair as
// "labelA -> labelB"; and the canonical Table I orig-vs-improved pair
// explains with >= 99% of the cycle delta attributed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/capsule.h"
#include "obs/trace_check.h"
#include "tools/perf_explain_lib.h"

namespace cusw::tools {
namespace {

/// A minimal handmade capsule with one kernel: `compute` + `mem_issue`
/// stall ticks (everything else zero), two global site rows whose
/// stall_ticks must sum to mem_issue for a residue-free tree.
std::string handmade(std::uint64_t compute, std::uint64_t mem_issue,
                     std::uint64_t charged, std::uint64_t s1_ticks,
                     std::uint64_t s2_ticks, const char* label = "k",
                     double gcups = 1.0) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      " \"capsule_version\": 1,\n"
      " \"run\": \"test\",\n"
      " \"provenance\": {\"git_sha\": \"test\", \"threads\": 1,"
      " \"memo\": \"on\", \"sample_every_ms\": 0},\n"
      " \"kernels\": [{\n"
      "  \"label\": \"%s\", \"launches\": 1, \"cells\": 1000,"
      "  \"seconds\": 0.001, \"gcups\": %.12g,\n"
      "  \"stall_ticks\": {\"bank_conflict\": 0, \"charged\": %llu,"
      " \"compute\": %llu, \"exposed_latency\": 0, \"mem_issue\": %llu,"
      " \"occupancy_idle\": 0, \"sync\": 0, \"txn_issue\": 0},\n"
      "  \"spaces\": {},\n"
      "  \"sites\": [\n"
      "   {\"site\": \"s1\", \"space\": \"global\","
      " \"counters\": {\"stall_ticks\": %llu, \"transactions\": 7}},\n"
      "   {\"site\": \"s2\", \"space\": \"global\","
      " \"counters\": {\"stall_ticks\": %llu}}\n"
      "  ]\n"
      " }]\n"
      "}\n",
      label, gcups, static_cast<unsigned long long>(charged),
      static_cast<unsigned long long>(compute),
      static_cast<unsigned long long>(mem_issue),
      static_cast<unsigned long long>(s1_ticks),
      static_cast<unsigned long long>(s2_ticks));
  return buf;
}

// 1000 cycles of compute + 2 cycles of memory, split evenly over the two
// site rows (ticks are 1024ths of a cycle, gpusim/stall.h).
constexpr std::uint64_t kCompute = 1024 * 1000;
constexpr std::uint64_t kMem = 2048;
constexpr std::uint64_t kCharged = kCompute + kMem;

const ExplainNode* find_child(const ExplainNode& n, const std::string& name) {
  for (const ExplainNode& c : n.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(PerfExplain, CapsuleAgainstItselfIsZeroDelta) {
  const std::string a = handmade(kCompute, kMem, kCharged, 1024, 1024);
  const ExplainReport rep = explain_capsules(a, a);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.total_delta_cycles, 0.0);
  EXPECT_EQ(rep.max_residue_share, 0.0);
  EXPECT_EQ(rep.attributed_share, 1.0);
  EXPECT_TRUE(rep.within_residue_bound);
  ASSERT_EQ(rep.root.children.size(), 1u);
  EXPECT_EQ(rep.root.children[0].name, "k");
  EXPECT_EQ(rep.root.children[0].delta, 0.0);
  ASSERT_EQ(rep.rates.size(), 1u);
  EXPECT_EQ(rep.rates[0].gcups_a, rep.rates[0].gcups_b);
}

TEST(PerfExplain, PerturbedStallRowIsAttributedExactlyToItsLeaf) {
  // B spends 10 extra cycles of compute; charged grows to match.
  const std::uint64_t extra = 10 * 1024;
  const std::string a = handmade(kCompute, kMem, kCharged, 1024, 1024);
  const std::string b =
      handmade(kCompute + extra, kMem, kCharged + extra, 1024, 1024);
  const ExplainReport rep = explain_capsules(a, b);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.total_delta_cycles, 10.0);
  EXPECT_EQ(rep.max_residue_share, 0.0);
  EXPECT_EQ(rep.attributed_share, 1.0);
  EXPECT_TRUE(rep.within_residue_bound);

  ASSERT_EQ(rep.root.children.size(), 1u);
  const ExplainNode& kernel = rep.root.children[0];
  EXPECT_EQ(kernel.delta, 10.0);
  EXPECT_EQ(kernel.residue, 0.0);
  const ExplainNode* compute = find_child(kernel, "compute");
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->delta, 10.0);
  EXPECT_EQ(compute->share, 1.0);
  // The zero-delta rows (sync, bank_conflict, occupancy_idle, memory)
  // fold into one below-threshold aggregate.
  bool found_fold = false;
  for (const ExplainNode& c : kernel.children) {
    if (c.folded > 0) {
      found_fold = true;
      EXPECT_EQ(c.delta, 0.0);
      EXPECT_NE(c.name.find("below threshold"), std::string::npos) << c.name;
    } else {
      EXPECT_EQ(c.name, "compute");
    }
  }
  EXPECT_TRUE(found_fold);
}

TEST(PerfExplain, ChargedReasonMismatchTripsTheResidueBound) {
  // B claims 10 more charged cycles without any reason carrying them.
  const std::uint64_t extra = 10 * 1024;
  const std::string a = handmade(kCompute, kMem, kCharged, 1024, 1024);
  const std::string b = handmade(kCompute, kMem, kCharged + extra, 1024, 1024);
  const ExplainReport rep = explain_capsules(a, b);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.total_delta_cycles, 10.0);
  EXPECT_EQ(rep.max_residue_share, 1.0);
  EXPECT_EQ(rep.attributed_share, 0.0);
  EXPECT_FALSE(rep.within_residue_bound);
  EXPECT_NE(rep.to_ascii().find("FAIL"), std::string::npos);
}

TEST(PerfExplain, SitePerturbationLandsOnTheSiteRow) {
  // B's s1 row absorbs 10 extra memory cycles; mem_issue and charged grow
  // to match, so the delta threads total -> kernel -> memory -> s1.
  const std::uint64_t extra = 10 * 1024;
  const std::string a = handmade(kCompute, kMem, kCharged, 1024, 1024);
  const std::string b = handmade(kCompute, kMem + extra, kCharged + extra,
                                 1024 + extra, 1024);
  const ExplainReport rep = explain_capsules(a, b);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.total_delta_cycles, 10.0);
  EXPECT_EQ(rep.max_residue_share, 0.0);
  EXPECT_TRUE(rep.within_residue_bound);

  ASSERT_EQ(rep.root.children.size(), 1u);
  const ExplainNode* memory = find_child(rep.root.children[0], "memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->delta, 10.0);
  EXPECT_EQ(memory->residue, 0.0);
  const ExplainNode* s1 = find_child(*memory, "s1 (global)");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->delta, 10.0);
  EXPECT_EQ(s1->share, 1.0);
  ASSERT_FALSE(s1->notes.empty());
  EXPECT_EQ(s1->notes[0].first, "transactions");
  const ExplainNode* s2 = find_child(*memory, "s2 (global)");
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->delta, 0.0);
}

TEST(PerfExplain, LoneUnmatchedKernelsPairAsRename) {
  const std::uint64_t extra = 100 * 1024;
  const std::string a =
      handmade(kCompute, kMem, kCharged, 1024, 1024, "orig", 1.0);
  const std::string b = handmade(kCompute - extra, kMem, kCharged - extra,
                                 1024, 1024, "impr", 2.0);
  const ExplainReport rep = explain_capsules(a, b);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_EQ(rep.root.children.size(), 1u);
  EXPECT_EQ(rep.root.children[0].name, "orig -> impr");
  EXPECT_EQ(rep.total_delta_cycles, -100.0);
  ASSERT_EQ(rep.rates.size(), 1u);
  EXPECT_EQ(rep.rates[0].name, "orig -> impr");
  EXPECT_EQ(rep.rates[0].gcups_a, 1.0);
  EXPECT_EQ(rep.rates[0].gcups_b, 2.0);
}

TEST(PerfExplain, ReportJsonParses) {
  const std::uint64_t extra = 10 * 1024;
  const std::string a = handmade(kCompute, kMem, kCharged, 1024, 1024);
  const std::string b =
      handmade(kCompute + extra, kMem, kCharged + extra, 1024, 1024);
  const ExplainReport rep = explain_capsules(a, b);
  ASSERT_TRUE(rep.ok) << rep.error;
  obs::json::Value doc;
  std::string error;
  ASSERT_TRUE(obs::json::parse(rep.to_json(), doc, &error)) << error;
  EXPECT_TRUE(doc.find("within_residue_bound")->boolean);
  EXPECT_EQ(doc.find("total_delta_cycles")->number, 10.0);
  const obs::json::Value* tree = doc.find("tree");
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->find("name")->string, "total");
  ASSERT_NE(tree->find("children"), nullptr);
  EXPECT_EQ(tree->find("children")->array.size(), 1u);
}

TEST(PerfExplain, InvalidCapsuleReportsError) {
  const ExplainReport rep =
      explain_capsules("{\"not\": \"a capsule\"}",
                       handmade(kCompute, kMem, kCharged, 1024, 1024));
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("capsule A"), std::string::npos) << rep.error;
}

TEST(PerfExplain, CanonicalTableOnePairExplainsWithinBound) {
  const std::string orig = canonical_capsule_original();
  const std::string impr = canonical_capsule_improved();
  ASSERT_TRUE(obs::validate_capsule(orig).ok)
      << obs::validate_capsule(orig).error;
  ASSERT_TRUE(obs::validate_capsule(impr).ok)
      << obs::validate_capsule(impr).error;

  // Against itself: exact zero.
  const ExplainReport self = explain_capsules(orig, orig);
  ASSERT_TRUE(self.ok) << self.error;
  EXPECT_EQ(self.total_delta_cycles, 0.0);
  EXPECT_EQ(self.max_residue_share, 0.0);

  // Original vs improved: the paper's speedup, >= 99% attributed.
  const ExplainReport rep = explain_capsules(orig, impr);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_LT(rep.total_delta_cycles, 0.0);  // improved spends fewer cycles
  EXPECT_TRUE(rep.within_residue_bound) << rep.to_ascii();
  EXPECT_GE(rep.attributed_share, 0.99);
  ASSERT_EQ(rep.rates.size(), 1u);
  EXPECT_EQ(rep.rates[0].name, "intra_task_original -> intra_task_improved");
  EXPECT_GT(rep.rates[0].gcups_b, rep.rates[0].gcups_a);
}

}  // namespace
}  // namespace cusw::tools
