// Shared fixtures/helpers for the test suites.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/generate.h"
#include "sw/scoring.h"
#include "sw/smith_waterman.h"

namespace cusw::test {

inline std::vector<seq::Code> random_codes(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  return seq::random_protein(len, rng).residues;
}

/// Reference scores of query vs every sequence in db.
inline std::vector<int> reference_scores(const std::vector<seq::Code>& query,
                                         const seq::SequenceDB& db,
                                         const sw::ScoringMatrix& matrix,
                                         sw::GapPenalty gap) {
  std::vector<int> out;
  out.reserve(db.size());
  for (const auto& s : db.sequences())
    out.push_back(sw::sw_score(query, s.residues, matrix, gap));
  return out;
}

}  // namespace cusw::test
