#include "seq/alphabet.h"

#include <cctype>

namespace cusw::seq {

Alphabet::Alphabet(std::string letters, char wildcard_letter)
    : letters_(std::move(letters)) {
  to_code_.fill(-1);
  for (std::size_t i = 0; i < letters_.size(); ++i) {
    const char ch = letters_[i];
    to_code_[static_cast<unsigned char>(ch)] = static_cast<int>(i);
    to_code_[static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(ch)))] = static_cast<int>(i);
  }
  wildcard_ = encode(wildcard_letter);
}

const Alphabet& Alphabet::amino_acid() {
  // BLOSUM row order: 20 standard residues, then B (Asx), Z (Glx), X, *.
  static const Alphabet a("ARNDCQEGHILKMFPSTWYVBZX*", 'X');
  return a;
}

const Alphabet& Alphabet::dna() {
  static const Alphabet a("ACGTN", 'N');
  return a;
}

}  // namespace cusw::seq
