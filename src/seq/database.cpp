#include "seq/database.h"

#include <algorithm>

#include "util/check.h"

namespace cusw::seq {

double LengthStats::fraction_over(std::size_t threshold) const {
  if (count == 0) return 0.0;
  std::size_t over = 0;
  for (auto len : lengths) {
    if (len > threshold) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(count);
}

std::uint64_t SequenceDB::total_residues() const {
  std::uint64_t total = 0;
  for (const auto& s : seqs_) total += s.length();
  return total;
}

LengthStats SequenceDB::length_stats() const {
  LengthStats st;
  st.count = seqs_.size();
  OnlineStats acc;
  st.lengths.reserve(seqs_.size());
  for (const auto& s : seqs_) {
    st.lengths.push_back(s.length());
    acc.add(static_cast<double>(s.length()));
    st.total_residues += s.length();
  }
  st.min_length = static_cast<std::size_t>(acc.min());
  st.max_length = static_cast<std::size_t>(acc.max());
  st.mean_length = acc.mean();
  st.stddev_length = acc.stddev();
  return st;
}

void SequenceDB::sort_by_length() {
  std::stable_sort(seqs_.begin(), seqs_.end(),
                   [](const Sequence& a, const Sequence& b) {
                     return a.length() < b.length();
                   });
}

bool SequenceDB::is_sorted_by_length() const {
  return std::is_sorted(seqs_.begin(), seqs_.end(),
                        [](const Sequence& a, const Sequence& b) {
                          return a.length() < b.length();
                        });
}

std::pair<SequenceDB, SequenceDB> SequenceDB::split_by_threshold(
    std::size_t threshold) const {
  SequenceDB below, above;
  for (const auto& s : seqs_) {
    (s.length() > threshold ? above : below).add(s);
  }
  return {std::move(below), std::move(above)};
}

SequenceDB SequenceDB::filter_by_length(std::size_t min_length,
                                        std::size_t max_length) const {
  CUSW_REQUIRE(min_length <= max_length, "length filter bounds inverted");
  SequenceDB out;
  for (const auto& s : seqs_) {
    if (s.length() >= min_length && s.length() <= max_length) out.add(s);
  }
  return out;
}

SequenceDB SequenceDB::slice(std::size_t lo, std::size_t hi) const {
  CUSW_REQUIRE(lo <= hi && hi <= seqs_.size(), "slice bounds out of range");
  SequenceDB out;
  for (std::size_t i = lo; i < hi; ++i) out.add(seqs_[i]);
  return out;
}

SequenceDB SequenceDB::sample_stride(std::size_t stride,
                                     std::size_t offset) const {
  CUSW_REQUIRE(stride > 0, "stride must be positive");
  SequenceDB out;
  for (std::size_t i = offset; i < seqs_.size(); i += stride) {
    out.add(seqs_[i]);
  }
  return out;
}

void SequenceDB::append(const SequenceDB& other) {
  seqs_.insert(seqs_.end(), other.seqs_.begin(), other.seqs_.end());
}

std::vector<std::pair<std::size_t, std::size_t>> SequenceDB::partition_groups(
    std::size_t group_size) const {
  CUSW_REQUIRE(group_size > 0, "group size must be positive");
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t lo = 0; lo < seqs_.size(); lo += group_size) {
    groups.emplace_back(lo, std::min(lo + group_size, seqs_.size()));
  }
  return groups;
}

}  // namespace cusw::seq
