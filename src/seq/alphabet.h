// Residue alphabets and their byte encodings.
//
// Sequences are stored as small integer codes (not ASCII) so that scoring
// matrix lookups and query-profile construction are direct array indexing —
// the same representation the CUDA kernels use on the device.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace cusw::seq {

using Code = std::uint8_t;

/// The 20 standard amino acids plus ambiguity codes, in the conventional
/// BLOSUM row order. 'X' doubles as the unknown-residue code.
class Alphabet {
 public:
  static const Alphabet& amino_acid();
  static const Alphabet& dna();

  std::size_t size() const { return letters_.size(); }
  char letter(Code c) const { return letters_.at(c); }

  bool contains(char ch) const {
    return to_code_[static_cast<unsigned char>(ch)] >= 0;
  }

  Code encode(char ch) const {
    const int c = to_code_[static_cast<unsigned char>(ch)];
    CUSW_REQUIRE(c >= 0, std::string("letter not in alphabet: ") + ch);
    return static_cast<Code>(c);
  }

  /// Encode, mapping unknown letters to the wildcard code instead of
  /// throwing (FASTA files in the wild contain oddities).
  Code encode_lenient(char ch) const {
    const int c = to_code_[static_cast<unsigned char>(ch)];
    return c >= 0 ? static_cast<Code>(c) : wildcard_;
  }

  Code wildcard() const { return wildcard_; }

  std::vector<Code> encode(std::string_view s) const {
    std::vector<Code> out;
    out.reserve(s.size());
    for (char ch : s) out.push_back(encode(ch));
    return out;
  }

  std::string decode(const std::vector<Code>& codes) const {
    std::string out;
    out.reserve(codes.size());
    for (Code c : codes) out.push_back(letter(c));
    return out;
  }

 private:
  Alphabet(std::string letters, char wildcard_letter);

  std::string letters_;
  std::array<int, 256> to_code_{};
  Code wildcard_ = 0;
};

}  // namespace cusw::seq
