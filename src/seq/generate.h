// Deterministic synthetic database generation.
//
// The real databases used in the paper (UniProt/Swiss-Prot, Ensembl Dog/Rat,
// NCBI RefSeq Human/Mouse, TAIR) are not redistributable here, so we
// synthesise statistical stand-ins: protein sequence length follows a
// log-normal distribution (the paper itself models databases this way,
// §II-C), and residues are drawn from the Robinson–Robinson background
// frequencies. Every experiment in the paper depends on the *length
// distribution* only, which these generators reproduce exactly.
#pragma once

#include <string>
#include <vector>

#include "seq/database.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cusw::seq {

/// One random protein-like sequence of exactly `length` residues.
Sequence random_protein(std::size_t length, Rng& rng,
                        const std::string& name = "synthetic");

/// Database with log-normal length distribution given as (mean, stddev) of
/// the lengths themselves, as in the paper's Fig. 2 experiment.
SequenceDB lognormal_db(std::size_t n, double mean_length,
                        double stddev_length, std::uint64_t seed,
                        std::size_t min_length = 16,
                        std::size_t max_length = 60000);

/// Database with log-normal lengths given the underlying normal parameters.
SequenceDB lognormal_db_params(std::size_t n, const LogNormalParams& params,
                               std::uint64_t seed, std::size_t min_length = 16,
                               std::size_t max_length = 60000);

/// Database with lengths uniform in [lo, hi].
SequenceDB uniform_db(std::size_t n, std::size_t lo, std::size_t hi,
                      std::uint64_t seed);

/// Statistical profile of a published protein database: enough to synthesise
/// a scaled stand-in whose dispatch behaviour (fraction of sequences above
/// the kernel threshold) matches the paper's Table II column.
struct DatabaseProfile {
  std::string name;
  std::size_t full_sequence_count;  // size of the real database
  double mean_length;
  double pct_over_3072;  // the "% over Thresh" column of Table II

  /// Synthesise `n` sequences matching this profile. The generator fits a
  /// log-normal to (mean, tail over 3072) and then plants the exact expected
  /// number of over-threshold sequences so small scaled databases still have
  /// a long tail instead of losing it to sampling noise.
  SequenceDB synthesize(std::size_t n, std::uint64_t seed) const;

  static DatabaseProfile swissprot();
  static DatabaseProfile ensembl_dog();
  static DatabaseProfile ensembl_rat();
  static DatabaseProfile refseq_human();
  static DatabaseProfile refseq_mouse();
  static DatabaseProfile tair();
  static std::vector<DatabaseProfile> all_paper_databases();
};

}  // namespace cusw::seq
