// Sequence database container with the length statistics and sort/partition
// operations the CUDASW++ host pipeline relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/stats.h"

namespace cusw::seq {

struct LengthStats {
  std::size_t count = 0;
  std::uint64_t total_residues = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double mean_length = 0.0;
  double stddev_length = 0.0;
  /// Fraction of sequences strictly longer than the dispatch threshold.
  double fraction_over(std::size_t threshold) const;
  std::vector<std::size_t> lengths;  // retained for percentile queries
};

class SequenceDB {
 public:
  SequenceDB() = default;
  explicit SequenceDB(std::vector<Sequence> seqs) : seqs_(std::move(seqs)) {}

  void add(Sequence s) { seqs_.push_back(std::move(s)); }

  std::size_t size() const { return seqs_.size(); }
  bool empty() const { return seqs_.empty(); }
  const Sequence& operator[](std::size_t i) const { return seqs_[i]; }
  const Sequence& at(std::size_t i) const { return seqs_.at(i); }
  const std::vector<Sequence>& sequences() const { return seqs_; }

  std::uint64_t total_residues() const;
  LengthStats length_stats() const;

  /// Stable sort by ascending length — the CUDASW++ preprocessing step that
  /// makes inter-task groups near-uniform in length.
  void sort_by_length();
  bool is_sorted_by_length() const;

  /// Split into (below-or-equal, above) the dispatch threshold.
  std::pair<SequenceDB, SequenceDB> split_by_threshold(
      std::size_t threshold) const;

  /// Partition indices [0, size) into contiguous groups of at most
  /// `group_size` sequences, as the host does before inter-task launches.
  std::vector<std::pair<std::size_t, std::size_t>> partition_groups(
      std::size_t group_size) const;

  /// Sequences whose length lies in [min_length, max_length].
  SequenceDB filter_by_length(std::size_t min_length,
                              std::size_t max_length) const;

  /// The contiguous slice [lo, hi).
  SequenceDB slice(std::size_t lo, std::size_t hi) const;

  /// Every `stride`-th sequence starting at `offset` — a stratified sample
  /// that preserves the length distribution of a sorted database.
  SequenceDB sample_stride(std::size_t stride, std::size_t offset = 0) const;

  /// Append all sequences of `other`.
  void append(const SequenceDB& other);

 private:
  std::vector<Sequence> seqs_;
};

/// Non-owning view of a subset of a SequenceDB, optionally through an
/// index list (original-order indices, in view order). Kernel launches
/// take views so the host pipeline can dispatch occupancy-sized groups of
/// a prepared database without copying any sequence. The database and the
/// index array must outlive the view.
class SequenceDBView {
 public:
  SequenceDBView() = default;

  /// Whole-database view (implicit: any SequenceDB is a view of itself).
  SequenceDBView(const SequenceDB& db)  // NOLINT(google-explicit-constructor)
      : db_(&db), count_(db.size()) {}

  /// View of `count` sequences: db[indices[0]], ..., db[indices[count-1]].
  SequenceDBView(const SequenceDB& db, const std::size_t* indices,
                 std::size_t count)
      : db_(&db), indices_(indices), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  const Sequence& operator[](std::size_t i) const {
    return (*db_)[indices_ != nullptr ? indices_[i] : i];
  }

 private:
  const SequenceDB* db_ = nullptr;
  const std::size_t* indices_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace cusw::seq
