#include "seq/generate.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.h"

namespace cusw::seq {

namespace {

// Robinson & Robinson (1991) amino-acid background frequencies, in the
// BLOSUM row order used by Alphabet::amino_acid() (ARNDCQEGHILKMFPSTWYV).
constexpr double kAaFreq[20] = {
    0.078, 0.051, 0.045, 0.054, 0.019, 0.043, 0.063, 0.074, 0.022, 0.051,
    0.091, 0.057, 0.022, 0.039, 0.052, 0.071, 0.058, 0.013, 0.032, 0.064};

// Cumulative distribution over the 20 standard residues, normalised.
const std::array<double, 20>& aa_cdf() {
  static const std::array<double, 20> cdf = [] {
    std::array<double, 20> c{};
    double total = 0.0;
    for (double f : kAaFreq) total += f;
    double acc = 0.0;
    for (int i = 0; i < 20; ++i) {
      acc += kAaFreq[i] / total;
      c[static_cast<std::size_t>(i)] = acc;
    }
    c[19] = 1.0;
    return c;
  }();
  return cdf;
}

Code sample_residue(Rng& rng) {
  const double u = rng.uniform01();
  const auto& cdf = aa_cdf();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<Code>(std::distance(cdf.begin(), it));
}

std::size_t clamp_length(double len, std::size_t lo, std::size_t hi) {
  if (!(len > static_cast<double>(lo))) return lo;
  if (len > static_cast<double>(hi)) return hi;
  return static_cast<std::size_t>(len);
}

}  // namespace

Sequence random_protein(std::size_t length, Rng& rng, const std::string& name) {
  Sequence s;
  s.name = name;
  s.residues.reserve(length);
  for (std::size_t i = 0; i < length; ++i) s.residues.push_back(sample_residue(rng));
  return s;
}

SequenceDB lognormal_db_params(std::size_t n, const LogNormalParams& params,
                               std::uint64_t seed, std::size_t min_length,
                               std::size_t max_length) {
  Rng rng(seed);
  SequenceDB db;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = clamp_length(rng.lognormal(params.mu, params.sigma),
                                         min_length, max_length);
    db.add(random_protein(len, rng, "lognormal_" + std::to_string(i)));
  }
  return db;
}

SequenceDB lognormal_db(std::size_t n, double mean_length, double stddev_length,
                        std::uint64_t seed, std::size_t min_length,
                        std::size_t max_length) {
  return lognormal_db_params(
      n, lognormal_from_mean_stddev(mean_length, stddev_length), seed,
      min_length, max_length);
}

SequenceDB uniform_db(std::size_t n, std::size_t lo, std::size_t hi,
                      std::uint64_t seed) {
  CUSW_REQUIRE(lo > 0 && lo <= hi, "uniform_db bounds invalid");
  Rng rng(seed);
  SequenceDB db;
  for (std::size_t i = 0; i < n; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    db.add(random_protein(len, rng, "uniform_" + std::to_string(i)));
  }
  return db;
}

SequenceDB DatabaseProfile::synthesize(std::size_t n, std::uint64_t seed) const {
  CUSW_REQUIRE(n > 0, "cannot synthesise an empty database");
  constexpr double kThreshold = 3072.0;
  const double tail = pct_over_3072 / 100.0;
  const LogNormalParams p =
      lognormal_from_mean_tail(mean_length, kThreshold, tail);

  // Plant the exact expected number of over-threshold sequences (at least
  // one) and draw body/tail lengths from the matching conditional
  // distributions via the inverse CDF. A plain i.i.d. sample of a few
  // thousand sequences would frequently contain zero long sequences, which
  // would make the intra-task kernel path vanish from scaled experiments.
  const auto n_tail = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(tail * static_cast<double>(n))));
  CUSW_CHECK(n_tail < n, "tail cannot cover the whole database");
  const double z_thr = (std::log(kThreshold) - p.mu) / p.sigma;
  const double cdf_thr = normal_cdf(z_thr);

  Rng rng(seed);
  SequenceDB db;
  for (std::size_t i = 0; i < n; ++i) {
    const bool in_tail = i < n_tail;
    // Conditional sample: u uniform in (F(thr), 1) for the tail, (0, F(thr))
    // for the body.
    double u;
    do {
      u = in_tail ? cdf_thr + (1.0 - cdf_thr) * rng.uniform01()
                  : cdf_thr * rng.uniform01();
    } while (u <= 0.0 || u >= 1.0);
    const double z = inverse_normal_cdf(u);
    const double len = std::exp(p.mu + p.sigma * z);
    db.add(random_protein(clamp_length(len, 16, 60000), rng,
                          name + "_" + std::to_string(i)));
  }
  return db;
}

DatabaseProfile DatabaseProfile::swissprot() {
  // UniProtKB/Swiss-Prot as benchmarked by CUDASW++: ~516k sequences, mean
  // length ~360, 0.12% of sequences longer than 3072 (paper §I and Table II).
  return {"Swiss-Prot", 516081, 360.0, 0.12};
}

DatabaseProfile DatabaseProfile::ensembl_dog() {
  return {"Ensembl Dog Proteins", 25160, 486.0, 0.53};
}

DatabaseProfile DatabaseProfile::ensembl_rat() {
  return {"Ensembl Rat Proteins", 32971, 448.0, 0.35};
}

DatabaseProfile DatabaseProfile::refseq_human() {
  return {"NCBI RefSeq Human Proteins", 34700, 555.0, 0.56};
}

DatabaseProfile DatabaseProfile::refseq_mouse() {
  return {"NCBI RefSeq Mouse Proteins", 29745, 521.0, 0.54};
}

DatabaseProfile DatabaseProfile::tair() {
  // TAIR Arabidopsis: the least tail mass of the six (0.06%), which is why
  // the paper's Table II shows the smallest improvement there.
  return {"TAIR Arabidopsis Proteins", 35386, 409.0, 0.06};
}

std::vector<DatabaseProfile> DatabaseProfile::all_paper_databases() {
  return {ensembl_dog(), ensembl_rat(),  refseq_human(),
          refseq_mouse(), tair(),        swissprot()};
}

}  // namespace cusw::seq
