// FASTA I/O.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/database.h"

namespace cusw::seq {

/// Parse FASTA from a stream. Lenient about unknown residue letters (mapped
/// to the alphabet wildcard) and blank lines; throws on structural errors
/// such as residues before the first header.
SequenceDB read_fasta(std::istream& in,
                      const Alphabet& alphabet = Alphabet::amino_acid());

SequenceDB read_fasta_file(const std::string& path,
                           const Alphabet& alphabet = Alphabet::amino_acid());

void write_fasta(std::ostream& out, const SequenceDB& db,
                 const Alphabet& alphabet = Alphabet::amino_acid(),
                 std::size_t line_width = 60);

void write_fasta_file(const std::string& path, const SequenceDB& db,
                      const Alphabet& alphabet = Alphabet::amino_acid(),
                      std::size_t line_width = 60);

}  // namespace cusw::seq
