#include "seq/serialize.h"

#include <array>
#include <cstring>
#include <fstream>

#include "util/check.h"

namespace cusw::seq {

namespace {

constexpr std::array<char, 8> kMagic = {'C', 'U', 'S', 'W', 'D', 'B', '1', 0};

template <class T>
void put(std::ostream& out, T v) {
  // Serialise integers explicitly little-endian so images are portable.
  for (std::size_t b = 0; b < sizeof(T); ++b) {
    out.put(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * b)) & 0xFF));
  }
}

template <class T>
T get(std::istream& in) {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < sizeof(T); ++b) {
    const int c = in.get();
    CUSW_REQUIRE(c != std::char_traits<char>::eof(), "truncated database image");
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * b);
  }
  return static_cast<T>(v);
}

}  // namespace

void write_db(std::ostream& out, const SequenceDB& db) {
  out.write(kMagic.data(), kMagic.size());
  put<std::uint64_t>(out, db.size());
  put<std::uint64_t>(out, db.total_residues());
  for (const auto& s : db.sequences()) {
    put<std::uint32_t>(out, checked_narrow<std::uint32_t>(s.name.size()));
    out.write(s.name.data(), static_cast<std::streamsize>(s.name.size()));
    put<std::uint64_t>(out, s.residues.size());
    out.write(reinterpret_cast<const char*>(s.residues.data()),
              static_cast<std::streamsize>(s.residues.size()));
  }
  CUSW_REQUIRE(out.good(), "database serialisation failed");
}

SequenceDB read_db(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  CUSW_REQUIRE(in.gcount() == static_cast<std::streamsize>(magic.size()) &&
                   magic == kMagic,
               "not a CUSWDB1 database image");
  const auto count = get<std::uint64_t>(in);
  const auto total = get<std::uint64_t>(in);
  SequenceDB db;
  std::uint64_t residues = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = get<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto res_len = get<std::uint64_t>(in);
    std::vector<Code> codes(res_len);
    in.read(reinterpret_cast<char*>(codes.data()),
            static_cast<std::streamsize>(res_len));
    CUSW_REQUIRE(in.good(), "truncated database image");
    residues += res_len;
    db.add(Sequence(std::move(name), std::move(codes)));
  }
  CUSW_REQUIRE(residues == total, "database image residue count mismatch");
  return db;
}

void write_db_file(const std::string& path, const SequenceDB& db) {
  std::ofstream out(path, std::ios::binary);
  CUSW_REQUIRE(out.good(), "cannot open database image for writing: " + path);
  write_db(out, db);
}

SequenceDB read_db_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CUSW_REQUIRE(in.good(), "cannot open database image: " + path);
  return read_db(in);
}

}  // namespace cusw::seq
