// A named, encoded biological sequence.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "seq/alphabet.h"

namespace cusw::seq {

struct Sequence {
  std::string name;
  std::vector<Code> residues;

  Sequence() = default;
  Sequence(std::string n, std::vector<Code> r)
      : name(std::move(n)), residues(std::move(r)) {}

  /// Convenience constructor from a letter string.
  Sequence(std::string n, std::string_view letters,
           const Alphabet& alphabet = Alphabet::amino_acid())
      : name(std::move(n)), residues(alphabet.encode(letters)) {}

  std::size_t length() const { return residues.size(); }
  bool empty() const { return residues.empty(); }
};

}  // namespace cusw::seq
