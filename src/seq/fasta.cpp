#include "seq/fasta.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace cusw::seq {

SequenceDB read_fasta(std::istream& in, const Alphabet& alphabet) {
  SequenceDB db;
  std::string line;
  Sequence current;
  bool have_header = false;
  auto flush = [&] {
    if (have_header) db.add(std::move(current));
    current = Sequence{};
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_header = true;
      current.name = line.substr(1);
    } else if (line[0] == ';') {
      continue;  // old-style comment line
    } else {
      CUSW_REQUIRE(have_header, "FASTA residues before the first '>' header");
      for (char ch : line) {
        if (std::isspace(static_cast<unsigned char>(ch))) continue;
        current.residues.push_back(alphabet.encode_lenient(ch));
      }
    }
  }
  flush();
  return db;
}

SequenceDB read_fasta_file(const std::string& path, const Alphabet& alphabet) {
  std::ifstream in(path);
  CUSW_REQUIRE(in.good(), "cannot open FASTA file: " + path);
  return read_fasta(in, alphabet);
}

void write_fasta(std::ostream& out, const SequenceDB& db,
                 const Alphabet& alphabet, std::size_t line_width) {
  CUSW_REQUIRE(line_width > 0, "line width must be positive");
  for (const auto& s : db.sequences()) {
    out << '>' << s.name << '\n';
    for (std::size_t i = 0; i < s.residues.size(); i += line_width) {
      const std::size_t hi = std::min(i + line_width, s.residues.size());
      for (std::size_t j = i; j < hi; ++j) out << alphabet.letter(s.residues[j]);
      out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const SequenceDB& db,
                      const Alphabet& alphabet, std::size_t line_width) {
  std::ofstream out(path);
  CUSW_REQUIRE(out.good(), "cannot open FASTA file for writing: " + path);
  write_fasta(out, db, alphabet, line_width);
}

}  // namespace cusw::seq
