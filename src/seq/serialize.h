// Binary database serialization — the "database preprocessing step" of
// CUDASW++: convert a FASTA database once (parse, encode, optionally sort
// by length) and load the compact binary image at search time.
//
// Format (little-endian):
//   magic "CUSWDB1\0" | u64 sequence count | u64 total residues
//   per sequence: u32 name length | name bytes | u64 residue count | codes
#pragma once

#include <iosfwd>
#include <string>

#include "seq/database.h"

namespace cusw::seq {

void write_db(std::ostream& out, const SequenceDB& db);
SequenceDB read_db(std::istream& in);

void write_db_file(const std::string& path, const SequenceDB& db);
SequenceDB read_db_file(const std::string& path);

}  // namespace cusw::seq
