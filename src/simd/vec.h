// Portable fixed-width SIMD vector.
//
// The SWPS3 baseline in the paper runs on SSE2; this repository targets
// whatever host it builds on, so the vector type is a plain fixed-size array
// with per-lane loops, specialised to real SSE2 intrinsics where the target
// has them (the saturating adds/subs defeat the auto-vectoriser, which
// otherwise scalarises the striped kernels' inner loops ~8x). The intrinsic
// and portable paths implement identical semantics — saturating arithmetic,
// lane shifts, compare masks — so scores do not depend on which one was
// compiled in.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <type_traits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cusw::simd {

template <class T, int N>
struct Vec {
  static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be a power of two");
  using value_type = T;
  static constexpr int lanes = N;

  alignas(16) T lane[N];

#if defined(__SSE2__)
  // The two instantiations the striped kernels use map exactly onto one
  // 128-bit register: epi16 ops for Vec<int16_t, 8>, epu8 ops for
  // Vec<uint8_t, 16>.
  static constexpr bool kSseI16 = std::is_same_v<T, std::int16_t> && N == 8;
  static constexpr bool kSseU8 = std::is_same_v<T, std::uint8_t> && N == 16;

  __m128i reg() const {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(lane));
  }
  static Vec from(__m128i r) {
    Vec v;
    _mm_store_si128(reinterpret_cast<__m128i*>(v.lane), r);
    return v;
  }
#endif

  static Vec splat(T v) {
#if defined(__SSE2__)
    if constexpr (kSseI16) return from(_mm_set1_epi16(v));
    if constexpr (kSseU8)
      return from(_mm_set1_epi8(static_cast<char>(v)));
#endif
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = v;
    return r;
  }

  static Vec zero() { return splat(T{0}); }

  static Vec load(const T* p) {
#if defined(__SSE2__)
    if constexpr (kSseI16 || kSseU8)
      return from(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
#endif
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = p[i];
    return r;
  }

  void store(T* p) const {
#if defined(__SSE2__)
    if constexpr (kSseI16 || kSseU8) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(p), reg());
      return;
    }
#endif
    for (int i = 0; i < N; ++i) p[i] = lane[i];
  }

  T operator[](int i) const { return lane[i]; }

  friend Vec max(Vec a, Vec b) {
#if defined(__SSE2__)
    if constexpr (kSseI16) return from(_mm_max_epi16(a.reg(), b.reg()));
    if constexpr (kSseU8) return from(_mm_max_epu8(a.reg(), b.reg()));
#endif
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
    return r;
  }

  /// Saturating add (SSE2 padds/paddus semantics). 32-bit intermediates
  /// keep the per-lane loop auto-vectorisable.
  friend Vec adds(Vec a, Vec b) {
#if defined(__SSE2__)
    if constexpr (kSseI16) return from(_mm_adds_epi16(a.reg(), b.reg()));
    if constexpr (kSseU8) return from(_mm_adds_epu8(a.reg(), b.reg()));
#endif
    constexpr int lo = std::numeric_limits<T>::min();
    constexpr int hi = std::numeric_limits<T>::max();
    Vec r;
    for (int i = 0; i < N; ++i) {
      const int wide = static_cast<int>(a.lane[i]) + static_cast<int>(b.lane[i]);
      r.lane[i] = static_cast<T>(std::min(hi, std::max(lo, wide)));
    }
    return r;
  }

  /// Saturating subtract (SSE2 psubs/psubus semantics).
  friend Vec subs(Vec a, Vec b) {
#if defined(__SSE2__)
    if constexpr (kSseI16) return from(_mm_subs_epi16(a.reg(), b.reg()));
    if constexpr (kSseU8) return from(_mm_subs_epu8(a.reg(), b.reg()));
#endif
    constexpr int lo = std::numeric_limits<T>::min();
    constexpr int hi = std::numeric_limits<T>::max();
    Vec r;
    for (int i = 0; i < N; ++i) {
      const int wide = static_cast<int>(a.lane[i]) - static_cast<int>(b.lane[i]);
      r.lane[i] = static_cast<T>(std::min(hi, std::max(lo, wide)));
    }
    return r;
  }

  /// Shift the whole register "left" by one lane (toward higher indices),
  /// filling lane 0 with `fill` — SSE2 pslldq by one element.
  friend Vec shift_in(Vec a, T fill) {
#if defined(__SSE2__)
    if constexpr (kSseI16 || kSseU8) {
      Vec r = from(_mm_slli_si128(a.reg(), sizeof(T)));
      r.lane[0] = fill;
      return r;
    }
#endif
    Vec r;
    r.lane[0] = fill;
    for (int i = 1; i < N; ++i) r.lane[i] = a.lane[i - 1];
    return r;
  }

  /// True if any lane of a is strictly greater than the matching lane of b
  /// (pcmpgt + pmovmskb — the lazy-F loop exit test).
  friend bool any_gt(Vec a, Vec b) {
#if defined(__SSE2__)
    if constexpr (kSseI16)
      return _mm_movemask_epi8(_mm_cmpgt_epi16(a.reg(), b.reg())) != 0;
    if constexpr (kSseU8)
      // Unsigned compare: a > b iff the saturating difference is nonzero.
      return _mm_movemask_epi8(_mm_cmpeq_epi8(
                 _mm_subs_epu8(a.reg(), b.reg()), _mm_setzero_si128())) !=
             0xFFFF;
#endif
    bool r = false;
    for (int i = 0; i < N; ++i) r |= (a.lane[i] > b.lane[i]);
    return r;
  }

  friend T horizontal_max(Vec a) {
    T m = a.lane[0];
    for (int i = 1; i < N; ++i) m = std::max(m, a.lane[i]);
    return m;
  }
};

using VecI16 = Vec<std::int16_t, 8>;

}  // namespace cusw::simd
