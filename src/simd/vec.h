// Portable fixed-width SIMD vector.
//
// The SWPS3 baseline in the paper runs on SSE2; this repository targets
// whatever host it builds on, so the vector type is a plain fixed-size array
// with per-lane loops. GCC/Clang auto-vectorise these loops at -O2, giving a
// faithful stand-in for hand-written intrinsics while staying portable.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

namespace cusw::simd {

template <class T, int N>
struct Vec {
  static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be a power of two");
  using value_type = T;
  static constexpr int lanes = N;

  alignas(16) T lane[N];

  static Vec splat(T v) {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = v;
    return r;
  }

  static Vec zero() { return splat(T{0}); }

  static Vec load(const T* p) {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = p[i];
    return r;
  }

  void store(T* p) const {
    for (int i = 0; i < N; ++i) p[i] = lane[i];
  }

  T operator[](int i) const { return lane[i]; }

  friend Vec max(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = std::max(a.lane[i], b.lane[i]);
    return r;
  }

  /// Saturating add (SSE2 padds/paddus semantics). 32-bit intermediates
  /// keep the per-lane loop auto-vectorisable.
  friend Vec adds(Vec a, Vec b) {
    constexpr int lo = std::numeric_limits<T>::min();
    constexpr int hi = std::numeric_limits<T>::max();
    Vec r;
    for (int i = 0; i < N; ++i) {
      const int wide = static_cast<int>(a.lane[i]) + static_cast<int>(b.lane[i]);
      r.lane[i] = static_cast<T>(std::min(hi, std::max(lo, wide)));
    }
    return r;
  }

  /// Saturating subtract (SSE2 psubs/psubus semantics).
  friend Vec subs(Vec a, Vec b) {
    constexpr int lo = std::numeric_limits<T>::min();
    constexpr int hi = std::numeric_limits<T>::max();
    Vec r;
    for (int i = 0; i < N; ++i) {
      const int wide = static_cast<int>(a.lane[i]) - static_cast<int>(b.lane[i]);
      r.lane[i] = static_cast<T>(std::min(hi, std::max(lo, wide)));
    }
    return r;
  }

  /// Shift the whole register "left" by one lane (toward higher indices),
  /// filling lane 0 with `fill` — SSE2 pslldq by one element.
  friend Vec shift_in(Vec a, T fill) {
    Vec r;
    r.lane[0] = fill;
    for (int i = 1; i < N; ++i) r.lane[i] = a.lane[i - 1];
    return r;
  }

  /// True if any lane of a is strictly greater than the matching lane of b
  /// (pcmpgt + pmovmskb — the lazy-F loop exit test).
  friend bool any_gt(Vec a, Vec b) {
    bool r = false;
    for (int i = 0; i < N; ++i) r |= (a.lane[i] > b.lane[i]);
    return r;
  }

  friend T horizontal_max(Vec a) {
    T m = a.lane[0];
    for (int i = 1; i < N; ++i) m = std::max(m, a.lane[i]);
    return m;
  }
};

using VecI16 = Vec<std::int16_t, 8>;

}  // namespace cusw::simd
