// Search-as-a-service: an event-driven request scheduler over the
// simulated clock (DESIGN.md §11).
//
// Arrivals come from a seeded ArrivalProcess, pass AdmissionController,
// wait in a BatchQueue, and execute as batches on the device fleet
// through the existing cudasw pipeline (multi_gpu_search, so the PR 3
// fault ladder — retries, failover, CPU degradation — composes for
// degraded-fleet runs). Every phase transition is timestamped on the
// simulated clock and rendered as a per-request async lane in the Chrome
// trace (phases: admit, queue, execute, reduce); latency / queue-delay /
// batch-size quantiles come from bounded-relative-error LogHistograms,
// and SLO burn-rate + goodput/GCUPS tracks are emitted per window.
//
// Determinism: the scheduler is a single-threaded discrete-event loop and
// every duration it consumes is simulated (arrival gaps from the seeded
// RNG, service times from the simulator's cost model), so the same seed
// produces identical admission decisions and bit-identical latency
// histograms for any CUSW_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cudasw/multi_gpu.h"
#include "obs/log_histogram.h"
#include "serve/admission.h"
#include "serve/arrival.h"
#include "serve/batching.h"
#include "serve/request.h"
#include "serve/slo.h"

namespace cusw::serve {

/// Trace pid of the simulated service timeline (host = 1, devices >= 100).
inline constexpr int kServicePid = 50;

/// Runs queries on the fleet and memoizes per-query results, so a service
/// run replaying the same pooled query costs one simulation, not one per
/// request. Shareable across Service runs with the same fleet config.
class Executor {
 public:
  Executor(const gpusim::DeviceSpec& spec, int gpus,
           const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
           const cudasw::MultiGpuConfig& cfg);

  struct Result {
    double seconds = 0.0;  // simulated fleet seconds for one scan
    std::uint64_t cells = 0;
    int best_score = 0;
    bool degraded_to_cpu = false;
    std::uint64_t failovers = 0;
  };

  /// Scan `query` against the database; memoized by `query_index`.
  const Result& run(std::size_t query_index,
                    const std::vector<seq::Code>& query);

  const seq::SequenceDB& db() const { return *db_; }
  std::uint64_t db_residues() const { return db_residues_; }
  int gpus() const { return gpus_; }

 private:
  gpusim::DeviceSpec spec_;
  int gpus_;
  const seq::SequenceDB* db_;
  const sw::ScoringMatrix* matrix_;
  cudasw::MultiGpuConfig cfg_;
  std::uint64_t db_residues_ = 0;
  std::vector<Result> memo_;
  std::vector<bool> ready_;
};

struct ServiceConfig {
  ArrivalConfig arrival;
  AdmissionConfig admission;
  BatchPolicy policy = BatchPolicy::kFifo;
  std::size_t max_batch = 8;
  /// Per-request relative deadline in sim ms; 0 = none. Drives EDF
  /// ordering and the goodput definition.
  double deadline_ms = 0.0;
  /// Requests to generate before closing the arrival stream.
  std::size_t num_requests = 200;
  std::uint64_t seed = 0x5e37;
  /// Modelled post-execution merge/rank phase per request.
  double reduce_ms = 0.05;
  /// Per-batch dispatch overhead (host-side batching cost).
  double batch_overhead_ms = 0.1;
  /// Dashboard / burn-rate window.
  double window_ms = 250.0;
  SloSpec slo;  // empty = no SLO accounting
  /// Trace category of this run's request lanes. Async lanes are matched
  /// by (cat, id) and request ids restart at 1 every run, so two runs
  /// sharing one trace file must use distinct categories.
  std::string trace_cat = "serve.request";

  /// Overlay the CUSW_SERVE spec, e.g.
  /// "arrivals=bursty,rate=200,queue=64,inflight=128,cells_per_s=5e9,
  ///  policy=sqf,batch=8,deadline_ms=40,requests=500,window_ms=250,seed=7"
  /// and CUSW_SLO. Throws std::invalid_argument on unknown keys.
  void apply_env();
  /// Overlay one CUSW_SERVE-format spec string.
  void apply_spec(std::string_view spec);
};

/// Per-window service telemetry (one dashboard row / counter sample).
struct WindowStats {
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::size_t queue_depth_end = 0;  // waiting requests at window close
  double p99_ms = 0.0;              // completion latencies in this window
  double goodput = 0.0;             // completions in window / arrivals in window
  double gcups = 0.0;               // cells completed in window / window time
  std::vector<double> burn;         // per SLO objective, this window
};

struct ServiceReport {
  std::vector<RequestRecord> requests;  // by request id
  obs::LogHistogram latency_ms;
  obs::LogHistogram queue_delay_ms;
  obs::LogHistogram batch_size;

  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue = 0;
  std::uint64_t rejected_concurrency = 0;
  std::uint64_t rejected_budget = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::size_t batches = 0;
  std::uint64_t cells = 0;    // executed DP cells
  double sim_seconds = 0.0;   // simulated makespan (last completion)
  bool degraded_to_cpu = false;
  std::uint64_t failovers = 0;

  std::vector<SloStatus> slo;     // whole-run standing per objective
  std::vector<WindowStats> windows;
  /// Canonical spec of the what-if plan active during the run ("" when
  /// none): a projection under a virtual speedup is a counterfactual and
  /// must say so wherever its numbers travel (obs/whatif.h).
  std::string whatif;

  std::uint64_t rejected() const {
    return rejected_queue + rejected_concurrency + rejected_budget;
  }
  /// Arrivals that completed within their deadline, over all arrivals
  /// (rejections burn goodput; with deadline 0 any completion counts).
  double goodput() const;
  double gcups() const {
    return sim_seconds > 0.0
               ? static_cast<double>(cells) / sim_seconds * 1e-9
               : 0.0;
  }

  /// ASCII dashboard: a summary block plus one row per window.
  std::string dashboard() const;
  /// Full JSON document (summary, SLO standing, histograms, windows).
  std::string to_json() const;

  ServiceReport();
};

class Service {
 public:
  /// `queries` is the pooled query set requests draw from (uniformly, via
  /// the seeded RNG); `exec` may be shared across runs to reuse its memo.
  Service(const ServiceConfig& cfg, Executor& exec,
          const std::vector<std::vector<seq::Code>>& queries);

  /// Run the full simulation: generate cfg.num_requests arrivals, drain
  /// the queue, and return the report. Also mirrors headline counters and
  /// quantile gauges into the obs registry (serve.*) and renders the
  /// per-request lanes + SLO counter tracks into the active trace.
  ServiceReport run();

 private:
  ServiceConfig cfg_;
  Executor* exec_;
  const std::vector<std::vector<seq::Code>>* queries_;
};

}  // namespace cusw::serve
