// Admission control: the service's reject-on-overload front door.
//
// Three independent gates, all deterministic functions of the simulated
// clock and the request stream:
//   - queue cap: bounded waiting room (classic M/G/1/K loss behaviour);
//   - concurrency cap: bound on admitted-but-unfinished requests, which
//     also bounds the worst-case latency a queued request can see;
//   - cell token budget: a token bucket refilled in DP cells per second,
//     so an expensive long query spends proportionally more budget than a
//     short one (GCUPS-denominated rate limiting, not request counting).
#pragma once

#include <cstdint>

#include "serve/request.h"

namespace cusw::serve {

struct AdmissionConfig {
  std::size_t max_queue = 64;      // waiting requests; 0 = unbounded
  std::size_t max_inflight = 256;  // admitted but unfinished; 0 = unbounded
  /// Token bucket refill rate in DP cells per simulated second; 0 disables
  /// the budget gate.
  double cells_per_second = 0.0;
  /// Bucket capacity in cells; <= 0 defaults to one second of refill.
  double cell_burst = 0.0;

  double effective_burst() const {
    return cell_burst > 0.0 ? cell_burst : cells_per_second;
  }
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& cfg);

  /// Decide a request arriving at `now_ms` needing `cells` of budget while
  /// `queued` requests wait and `inflight` are admitted-but-unfinished.
  /// Gates are checked queue -> concurrency -> budget; tokens are only
  /// spent when the request is admitted.
  Outcome admit(double now_ms, std::uint64_t cells, std::size_t queued,
                std::size_t inflight);

  /// Current token level after refilling to `now_ms` (for dashboards).
  double tokens(double now_ms);

 private:
  void refill(double now_ms);

  AdmissionConfig cfg_;
  double tokens_ = 0.0;
  double last_refill_ms_ = 0.0;
};

}  // namespace cusw::serve
