#include "serve/arrival.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/check.h"

namespace cusw::serve {

const char* arrival_kind_name(ArrivalConfig::Kind k) {
  return k == ArrivalConfig::Kind::kPoisson ? "poisson" : "bursty";
}

ArrivalConfig::Kind parse_arrival_kind(std::string_view name) {
  if (name == "poisson") return ArrivalConfig::Kind::kPoisson;
  if (name == "bursty") return ArrivalConfig::Kind::kBursty;
  throw std::invalid_argument("unknown arrival kind '" + std::string(name) +
                              "' (expected poisson or bursty)");
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  CUSW_REQUIRE(cfg.rate_rps > 0.0, "arrival rate must be > 0");
  if (cfg_.kind == ArrivalConfig::Kind::kBursty) {
    CUSW_REQUIRE(cfg.mean_burst_ms > 0.0 && cfg.mean_calm_ms > 0.0,
                 "bursty state dwell times must be > 0");
    // Start in the calm state with a fresh exponential dwell.
    state_left_ms_ = exponential_ms(1000.0 / cfg_.mean_calm_ms);
  }
}

double ArrivalProcess::exponential_ms(double rate_rps) {
  // Inverse-CDF sampling; uniform01() < 1 so the log argument is > 0.
  const double u = rng_.uniform01();
  return -std::log(1.0 - u) / rate_rps * 1000.0;
}

double ArrivalProcess::next_gap_ms() {
  if (cfg_.kind == ArrivalConfig::Kind::kPoisson)
    return exponential_ms(cfg_.rate_rps);

  // Markov-modulated Poisson: draw a gap at the current state's rate; if
  // it crosses the state boundary, advance to the boundary, flip state,
  // and redraw (memorylessness makes the redraw exact, not approximate).
  double elapsed = 0.0;
  for (;;) {
    const double rate =
        burst_ ? cfg_.effective_burst_rate() : cfg_.rate_rps;
    const double gap = exponential_ms(rate);
    if (gap <= state_left_ms_) {
      state_left_ms_ -= gap;
      return elapsed + gap;
    }
    elapsed += state_left_ms_;
    burst_ = !burst_;
    const double dwell = burst_ ? cfg_.mean_burst_ms : cfg_.mean_calm_ms;
    state_left_ms_ = exponential_ms(1000.0 / dwell);
  }
}

}  // namespace cusw::serve
