#include "serve/slo.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/env.h"

namespace cusw::serve {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string(s.substr(b, e - b));
}

[[noreturn]] void bad(const std::string& term, const std::string& why) {
  throw std::invalid_argument("bad SLO term '" + term + "': " + why);
}

/// "40ms" / "1.5s" / "250us" -> milliseconds.
double parse_latency_ms(const std::string& term, std::string_view text) {
  double scale = 1.0;
  std::string_view num = text;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    num = text.substr(0, text.size() - 2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    scale = 1e-3;
    num = text.substr(0, text.size() - 2);
  } else if (!text.empty() && text.back() == 's') {
    scale = 1e3;
    num = text.substr(0, text.size() - 1);
  }
  if (num.empty()) bad(term, "missing latency bound");
  const double v = util::parse_double(num, "SLO latency bound") * scale;
  if (v <= 0.0) bad(term, "latency bound must be > 0");
  return v;
}

}  // namespace

std::string SloObjective::label() const {
  char buf[64];
  if (kind == Kind::kQuantileLatency) {
    // p99 / p99.9 style: strip trailing zeros of the percent rendering.
    double pct = quantile * 100.0;
    std::snprintf(buf, sizeof(buf), "%.6g", pct);
    std::string out = "p";
    out += buf;
    std::snprintf(buf, sizeof(buf), "<%.6gms", latency_bound_ms);
    out += buf;
    return out;
  }
  std::snprintf(buf, sizeof(buf), "goodput>%.6g", goodput_target);
  return buf;
}

double SloObjective::budget() const {
  return kind == Kind::kQuantileLatency ? 1.0 - quantile
                                        : 1.0 - goodput_target;
}

SloSpec SloSpec::parse(std::string_view spec) {
  SloSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string term = trim(
        spec.substr(pos, comma == std::string_view::npos ? spec.size() - pos
                                                         : comma - pos));
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (term.empty()) continue;

    SloObjective obj;
    if (term[0] == 'p' || term[0] == 'P') {
      const std::size_t lt = term.find('<');
      if (lt == std::string::npos)
        bad(term, "expected p<quantile><bound, e.g. p99<40ms");
      const std::string q = term.substr(1, lt - 1);
      if (q.empty()) bad(term, "missing quantile");
      const double pct = util::parse_double(q, "SLO quantile");
      if (pct <= 0.0 || pct >= 100.0) bad(term, "quantile must be in (0, 100)");
      obj.kind = SloObjective::Kind::kQuantileLatency;
      obj.quantile = pct / 100.0;
      obj.latency_bound_ms = parse_latency_ms(term, term.substr(lt + 1));
    } else if (term.rfind("goodput", 0) == 0) {
      const std::size_t gt = term.find('>');
      if (gt == std::string::npos)
        bad(term, "expected goodput><target>, e.g. goodput>0.95");
      obj.kind = SloObjective::Kind::kGoodput;
      obj.goodput_target =
          util::parse_double(term.substr(gt + 1), "SLO goodput target");
      if (obj.goodput_target <= 0.0 || obj.goodput_target >= 1.0)
        bad(term, "goodput target must be in (0, 1)");
    } else {
      bad(term, "unknown objective (expected pNN<bound or goodput>target)");
    }
    out.objectives.push_back(obj);
  }
  return out;
}

SloSpec SloSpec::from_env() {
  const char* spec = std::getenv("CUSW_SLO");
  if (spec == nullptr || *spec == '\0') return {};
  return parse(spec);
}

double latency_burn_rate(std::uint64_t violations, std::uint64_t total,
                         double quantile) {
  if (total == 0) return 0.0;
  const double budget = 1.0 - quantile;
  if (budget <= 0.0) return 0.0;
  return (static_cast<double>(violations) / static_cast<double>(total)) /
         budget;
}

double goodput_burn_rate(double goodput, double target,
                         std::uint64_t arrivals) {
  if (arrivals == 0) return 0.0;
  const double budget = 1.0 - target;
  if (budget <= 0.0) return 0.0;
  return (1.0 - goodput) / budget;
}

}  // namespace cusw::serve
