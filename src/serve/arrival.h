// Synthetic arrival processes driving the service scheduler on the
// simulated clock: Poisson (memoryless, the M/G/1 baseline) and bursty
// (Markov-modulated Poisson — a two-state chain alternating calm and
// burst rates, the standard model for flash-crowd traffic).
//
// Deterministic by construction: a process is a pure function of
// (config, seed), so the same seed yields the same arrival instants on
// any host and any CUSW_THREADS.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace cusw::serve {

struct ArrivalConfig {
  enum class Kind { kPoisson, kBursty };
  Kind kind = Kind::kPoisson;
  /// Mean arrival rate (Poisson), or the calm-state rate (bursty).
  double rate_rps = 100.0;
  /// Burst-state arrival rate; defaults to 4x the calm rate when <= 0.
  double burst_rate_rps = 0.0;
  /// Mean dwell times of the two states (exponentially distributed).
  double mean_burst_ms = 50.0;
  double mean_calm_ms = 200.0;

  double effective_burst_rate() const {
    return burst_rate_rps > 0.0 ? burst_rate_rps : 4.0 * rate_rps;
  }
};

const char* arrival_kind_name(ArrivalConfig::Kind k);
/// "poisson" or "bursty"; throws std::invalid_argument otherwise.
ArrivalConfig::Kind parse_arrival_kind(std::string_view name);

/// Generates successive inter-arrival gaps in simulated milliseconds.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed);

  /// The gap to the next arrival, > 0.
  double next_gap_ms();

  /// Whether the modulating chain is currently in the burst state (always
  /// false for Poisson).
  bool in_burst() const { return burst_; }

 private:
  double exponential_ms(double rate_rps);

  ArrivalConfig cfg_;
  Rng rng_;
  bool burst_ = false;
  double state_left_ms_ = 0.0;  // sim time left in the current state
};

}  // namespace cusw::serve
