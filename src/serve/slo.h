// Service-level objectives and error-budget burn rates.
//
// An SLO spec is a comma list of objectives, e.g.
//
//   CUSW_SLO=p99<40ms,goodput>0.95
//
//   - `p<quantile><<bound>[us|ms|s]` — the latency at that quantile must
//     stay under the bound. Its error budget is the allowed violation
//     fraction 1 - quantile (p99 tolerates 1% of requests over the
//     bound); the burn rate is observed_violation_fraction / budget, so
//     burn 1.0 consumes the budget exactly at the sustainable rate and
//     burn > 1 forecasts an SLO breach.
//   - `goodput><target>` — the fraction of arrivals that complete within
//     their deadline must exceed `target` in (0, 1). Budget = 1 - target,
//     burn = (1 - observed_goodput) / (1 - target).
//
// Burn rates are computed over the whole run and per dashboard window, so
// a degraded fleet shows up as a burn-rate spike in the trace's counter
// track long before the run-level quantile moves.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cusw::serve {

struct SloObjective {
  enum class Kind { kQuantileLatency, kGoodput };
  Kind kind = Kind::kQuantileLatency;
  double quantile = 0.99;      // latency objectives; in (0, 1)
  double latency_bound_ms = 0.0;
  double goodput_target = 0.0;  // goodput objectives; in (0, 1)

  /// "p99<40ms" / "goodput>0.95" — round-trips through parse().
  std::string label() const;
  /// The allowed violation fraction (error budget).
  double budget() const;
};

struct SloSpec {
  std::vector<SloObjective> objectives;

  bool enabled() const { return !objectives.empty(); }

  /// Parse "p99<40ms,goodput>0.95". Throws std::invalid_argument on
  /// malformed terms, unknown keys, or out-of-range values.
  static SloSpec parse(std::string_view spec);
  /// From CUSW_SLO; disabled (empty) when unset or empty.
  static SloSpec from_env();
};

/// One objective's standing over some population of requests.
struct SloStatus {
  std::string label;
  double observed = 0.0;   // observed quantile latency (ms) or goodput
  double bound = 0.0;      // the objective's bound/target
  double burn_rate = 0.0;  // error-budget burn; <= 1 is sustainable
  bool ok = true;          // objective currently met
};

/// Burn rate of a latency objective given violation counts:
/// (violations / total) / (1 - quantile); 0 when total == 0.
double latency_burn_rate(std::uint64_t violations, std::uint64_t total,
                         double quantile);

/// Burn rate of a goodput objective: (1 - goodput) / (1 - target); 0 when
/// there were no arrivals.
double goodput_burn_rate(double goodput, double target,
                         std::uint64_t arrivals);

}  // namespace cusw::serve
