#include "serve/batching.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>

#include "util/check.h"

namespace cusw::serve {

const char* batch_policy_name(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kFifo:
      return "fifo";
    case BatchPolicy::kShortestFirst:
      return "sqf";
    case BatchPolicy::kDeadline:
      return "edf";
  }
  return "?";
}

BatchPolicy parse_batch_policy(std::string_view name) {
  if (name == "fifo") return BatchPolicy::kFifo;
  if (name == "sqf") return BatchPolicy::kShortestFirst;
  if (name == "edf") return BatchPolicy::kDeadline;
  throw std::invalid_argument("unknown batch policy '" + std::string(name) +
                              "' (expected fifo, sqf or edf)");
}

BatchQueue::BatchQueue(BatchPolicy policy, std::size_t max_batch)
    : policy_(policy), max_batch_(max_batch) {
  CUSW_REQUIRE(max_batch > 0, "batch size must be > 0");
}

void BatchQueue::push(const Request& r) { q_.push_back(r); }

std::vector<Request> BatchQueue::pop_batch() {
  const std::size_t n = std::min(max_batch_, q_.size());
  if (n == 0) return {};
  switch (policy_) {
    case BatchPolicy::kFifo:
      break;  // q_ is already in arrival (= id) order
    case BatchPolicy::kShortestFirst:
      std::stable_sort(q_.begin(), q_.end(),
                       [](const Request& a, const Request& b) {
                         return std::tie(a.query_length, a.id) <
                                std::tie(b.query_length, b.id);
                       });
      break;
    case BatchPolicy::kDeadline:
      std::stable_sort(q_.begin(), q_.end(),
                       [](const Request& a, const Request& b) {
                         // No deadline sorts after every deadline.
                         const double da = a.deadline_ms > 0.0
                                               ? a.deadline_ms
                                               : std::numeric_limits<double>::max();
                         const double db = b.deadline_ms > 0.0
                                               ? b.deadline_ms
                                               : std::numeric_limits<double>::max();
                         return std::tie(da, a.id) < std::tie(db, b.id);
                       });
      break;
  }
  std::vector<Request> batch(q_.begin(), q_.begin() + static_cast<long>(n));
  q_.erase(q_.begin(), q_.begin() + static_cast<long>(n));
  return batch;
}

}  // namespace cusw::serve
