// Request model for the search-as-a-service layer (DESIGN.md §11).
//
// A request is one query arriving at the service at a simulated instant;
// its life is arrival → admit → queue → execute (batched onto the fleet)
// → reduce → done, or an admission rejection. Every transition is
// timestamped on the simulated clock, which is what makes the latency
// telemetry deterministic: the same seed produces the same arrivals, the
// same admission decisions and the same (simulated) service times for any
// CUSW_THREADS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace cusw::serve {

using RequestId = std::uint64_t;

enum class Outcome {
  kPending,             // still in flight (never in a final report)
  kCompleted,           // scored and reduced
  kRejectedQueue,       // admission: queue full
  kRejectedConcurrency, // admission: too many admitted-but-unfinished
  kRejectedBudget,      // admission: cell token budget exhausted
};

inline const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kPending:
      return "pending";
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kRejectedQueue:
      return "rejected_queue";
    case Outcome::kRejectedConcurrency:
      return "rejected_concurrency";
    case Outcome::kRejectedBudget:
      return "rejected_budget";
  }
  return "?";
}

/// A live request in the scheduler.
struct Request {
  RequestId id = 0;
  double arrival_ms = 0.0;
  std::size_t query_index = 0;   // into the service's query pool
  std::size_t query_length = 0;  // residues
  std::uint64_t cells = 0;       // estimated DP cells (query_len * db residues)
  double deadline_ms = 0.0;      // absolute sim deadline; 0 = none
};

inline constexpr std::size_t kNoBatch = std::numeric_limits<std::size_t>::max();

/// The full timestamped life of one request, as reported.
struct RequestRecord {
  RequestId id = 0;
  std::size_t query_index = 0;
  std::size_t query_length = 0;
  std::uint64_t cells = 0;
  Outcome outcome = Outcome::kPending;
  std::size_t batch = kNoBatch;

  double arrival_ms = 0.0;
  double start_ms = -1.0;  // batch execution start; < 0 until scheduled
  double end_ms = -1.0;    // batch execution end
  double done_ms = -1.0;   // after the reduce phase; completion
  double deadline_ms = 0.0;

  bool completed() const { return outcome == Outcome::kCompleted; }
  bool rejected() const {
    return outcome == Outcome::kRejectedQueue ||
           outcome == Outcome::kRejectedConcurrency ||
           outcome == Outcome::kRejectedBudget;
  }
  /// End-to-end latency (arrival to done); only valid when completed.
  double latency_ms() const { return done_ms - arrival_ms; }
  /// Time spent queued before its batch started executing.
  double queue_delay_ms() const { return start_ms - arrival_ms; }
  /// Completed in time (always false for rejections; deadline 0 = no
  /// deadline, any completion is good).
  bool within_deadline() const {
    return completed() && (deadline_ms <= 0.0 || done_ms <= deadline_ms);
  }

  bool operator==(const RequestRecord& o) const = default;
};

}  // namespace cusw::serve
