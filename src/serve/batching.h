// Pluggable batching policies: which waiting requests form the next batch
// when the fleet goes idle.
//
//   - FIFO: arrival order — fair, but a long query at the head convoys
//     everything behind it.
//   - shortest-query-first: picks the cheapest work first, the classic
//     SJF mean-latency optimum (at the cost of long-query starvation
//     under sustained load).
//   - deadline-aware: earliest absolute deadline first (EDF); requests
//     without a deadline sort last, among themselves by arrival.
//
// Selection is deterministic: every ordering breaks ties by request id,
// which is itself assigned in arrival order.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "serve/request.h"

namespace cusw::serve {

enum class BatchPolicy { kFifo, kShortestFirst, kDeadline };

const char* batch_policy_name(BatchPolicy p);
/// "fifo", "sqf" or "edf"; throws std::invalid_argument otherwise.
BatchPolicy parse_batch_policy(std::string_view name);

/// The admitted-but-unscheduled waiting room.
class BatchQueue {
 public:
  BatchQueue(BatchPolicy policy, std::size_t max_batch);

  void push(const Request& r);
  /// Remove and return up to max_batch requests per the policy; empty when
  /// the queue is empty.
  std::vector<Request> pop_batch();

  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  BatchPolicy policy() const { return policy_; }

 private:
  BatchPolicy policy_;
  std::size_t max_batch_;
  std::vector<Request> q_;  // arrival order
};

}  // namespace cusw::serve
