#include "serve/admission.h"

#include <algorithm>

#include "util/check.h"

namespace cusw::serve {

AdmissionController::AdmissionController(const AdmissionConfig& cfg)
    : cfg_(cfg) {
  CUSW_REQUIRE(cfg.cells_per_second >= 0.0,
               "cell budget rate must be >= 0");
  tokens_ = cfg_.effective_burst();  // start with a full bucket
}

void AdmissionController::refill(double now_ms) {
  if (cfg_.cells_per_second <= 0.0) return;
  const double dt_s = (now_ms - last_refill_ms_) / 1000.0;
  if (dt_s > 0.0) {
    tokens_ = std::min(cfg_.effective_burst(),
                       tokens_ + dt_s * cfg_.cells_per_second);
    last_refill_ms_ = now_ms;
  }
}

double AdmissionController::tokens(double now_ms) {
  refill(now_ms);
  return tokens_;
}

Outcome AdmissionController::admit(double now_ms, std::uint64_t cells,
                                   std::size_t queued, std::size_t inflight) {
  if (cfg_.max_queue > 0 && queued >= cfg_.max_queue)
    return Outcome::kRejectedQueue;
  if (cfg_.max_inflight > 0 && inflight >= cfg_.max_inflight)
    return Outcome::kRejectedConcurrency;
  if (cfg_.cells_per_second > 0.0) {
    refill(now_ms);
    if (static_cast<double>(cells) > tokens_)
      return Outcome::kRejectedBudget;
    tokens_ -= static_cast<double>(cells);
  }
  return Outcome::kPending;  // admitted; the scheduler sets the final outcome
}

}  // namespace cusw::serve
