#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/capsule.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/whatif.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/env.h"
#include "util/json.h"
#include "util/table.h"

namespace cusw::serve {

// ---------------------------------------------------------------- Executor

Executor::Executor(const gpusim::DeviceSpec& spec, int gpus,
                   const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
                   const cudasw::MultiGpuConfig& cfg)
    : spec_(spec), gpus_(gpus), db_(&db), matrix_(&matrix), cfg_(cfg) {
  CUSW_REQUIRE(gpus >= 1, "executor needs at least one device");
  db_residues_ = db.total_residues();
}

const Executor::Result& Executor::run(std::size_t query_index,
                                      const std::vector<seq::Code>& query) {
  if (query_index >= memo_.size()) {
    memo_.resize(query_index + 1);
    ready_.resize(query_index + 1, false);
  }
  if (!ready_[query_index]) {
    const cudasw::MultiGpuReport rep =
        cudasw::multi_gpu_search(spec_, gpus_, query, *db_, *matrix_, cfg_);
    Result r;
    r.seconds = rep.seconds;
    r.cells = rep.cells;
    r.best_score = 0;
    for (const int s : rep.scores) r.best_score = std::max(r.best_score, s);
    r.degraded_to_cpu = rep.faults.degraded_to_cpu;
    r.failovers = rep.faults.failovers;
    memo_[query_index] = r;
    ready_[query_index] = true;
  }
  return memo_[query_index];
}

// ----------------------------------------------------------- ServiceConfig

void ServiceConfig::apply_spec(std::string_view spec) {
  for (const auto& [key, value] : util::parse_kv_spec(spec)) {
    if (key == "arrivals") {
      arrival.kind = parse_arrival_kind(value);
    } else if (key == "rate") {
      arrival.rate_rps = util::parse_double(value, "serve rate");
    } else if (key == "burst_rate") {
      arrival.burst_rate_rps = util::parse_double(value, "serve burst_rate");
    } else if (key == "burst_ms") {
      arrival.mean_burst_ms = util::parse_double(value, "serve burst_ms");
    } else if (key == "calm_ms") {
      arrival.mean_calm_ms = util::parse_double(value, "serve calm_ms");
    } else if (key == "queue") {
      admission.max_queue =
          static_cast<std::size_t>(util::parse_int(value, "serve queue"));
    } else if (key == "inflight") {
      admission.max_inflight =
          static_cast<std::size_t>(util::parse_int(value, "serve inflight"));
    } else if (key == "cells_per_s") {
      admission.cells_per_second =
          util::parse_double(value, "serve cells_per_s");
    } else if (key == "cell_burst") {
      admission.cell_burst = util::parse_double(value, "serve cell_burst");
    } else if (key == "policy") {
      policy = parse_batch_policy(value);
    } else if (key == "batch") {
      max_batch =
          static_cast<std::size_t>(util::parse_int(value, "serve batch"));
    } else if (key == "deadline_ms") {
      deadline_ms = util::parse_double(value, "serve deadline_ms");
    } else if (key == "requests") {
      num_requests =
          static_cast<std::size_t>(util::parse_int(value, "serve requests"));
    } else if (key == "seed") {
      seed = static_cast<std::uint64_t>(
          util::parse_int(value, "serve seed"));
    } else if (key == "window_ms") {
      window_ms = util::parse_double(value, "serve window_ms");
    } else if (key == "reduce_ms") {
      reduce_ms = util::parse_double(value, "serve reduce_ms");
    } else if (key == "batch_overhead_ms") {
      batch_overhead_ms =
          util::parse_double(value, "serve batch_overhead_ms");
    } else {
      throw std::invalid_argument("unknown CUSW_SERVE key '" + key + "'");
    }
  }
}

void ServiceConfig::apply_env() {
  if (const char* spec = std::getenv("CUSW_SERVE");
      spec != nullptr && *spec != '\0') {
    apply_spec(spec);
  }
  const SloSpec env_slo = SloSpec::from_env();
  if (env_slo.enabled()) slo = env_slo;
}

// ----------------------------------------------------------- ServiceReport

namespace {

// Latency/queue-delay histograms: 1 us .. 10^7 ms at 1% relative error.
// Queue delays of exactly 0 (dispatched on arrival) land in the underflow
// bucket, whose representative is the exact recorded minimum.
obs::LogHistogram latency_histogram() {
  return obs::LogHistogram(1e-3, 1e7, 0.01);
}

}  // namespace

ServiceReport::ServiceReport()
    : latency_ms(latency_histogram()),
      queue_delay_ms(latency_histogram()),
      batch_size(obs::LogHistogram(1.0, 4096.0, 0.01)) {}

double ServiceReport::goodput() const {
  if (arrivals == 0) return 0.0;
  std::uint64_t good = completed - deadline_misses;
  return static_cast<double>(good) / static_cast<double>(arrivals);
}

std::string ServiceReport::dashboard() const {
  std::ostringstream os;
  if (!whatif.empty()) {
    os << "WHAT-IF PROJECTION (counterfactual clock): " << whatif << "\n";
  }
  Table summary({"metric", "value"}, 3);
  summary.add_row({std::string("arrivals"),
                   static_cast<std::int64_t>(arrivals)});
  summary.add_row({std::string("admitted"),
                   static_cast<std::int64_t>(admitted)});
  summary.add_row({std::string("rejected (queue/conc/budget)"),
                   std::to_string(rejected_queue) + "/" +
                       std::to_string(rejected_concurrency) + "/" +
                       std::to_string(rejected_budget)});
  summary.add_row({std::string("completed"),
                   static_cast<std::int64_t>(completed)});
  summary.add_row({std::string("deadline misses"),
                   static_cast<std::int64_t>(deadline_misses)});
  summary.add_row({std::string("goodput"), goodput()});
  summary.add_row({std::string("GCUPS"), gcups()});
  summary.add_row({std::string("latency p50 (ms)"), latency_ms.quantile(0.50)});
  summary.add_row({std::string("latency p90 (ms)"), latency_ms.quantile(0.90)});
  summary.add_row({std::string("latency p99 (ms)"), latency_ms.quantile(0.99)});
  summary.add_row(
      {std::string("latency p99.9 (ms)"), latency_ms.quantile(0.999)});
  summary.add_row({std::string("queue delay p99 (ms)"),
                   queue_delay_ms.quantile(0.99)});
  summary.add_row({std::string("batches"),
                   static_cast<std::int64_t>(batches)});
  summary.add_row({std::string("sim seconds"), sim_seconds});
  summary.add_row({std::string("degraded to CPU"),
                   std::string(degraded_to_cpu ? "yes" : "no")});
  os << summary.to_string();

  if (!slo.empty()) {
    Table st({"objective", "observed", "bound", "burn rate", "status"}, 3);
    for (const SloStatus& s : slo) {
      st.add_row({s.label, s.observed, s.bound, s.burn_rate,
                  std::string(s.ok ? "ok" : "VIOLATED")});
    }
    os << st.to_string();
  }

  if (!windows.empty()) {
    Table wt({"window (ms)", "arrivals", "rejected", "completed", "p99 (ms)",
              "goodput", "GCUPS", "queue", "max burn"},
             2);
    for (const WindowStats& w : windows) {
      double max_burn = 0.0;
      for (const double b : w.burn) max_burn = std::max(max_burn, b);
      std::ostringstream range;
      range << static_cast<long long>(w.start_ms) << ".."
            << static_cast<long long>(w.end_ms);
      wt.add_row({range.str(), static_cast<std::int64_t>(w.arrivals),
                  static_cast<std::int64_t>(w.rejected),
                  static_cast<std::int64_t>(w.completed), w.p99_ms,
                  w.goodput, w.gcups,
                  static_cast<std::int64_t>(w.queue_depth_end), max_burn});
    }
    os << wt.to_string();
  }
  return os.str();
}

std::string ServiceReport::to_json() const {
  util::JsonFields f;
  f.field("arrivals", arrivals)
      .field("admitted", admitted)
      .field("rejected_queue", rejected_queue)
      .field("rejected_concurrency", rejected_concurrency)
      .field("rejected_budget", rejected_budget)
      .field("completed", completed)
      .field("deadline_misses", deadline_misses)
      .field("batches", static_cast<std::uint64_t>(batches))
      .field("cells", cells)
      .field("sim_seconds", sim_seconds)
      .field("goodput", goodput())
      .field("gcups", gcups())
      .field("degraded_to_cpu", degraded_to_cpu)
      .field("failovers", failovers);
  if (!whatif.empty()) f.field("whatif", whatif);
  f.raw("latency_ms", latency_ms.to_json());
  f.raw("queue_delay_ms", queue_delay_ms.to_json());
  f.raw("batch_size", batch_size.to_json());

  std::ostringstream slos;
  slos << "[";
  for (std::size_t i = 0; i < slo.size(); ++i) {
    util::JsonFields sf;
    sf.field("objective", slo[i].label)
        .field("observed", slo[i].observed)
        .field("bound", slo[i].bound)
        .field("burn_rate", slo[i].burn_rate)
        .field("ok", slo[i].ok);
    slos << (i ? ", " : "") << sf.object();
  }
  slos << "]";
  f.raw("slo", slos.str());

  std::ostringstream ws;
  ws << "[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const WindowStats& w = windows[i];
    util::JsonFields wf;
    wf.field("start_ms", w.start_ms)
        .field("end_ms", w.end_ms)
        .field("arrivals", w.arrivals)
        .field("rejected", w.rejected)
        .field("completed", w.completed)
        .field("deadline_misses", w.deadline_misses)
        .field("queue_depth_end", static_cast<std::uint64_t>(w.queue_depth_end))
        .field("p99_ms", w.p99_ms)
        .field("goodput", w.goodput)
        .field("gcups", w.gcups);
    std::ostringstream burn;
    burn << "[";
    for (std::size_t b = 0; b < w.burn.size(); ++b)
      burn << (b ? ", " : "") << util::json_number(w.burn[b]);
    burn << "]";
    wf.raw("burn", burn.str());
    ws << (i ? ",\n " : "\n ") << wf.object();
  }
  ws << "\n]";
  f.raw("windows", ws.str());
  return f.object();
}

// ------------------------------------------------------------------ Service

Service::Service(const ServiceConfig& cfg, Executor& exec,
                 const std::vector<std::vector<seq::Code>>& queries)
    : cfg_(cfg), exec_(&exec), queries_(&queries) {
  CUSW_REQUIRE(!queries.empty(), "service needs a non-empty query pool");
  CUSW_REQUIRE(cfg.num_requests > 0, "service needs at least one request");
  CUSW_REQUIRE(cfg.window_ms > 0.0, "service window must be > 0");
}

namespace {

/// A registry-safe name for an SLO objective ("p99" / "goodput").
std::string objective_key(const SloObjective& o) {
  if (o.kind == SloObjective::Kind::kGoodput) return "goodput";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "p%.6g", o.quantile * 100.0);
  return buf;
}

struct Running {
  std::vector<Request> batch;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::size_t batch_id = 0;
};

}  // namespace

ServiceReport Service::run() {
  ServiceReport rep;
  // Stamp the active what-if plan (if any) up front: every latency number
  // below is then a counterfactual projection, and the report must carry
  // that wherever it is rendered. A malformed CUSW_WHATIF surfaces on the
  // first launch anyway; here it only marks the report.
  try {
    if (const obs::whatif::Plan* plan = obs::whatif::active_plan();
        plan != nullptr) {
      rep.whatif = plan->spec;
    }
  } catch (const std::exception&) {
    rep.whatif = "<invalid CUSW_WHATIF>";
  }
  SplitMix64 sm(cfg_.seed);
  ArrivalProcess arrivals(cfg_.arrival, sm.next());
  Rng pick(sm.next());
  AdmissionController adm(cfg_.admission);
  BatchQueue queue(cfg_.policy, cfg_.max_batch);

  std::vector<RequestRecord>& recs = rep.requests;
  recs.reserve(cfg_.num_requests);

  std::optional<Running> running;
  std::size_t generated = 0;
  std::size_t unfinished = 0;  // admitted but not completed
  std::size_t next_batch_id = 0;
  double next_arrival_ms = arrivals.next_gap_ms();
  double max_done_ms = 0.0;

  const auto dispatch = [&](double now_ms) {
    if (running.has_value() || queue.empty()) return;
    Running r;
    r.batch = queue.pop_batch();
    r.batch_id = next_batch_id++;
    r.start_ms = now_ms;
    double dur_ms = cfg_.batch_overhead_ms;
    for (const Request& q : r.batch) {
      const Executor::Result& res =
          exec_->run(q.query_index, (*queries_)[q.query_index]);
      dur_ms += res.seconds * 1000.0;
    }
    r.end_ms = now_ms + dur_ms;
    for (const Request& q : r.batch) {
      recs[q.id - 1].start_ms = now_ms;
      recs[q.id - 1].batch = r.batch_id;
    }
    rep.batch_size.record(static_cast<double>(r.batch.size()));
    running = std::move(r);
  };

  while (generated < cfg_.num_requests || running.has_value() ||
         !queue.empty()) {
    const bool more_arrivals = generated < cfg_.num_requests;
    if (running.has_value() &&
        (!more_arrivals || running->end_ms <= next_arrival_ms)) {
      const double now_ms = running->end_ms;
      for (const Request& q : running->batch) {
        RequestRecord& rec = recs[q.id - 1];
        rec.end_ms = now_ms;
        rec.done_ms = now_ms + cfg_.reduce_ms;
        rec.outcome = Outcome::kCompleted;
        const Executor::Result& res =
            exec_->run(q.query_index, (*queries_)[q.query_index]);
        rec.cells = res.cells;
        rep.cells += res.cells;
        ++rep.completed;
        rep.latency_ms.record(rec.latency_ms());
        rep.queue_delay_ms.record(rec.queue_delay_ms());
        if (!rec.within_deadline()) ++rep.deadline_misses;
        max_done_ms = std::max(max_done_ms, rec.done_ms);
        --unfinished;
      }
      ++rep.batches;
      running.reset();
      dispatch(now_ms);
      continue;
    }
    if (more_arrivals) {
      const double now_ms = next_arrival_ms;
      next_arrival_ms = now_ms + arrivals.next_gap_ms();
      Request q;
      q.id = static_cast<RequestId>(++generated);  // ids start at 1
      q.arrival_ms = now_ms;
      q.query_index = pick.uniform_u64(queries_->size());
      q.query_length = (*queries_)[q.query_index].size();
      q.cells = static_cast<std::uint64_t>(q.query_length) *
                exec_->db_residues();
      q.deadline_ms = cfg_.deadline_ms > 0.0 ? now_ms + cfg_.deadline_ms : 0.0;

      RequestRecord rec;
      rec.id = q.id;
      rec.query_index = q.query_index;
      rec.query_length = q.query_length;
      rec.cells = q.cells;
      rec.arrival_ms = now_ms;
      rec.deadline_ms = q.deadline_ms;
      recs.push_back(rec);

      ++rep.arrivals;
      const Outcome verdict =
          adm.admit(now_ms, q.cells, queue.size(), unfinished);
      if (verdict == Outcome::kPending) {
        ++rep.admitted;
        ++unfinished;
        queue.push(q);
        dispatch(now_ms);
      } else {
        recs[q.id - 1].outcome = verdict;
        switch (verdict) {
          case Outcome::kRejectedQueue:
            ++rep.rejected_queue;
            break;
          case Outcome::kRejectedConcurrency:
            ++rep.rejected_concurrency;
            break;
          default:
            ++rep.rejected_budget;
            break;
        }
        max_done_ms = std::max(max_done_ms, now_ms);
      }
      continue;
    }
    break;  // unreachable: an idle executor never leaves the queue non-empty
  }

  rep.sim_seconds = max_done_ms / 1000.0;
  {
    // Fleet health over the distinct scans this run actually executed.
    std::vector<bool> seen(queries_->size(), false);
    for (const RequestRecord& rec : recs) {
      if (!rec.completed() || seen[rec.query_index]) continue;
      seen[rec.query_index] = true;
      const Executor::Result& res =
          exec_->run(rec.query_index, (*queries_)[rec.query_index]);
      rep.degraded_to_cpu = rep.degraded_to_cpu || res.degraded_to_cpu;
      rep.failovers += res.failovers;
    }
  }

  // ---- per-window telemetry (post-hoc over the timestamped records).
  const double horizon_ms = std::max(max_done_ms, cfg_.window_ms);
  const auto nwin = static_cast<std::size_t>(
      std::ceil(horizon_ms / cfg_.window_ms));
  rep.windows.assign(nwin, WindowStats{});
  std::vector<std::vector<double>> win_latencies(nwin);
  std::vector<std::vector<std::uint64_t>> win_violations(
      nwin, std::vector<std::uint64_t>(cfg_.slo.objectives.size(), 0));
  std::vector<std::uint64_t> win_good(nwin, 0);
  for (std::size_t i = 0; i < nwin; ++i) {
    rep.windows[i].start_ms = static_cast<double>(i) * cfg_.window_ms;
    rep.windows[i].end_ms = rep.windows[i].start_ms + cfg_.window_ms;
  }
  const auto window_of = [&](double t_ms) {
    auto w = static_cast<std::size_t>(t_ms / cfg_.window_ms);
    return std::min(w, nwin - 1);
  };
  for (const RequestRecord& rec : recs) {
    WindowStats& aw = rep.windows[window_of(rec.arrival_ms)];
    ++aw.arrivals;
    if (rec.rejected()) ++aw.rejected;
    if (!rec.completed()) continue;
    const std::size_t cw = window_of(rec.done_ms);
    WindowStats& dw = rep.windows[cw];
    ++dw.completed;
    if (!rec.within_deadline()) ++dw.deadline_misses;
    dw.gcups += static_cast<double>(rec.cells);
    win_latencies[cw].push_back(rec.latency_ms());
    if (rec.within_deadline()) ++win_good[window_of(rec.arrival_ms)];
    for (std::size_t o = 0; o < cfg_.slo.objectives.size(); ++o) {
      const SloObjective& obj = cfg_.slo.objectives[o];
      if (obj.kind == SloObjective::Kind::kQuantileLatency &&
          rec.latency_ms() > obj.latency_bound_ms) {
        ++win_violations[cw][o];
      }
    }
  }
  for (std::size_t i = 0; i < nwin; ++i) {
    WindowStats& w = rep.windows[i];
    // Waiting at window close: admitted, not yet started.
    for (const RequestRecord& rec : recs) {
      if (rec.rejected() || rec.outcome == Outcome::kPending) continue;
      if (rec.arrival_ms <= w.end_ms && rec.start_ms > w.end_ms)
        ++w.queue_depth_end;
    }
    auto& lat = win_latencies[i];
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      const auto rank = static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(lat.size())));
      w.p99_ms = lat[std::max<std::size_t>(rank, 1) - 1];
    }
    w.goodput = w.arrivals > 0 ? static_cast<double>(win_good[i]) /
                                     static_cast<double>(w.arrivals)
                               : 1.0;
    w.gcups = w.gcups / (cfg_.window_ms / 1000.0) * 1e-9;
    w.burn.resize(cfg_.slo.objectives.size(), 0.0);
    for (std::size_t o = 0; o < cfg_.slo.objectives.size(); ++o) {
      const SloObjective& obj = cfg_.slo.objectives[o];
      if (obj.kind == SloObjective::Kind::kQuantileLatency) {
        w.burn[o] =
            latency_burn_rate(win_violations[i][o], w.completed, obj.quantile);
      } else {
        w.burn[o] =
            goodput_burn_rate(w.goodput, obj.goodput_target, w.arrivals);
      }
    }
  }

  // ---- whole-run SLO standing.
  for (const SloObjective& obj : cfg_.slo.objectives) {
    SloStatus st;
    st.label = obj.label();
    if (obj.kind == SloObjective::Kind::kQuantileLatency) {
      st.bound = obj.latency_bound_ms;
      st.observed = rep.latency_ms.quantile(obj.quantile);
      std::uint64_t violations = 0;
      for (const RequestRecord& rec : recs) {
        if (rec.completed() && rec.latency_ms() > obj.latency_bound_ms)
          ++violations;
      }
      st.burn_rate = latency_burn_rate(violations, rep.completed, obj.quantile);
    } else {
      st.bound = obj.goodput_target;
      st.observed = rep.goodput();
      st.burn_rate =
          goodput_burn_rate(rep.goodput(), obj.goodput_target, rep.arrivals);
    }
    st.ok = st.burn_rate <= 1.0;
    rep.slo.push_back(st);
  }

  // ---- sampled service telemetry + capsule section.
  // The sampler series is keyed by the run's trace category (distinct
  // per concurrent run, same contract as the trace lanes), one point per
  // telemetry window; the whole-run report rides in the capsule under the
  // same name. Like the gpusim series, the points are simulated-time
  // events derived from the deterministic event loop above, so they are
  // byte-identical for any CUSW_THREADS.
  if (obs::Sampler* sp = obs::Sampler::active()) {
    for (const WindowStats& win : rep.windows) {
      std::vector<std::pair<std::string, double>> vals;
      vals.emplace_back("queue_depth",
                        static_cast<double>(win.queue_depth_end));
      vals.emplace_back("goodput", win.goodput);
      vals.emplace_back("gcups", win.gcups);
      for (std::size_t o = 0; o < cfg_.slo.objectives.size(); ++o) {
        vals.emplace_back("burn." + objective_key(cfg_.slo.objectives[o]),
                          win.burn[o]);
      }
      sp->record_point(cfg_.trace_cat, win.end_ms, vals);
    }
  }
  obs::capsule_note_section(cfg_.trace_cat, rep.to_json());

  // ---- per-request async lanes + SLO counter tracks in the trace.
  obs::install_process_exports();
  if (obs::TraceWriter* w = obs::trace()) {
    w->name_process(kServicePid, "service (simulated)");
    w->name_track(kServicePid, 0, "requests");
    const auto ev = [&](const RequestRecord& rec, const char* name,
                       double ts_ms) {
      obs::TraceEvent e;
      e.name = name;
      e.cat = cfg_.trace_cat;
      e.pid = kServicePid;
      e.tid = 0;
      e.ts_us = ts_ms * 1000.0;
      e.async_id = rec.id;
      return e;
    };
    for (const RequestRecord& rec : recs) {
      if (rec.outcome == Outcome::kPending) continue;
      {
        obs::TraceEvent b = ev(rec, "request", rec.arrival_ms);
        b.args_json = util::JsonFields()
                          .field("query_length",
                                 static_cast<std::uint64_t>(rec.query_length))
                          .field("cells", rec.cells)
                          .field("outcome", outcome_name(rec.outcome))
                          .list();
        w->async_begin(std::move(b));
      }
      if (rec.rejected()) {
        obs::TraceEvent n = ev(rec, "rejected", rec.arrival_ms);
        n.args_json = util::JsonFields()
                          .field("reason", outcome_name(rec.outcome))
                          .list();
        w->async_instant(std::move(n));
        w->async_end(ev(rec, "request", rec.arrival_ms));
        continue;
      }
      w->async_begin(ev(rec, "admit", rec.arrival_ms));
      w->async_end(ev(rec, "admit", rec.arrival_ms));
      w->async_begin(ev(rec, "queue", rec.arrival_ms));
      w->async_end(ev(rec, "queue", rec.start_ms));
      {
        obs::TraceEvent b = ev(rec, "execute", rec.start_ms);
        b.args_json = util::JsonFields()
                          .field("batch",
                                 static_cast<std::uint64_t>(rec.batch))
                          .list();
        w->async_begin(std::move(b));
      }
      w->async_end(ev(rec, "execute", rec.end_ms));
      w->async_begin(ev(rec, "reduce", rec.end_ms));
      w->async_end(ev(rec, "reduce", rec.done_ms));
      w->async_end(ev(rec, "request", rec.done_ms));
    }
    for (const WindowStats& win : rep.windows) {
      obs::TraceEvent c;
      c.name = "service";
      c.cat = "serve";
      c.pid = kServicePid;
      c.tid = 0;
      c.ts_us = win.end_ms * 1000.0;
      c.args_json = util::JsonFields()
                        .field("goodput", win.goodput)
                        .field("gcups", win.gcups)
                        .field("queue_depth",
                               static_cast<std::uint64_t>(win.queue_depth_end))
                        .list();
      w->counter(std::move(c));
      if (!cfg_.slo.objectives.empty()) {
        util::JsonFields burns;
        for (std::size_t o = 0; o < cfg_.slo.objectives.size(); ++o) {
          burns.field(objective_key(cfg_.slo.objectives[o]), win.burn[o]);
        }
        obs::TraceEvent s;
        s.name = "slo burn rate";
        s.cat = "serve";
        s.pid = kServicePid;
        s.tid = 0;
        s.ts_us = win.end_ms * 1000.0;
        s.args_json = burns.list();
        w->counter(std::move(s));
      }
    }
  }

  // ---- registry mirror (bit-for-bit from the report, like LaunchStats).
  obs::Registry& reg = obs::Registry::global();
  reg.counter("serve.arrivals").add(rep.arrivals);
  reg.counter("serve.admitted").add(rep.admitted);
  reg.counter("serve.rejected.queue").add(rep.rejected_queue);
  reg.counter("serve.rejected.concurrency").add(rep.rejected_concurrency);
  reg.counter("serve.rejected.budget").add(rep.rejected_budget);
  reg.counter("serve.completed").add(rep.completed);
  reg.counter("serve.deadline_misses").add(rep.deadline_misses);
  reg.counter("serve.batches").add(rep.batches);
  reg.counter("serve.cells").add(rep.cells);
  reg.gauge("serve.latency_ms.p50").set(rep.latency_ms.quantile(0.50));
  reg.gauge("serve.latency_ms.p90").set(rep.latency_ms.quantile(0.90));
  reg.gauge("serve.latency_ms.p99").set(rep.latency_ms.quantile(0.99));
  reg.gauge("serve.latency_ms.p999").set(rep.latency_ms.quantile(0.999));
  reg.gauge("serve.goodput").set(rep.goodput());
  reg.gauge("serve.gcups").set(rep.gcups());
  for (std::size_t o = 0; o < cfg_.slo.objectives.size(); ++o) {
    reg.gauge("serve.slo." + objective_key(cfg_.slo.objectives[o]) +
              ".burn_rate")
        .set(rep.slo[o].burn_rate);
  }
  return rep;
}

}  // namespace cusw::serve
