// Deterministic, seedable random number generation.
//
// All experiments in this repository are reproducible: every database
// generator and workload takes an explicit 64-bit seed, and the generators
// below behave identically across platforms (unlike std::normal_distribution,
// whose output is implementation-defined).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace cusw {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality PRNG for all workload generation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t n) {
    CUSW_REQUIRE(n > 0, "uniform_u64 range must be nonempty");
    const std::uint64_t threshold = -n % n;  // 2^64 mod n
    for (;;) {
      std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CUSW_REQUIRE(lo <= hi, "uniform_int bounds inverted");
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal via Box–Muller (deterministic across platforms).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with the given parameters of the *underlying* normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace cusw
