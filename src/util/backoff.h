// Capped exponential backoff for retrying transient failures.
//
// The fleet drivers do not sleep: retried work lives inside the simulated
// timeline, so the delay for attempt k is *charged* to the run's modelled
// seconds (and to the fault.backoff_seconds gauge), keeping faulted runs
// deterministic and fast to execute.
#pragma once

#include <algorithm>
#include <cstdint>

namespace cusw::util {

struct BackoffPolicy {
  /// Retries after the first attempt; attempt indices are 0-based, so a
  /// unit of work runs at most `max_retries + 1` times.
  int max_retries = 4;
  double base_seconds = 1e-3;
  double multiplier = 2.0;
  double max_seconds = 0.1;

  /// Delay charged before retry `attempt` (0 = first retry), capped.
  double delay_seconds(int attempt) const {
    double d = base_seconds;
    for (int i = 0; i < attempt; ++i) {
      d *= multiplier;
      if (d >= max_seconds) break;
    }
    return std::min(d, max_seconds);
  }

  /// Total delay charged by a unit of work that retried `retries` times.
  double total_delay_seconds(int retries) const {
    double total = 0.0;
    for (int a = 0; a < retries; ++a) total += delay_seconds(a);
    return total;
  }
};

}  // namespace cusw::util
