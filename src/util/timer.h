// Wall-clock timing for the CPU baselines (the GPU side reports *simulated*
// time from the gpusim cost model, never wall-clock).
#pragma once

#include <chrono>

namespace cusw {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cusw
