#include "util/cli.h"

#include <cstdlib>

namespace cusw {

double bench_scale() {
  if (const char* s = std::getenv("CUSW_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

}  // namespace cusw
