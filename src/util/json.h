// Minimal JSON string escaping, shared by the table writer and the
// observability exporters. Full serialisation stays with the callers —
// every emitter in this codebase writes its own structure — but escaping
// must be uniform or the outputs stop being loadable.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace cusw::util {

/// Escape `s` for use inside a JSON string literal (quotes not included).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace cusw::util
