// Minimal JSON string escaping plus a tiny field-list builder, shared by
// the table writer and the observability exporters. Full document
// structure stays with the callers — every emitter in this codebase
// writes its own shape — but escaping, number formatting and the
// `"key": value` comma discipline must be uniform or the outputs stop
// being loadable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace cusw::util {

/// Escape `s` for use inside a JSON string literal (quotes not included).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Format a double the way every JSON emitter here should: shortest form
/// that round-trips well enough for counters ("%.12g"), never locale
/// dependent beyond snprintf's "C" behaviour for %g.
inline std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Comma-disciplined builder for a JSON field list (`"k": v, ...`).
/// Produces either the bare list (for callers splicing fields into a
/// hand-written shell, e.g. trace-event args) or a braced object.
class JsonFields {
 public:
  JsonFields& field(std::string_view key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonFields& field(std::string_view key, std::int64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonFields& field(std::string_view key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonFields& field(std::string_view key, double v) {
    return raw(key, json_number(v));
  }
  JsonFields& field(std::string_view key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonFields& field(std::string_view key, std::string_view v) {
    std::string quoted;
    quoted.reserve(v.size() + 2);
    quoted += '"';
    quoted += json_escape(v);
    quoted += '"';
    return raw(key, quoted);
  }
  /// Splice pre-serialised JSON (an object, array or number) as a value.
  JsonFields& raw(std::string_view key, std::string_view json) {
    if (!out_.empty()) out_ += ", ";
    out_ += "\"";
    out_ += json_escape(key);
    out_ += "\": ";
    out_ += json;
    return *this;
  }

  bool empty() const { return out_.empty(); }
  /// The bare `"k": v, ...` list, no braces.
  const std::string& list() const { return out_; }
  /// The braced `{...}` object.
  std::string object() const { return "{" + out_ + "}"; }

 private:
  std::string out_;
};

}  // namespace cusw::util
