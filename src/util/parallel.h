// Host-parallelism policy: how many worker threads the simulator and the
// search pipeline may use. Controlled by the CUSW_THREADS environment
// variable; 0 or 1 selects the serial fallback, unset means one worker per
// hardware thread.
#pragma once

#include <cstddef>

namespace cusw::util {

/// Effective host worker count. Reads CUSW_THREADS on every call so tests
/// can flip it between searches:
///   - unset / empty / non-numeric -> ThreadPool::default_thread_count()
///   - 0 or 1                      -> 1 (serial fallback)
///   - n > 1                       -> n
std::size_t parallelism();

}  // namespace cusw::util
