#include "util/parallel.h"

#include <cstdlib>

#include "util/thread_pool.h"

namespace cusw::util {

std::size_t parallelism() {
  const char* env = std::getenv("CUSW_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) {
      return v <= 1 ? 1 : static_cast<std::size_t>(v);
    }
  }
  return ThreadPool::default_thread_count();
}

}  // namespace cusw::util
