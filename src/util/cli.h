// Tiny --key=value command-line parser for the bench and example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.h"

namespace cusw {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string raw = argv[i];
      CUSW_REQUIRE(raw.rfind("--", 0) == 0,
                   "arguments must look like --key=value or --flag: " + raw);
      const std::string arg = raw.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_.insert_or_assign(arg, std::string("1"));
      } else {
        kv_.insert_or_assign(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stoll(it->second);
  }

  double get_double(const std::string& key, double dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stod(it->second);
  }

  bool get_bool(const std::string& key, bool dflt) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> kv_;
};

/// Scale factor for bench workloads: CUSW_BENCH_SCALE=4 makes databases 4x
/// larger (slower, smoother curves). Defaults to 1.
double bench_scale();

}  // namespace cusw
