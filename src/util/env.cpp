#include "util/env.h"

#include <cstdlib>
#include <stdexcept>

namespace cusw::util {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> parse_kv_spec(
    std::string_view spec) {
  std::vector<std::pair<std::string, std::string>> out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view field = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    field = trim(field);
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    const std::string_view key =
        trim(eq == std::string_view::npos ? field : field.substr(0, eq));
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{}
                                     : trim(field.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("empty key in spec field '" +
                                  std::string(field) + "'");
    }
    out.emplace_back(std::string(key), std::string(value));
  }
  return out;
}

double parse_double(std::string_view text, std::string_view what) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    throw std::invalid_argument("bad numeric value '" + s + "' for " +
                                std::string(what));
  }
  return v;
}

bool env_enabled(const char* name, bool dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  const std::string_view s(v);
  return s != "off" && s != "0" && s != "false";
}

long long parse_int(std::string_view text, std::string_view what) {
  const std::string s(text);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size()) {
    throw std::invalid_argument("bad integer value '" + s + "' for " +
                                std::string(what));
  }
  return v;
}

}  // namespace cusw::util
