// ASCII table and CSV output used by the benchmark harnesses.
//
// Every bench binary prints a human-readable aligned table (the row/series
// the paper reports) and can optionally mirror it to CSV for plotting.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "util/check.h"
#include "util/json.h"

namespace cusw {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> headers, int precision = 2)
      : headers_(std::move(headers)), precision_(precision) {}

  Table& add_row(std::vector<Cell> row) {
    CUSW_REQUIRE(row.size() == headers_.size(),
                 "row width must match header width");
    rows_.push_back(std::move(row));
    return *this;
  }

  std::size_t rows() const { return rows_.size(); }

  std::string to_string() const {
    std::vector<std::vector<std::string>> text;
    text.reserve(rows_.size());
    for (const auto& row : rows_) {
      std::vector<std::string> r;
      r.reserve(row.size());
      for (const auto& c : row) r.push_back(render(c));
      text.push_back(std::move(r));
    }
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
      for (const auto& r : text) width[i] = std::max(width[i], r[i].size());
    }
    std::ostringstream os;
    auto hline = [&] {
      for (auto w : width) os << '+' << std::string(w + 2, '-');
      os << "+\n";
    };
    hline();
    os << format_row(headers_, width);
    hline();
    for (const auto& r : text) os << format_row(r, width);
    hline();
    return os.str();
  }

  std::string to_csv() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < headers_.size(); ++i)
      os << (i ? "," : "") << headers_[i];
    os << '\n';
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i)
        os << (i ? "," : "") << render(row[i]);
      os << '\n';
    }
    return os.str();
  }

  /// JSON array of row objects keyed by header, machine-readable mirror
  /// of the ASCII table (numbers stay numbers; strings are escaped).
  std::string to_json() const {
    std::ostringstream os;
    os << "[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r ? ",\n " : "\n ") << "{";
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        os << (i ? ", " : "") << '"' << util::json_escape(headers_[i])
           << "\": ";
        const Cell& c = rows_[r][i];
        if (const auto* s = std::get_if<std::string>(&c)) {
          os << '"' << util::json_escape(*s) << '"';
        } else if (const auto* v = std::get_if<std::int64_t>(&c)) {
          os << *v;
        } else {
          std::ostringstream num;
          num.precision(12);
          num << std::get<double>(c);
          os << num.str();
        }
      }
      os << "}";
    }
    os << "\n]";
    return os.str();
  }

  void print(std::ostream& os = std::cout) const { os << to_string(); }

 private:
  std::string render(const Cell& c) const {
    if (const auto* s = std::get_if<std::string>(&c)) return *s;
    if (const auto* i = std::get_if<std::int64_t>(&c))
      return std::to_string(*i);
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
    return os.str();
  }

  static std::string format_row(const std::vector<std::string>& cells,
                                const std::vector<std::size_t>& width) {
    std::ostringstream os;
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << "| " << std::setw(static_cast<int>(width[i])) << cells[i] << ' ';
    os << "|\n";
    return os.str();
  }

  std::vector<std::string> headers_;
  int precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace cusw
