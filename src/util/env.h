// Parsing helpers for comma-separated `key=value` environment specs
// (CUSW_FAULTS and friends). Strict by design: a typo in a spec throws
// std::invalid_argument instead of silently disabling the feature.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cusw::util {

/// Split `spec` ("a=1,b=0.5,c") into (key, value) pairs in order; a field
/// without '=' yields an empty value. Whitespace around fields, keys and
/// values is trimmed; empty fields are skipped. Throws on an empty key.
std::vector<std::pair<std::string, std::string>> parse_kv_spec(
    std::string_view spec);

/// Parse a full string as a double / integer; throws std::invalid_argument
/// (mentioning `what`) on trailing garbage or range errors.
double parse_double(std::string_view text, std::string_view what);
long long parse_int(std::string_view text, std::string_view what);

/// Boolean environment toggle with the CUSW_SIM_MEMO convention: unset or
/// empty yields `dflt`; "off", "0" and "false" disable; anything else
/// enables. Read on every call (not cached) so tests and tools can flip a
/// toggle with setenv between operations.
bool env_enabled(const char* name, bool dflt);

}  // namespace cusw::util
