// Error-checking macros and narrow casts used across the library.
//
// CUSW_REQUIRE is for precondition violations by callers (throws
// std::invalid_argument); CUSW_CHECK is for internal invariants (throws
// std::logic_error). Both are always on: this library favours loud failures
// over silent corruption, and none of the checks sit on per-cell hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cusw {

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": internal invariant violated: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

#define CUSW_REQUIRE(expr, msg)                                          \
  do {                                                                   \
    if (!(expr))                                                         \
      ::cusw::detail::throw_require(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#define CUSW_CHECK(expr, msg)                                            \
  do {                                                                   \
    if (!(expr))                                                         \
      ::cusw::detail::throw_check(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)

/// Narrowing cast that throws when the value does not round-trip.
template <class To, class From>
To checked_narrow(From v) {
  To t = static_cast<To>(v);
  if (static_cast<From>(t) != v || ((t < To{}) != (v < From{}))) {
    throw std::range_error("checked_narrow: value out of range");
  }
  return t;
}

}  // namespace cusw
