// Online statistics, histograms, and log-normal parameter fitting.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace cusw {

/// Welford's online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi). Out-of-range samples are NOT
/// clamped into the edge bins — they are counted in explicit underflow /
/// overflow counters so outliers stay visible; the totals invariant is
/// total() == Σ bin(i) + underflow() + overflow().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    CUSW_REQUIRE(hi > lo && bins > 0, "histogram range/bins invalid");
  }

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    // x < hi_ can still round onto the end bin boundary; keep it in range.
    if (idx >= static_cast<std::int64_t>(counts_.size()))
      idx = static_cast<std::int64_t>(counts_.size()) - 1;
    ++counts_[static_cast<std::size_t>(idx)];
  }

  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  /// All samples ever added, in-range or not.
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Samples that landed in a bin.
  std::uint64_t in_range() const { return total_ - underflow_ - overflow_; }
  double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9
/// relative error). Used for conditional tail sampling in the database
/// generators.
inline double inverse_normal_cdf(double p) {
  CUSW_REQUIRE(p > 0.0 && p < 1.0, "inverse_normal_cdf domain is (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

/// Standard normal CDF.
inline double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Parameters (mu, sigma) of the normal underlying a log-normal variate.
struct LogNormalParams {
  double mu = 0.0;
  double sigma = 0.0;

  double mean() const { return std::exp(mu + sigma * sigma / 2.0); }
  double variance() const {
    const double s2 = sigma * sigma;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu + s2);
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Fraction of the distribution above `x` (complementary CDF).
  double tail_above(double x) const {
    CUSW_REQUIRE(x > 0.0, "log-normal tail requires x > 0");
    const double z = (std::log(x) - mu) / sigma;
    return 0.5 * std::erfc(z / std::sqrt(2.0));
  }
};

/// Solve for (mu, sigma) given the distribution's mean and standard deviation.
/// This is the parameterisation the paper uses in Fig. 2 ("we set the standard
/// deviation between 100 and 1500; because we used a log-normal distribution
/// the mean varies...").
inline LogNormalParams lognormal_from_mean_stddev(double mean, double stddev) {
  CUSW_REQUIRE(mean > 0.0 && stddev > 0.0, "log-normal moments must be > 0");
  const double cv2 = (stddev / mean) * (stddev / mean);
  LogNormalParams p;
  p.sigma = std::sqrt(std::log1p(cv2));
  p.mu = std::log(mean) - p.sigma * p.sigma / 2.0;
  return p;
}

/// Solve for (mu, sigma) given the mean and the tail fraction above a
/// threshold (bisection on sigma). Used to synthesise databases matching a
/// published "% of sequences over 3072" column.
inline LogNormalParams lognormal_from_mean_tail(double mean, double threshold,
                                                double tail_fraction) {
  CUSW_REQUIRE(mean > 0.0 && threshold > mean,
               "tail fit expects threshold above the mean");
  CUSW_REQUIRE(tail_fraction > 0.0 && tail_fraction < 0.5,
               "tail fraction must be in (0, 0.5)");
  auto tail_at = [&](double sigma) {
    LogNormalParams p;
    p.sigma = sigma;
    p.mu = std::log(mean) - sigma * sigma / 2.0;
    return p.tail_above(threshold);
  };
  // With mu pinned by the mean, the tail mass grows with sigma up to
  // sigma* = sqrt(2 ln(threshold/mean)) and shrinks afterwards; bisect on the
  // increasing branch only.
  double lo = 1e-3;
  double hi = std::sqrt(2.0 * std::log(threshold / mean));
  CUSW_REQUIRE(tail_at(hi) >= tail_fraction,
               "requested tail fraction is unreachable for this mean");
  CUSW_CHECK(tail_at(lo) < tail_fraction, "tail fit bracket invalid");
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    (tail_at(mid) < tail_fraction ? lo : hi) = mid;
  }
  LogNormalParams p;
  p.sigma = 0.5 * (lo + hi);
  p.mu = std::log(mean) - p.sigma * p.sigma / 2.0;
  return p;
}

}  // namespace cusw
