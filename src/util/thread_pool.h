// Minimal thread pool with a blocking parallel_for, used by the SWPS3
// baseline to spread database chunks over host cores (the paper runs SWPS3
// on four Xeon cores).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.h"

namespace cusw {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n), blocking until all iterations complete.
  /// Work is handed out in contiguous chunks to keep cache behaviour sane.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, workers_.size() * 4);
    std::atomic<std::size_t> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = n * c / chunks;
      const std::size_t hi = n * (c + 1) / chunks;
      enqueue([&, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
        if (done.fetch_add(1) + 1 == chunks) {
          std::lock_guard<std::mutex> lk(done_mu);
          done_cv.notify_one();
        }
      });
    }
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] { return done.load() == chunks; });
  }

  void enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      CUSW_CHECK(!stopping_, "enqueue on stopped pool");
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cusw
