// Thread pool for host-side parallelism: the SWPS3 baseline spreads
// database chunks over cores with parallel_for, and the gpusim/pipeline
// layers shard simulated thread blocks, inter-task groups and batch
// queries with run_indexed. A process-wide pool is available via shared().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.h"

namespace cusw {

class ThreadPool {
 public:
  /// std::thread::hardware_concurrency(), guarded against the value 0 the
  /// standard allows when the core count is unknown.
  static std::size_t default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

  explicit ThreadPool(std::size_t threads = default_thread_count()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// The process-wide pool (hardware-sized). Callers pick their effective
  /// worker count per call via run_indexed's `workers` argument, so one
  /// shared pool serves every parallelism() setting.
  static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t size() const { return workers_.size(); }

  /// Stable trace-attribution id of the calling thread: pool workers are
  /// numbered 1..N in spawn order (process-wide, across pools), every
  /// other thread — including the caller acting as run_indexed's worker
  /// slot 0 — reports 0. Worker *slots* in run_indexed are per-call and
  /// reused across nesting levels; this id names the OS thread itself, so
  /// spans recorded against it are properly nested per track.
  static int current_thread_id() { return thread_id_slot(); }

  /// Run fn(i) for i in [0, n), blocking until all iterations complete.
  /// Work is handed out in contiguous chunks to keep cache behaviour sane.
  /// The first exception thrown by any iteration is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, workers_.size() * 4);
    run_indexed(chunks, chunks,
                [&](std::size_t /*worker*/, std::size_t c) {
                  const std::size_t lo = n * c / chunks;
                  const std::size_t hi = n * (c + 1) / chunks;
                  for (std::size_t i = lo; i < hi; ++i) fn(i);
                });
  }

  /// Run fn(worker, i) for every i in [0, n) on up to `workers` concurrent
  /// workers, blocking until all iterations complete. The caller itself
  /// acts as worker 0, so nested calls (a parallel pipeline issuing
  /// parallel launches) always make progress even when every pool thread
  /// is busy. Indices are handed out dynamically (one shared counter), so
  /// imbalanced iterations pack well; `worker` < workers identifies the
  /// executing worker slot for worker-private scratch state. The first
  /// exception thrown by any iteration is rethrown in the caller.
  ///
  /// With workers <= 1 everything runs serially on the calling thread —
  /// the serial fallback is the same code path minus the pool.
  void run_indexed(
      std::size_t n, std::size_t workers,
      const std::function<void(std::size_t worker, std::size_t index)>& fn) {
    if (n == 0) return;
    if (workers > n) workers = n;
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(0, i);
      return;
    }

    // Helpers own the state through a shared_ptr and only count as running
    // once they actually start: after the caller's own drain() exhausts the
    // index counter it waits solely for helpers that are mid-iteration. A
    // helper still sitting in the pool queue at that point wakes up later,
    // claims nothing and exits — so a nested call whose helpers never get a
    // pool thread (every worker busy or blocked) cannot deadlock: the
    // caller does all the work itself and moves on.
    struct State {
      std::function<void(std::size_t, std::size_t)> fn;
      std::size_t n;
      std::atomic<std::size_t> next{0};
      std::atomic<bool> failed{false};
      std::mutex mu;
      std::condition_variable cv;
      std::size_t running = 0;  // helpers currently inside drain()
      std::exception_ptr error;

      void drain(std::size_t worker) {
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(worker, i);
          } catch (...) {
            std::lock_guard<std::mutex> lk(mu);
            if (!error) error = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }
    };
    auto st = std::make_shared<State>();
    st->fn = fn;
    st->n = n;

    for (std::size_t w = 1; w < workers; ++w) {
      enqueue([st, w] {
        {
          std::lock_guard<std::mutex> lk(st->mu);
          ++st->running;
        }
        st->drain(w);
        std::lock_guard<std::mutex> lk(st->mu);
        if (--st->running == 0) st->cv.notify_all();
      });
    }
    st->drain(0);
    // next >= n (or failed) here, so helpers that start from now on claim
    // no index; wait only for the ones already inside drain().
    std::unique_lock<std::mutex> lk(st->mu);
    st->cv.wait(lk, [&] { return st->running == 0; });
    if (st->error) std::rethrow_exception(st->error);
  }

  void enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      CUSW_CHECK(!stopping_, "enqueue on stopped pool");
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  static int& thread_id_slot() {
    static thread_local int id = 0;
    return id;
  }

  void worker_loop() {
    static std::atomic<int> next_id{1};
    thread_id_slot() = next_id.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cusw
