// Causal "what-if" plans: virtual-speedup experiments on the simulated
// clock (DESIGN.md §14).
//
// A plan names one or more cost *targets* inside the simulator — a
// (site, space) attribution row, a stall reason, a whole kernel, or a
// device latency parameter — and a scale factor per target. The
// simulator (gpusim/launch.cpp) resolves the active plan once per launch
// and scales the *charged ticks* of the selected targets by the factor,
// re-partitioning the stall breakdown with the same min/remainder scheme
// that makes the unscaled attribution exact, so Σ reasons == charged
// still holds bit-for-bit at every factor. The functional score path is
// never touched: a what-if run returns bit-identical scores and answers
// only "what would the clock have said".
//
// This is the causal-profiling move (Coz, Curtsinger & Berger, SOSP'15)
// made exact: instead of slowing everything else down on real hardware,
// the simulated cost of one target is actually scaled and the workload
// re-run, so the end-to-end delta *is* the causal effect — including
// every downstream interaction (window max() terms, occupancy idle,
// scheduling, service queueing) that a local stall share cannot see.
//
// Wiring: CUSW_WHATIF=<target>*<factor>[,<target>*<factor>...] selects a
// plan for the process (read per launch, so tests can flip it with
// setenv between launches); tools call set_plan()/clear_plan() to drive
// factor sweeps programmatically (a programmatic plan wins over the
// environment). Target grammar:
//
//   site:<name>            every (site, *) attribution row, any space
//   site:<name>@<space>    one (site, space) row; space is global,
//                          local or texture
//   stall:<reason>         one stall reason (gpusim/stall.h), e.g.
//                          stall:compute or stall:occupancy_idle
//   kernel:<label>         every charged tick of launches whose label
//                          matches
//   param:<name>           a device latency parameter: dram_latency,
//                          l1_latency, l2_latency or tex_hit_latency
//                          (scales the parameter, not ticks — the
//                          coalescer/caches then reprice every window)
//
// Factors are >= 0; 0 deletes the cost entirely ("what if this were
// free"), values > 1 are virtual slowdowns. Factor 1.0 is a byte-exact
// no-op by construction — the injected scaling only rounds when it
// actually changes a value.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace cusw::obs::whatif {

/// One scaled target of a plan.
struct Target {
  enum class Kind {
    kSite,    // (site, space) attribution rows; space may be "any"
    kStall,   // one stall reason
    kKernel,  // every charged tick of a labelled kernel
    kParam,   // a DeviceSpec latency parameter
  };
  Kind kind = Kind::kSite;
  std::string name;   // site name, stall reason, kernel label, param name
  std::string space;  // kSite only: "global", "local", "texture" or ""
  double factor = 1.0;

  /// The canonical spec of this target (no factor): "site:x@global", ...
  std::string spec() const;
};

/// A parsed what-if plan: the targets plus the canonical spec string the
/// simulator folds into memo keys (so memoized blocks can never replay
/// under the wrong plan) and capsules record as provenance.
struct Plan {
  std::vector<Target> targets;
  /// Canonical round-trip of the plan: per-target `spec()*factor`,
  /// comma-joined in target order, factors rendered with %.12g.
  std::string spec;

  bool empty() const { return targets.empty(); }
};

/// Parse a CUSW_WHATIF spec. Throws std::invalid_argument naming the
/// offending entry on malformed input: unknown target kind, unknown
/// stall reason / space / parameter name, missing or negative factor.
Plan parse_plan(const std::string& spec);

/// Install `plan` as the process's active plan (wins over CUSW_WHATIF);
/// an empty plan is equivalent to clear_plan(). Swap only between
/// launches — the simulator reads the plan at launch entry.
void set_plan(Plan plan);

/// Drop the programmatic plan; CUSW_WHATIF (if set) takes over again.
void clear_plan();

/// The active plan: the programmatic one if set, else the parsed
/// CUSW_WHATIF environment plan, else nullptr. The pointee is kept alive
/// for the life of the process (plans are small and sweeps bounded), so
/// the pointer stays valid across later set_plan/clear_plan calls.
/// Throws on a malformed CUSW_WHATIF the first time it is seen.
const Plan* active_plan();

}  // namespace cusw::obs::whatif
