// Run capsules: one self-describing JSON artifact per run (DESIGN.md §13).
//
// A capsule is the machine-readable record of everything a run observed:
// build/config provenance (git sha, thread count, memo state), the
// per-kernel counters reassembled from the metrics registry — stall
// attribution in exact ticks, per-space and per-(site, space) rows — the
// full registry snapshot, the sampled time series (obs/sampler.h), and
// named sections contributed by subsystems (the serve layer's SLO report,
// bench payloads). tools/perf_explain consumes pairs of capsules and
// attributes their cycle/GCUPS delta down the kernel → reason → site
// tree; CI archives the canonical Table I capsules on every run.
//
// Wiring: CUSW_CAPSULE=<path> makes install_process_exports() write the
// process's capsule at exit; benches and the serve layer contribute their
// sections as they run. Tests and tools call capsule_to_json() directly
// on a snapshot diff to capture one run in isolation.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace cusw::obs {

/// Bump when the capsule document shape changes.
inline constexpr int kCapsuleVersion = 1;

/// Contribute (or replace) a named section of the process capsule —
/// `json` must be a complete JSON value. Sections are serialized sorted
/// by name; concurrent contributors with distinct names compose.
void capsule_note_section(const std::string& name, std::string json);

/// Drop every contributed section (tests; capsules for isolated runs).
void capsule_clear_sections();

/// Construct the section registry's internal statics without mutating
/// them. install_process_exports() calls this before registering the
/// exit hook: function-local statics are destroyed in reverse order of
/// construction, so anything the hook reads must already exist when the
/// hook is registered or it would be torn down first.
void capsule_init();

/// Serialize a capsule from `snap`: provenance, the per-kernel counter
/// tree (kernels with no launches and no charged ticks in `snap` are
/// omitted — a diff snapshot records only the kernels that ran), the
/// registry snapshot, the sampler's series and the contributed sections.
std::string capsule_to_json(const Snapshot& snap, const std::string& run);

/// Capsule of the process so far (global registry snapshot).
std::string capsule_to_json(const std::string& run = "process");

/// Write capsule_to_json(run) to `path`; false on I/O failure.
bool write_capsule(const std::string& path, const std::string& run = "process");

struct CapsuleCheck {
  bool ok = false;
  std::string error;        // first violation, empty when ok
  std::size_t kernels = 0;  // kernel entries
  std::size_t series = 0;   // time series
  std::size_t points = 0;   // sample points across all series
  /// Non-fatal observations: a valid capsule whose telemetry is known to
  /// be incomplete, e.g. a time series that dropped points to the
  /// sampler's ring bound. The capsule still validates (ok stays true) —
  /// the holes are honest and recorded — but consumers should surface
  /// them before trusting series-derived conclusions.
  std::vector<std::string> warnings;
};

/// Structural validation of a capsule document: top-level object with a
/// numeric capsule_version, a provenance object, and — when present — a
/// kernels array of objects and a series section whose per-series points
/// carry numeric, non-decreasing t_ms timestamps and numeric channel
/// values (unordered time series are rejected). Series that report
/// dropped points (ring overflow) produce warnings, not errors.
CapsuleCheck validate_capsule(std::string_view text);

}  // namespace cusw::obs
