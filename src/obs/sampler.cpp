#include "obs/sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/json.h"

namespace cusw::obs {

namespace {

// One interval's accumulated launch activity. Stall shares are kept in
// double ticks because a launch contributes fractionally to every
// interval it overlaps; the fractions per interval are a deterministic
// function of the launch aggregates and the interval grid alone.
struct Bucket {
  double cells = 0.0;
  double charged = 0.0;
  std::map<std::string, double> reasons;
};

struct LaunchSeries {
  std::map<std::int64_t, Bucket> buckets;  // interval index -> activity
  double max_end_ms = 0.0;                 // latest launch end seen
  std::uint64_t dropped = 0;
};

struct PointSeries {
  std::deque<SamplePoint> points;
  std::uint64_t dropped = 0;
};

}  // namespace

struct Sampler::Impl {
  mutable std::mutex mu;
  double every_ms = 0.0;  // 0 = disarmed
  std::size_t cap = 4096;
  std::map<std::string, LaunchSeries> launches;  // device name -> series
  std::map<std::string, PointSeries> points;     // series name -> points
};

Sampler::Impl& Sampler::impl() const {
  static Impl i;
  return i;
}

Sampler& Sampler::global() {
  static Sampler s;
  return s;
}

Sampler* Sampler::active() {
  Sampler& s = global();
  std::lock_guard<std::mutex> lk(s.impl().mu);
  return s.impl().every_ms > 0.0 ? &s : nullptr;
}

void Sampler::configure(double every_ms, std::size_t capacity) {
  if (every_ms <= 0.0)
    throw std::invalid_argument("sampler interval must be > 0 ms");
  if (capacity == 0)
    throw std::invalid_argument("sampler capacity must be > 0");
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.every_ms = every_ms;
  im.cap = capacity;
}

void Sampler::disable() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.every_ms = 0.0;
  im.launches.clear();
  im.points.clear();
}

void Sampler::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.launches.clear();
  im.points.clear();
}

void Sampler::ensure_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* v = std::getenv("CUSW_SAMPLE_EVERY");
        v != nullptr && *v != '\0') {
      global().configure(
          util::parse_double(v, "CUSW_SAMPLE_EVERY (simulated ms)"));
    }
  });
}

double Sampler::every_ms() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.every_ms;
}

std::size_t Sampler::capacity() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.cap;
}

void Sampler::record_launch(
    const std::string& device, double t0_ms, double dur_ms,
    std::uint64_t cells,
    const std::vector<std::pair<std::string, std::uint64_t>>& stall_ticks,
    std::uint64_t charged_ticks) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  if (im.every_ms <= 0.0) return;
  LaunchSeries& ls = im.launches[device];
  const double t1_ms = t0_ms + std::max(dur_ms, 0.0);
  ls.max_end_ms = std::max(ls.max_end_ms, t1_ms);

  // Spread the launch aggregates over the intervals it overlaps,
  // proportional to overlap. A zero-duration launch lands whole in the
  // interval containing its start.
  const double every = im.every_ms;
  const auto add = [&](std::int64_t k, double frac) {
    Bucket& b = ls.buckets[k];
    b.cells += static_cast<double>(cells) * frac;
    b.charged += static_cast<double>(charged_ticks) * frac;
    for (const auto& [reason, ticks] : stall_ticks)
      b.reasons[reason] += static_cast<double>(ticks) * frac;
  };
  if (dur_ms <= 0.0) {
    add(static_cast<std::int64_t>(std::floor(t0_ms / every)), 1.0);
  } else {
    const auto k0 = static_cast<std::int64_t>(std::floor(t0_ms / every));
    const auto k1 = static_cast<std::int64_t>(
        std::ceil(t1_ms / every));  // exclusive upper interval bound
    for (std::int64_t k = k0; k < k1; ++k) {
      const double lo = std::max(t0_ms, static_cast<double>(k) * every);
      const double hi =
          std::min(t1_ms, (static_cast<double>(k) + 1.0) * every);
      if (hi <= lo) continue;
      add(k, (hi - lo) / dur_ms);
    }
  }
  // Ring bound: evict the oldest intervals beyond the capacity, so a
  // long-running process keeps the tail of the run at fixed memory.
  std::uint64_t evicted = 0;
  while (ls.buckets.size() > im.cap) {
    ls.buckets.erase(ls.buckets.begin());
    ++ls.dropped;
    ++evicted;
  }
  if (evicted > 0) {
    Registry::global()
        .gauge("obs.sampler.dropped")
        .add(static_cast<double>(evicted));
  }
}

void Sampler::record_point(
    const std::string& series, double t_ms,
    const std::vector<std::pair<std::string, double>>& values) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  if (im.every_ms <= 0.0) return;
  PointSeries& ps = im.points[series];
  SamplePoint p;
  p.t_ms = t_ms;
  p.values = values;
  std::sort(p.values.begin(), p.values.end());
  ps.points.push_back(std::move(p));
  std::uint64_t evicted = 0;
  while (ps.points.size() > im.cap) {
    ps.points.pop_front();
    ++ps.dropped;
    ++evicted;
  }
  if (evicted > 0) {
    Registry::global()
        .gauge("obs.sampler.dropped")
        .add(static_cast<double>(evicted));
  }
}

std::vector<SampleSeries> Sampler::series() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  std::vector<SampleSeries> out;
  const double every = im.every_ms;
  for (const auto& [device, ls] : im.launches) {
    SampleSeries s;
    s.name = "gpusim." + device;
    s.dropped = ls.dropped;
    for (const auto& [k, b] : ls.buckets) {
      SamplePoint p;
      // The sample sits at the interval's end, clamped to the latest data
      // so the final point never claims time past the run (only the last
      // interval can be cut short; earlier interval ends precede it).
      p.t_ms = std::min((static_cast<double>(k) + 1.0) * every,
                        ls.max_end_ms);
      const double interval_s = every * 1e-3;
      p.values.emplace_back("gcups", b.cells / interval_s * 1e-9);
      for (const auto& [reason, ticks] : b.reasons) {
        p.values.emplace_back("stall_frac." + reason,
                              b.charged > 0.0 ? ticks / b.charged : 0.0);
      }
      s.points.push_back(std::move(p));
    }
    out.push_back(std::move(s));
  }
  for (const auto& [name, ps] : im.points) {
    SampleSeries s;
    s.name = name;
    s.dropped = ps.dropped;
    s.points.assign(ps.points.begin(), ps.points.end());
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SampleSeries& a, const SampleSeries& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Sampler::to_json() const {
  const std::vector<SampleSeries> all = series();
  util::JsonFields top;
  top.field("every_ms", every_ms())
      .field("capacity", static_cast<std::uint64_t>(capacity()));
  std::string arr = "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SampleSeries& s = all[i];
    std::string pts = "[";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      const SamplePoint& p = s.points[j];
      util::JsonFields vals;
      for (const auto& [channel, v] : p.values) vals.field(channel, v);
      pts += std::string(j ? ", " : "") + "{\"t_ms\": " +
             util::json_number(p.t_ms) + ", \"values\": " + vals.object() +
             "}";
    }
    pts += "]";
    util::JsonFields sf;
    sf.field("name", s.name).field("dropped", s.dropped).raw("points", pts);
    arr += std::string(i ? ",\n  " : "\n  ") + sf.object();
  }
  arr += all.empty() ? "]" : "\n ]";
  top.raw("series", arr);
  return top.object();
}

void Sampler::render_trace(TraceWriter& tw) const {
  const std::vector<SampleSeries> all = series();
  if (all.empty()) return;
  tw.name_process(kSamplerPid, "telemetry (sampled)");
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SampleSeries& s = all[i];
    const int tid = static_cast<int>(i);
    tw.name_track(kSamplerPid, tid, s.name);
    for (const SamplePoint& p : s.points) {
      if (p.values.empty()) continue;
      TraceEvent e;
      e.name = s.name;
      e.cat = "sample";
      e.pid = kSamplerPid;
      e.tid = tid;
      e.ts_us = p.t_ms * 1000.0;
      util::JsonFields vals;
      for (const auto& [channel, v] : p.values) vals.field(channel, v);
      e.args_json = vals.list();
      tw.counter(std::move(e));
    }
  }
}

}  // namespace cusw::obs
