#include "obs/whatif.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "util/env.h"
#include "util/json.h"

namespace cusw::obs::whatif {

namespace {

// Validation vocabularies. The obs layer sits below gpusim, so the
// simulator's names are mirrored here rather than included; test_whatif
// cross-checks the reason list against gpusim/stall.h's visitor.
constexpr const char* kStallReasons[] = {
    "compute",   "mem_issue", "txn_issue",      "exposed_latency",
    "sync",      "bank_conflict", "occupancy_idle",
};
constexpr const char* kSpaces[] = {"global", "local", "texture"};
constexpr const char* kParams[] = {"dram_latency", "l1_latency",
                                   "l2_latency", "tex_hit_latency"};

template <std::size_t N>
bool known(const char* const (&names)[N], const std::string& s) {
  for (const char* n : names) {
    if (s == n) return true;
  }
  return false;
}

[[noreturn]] void bad(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("CUSW_WHATIF entry '" + entry + "': " + why);
}

Target parse_target(const std::string& entry) {
  const std::size_t star = entry.rfind('*');
  if (star == std::string::npos || star + 1 == entry.size())
    bad(entry, "missing '*<factor>'");
  Target t;
  t.factor = util::parse_double(entry.substr(star + 1).c_str(),
                                "CUSW_WHATIF factor");
  if (t.factor < 0.0) bad(entry, "factor must be >= 0");
  const std::string target = entry.substr(0, star);
  const std::size_t colon = target.find(':');
  if (colon == std::string::npos)
    bad(entry, "expected site:/stall:/kernel:/param: prefix");
  const std::string kind = target.substr(0, colon);
  std::string name = target.substr(colon + 1);
  if (name.empty()) bad(entry, "empty target name");
  if (kind == "site") {
    t.kind = Target::Kind::kSite;
    if (const std::size_t at = name.rfind('@'); at != std::string::npos) {
      t.space = name.substr(at + 1);
      name = name.substr(0, at);
      if (name.empty()) bad(entry, "empty site name");
      if (!known(kSpaces, t.space))
        bad(entry, "unknown space '" + t.space +
                       "' (global, local or texture)");
    }
  } else if (kind == "stall") {
    t.kind = Target::Kind::kStall;
    if (!known(kStallReasons, name))
      bad(entry, "unknown stall reason '" + name + "'");
  } else if (kind == "kernel") {
    t.kind = Target::Kind::kKernel;
  } else if (kind == "param") {
    t.kind = Target::Kind::kParam;
    if (!known(kParams, name))
      bad(entry, "unknown parameter '" + name +
                     "' (dram_latency, l1_latency, l2_latency or "
                     "tex_hit_latency)");
  } else {
    bad(entry, "unknown target kind '" + kind + "'");
  }
  t.name = std::move(name);
  return t;
}

std::mutex& mu() {
  static std::mutex m;
  return m;
}

struct State {
  const Plan* programmatic = nullptr;
  // Plans live for the process (active_plan() hands out raw pointers a
  // running launch may still hold when the plan is swapped): parsed env
  // plans are interned by spec, programmatic plans are retired, never
  // freed. Sweeps install a few dozen plans at most.
  std::map<std::string, std::unique_ptr<Plan>> env_plans;
  std::vector<std::unique_ptr<Plan>> retired;
  std::string env_seen;
  const Plan* env_plan = nullptr;
};

State& state() {
  static State* s = new State;  // leaked: see lifetime note above
  return *s;
}

}  // namespace

std::string Target::spec() const {
  switch (kind) {
    case Kind::kSite:
      return "site:" + name + (space.empty() ? "" : "@" + space);
    case Kind::kStall:
      return "stall:" + name;
    case Kind::kKernel:
      return "kernel:" + name;
    case Kind::kParam:
      return "param:" + name;
  }
  return name;  // unreachable
}

Plan parse_plan(const std::string& spec) {
  Plan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string entry = spec.substr(pos, end - pos);
    if (!entry.empty()) {
      Target t = parse_target(entry);
      if (!plan.spec.empty()) plan.spec += ',';
      plan.spec += t.spec();
      plan.spec += '*';
      plan.spec += util::json_number(t.factor);
      plan.targets.push_back(std::move(t));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return plan;
}

void set_plan(Plan plan) {
  State& s = state();
  std::lock_guard<std::mutex> lk(mu());
  if (plan.empty()) {
    s.programmatic = nullptr;
    return;
  }
  s.retired.push_back(std::make_unique<Plan>(std::move(plan)));
  s.programmatic = s.retired.back().get();
}

void clear_plan() {
  State& s = state();
  std::lock_guard<std::mutex> lk(mu());
  s.programmatic = nullptr;
}

const Plan* active_plan() {
  State& s = state();
  std::lock_guard<std::mutex> lk(mu());
  if (s.programmatic != nullptr) return s.programmatic;
  const char* v = std::getenv("CUSW_WHATIF");
  const std::string env = v != nullptr ? v : "";
  if (env != s.env_seen) {
    s.env_seen = env;
    s.env_plan = nullptr;
    if (!env.empty()) {
      const auto it = s.env_plans.find(env);
      if (it != s.env_plans.end()) {
        s.env_plan = it->second.get();
      } else {
        Plan parsed = parse_plan(env);  // throws on malformed input
        if (!parsed.empty()) {
          auto owned = std::make_unique<Plan>(std::move(parsed));
          s.env_plan = owned.get();
          s.env_plans.emplace(env, std::move(owned));
        }
      }
    }
  }
  return s.env_plan;
}

}  // namespace cusw::obs::whatif
