#include "obs/metrics.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "util/check.h"
#include "util/json.h"
#include "util/table.h"

namespace cusw::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CUSW_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted");
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

const MetricSample* Snapshot::find(std::string_view name) const {
  const auto it = samples_.find(std::string(name));
  return it == samples_.end() ? nullptr : &it->second;
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  const MetricSample* s = find(name);
  return s != nullptr && s->kind == MetricKind::kCounter ? s->count : 0;
}

double Snapshot::gauge(std::string_view name) const {
  const MetricSample* s = find(name);
  return s != nullptr && s->kind == MetricKind::kGauge ? s->value : 0.0;
}

Snapshot Snapshot::diff(const Snapshot& older) const {
  Snapshot out;
  for (const auto& [name, s] : samples_) {
    MetricSample d = s;
    const auto it = older.samples_.find(name);
    if (it != older.samples_.end() && it->second.kind == s.kind) {
      const MetricSample& o = it->second;
      switch (s.kind) {
        case MetricKind::kCounter:
          d.count = s.count - o.count;
          break;
        case MetricKind::kGauge:
          d.value = s.value - o.value;
          break;
        case MetricKind::kHistogram:
          d.count = s.count - o.count;
          d.value = s.value - o.value;
          for (std::size_t i = 0;
               i < d.buckets.size() && i < o.buckets.size(); ++i)
            d.buckets[i] = s.buckets[i] - o.buckets[i];
          break;
      }
    }
    out.samples_.emplace(name, std::move(d));
  }
  return out;
}

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

void append_double(std::ostringstream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

}  // namespace

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& [name, s] : samples_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << util::json_escape(name) << "\", \"kind\": \""
       << kind_name(s.kind) << "\", ";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << "\"value\": " << s.count;
        break;
      case MetricKind::kGauge:
        os << "\"value\": ";
        append_double(os, s.value);
        break;
      case MetricKind::kHistogram: {
        os << "\"count\": " << s.count << ", \"sum\": ";
        append_double(os, s.value);
        os << ", \"buckets\": [";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          os << (i ? ", " : "") << "{\"le\": ";
          if (i < s.bounds.size()) {
            append_double(os, s.bounds[i]);
          } else {
            os << "\"inf\"";
          }
          os << ", \"count\": " << s.buckets[i] << "}";
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string Snapshot::to_table() const {
  Table t({"metric", "kind", "value"}, 6);
  for (const auto& [name, s] : samples_) {
    switch (s.kind) {
      case MetricKind::kCounter:
        t.add_row({name, std::string("counter"),
                   static_cast<std::int64_t>(s.count)});
        break;
      case MetricKind::kGauge:
        t.add_row({name, std::string("gauge"), s.value});
        break;
      case MetricKind::kHistogram: {
        std::ostringstream v;
        v << "count " << s.count << " sum ";
        append_double(v, s.value);
        t.add_row({name, std::string("histogram"), v.str()});
        break;
      }
    }
  }
  return t.to_string();
}

Registry& Registry::global() {
  // Intentionally leaked: atexit reporters (CUSW_PROF / CUSW_METRICS) and
  // observers on detached threads may read the registry after static
  // destructors would have run, so it must never be destroyed.
  static Registry* reg = new Registry;
  return *reg;
}

Registry::Metric& Registry::get_or_create(std::string_view name,
                                          MetricKind kind,
                                          std::vector<double>* bounds) {
  {
    std::shared_lock lk(mu_);
    const auto it = metrics_.find(name);
    if (it != metrics_.end()) {
      CUSW_CHECK(it->second.kind == kind,
                 "metric registered twice with different kinds");
      return it->second;
    }
  }
  std::unique_lock lk(mu_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    CUSW_CHECK(it->second.kind == kind,
               "metric registered twice with different kinds");
    return it->second;
  }
  Metric m;
  m.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      m.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      m.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      m.histogram = std::make_unique<Histogram>(std::move(*bounds));
      break;
  }
  return metrics_.emplace(std::string(name), std::move(m)).first->second;
}

Counter& Registry::counter(std::string_view name) {
  return *get_or_create(name, MetricKind::kCounter, nullptr).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *get_or_create(name, MetricKind::kGauge, nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  return *get_or_create(name, MetricKind::kHistogram, &bounds).histogram;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::shared_lock lk(mu_);
  for (const auto& [name, m] : metrics_) {
    MetricSample s;
    s.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        s.count = m.counter->value();
        break;
      case MetricKind::kGauge:
        s.value = m.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.count = m.histogram->count();
        s.value = m.histogram->sum();
        s.bounds = m.histogram->bounds();
        s.buckets = m.histogram->buckets();
        break;
    }
    out.samples_.emplace(name, std::move(s));
  }
  return out;
}

std::size_t Registry::metric_count() const {
  std::shared_lock lk(mu_);
  return metrics_.size();
}

}  // namespace cusw::obs
