#include "obs/log_histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/json.h"

namespace cusw::obs {

LogHistogram::LogHistogram(double min_value, double max_value,
                           double relative_error)
    : min_value_(min_value), max_value_(max_value), rel_err_(relative_error) {
  CUSW_REQUIRE(min_value > 0.0 && max_value > min_value,
               "log histogram needs 0 < min < max");
  CUSW_REQUIRE(relative_error > 0.0 && relative_error < 1.0,
               "log histogram relative error must be in (0, 1)");
  // Growth factor b = (1 + e)^2: the geometric midpoint lo*sqrt(b) of a
  // bucket [lo, lo*b) is within a factor (1 + e) of both ends.
  const double log_base = 2.0 * std::log1p(relative_error);
  log_base_inv_ = 1.0 / log_base;
  const double span = std::log(max_value / min_value);
  const auto n = static_cast<std::size_t>(std::ceil(span / log_base));
  counts_.assign(std::max<std::size_t>(n, 1), 0);
}

std::size_t LogHistogram::bucket_index(double v) const {
  const double t = std::log(v / min_value_) * log_base_inv_;
  auto idx = static_cast<std::int64_t>(t);  // v >= min_value_ => t >= 0
  // Floating rounding at the last bucket boundary can land one past the
  // end even for v < max_value; keep it in range.
  if (idx >= static_cast<std::int64_t>(counts_.size()))
    idx = static_cast<std::int64_t>(counts_.size()) - 1;
  if (idx < 0) idx = 0;
  return static_cast<std::size_t>(idx);
}

void LogHistogram::record(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  if (v < min_value_) {
    ++underflow_;
    return;
  }
  if (v >= max_value_) {
    ++overflow_;
    return;
  }
  ++counts_[bucket_index(v)];
}

double LogHistogram::bucket_lo(std::size_t i) const {
  return min_value_ * std::exp(static_cast<double>(i) / log_base_inv_);
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = underflow_;
  if (rank <= seen) return min_;  // exact: the recorded minimum bounds it
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank <= seen) {
      // Geometric bucket midpoint: within rel_err_ of any member.
      return bucket_lo(i) * (1.0 + rel_err_);
    }
  }
  return max_;  // overflow bucket: the recorded maximum is its upper bound
}

void LogHistogram::merge(const LogHistogram& o) {
  CUSW_REQUIRE(min_value_ == o.min_value_ && max_value_ == o.max_value_ &&
                   rel_err_ == o.rel_err_,
               "merging log histograms with different geometry");
  if (o.count_ == 0) return;
  if (count_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
  underflow_ += o.underflow_;
  overflow_ += o.overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
}

bool LogHistogram::operator==(const LogHistogram& o) const {
  return min_value_ == o.min_value_ && max_value_ == o.max_value_ &&
         rel_err_ == o.rel_err_ && counts_ == o.counts_ &&
         count_ == o.count_ && underflow_ == o.underflow_ &&
         overflow_ == o.overflow_ && sum_ == o.sum_ &&
         (count_ == 0 || (min_ == o.min_ && max_ == o.max_));
}

std::string LogHistogram::to_json() const {
  util::JsonFields f;
  f.field("count", count_)
      .field("underflow", underflow_)
      .field("overflow", overflow_)
      .field("sum", sum_)
      .field("min", min_recorded())
      .field("max", max_recorded())
      .field("relative_error", rel_err_)
      .field("p50", quantile(0.50))
      .field("p90", quantile(0.90))
      .field("p99", quantile(0.99))
      .field("p999", quantile(0.999));
  std::ostringstream buckets;
  buckets << "[";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    buckets << (first ? "" : ", ") << "{\"lo\": "
            << util::json_number(bucket_lo(i))
            << ", \"hi\": " << util::json_number(bucket_hi(i))
            << ", \"n\": " << counts_[i] << "}";
    first = false;
  }
  buckets << "]";
  f.raw("buckets", buckets.str());
  return f.object();
}

}  // namespace cusw::obs
