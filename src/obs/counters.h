// cusw-counters: per-site memory-hierarchy attribution report.
//
// gpusim::launch publishes each launch's counters under
// `gpusim.kernel.<label>.*`, including the per-site attribution rows the
// kernels annotate (`<label>.site.<site>.<space>.<field>`, see
// gpusim/site.h). This module renders those metrics as an ncu-style table
// and as JSON with derived metrics per kernel and per site:
//   - coalescing efficiency (requests / transactions)
//   - L1 / L2 / texture-cache hit rates (hits / transactions)
//   - achieved DRAM bandwidth (dram_bytes / kernel seconds)
//   - bank-conflict cycle share (conflict cycles / total block cycles)
//   - roofline arithmetic intensity (cell updates / dram_bytes)
//   - GCUPS (cell updates / kernel seconds / 1e9) and a roofline verdict
//     (compute- vs memory-throughput- vs latency-bound) from the stall
//     breakdown gpusim::launch attributes per charged cycle
// The JSON is what tools/counter_diff compares against the checked-in
// baselines; enable it at process exit with CUSW_COUNTERS=<path> (wired
// through install_process_exports(), like CUSW_PROF / CUSW_METRICS).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cusw::obs {

/// One kernel's counters reassembled from a snapshot's
/// `gpusim.kernel.<label>.*` metrics.
struct KernelCounters {
  std::string label;
  std::uint64_t launches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t windows = 0;
  std::uint64_t syncs = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflict_cycles = 0;
  std::uint64_t cells = 0;
  double seconds = 0.0;
  double total_block_cycles = 0.0;
  /// stall reason -> fixed-point ticks (gpusim/stall.h), plus the
  /// "charged" total; the reasons sum to "charged" exactly.
  std::map<std::string, std::uint64_t> stall;
  /// space name -> field name -> value (the SpaceCounters fields).
  std::map<std::string, std::map<std::string, std::uint64_t>> spaces;
  /// (site name, space name) -> field name -> value. Site rows of one
  /// space sum to that space's totals bit for bit.
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, std::uint64_t>>
      sites;
};

/// Parse every `gpusim.kernel.*` metric of `snap` into per-kernel
/// counters, sorted by label. Site names may themselves contain dots
/// ("profile.tex_fetch"); the space and field are parsed from the end.
std::vector<KernelCounters> collect_kernel_counters(const Snapshot& snap);

/// The cusw-counters JSON document: per-kernel objects with raw counters,
/// per-site attribution rows and the derived metrics listed above.
std::string counters_to_json(const Snapshot& snap);

/// ncu-style ASCII rendering: one section per kernel with its derived
/// metrics, then one row per (site, space) attribution entry. Returns ""
/// when the snapshot holds no kernel metrics.
std::string format_counters_table(const Snapshot& snap);

}  // namespace cusw::obs
