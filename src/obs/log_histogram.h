// Log-bucketed (HDR-style) histogram with a bounded relative error on
// every reported quantile.
//
// The registry's obs::Histogram needs explicit bucket bounds chosen up
// front and util::Histogram is fixed-width over a closed range — neither
// can answer "what is p99.9 of a latency distribution whose tail we did
// not predict" without either huge bucket tables or unbounded error. This
// histogram covers [min_value, max_value) with geometrically spaced
// buckets sized so the bucket midpoint is within `relative_error` of any
// sample that landed in the bucket; quantiles are therefore trustworthy
// at the tail, which is the whole point of SLO accounting (DESIGN.md §11).
//
// Out-of-range samples are never clamped into edge buckets: they are
// counted in explicit underflow/overflow buckets and the exact recorded
// min/max stand in as their representatives, so outliers stay visible and
// count() always equals underflow + Σ buckets + overflow.
//
// Recording is a pure function of the sample sequence — no wall clock, no
// allocation after construction — so two runs that record the same values
// in the same order produce bit-identical histograms (the serve layer's
// determinism contract rides on this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cusw::obs {

class LogHistogram {
 public:
  /// Geometric buckets over [min_value, max_value) with bucket growth
  /// factor (1 + relative_error)^2, so the geometric bucket midpoint is
  /// within `relative_error` of every in-range sample. Requires
  /// 0 < min_value < max_value and relative_error in (0, 1).
  LogHistogram(double min_value, double max_value, double relative_error);

  void record(double v);

  /// Total samples recorded, including underflow and overflow.
  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double sum() const { return sum_; }
  /// Exact extremes of everything recorded (0 when empty).
  double min_recorded() const { return count_ ? min_ : 0.0; }
  double max_recorded() const { return count_ ? max_ : 0.0; }

  /// Value at quantile q in [0, 1] under the rank definition
  /// rank = max(1, ceil(q * count)): the bucket midpoint for in-range
  /// samples (within relative_error() of the exact order statistic), the
  /// exact recorded min/max for samples that landed in the underflow or
  /// overflow bucket, and 0 for an empty histogram.
  double quantile(double q) const;

  /// The advertised bound: for any quantile whose order statistic was an
  /// in-range sample, |quantile(q) - exact| / exact <= relative_error().
  double relative_error() const { return rel_err_; }
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

  /// Merge another histogram with identical geometry (same min/max/error).
  void merge(const LogHistogram& o);

  /// Exact structural equality — the bit-identity the determinism tests
  /// assert across thread counts.
  bool operator==(const LogHistogram& o) const;
  bool operator!=(const LogHistogram& o) const { return !(*this == o); }

  /// {"count": ..., "underflow": ..., "overflow": ..., "p50": ..., ...,
  ///  "buckets": [{"lo": ..., "hi": ..., "n": ...}, ...]} — only non-empty
  /// buckets are listed.
  std::string to_json() const;

 private:
  std::size_t bucket_index(double v) const;

  double min_value_ = 0.0;
  double max_value_ = 0.0;
  double rel_err_ = 0.0;
  double log_base_inv_ = 0.0;  // 1 / ln(growth factor)
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cusw::obs
