#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "util/json.h"
#include "util/thread_pool.h"

namespace cusw::obs {

struct TraceWriter::Impl {
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  // (pid, tid) -> name; tid -1 names the process.
  std::set<std::pair<int, int>> named;
  std::vector<TraceEvent> metadata;
};

TraceWriter::TraceWriter(std::string path)
    : impl_(std::make_shared<Impl>()), path_(std::move(path)) {}

void TraceWriter::span(TraceEvent e) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void TraceWriter::instant(TraceEvent e) {
  e.ph = 'i';
  e.dur_us = 0.0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void TraceWriter::counter(TraceEvent e) {
  e.ph = 'C';
  e.dur_us = 0.0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void TraceWriter::async_begin(TraceEvent e) {
  e.ph = 'b';
  e.dur_us = 0.0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void TraceWriter::async_instant(TraceEvent e) {
  e.ph = 'n';
  e.dur_us = 0.0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void TraceWriter::async_end(TraceEvent e) {
  e.ph = 'e';
  e.dur_us = 0.0;
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->events.push_back(std::move(e));
}

void TraceWriter::name_process(int pid, std::string name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->named.insert({pid, -1}).second) return;
  TraceEvent e;
  e.name = "process_name";
  e.pid = pid;
  e.args_json = "\"name\": \"" + util::json_escape(name) + "\"";
  impl_->metadata.push_back(std::move(e));
}

void TraceWriter::name_track(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  if (!impl_->named.insert({pid, tid}).second) return;
  TraceEvent e;
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.args_json = "\"name\": \"" + util::json_escape(name) + "\"";
  impl_->metadata.push_back(std::move(e));
}

std::size_t TraceWriter::event_count() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->events.size();
}

namespace {

void append_us(std::ostringstream& os, double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  os << buf;
}

}  // namespace

std::string TraceWriter::to_json() const {
  std::vector<TraceEvent> events, metadata;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    events = impl_->events;
    metadata = impl_->metadata;
  }
  // Sort per track by start time, longest span first on ties so enclosing
  // spans precede their children in the file.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const TraceEvent& e, bool meta) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\": \"" << util::json_escape(e.name) << "\", \"ph\": \""
       << (meta ? 'M' : e.ph) << "\", \"pid\": " << e.pid
       << ", \"tid\": " << e.tid;
    if (!meta) {
      if (!e.cat.empty())
        os << ", \"cat\": \"" << util::json_escape(e.cat) << "\"";
      os << ", \"ts\": ";
      append_us(os, e.ts_us);
      if (e.ph == 'i') {
        os << ", \"s\": \"t\"";  // thread-scoped instant
      } else if (e.ph == 'b' || e.ph == 'n' || e.ph == 'e') {
        // Async events are matched by (cat, id); no dur.
        os << ", \"id\": \"" << e.async_id << "\"";
      } else if (e.ph != 'C') {  // counters carry only ts + args
        os << ", \"dur\": ";
        append_us(os, e.dur_us);
      }
    }
    if (!e.args_json.empty()) os << ", \"args\": {" << e.args_json << "}";
    os << "}";
  };
  for (const TraceEvent& e : metadata) emit(e, true);
  for (const TraceEvent& e : events) emit(e, false);
  os << "\n]\n}\n";
  return os.str();
}

bool TraceWriter::write() const {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

namespace {

std::chrono::steady_clock::time_point wall_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// The active writer. Replaced writers are intentionally kept alive for the
// process lifetime (reconfiguration is a test/tool operation, not a hot
// path), so a concurrent span() racing a reconfigure never dereferences a
// destroyed writer.
std::mutex g_trace_mu;
std::vector<std::unique_ptr<TraceWriter>>& trace_writers() {
  static std::vector<std::unique_ptr<TraceWriter>> writers;
  return writers;
}
std::atomic<TraceWriter*> g_trace{nullptr};

void flush_at_exit() { flush_trace(); }

}  // namespace

double wall_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - wall_epoch())
      .count();
}

TraceWriter* trace() { return g_trace.load(std::memory_order_acquire); }

void configure_trace(std::string path) {
  std::lock_guard<std::mutex> lk(g_trace_mu);
  trace_writers().push_back(std::make_unique<TraceWriter>(std::move(path)));
  TraceWriter* w = trace_writers().back().get();
  w->name_process(kHostPid, "host");
  static bool exit_hook = false;
  if (!exit_hook) {
    exit_hook = true;
    std::atexit(flush_at_exit);
  }
  g_trace.store(w, std::memory_order_release);
}

void disable_trace() { g_trace.store(nullptr, std::memory_order_release); }

std::string flush_trace() {
  std::lock_guard<std::mutex> lk(g_trace_mu);
  TraceWriter* w = g_trace.load(std::memory_order_acquire);
  if (w == nullptr) return "";
  g_trace.store(nullptr, std::memory_order_release);
  return w->write() ? w->path() : "";
}

void ensure_env_trace() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* path = std::getenv("CUSW_TRACE");
        path != nullptr && *path != '\0') {
      configure_trace(path);
    }
  });
}

void trace_instant(std::string name, std::string cat, std::string args_json) {
  TraceWriter* w = trace();
  if (w == nullptr) return;
  const int tid = ThreadPool::current_thread_id();
  w->name_track(kHostPid, tid,
                tid == 0 ? "main" : "worker " + std::to_string(tid));
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.pid = kHostPid;
  e.tid = tid;
  e.ts_us = wall_now_us();
  e.args_json = std::move(args_json);
  w->instant(std::move(e));
}

HostSpan::HostSpan(std::string name, std::string cat) {
  if (!trace_enabled()) return;
  name_ = std::move(name);
  cat_ = std::move(cat);
  start_us_ = wall_now_us();
}

HostSpan::~HostSpan() {
  if (start_us_ < 0.0) return;
  TraceWriter* w = trace();
  if (w == nullptr) return;
  const int tid = ThreadPool::current_thread_id();
  w->name_track(kHostPid, tid,
                tid == 0 ? "main" : "worker " + std::to_string(tid));
  TraceEvent e;
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.pid = kHostPid;
  e.tid = tid;
  e.ts_us = start_us_;
  e.dur_us = wall_now_us() - start_us_;
  w->span(std::move(e));
}

}  // namespace cusw::obs
