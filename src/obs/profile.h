// cusw-prof: an nvprof-style per-kernel summary for any pipeline run.
//
// gpusim::launch publishes per-kernel counters under
// `gpusim.kernel.<label>.*`; format_kernel_profile() renders them as the
// familiar profiler table (time %, launches, transactions per space).
// install_process_exports() arms the process-exit reporting driven by
// environment variables:
//   CUSW_PROF=1           print the cusw-prof table to stdout at exit
//   CUSW_METRICS=<path>   write the full metrics registry as JSON at exit
//   CUSW_TRACE=<path>     write the Chrome trace at exit (see trace.h)
//   CUSW_COUNTERS=<path>  write the per-site counter JSON and print the
//                         cusw-counters table at exit (see counters.h)
//   CUSW_CAPSULE=<path>   write the run capsule at exit (see capsule.h)
//   CUSW_SAMPLE_EVERY=<ms> arm the simulated-time telemetry sampler
//                         (see sampler.h); series land in the capsule
//                         and, with CUSW_TRACE, as counter tracks
// It is called lazily from the simulator and the pipeline, so every
// binary that runs a search supports the report mode without changes.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace cusw::obs {

/// Render the `gpusim.kernel.*` metrics of `snap` as an nvprof-style
/// table, one row per kernel label, sorted by total time descending.
/// Returns "" when the snapshot holds no kernel metrics.
std::string format_kernel_profile(const Snapshot& snap);

/// True when CUSW_PROF requests the exit report (any non-empty value
/// except "0").
bool profile_requested();

/// Idempotent, thread-safe: reads CUSW_TRACE / CUSW_SAMPLE_EVERY and
/// registers the atexit handler that honours CUSW_PROF / CUSW_METRICS /
/// CUSW_TRACE / CUSW_COUNTERS / CUSW_CAPSULE.
void install_process_exports();

}  // namespace cusw::obs
