#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "obs/capsule.h"
#include "obs/counters.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/table.h"

namespace cusw::obs {

namespace {

constexpr std::string_view kKernelPrefix = "gpusim.kernel.";

struct KernelRow {
  double seconds = 0.0;
  std::uint64_t launches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t global_txns = 0;  // global + local, the profiler's number
  std::uint64_t dram_txns = 0;
  std::uint64_t tex_txns = 0;
  std::uint64_t shared = 0;
  std::uint64_t syncs = 0;
};

}  // namespace

std::string format_kernel_profile(const Snapshot& snap) {
  std::map<std::string, KernelRow> kernels;
  for (const auto& [name, s] : snap.samples()) {
    if (name.rfind(kKernelPrefix, 0) != 0) continue;
    const std::string rest = name.substr(kKernelPrefix.size());
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos) continue;
    const std::string label = rest.substr(0, dot);
    const std::string field = rest.substr(dot + 1);
    KernelRow& row = kernels[label];
    if (field == "seconds") row.seconds = s.value;
    if (field == "launches") row.launches = s.count;
    if (field == "blocks") row.blocks = s.count;
    if (field == "syncs") row.syncs = s.count;
    if (field == "shared.accesses") row.shared = s.count;
    if (field == "global.transactions" || field == "local.transactions")
      row.global_txns += s.count;
    if (field == "texture.transactions") row.tex_txns = s.count;
    if (field == "global.dram_transactions" ||
        field == "local.dram_transactions" ||
        field == "texture.dram_transactions")
      row.dram_txns += s.count;
  }
  if (kernels.empty()) return "";

  double total_seconds = 0.0;
  for (const auto& [label, row] : kernels) total_seconds += row.seconds;

  std::vector<std::pair<std::string, KernelRow>> order(kernels.begin(),
                                                       kernels.end());
  std::stable_sort(order.begin(), order.end(), [](const auto& a,
                                                  const auto& b) {
    return a.second.seconds > b.second.seconds;
  });

  Table t({"kernel", "time %", "time s", "launches", "blocks", "global txns",
           "dram txns", "tex txns", "shared", "syncs"},
          3);
  for (const auto& [label, row] : order) {
    t.add_row({label,
               total_seconds > 0.0 ? 100.0 * row.seconds / total_seconds : 0.0,
               row.seconds, static_cast<std::int64_t>(row.launches),
               static_cast<std::int64_t>(row.blocks),
               static_cast<std::int64_t>(row.global_txns),
               static_cast<std::int64_t>(row.dram_txns),
               static_cast<std::int64_t>(row.tex_txns),
               static_cast<std::int64_t>(row.shared),
               static_cast<std::int64_t>(row.syncs)});
  }
  return t.to_string();
}

bool profile_requested() {
  const char* env = std::getenv("CUSW_PROF");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

namespace {

void export_at_exit() {
  // Sampled telemetry rides in the trace as counter tracks; render it
  // before the flush so an armed sampler and CUSW_TRACE compose.
  if (TraceWriter* tw = trace()) {
    Sampler::global().render_trace(*tw);
  }
  if (const std::string path = flush_trace(); !path.empty()) {
    std::printf("cusw-obs: wrote trace to %s\n", path.c_str());
  }
  if (const char* path = std::getenv("CUSW_CAPSULE");
      path != nullptr && *path != '\0') {
    if (write_capsule(path)) {
      std::printf("cusw-obs: wrote run capsule to %s\n", path);
    }
  }
  if (const char* path = std::getenv("CUSW_METRICS");
      path != nullptr && *path != '\0') {
    const std::string json = Registry::global().snapshot().to_json();
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("cusw-obs: wrote metrics to %s\n", path);
    }
  }
  if (const char* path = std::getenv("CUSW_COUNTERS");
      path != nullptr && *path != '\0') {
    const Snapshot snap = Registry::global().snapshot();
    const std::string json = counters_to_json(snap);
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("cusw-obs: wrote per-site counters to %s\n", path);
    }
    const std::string table = format_counters_table(snap);
    std::printf("=== cusw-counters: per-site attribution ===\n%s",
                table.empty() ? "(no kernel launches recorded)\n"
                              : table.c_str());
  }
  if (profile_requested()) {
    const std::string table =
        format_kernel_profile(Registry::global().snapshot());
    std::printf("=== cusw-prof: per-kernel summary ===\n%s",
                table.empty() ? "(no kernel launches recorded)\n"
                              : table.c_str());
  }
}

}  // namespace

void install_process_exports() {
  static std::once_flag once;
  std::call_once(once, [] {
    ensure_env_trace();
    Sampler::ensure_env();
    // The exit hook reads the sampler's and the capsule section
    // registry's function-local statics; construct them now so their
    // destructors — which run in reverse construction order, interleaved
    // with atexit handlers — fire after the hook, not before. Without
    // this, a static first touched mid-run (e.g. by capsule_note_section)
    // is already destroyed when the hook serializes the capsule.
    (void)Sampler::global().every_ms();
    capsule_init();
    std::atexit(export_at_exit);
  });
}

}  // namespace cusw::obs
