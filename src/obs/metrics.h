// Metrics registry: named counters, gauges and fixed-bucket histograms
// with cheap atomic updates, the observability layer's equivalent of the
// profiler counter output the paper's Table I is built from.
//
// Names are hierarchical dot-paths ("gpusim.global.transactions",
// "pipeline.inter.seconds"); the registry owns the metric objects and
// hands out stable references, so hot paths resolve a name once and then
// update lock-free. Snapshots capture every metric's value at a point in
// time and can be diffed, which is how tests compare a run's counters
// against `LaunchStats` bit-for-bit and how benches report per-run deltas
// from the process-lifetime totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cusw::obs {

/// Monotonic unsigned counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Double-valued gauge with atomic set and add (CAS loop — atomic
/// floating-point fetch_add is not portable across our toolchains).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
/// last implicit bucket counts the overflow. Bounds are set at creation
/// and immutable, so observe() is a binary search plus one atomic add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size == bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time value of one metric (see Registry::snapshot()).
struct MetricSample {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;                // counter value / histogram count
  double value = 0.0;                     // gauge value / histogram sum
  std::vector<double> bounds;             // histogram only
  std::vector<std::uint64_t> buckets;     // histogram only
};

/// A snapshot of every registered metric, diffable against an older one.
class Snapshot {
 public:
  const std::map<std::string, MetricSample>& samples() const {
    return samples_;
  }
  const MetricSample* find(std::string_view name) const;

  /// Counter of `name`, 0 when absent or not a counter.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge of `name`, 0.0 when absent or not a gauge.
  double gauge(std::string_view name) const;

  /// This snapshot minus an older one: counters and histogram buckets
  /// subtract, gauges report the newer value minus the older. Metrics
  /// absent from `older` pass through unchanged.
  Snapshot diff(const Snapshot& older) const;

  /// {"metrics": [{"name": ..., "kind": ..., ...}, ...]}, sorted by name.
  std::string to_json() const;
  /// Aligned ASCII table, one metric per row, sorted by name.
  std::string to_table() const;

 private:
  friend class Registry;
  std::map<std::string, MetricSample> samples_;
};

/// Named metric registry. Lookups take a shared lock and creation an
/// exclusive one; metric objects never move or disappear, so references
/// stay valid for the registry's lifetime and updates are lock-free.
class Registry {
 public:
  /// The process-wide registry gpusim and the pipeline publish into.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates with `bounds` on first use; later calls for the same name
  /// ignore `bounds` and return the existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  Snapshot snapshot() const;

  /// Number of metric objects ever created — the currency of the
  /// zero-overhead contract: steady-state hot paths (and in particular the
  /// simulator's per-window path, always) must not grow it.
  std::size_t metric_count() const;

 private:
  struct Metric {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& get_or_create(std::string_view name, MetricKind kind,
                        std::vector<double>* bounds);

  mutable std::shared_mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace cusw::obs
