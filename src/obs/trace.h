// Scoped-span tracing to Chrome trace-event JSON (load the output in
// chrome://tracing or Perfetto).
//
// Two clock domains share one file, kept apart by process id:
//   - pid 1, "host": wall-clock spans (thread-pool workers, pipeline
//     phases, per-query batch lanes), timestamps from a process-wide
//     steady-clock epoch, track ids from ThreadPool::current_thread_id().
//   - pid >= 100, "device N (simulated)": the simulated device timeline —
//     kernel launches, blocks on SM-slot tracks, windows — in *simulated*
//     microseconds from the gpusim cost model (see gpusim/launch.cpp).
//
// The process-wide trace is enabled by CUSW_TRACE=<path> (checked once on
// first simulator/pipeline use) or explicitly via configure_trace(); the
// file is written on flush_trace() and automatically at process exit.
// With no trace configured every hook is a single relaxed atomic load.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace cusw::obs {

/// Trace process ids (Chrome groups tracks by pid).
inline constexpr int kHostPid = 1;
inline constexpr int kFirstDevicePid = 100;

struct TraceEvent {
  std::string name;
  std::string cat;
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;   // microseconds in the track's clock domain
  double dur_us = 0.0;  // complete ("X") event duration; unused for "i"/"C"
  std::string args_json;  // pre-rendered `"k": v` pairs, may be empty
  char ph = 'X';  // 'X' complete, 'i' instant, 'C' counter, 'b'/'n'/'e' async
  /// Async lane id: events with the same (cat, id) form one async lane
  /// (Chrome matches "b"/"n"/"e" by category + id). Ignored for other
  /// phases.
  std::uint64_t async_id = 0;
};

/// Collects complete spans and track metadata, then writes one Chrome
/// trace-event JSON file. Thread safe; events are buffered in memory and
/// sorted by (pid, tid, ts, -dur) on write so every track is monotonic and
/// parents precede their children.
class TraceWriter {
 public:
  explicit TraceWriter(std::string path);

  void span(TraceEvent e);
  /// Zero-duration instant ("i") event at e.ts_us; dur_us is ignored.
  void instant(TraceEvent e);
  /// Counter-track sample ("C") at e.ts_us: every numeric `args` entry is
  /// one series of the counter named e.name (Chrome renders a stacked
  /// area chart per (pid, name)). dur_us is ignored.
  void counter(TraceEvent e);
  /// Async ("b"/"n"/"e") events: one lane per (cat, async_id), used for
  /// request-scoped spans that cross threads and batches (the serve
  /// layer's per-request lanes). Begin/end pairs must balance per lane
  /// and nest LIFO — obs/trace_check enforces it on the emitted file.
  void async_begin(TraceEvent e);
  void async_instant(TraceEvent e);
  void async_end(TraceEvent e);
  /// Idempotent track/process naming (Chrome "M" metadata events).
  void name_process(int pid, std::string name);
  void name_track(int pid, int tid, std::string name);

  std::size_t event_count() const;
  const std::string& path() const { return path_; }

  /// Serialise everything recorded so far (without clearing).
  std::string to_json() const;
  /// Write to_json() to path(); returns false on I/O failure.
  bool write() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  std::string path_;
};

/// Microseconds of wall-clock since the process-wide trace epoch.
double wall_now_us();

/// The active trace writer, or nullptr when tracing is disabled.
TraceWriter* trace();
inline bool trace_enabled() { return trace() != nullptr; }

/// Enable tracing to `path` (tests and tools; CUSW_TRACE does this on
/// first simulator use). Replaces any active writer without writing it.
void configure_trace(std::string path);
/// Drop the active writer without writing a file.
void disable_trace();
/// Write the active trace to its path and disable tracing; returns the
/// path, or "" when tracing is disabled or the write failed.
std::string flush_trace();
/// One-shot: read CUSW_TRACE and configure the process trace from it.
void ensure_env_trace();

/// Record an instant event on the host timeline at the current wall clock,
/// on the calling thread's track — used for point-in-time markers such as
/// injected faults, retries and failovers. No-op (one atomic load) when
/// tracing is disabled.
void trace_instant(std::string name, std::string cat,
                   std::string args_json = "");

/// RAII wall-clock span on the host timeline; the track id is the calling
/// thread's ThreadPool id (0 = main, 1..N = pool workers). No-op — one
/// atomic load — when tracing is disabled.
class HostSpan {
 public:
  explicit HostSpan(std::string name, std::string cat = "host");
  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;
  ~HostSpan();

 private:
  std::string name_;
  std::string cat_;
  double start_us_ = -1.0;  // < 0: tracing was off at construction
};

}  // namespace cusw::obs
