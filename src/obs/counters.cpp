#include "obs/counters.h"

#include <algorithm>
#include <string_view>

#include "util/json.h"
#include "util/table.h"

namespace cusw::obs {

namespace {

constexpr std::string_view kKernelPrefix = "gpusim.kernel.";

bool is_space_name(std::string_view s) {
  return s == "global" || s == "local" || s == "texture";
}

std::uint64_t field_sum(
    const std::map<std::string, std::uint64_t>& fields,
    std::string_view name) {
  const auto it = fields.find(std::string(name));
  return it == fields.end() ? 0 : it->second;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

// Fixed-point scale of the stall metrics, mirroring
// gpusim::kStallTicksPerCycle (obs parses metric names only and stays
// independent of the simulator headers).
constexpr double kStallTicksPerCycle = 1024.0;

/// Roofline verdict from a kernel's stall breakdown: which resource the
/// charged cycles say the kernel is limited by. "unknown" when no stall
/// metrics were published (e.g. a snapshot from an older run).
std::string bound_verdict(
    const std::map<std::string, std::uint64_t>& stall) {
  const std::uint64_t compute =
      field_sum(stall, "compute") + field_sum(stall, "bank_conflict");
  const std::uint64_t throughput =
      field_sum(stall, "mem_issue") + field_sum(stall, "txn_issue");
  const std::uint64_t latency = field_sum(stall, "exposed_latency");
  if (compute == 0 && throughput == 0 && latency == 0) return "unknown";
  if (latency >= compute && latency >= throughput) return "latency-bound";
  if (throughput >= compute) return "throughput-bound";
  return "compute-bound";
}

/// Append the derived metrics every counter row gets: coalescing
/// efficiency and per-level hit rates, all against transactions.
void derived_fields(util::JsonFields& f,
                    const std::map<std::string, std::uint64_t>& c) {
  const std::uint64_t txns = field_sum(c, "transactions");
  f.field("coalescing_efficiency", ratio(field_sum(c, "requests"), txns));
  f.field("l1_hit_rate", ratio(field_sum(c, "l1_hits"), txns));
  f.field("l2_hit_rate", ratio(field_sum(c, "l2_hits"), txns));
  f.field("tex_hit_rate", ratio(field_sum(c, "tex_hits"), txns));
}

}  // namespace

std::vector<KernelCounters> collect_kernel_counters(const Snapshot& snap) {
  std::map<std::string, KernelCounters> kernels;
  for (const auto& [name, s] : snap.samples()) {
    if (name.rfind(kKernelPrefix, 0) != 0) continue;
    const std::string rest = name.substr(kKernelPrefix.size());
    const std::size_t dot = rest.find('.');
    if (dot == std::string::npos) continue;
    const std::string label = rest.substr(0, dot);
    const std::string field = rest.substr(dot + 1);
    KernelCounters& k = kernels[label];
    k.label = label;
    if (field.rfind("site.", 0) == 0) {
      // site.<site>.<space>.<field>; the site name may contain dots, so
      // the space and field components are split off the end.
      const std::string path = field.substr(5);
      const std::size_t f_dot = path.rfind('.');
      if (f_dot == std::string::npos) continue;
      const std::size_t s_dot = path.rfind('.', f_dot - 1);
      if (s_dot == std::string::npos) continue;
      const std::string space = path.substr(s_dot + 1, f_dot - s_dot - 1);
      if (!is_space_name(space)) continue;
      k.sites[{path.substr(0, s_dot), space}][path.substr(f_dot + 1)] =
          s.count;
    } else if (field == "launches") {
      k.launches = s.count;
    } else if (field == "blocks") {
      k.blocks = s.count;
    } else if (field == "windows") {
      k.windows = s.count;
    } else if (field == "syncs") {
      k.syncs = s.count;
    } else if (field == "cells") {
      k.cells = s.count;
    } else if (field == "shared.accesses") {
      k.shared_accesses = s.count;
    } else if (field == "shared.bank_conflict_cycles") {
      k.bank_conflict_cycles = s.count;
    } else if (field == "seconds") {
      k.seconds = s.value;
    } else if (field == "total_block_cycles") {
      k.total_block_cycles = s.value;
    } else if (field.rfind("stall.", 0) == 0) {
      k.stall[field.substr(6)] = s.count;
    } else {
      const std::size_t s_dot = field.find('.');
      if (s_dot == std::string::npos) continue;
      const std::string space = field.substr(0, s_dot);
      if (!is_space_name(space)) continue;
      k.spaces[space][field.substr(s_dot + 1)] = s.count;
    }
  }
  std::vector<KernelCounters> out;
  out.reserve(kernels.size());
  for (auto& [label, k] : kernels) out.push_back(std::move(k));
  return out;
}

std::string counters_to_json(const Snapshot& snap) {
  const std::vector<KernelCounters> kernels = collect_kernel_counters(snap);
  std::string out = "{\"kernels\": [";
  bool first_kernel = true;
  for (const KernelCounters& k : kernels) {
    util::JsonFields f;
    f.field("label", std::string_view(k.label));
    f.field("launches", k.launches);
    f.field("blocks", k.blocks);
    f.field("windows", k.windows);
    f.field("syncs", k.syncs);
    f.field("cells", k.cells);
    f.field("seconds", k.seconds);
    f.field("shared_accesses", k.shared_accesses);
    f.field("bank_conflict_cycles", k.bank_conflict_cycles);

    // Stall attribution, converted from ticks back to simulated cycles
    // (exact: ticks are multiples of 1/1024 cycle).
    util::JsonFields st;
    for (const auto& [reason, ticks] : k.stall)
      st.field(reason + "_cycles",
               static_cast<double>(ticks) / kStallTicksPerCycle);
    f.raw("stall", st.object());

    util::JsonFields spaces;
    std::uint64_t dram_bytes = 0;
    for (const auto& [space, fields] : k.spaces) {
      util::JsonFields sf;
      for (const auto& [fname, v] : fields) sf.field(fname, v);
      derived_fields(sf, fields);
      spaces.raw(space, sf.object());
      dram_bytes += field_sum(fields, "dram_bytes");
    }
    f.raw("spaces", spaces.object());

    std::string sites = "[";
    bool first_site = true;
    for (const auto& [key, fields] : k.sites) {
      util::JsonFields sf;
      sf.field("site", std::string_view(key.first));
      sf.field("space", std::string_view(key.second));
      for (const auto& [fname, v] : fields) sf.field(fname, v);
      derived_fields(sf, fields);
      sites += first_site ? "" : ", ";
      sites += sf.object();
      first_site = false;
    }
    sites += "]";
    f.raw("sites", sites);

    // Kernel-level derived metrics (the roofline / bandwidth view).
    util::JsonFields d;
    d.field("dram_bytes", dram_bytes);
    d.field("dram_bandwidth_gbs",
            k.seconds > 0.0
                ? static_cast<double>(dram_bytes) / k.seconds / 1e9
                : 0.0);
    d.field("arithmetic_intensity", ratio(k.cells, dram_bytes));
    d.field("bank_conflict_share",
            k.total_block_cycles > 0.0
                ? static_cast<double>(k.bank_conflict_cycles) /
                      k.total_block_cycles
                : 0.0);
    d.field("gcups", k.seconds > 0.0
                         ? static_cast<double>(k.cells) / k.seconds / 1e9
                         : 0.0);
    const std::string bound = bound_verdict(k.stall);
    d.field("bound", std::string_view(bound));
    f.raw("derived", d.object());

    out += first_kernel ? "\n " : ",\n ";
    out += f.object();
    first_kernel = false;
  }
  out += "\n]}";
  return out;
}

std::string format_counters_table(const Snapshot& snap) {
  const std::vector<KernelCounters> kernels = collect_kernel_counters(snap);
  if (kernels.empty()) return "";
  std::string out;
  for (const KernelCounters& k : kernels) {
    std::uint64_t dram_bytes = 0;
    for (const auto& [space, fields] : k.spaces)
      dram_bytes += field_sum(fields, "dram_bytes");
    char head[320];
    std::snprintf(head, sizeof(head),
                  "%s: %llu launches, %llu cells, %.3g GCUPS, "
                  "%.3g GB/s DRAM, AI %.3g cells/B, "
                  "bank-conflict share %.3g, %s\n",
                  k.label.c_str(),
                  static_cast<unsigned long long>(k.launches),
                  static_cast<unsigned long long>(k.cells),
                  k.seconds > 0.0
                      ? static_cast<double>(k.cells) / k.seconds / 1e9
                      : 0.0,
                  k.seconds > 0.0
                      ? static_cast<double>(dram_bytes) / k.seconds / 1e9
                      : 0.0,
                  ratio(k.cells, dram_bytes),
                  k.total_block_cycles > 0.0
                      ? static_cast<double>(k.bank_conflict_cycles) /
                            k.total_block_cycles
                      : 0.0,
                  bound_verdict(k.stall).c_str());
    out += head;

    const std::uint64_t charged = field_sum(k.stall, "charged");
    Table t({"site", "space", "requests", "transactions", "coalesce",
             "dram txns", "dram bytes", "hit %", "cycles", "stall %"},
            2);
    auto add = [&](const std::string& site, const std::string& space,
                   const std::map<std::string, std::uint64_t>& c) {
      const std::uint64_t txns = field_sum(c, "transactions");
      const std::uint64_t hits = field_sum(c, "l1_hits") +
                                 field_sum(c, "l2_hits") +
                                 field_sum(c, "tex_hits");
      const std::uint64_t st = field_sum(c, "stall_ticks");
      t.add_row({site, space,
                 static_cast<std::int64_t>(field_sum(c, "requests")),
                 static_cast<std::int64_t>(txns),
                 ratio(field_sum(c, "requests"), txns),
                 static_cast<std::int64_t>(field_sum(c, "dram_transactions")),
                 static_cast<std::int64_t>(field_sum(c, "dram_bytes")),
                 100.0 * ratio(hits, txns),
                 static_cast<double>(st) / kStallTicksPerCycle,
                 100.0 * ratio(st, charged)});
    };
    for (const auto& [key, fields] : k.sites) add(key.first, key.second, fields);
    for (const auto& [space, fields] : k.spaces)
      add("(total)", space, fields);
    out += t.to_string();
  }
  return out;
}

}  // namespace cusw::obs
