#include "obs/trace_check.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <tuple>

#include "util/json.h"

namespace cusw::obs::json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(Value& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      std::ostringstream os;
      os << msg << " at byte " << pos_;
      *error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.kind = Value::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            // Decoded only far enough for validation: non-ASCII code
            // points round-trip as '?' (trace names are ASCII).
            const std::string hex(text_.substr(pos_, 4));
            char* end = nullptr;
            const long cp = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return fail("bad \\u escape");
            out += cp < 0x80 ? static_cast<char>(cp) : '?';
            pos_ += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool digits = false;
    const auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      eat_digits();
    }
    if (!digits) return fail("expected a value");
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  bool array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      skip_ws();
      Value v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool parse(std::string_view text, Value& out, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).parse(out);
}

}  // namespace cusw::obs::json

namespace cusw::obs {

namespace {

// Printed timestamps carry millisecond-of-a-microsecond resolution
// (%.3f), so nesting/monotonicity checks tolerate the rounding.
constexpr double kEps = 0.002;

std::string event_err(std::size_t i, const std::string& what) {
  std::ostringstream os;
  os << "traceEvents[" << i << "]: " << what;
  return os.str();
}

}  // namespace

TraceCheck validate_chrome_trace(std::string_view text) {
  TraceCheck out;
  json::Value root;
  std::string perr;
  if (!json::parse(text, root, &perr)) {
    out.error = "JSON parse error: " + perr;
    return out;
  }
  if (root.kind != json::Value::Kind::kObject) {
    out.error = "top level is not an object";
    return out;
  }
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || events->kind != json::Value::Kind::kArray) {
    out.error = "missing traceEvents array";
    return out;
  }

  struct Span {
    double ts;
    double end;
  };
  std::map<std::pair<int, int>, std::vector<Span>> stacks;
  std::map<std::pair<int, int>, double> last_ts;

  // Async lanes: one per (pid, cat, id). `open` is the stack of unclosed
  // begins; `closed` flips when the outermost span ends, after which the
  // lane must stay silent.
  struct AsyncOpen {
    std::string name;
    double ts;
  };
  struct AsyncLane {
    std::vector<AsyncOpen> open;
    bool closed = false;
  };
  std::map<std::tuple<int, std::string, std::string>, AsyncLane> lanes;

  // Sampled-telemetry counters (cat "sample") are checked against the
  // run's span — the extent of every timestamped non-sample event — after
  // the pass, since samples may precede the events they summarise in
  // file order.
  double run_min = 0.0;
  double run_max = 0.0;
  bool have_run = false;
  std::vector<std::pair<std::size_t, double>> sample_events;
  const auto note_run = [&](double lo, double hi) {
    run_min = have_run ? std::min(run_min, lo) : lo;
    run_max = have_run ? std::max(run_max, hi) : hi;
    have_run = true;
  };

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = events->array[i];
    if (e.kind != json::Value::Kind::kObject) {
      out.error = event_err(i, "not an object");
      return out;
    }
    const json::Value* name = e.find("name");
    const json::Value* ph = e.find("ph");
    const json::Value* pid = e.find("pid");
    const json::Value* tid = e.find("tid");
    if (name == nullptr || name->kind != json::Value::Kind::kString ||
        ph == nullptr || ph->kind != json::Value::Kind::kString ||
        pid == nullptr || pid->kind != json::Value::Kind::kNumber ||
        tid == nullptr || tid->kind != json::Value::Kind::kNumber) {
      out.error = event_err(i, "missing name/ph/pid/tid");
      return out;
    }
    ++out.events;
    if (ph->string == "M") continue;  // metadata carries no timestamps
    if (ph->string != "X" && ph->string != "i" && ph->string != "C" &&
        ph->string != "b" && ph->string != "n" && ph->string != "e") {
      out.error = event_err(i, "unexpected phase '" + ph->string + "'");
      return out;
    }
    const json::Value* ts = e.find("ts");
    if (ph->string == "b" || ph->string == "n" || ph->string == "e") {
      if (ts == nullptr || ts->kind != json::Value::Kind::kNumber) {
        out.error = event_err(i, "async event missing numeric ts");
        return out;
      }
      if (e.find("dur") != nullptr) {
        out.error = event_err(i, "async event carries a dur");
        return out;
      }
      const json::Value* cat = e.find("cat");
      if (cat == nullptr || cat->kind != json::Value::Kind::kString ||
          cat->string.empty()) {
        out.error = event_err(i, "async event missing cat");
        return out;
      }
      const json::Value* id = e.find("id");
      std::string lane_id;
      if (id != nullptr && id->kind == json::Value::Kind::kString) {
        lane_id = id->string;
      } else if (id != nullptr && id->kind == json::Value::Kind::kNumber) {
        lane_id = util::json_number(id->number);
      } else {
        out.error = event_err(i, "async event missing id");
        return out;
      }
      ++out.asyncs;
      note_run(ts->number, ts->number);
      AsyncLane& lane = lanes[{static_cast<int>(pid->number), cat->string,
                               lane_id}];
      if (lane.closed) {
        out.error = event_err(
            i, "async event '" + name->string +
                   "' after its lane's outermost span closed (id " +
                   lane_id + ")");
        return out;
      }
      if (ph->string == "b") {
        lane.open.push_back({name->string, ts->number});
      } else if (ph->string == "n") {
        if (lane.open.empty()) {
          out.error = event_err(i, "async instant '" + name->string +
                                       "' outside any open span");
          return out;
        }
        if (ts->number + kEps < lane.open.back().ts) {
          out.error = event_err(i, "async instant '" + name->string +
                                       "' precedes its enclosing span");
          return out;
        }
      } else {  // "e"
        if (lane.open.empty()) {
          out.error = event_err(
              i, "async end '" + name->string + "' without a begin");
          return out;
        }
        if (lane.open.back().name != name->string) {
          out.error = event_err(
              i, "async end '" + name->string + "' does not match open '" +
                     lane.open.back().name + "' (phases must nest in their "
                     "lane)");
          return out;
        }
        if (ts->number + kEps < lane.open.back().ts) {
          out.error = event_err(
              i, "async span '" + name->string + "' ends before it begins");
          return out;
        }
        lane.open.pop_back();
        if (lane.open.empty()) lane.closed = true;
      }
      continue;
    }
    if (ph->string == "C") {
      if (ts == nullptr || ts->kind != json::Value::Kind::kNumber) {
        out.error = event_err(i, "counter missing numeric ts");
        return out;
      }
      if (e.find("dur") != nullptr) {
        out.error = event_err(i, "counter carries a dur");
        return out;
      }
      const json::Value* cargs = e.find("args");
      if (cargs == nullptr || cargs->kind != json::Value::Kind::kObject ||
          cargs->object.empty()) {
        out.error = event_err(i, "counter missing args object");
        return out;
      }
      for (const auto& [k, v] : cargs->object) {
        if (v.kind != json::Value::Kind::kNumber) {
          out.error =
              event_err(i, "counter series '" + k + "' is not numeric");
          return out;
        }
      }
      ++out.counters;
      const json::Value* ccat = e.find("cat");
      if (ccat != nullptr && ccat->kind == json::Value::Kind::kString &&
          ccat->string == "sample") {
        ++out.samples;
        sample_events.emplace_back(i, ts->number);
      } else {
        note_run(ts->number, ts->number);
      }
      const std::pair<int, int> track{static_cast<int>(pid->number),
                                      static_cast<int>(tid->number)};
      const auto [it, fresh] = last_ts.emplace(track, ts->number);
      if (!fresh) {
        if (ts->number + kEps < it->second) {
          out.error = event_err(
              i, "counter precedes its track's previous event ('" +
                     name->string + "')");
          return out;
        }
        it->second = std::max(it->second, ts->number);
      }
      continue;
    }
    if (ph->string == "i") {
      if (ts == nullptr || ts->kind != json::Value::Kind::kNumber) {
        out.error = event_err(i, "instant missing numeric ts");
        return out;
      }
      if (e.find("dur") != nullptr) {
        out.error = event_err(i, "instant carries a dur");
        return out;
      }
      ++out.instants;
      note_run(ts->number, ts->number);
      const std::pair<int, int> track{static_cast<int>(pid->number),
                                      static_cast<int>(tid->number)};
      const auto [it, fresh] = last_ts.emplace(track, ts->number);
      if (!fresh) {
        if (ts->number + kEps < it->second) {
          out.error = event_err(
              i, "instant precedes its track's previous event ('" +
                     name->string + "')");
          return out;
        }
        it->second = std::max(it->second, ts->number);
      }
      continue;
    }
    const json::Value* dur = e.find("dur");
    if (ts == nullptr || ts->kind != json::Value::Kind::kNumber ||
        dur == nullptr || dur->kind != json::Value::Kind::kNumber) {
      out.error = event_err(i, "X event missing numeric ts/dur");
      return out;
    }
    if (dur->number < 0.0) {
      out.error = event_err(i, "negative dur");
      return out;
    }
    ++out.spans;

    // Stall breakdowns ride on span args: the per-reason `stall_*` cycles
    // must never exceed the span's `charged_cycles` total (the simulator
    // partitions the charge exactly; exceeding it means a corrupt trace).
    // Slack covers only %.12g printing of the cycle values.
    const json::Value* args = e.find("args");
    if (args != nullptr && args->kind == json::Value::Kind::kObject) {
      const json::Value* charged = args->find("charged_cycles");
      if (charged != nullptr &&
          charged->kind == json::Value::Kind::kNumber) {
        double stall_sum = 0.0;
        for (const auto& [k, v] : args->object) {
          if (k.rfind("stall_", 0) == 0 &&
              v.kind == json::Value::Kind::kNumber) {
            stall_sum += v.number;
          }
        }
        if (stall_sum > charged->number * (1.0 + 1e-9) + kEps) {
          out.error = event_err(
              i, "span '" + name->string +
                     "' stall cycles exceed charged_cycles");
          return out;
        }
      }
    }

    const std::pair<int, int> track{static_cast<int>(pid->number),
                                    static_cast<int>(tid->number)};
    const double start = ts->number;
    const double end = start + dur->number;
    note_run(start, end);
    const auto [it, fresh] = last_ts.emplace(track, start);
    if (!fresh) {
      if (start + kEps < it->second) {
        out.error = event_err(
            i, "span starts before its track's previous span ('" +
                   name->string + "')");
        return out;
      }
      it->second = std::max(it->second, start);
    }
    auto& stack = stacks[track];
    while (!stack.empty() && stack.back().end <= start + kEps)
      stack.pop_back();
    if (!stack.empty() && end > stack.back().end + kEps) {
      out.error = event_err(
          i, "span '" + name->string + "' overlaps the end of its parent");
      return out;
    }
    stack.push_back({start, end});
  }
  for (const auto& [i, sts] : sample_events) {
    if (!have_run) {
      out.error =
          event_err(i, "sampled counter in a trace with no run events");
      return out;
    }
    if (sts + kEps < run_min || sts > run_max + kEps) {
      out.error =
          event_err(i, "sampled counter outside its run's span");
      return out;
    }
  }
  for (const auto& [key, lane] : lanes) {
    if (!lane.open.empty()) {
      out.error = "async span '" + lane.open.back().name +
                  "' (lane id " + std::get<2>(key) + ") never ends";
      return out;
    }
  }
  out.tracks = last_ts.size();
  out.lanes = lanes.size();
  out.ok = true;
  return out;
}

}  // namespace cusw::obs
