// Simulated-time telemetry sampling (DESIGN.md §13).
//
// The metrics registry answers "what did the whole run do"; traces answer
// "what happened when" at full event resolution. The sampler sits between
// the two: it buckets run activity into fixed intervals of *simulated*
// time (CUSW_SAMPLE_EVERY=<ms>) and keeps ring-buffered series of derived
// rates per interval — GCUPS and per-reason stall fractions for every
// simulated device, queue depth / goodput / GCUPS / SLO burn rates for
// the serve layer. The series land in run capsules (obs/capsule.h) and,
// when a trace is being recorded, as Chrome-trace counter tracks on a
// dedicated "telemetry (sampled)" process.
//
// Determinism contract: sample points are simulated-time events derived
// from launch aggregates that are themselves bit-identical for any
// CUSW_THREADS and for memo replay vs simulation (DESIGN.md §12); they
// are recorded from the simulator's serial post-pass in launch order, and
// every container below iterates in sorted key order — so the serialized
// series are byte-identical across host thread counts and memo states.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace cusw::obs {

class TraceWriter;

/// Trace process id of the sampled-telemetry counter tracks (between the
/// serve layer at 50 and the first simulated device at 100).
inline constexpr int kSamplerPid = 60;

/// One sample: derived channel values at the end of one interval.
struct SamplePoint {
  double t_ms = 0.0;  // simulated ms; the interval's end (clamped to data)
  /// channel name -> value, in sorted channel order.
  std::vector<std::pair<std::string, double>> values;
};

/// One named time series, points in increasing simulated time.
struct SampleSeries {
  std::string name;
  std::vector<SamplePoint> points;
  /// Intervals evicted by the ring bound (oldest first) — nonzero means
  /// the series shows only the tail of the run.
  std::uint64_t dropped = 0;
};

/// Process-global periodic sampler on the simulated clock. Disabled (and
/// costing one atomic-free null check per launch) until configure() or
/// CUSW_SAMPLE_EVERY arms it.
class Sampler {
 public:
  static Sampler& global();

  /// The global sampler when armed, nullptr otherwise — instrumentation
  /// sites guard on this so the disabled path stays free.
  static Sampler* active();

  /// Arm the sampler: bucket activity into `every_ms` intervals of
  /// simulated time, keeping at most `capacity` intervals per series
  /// (oldest evicted first). Throws on every_ms <= 0 or capacity == 0.
  void configure(double every_ms, std::size_t capacity = 4096);
  /// Disarm and drop all recorded series.
  void disable();
  /// Drop recorded series but keep the configuration.
  void clear();
  /// Read CUSW_SAMPLE_EVERY=<simulated ms> once and arm the sampler.
  static void ensure_env();

  double every_ms() const;
  std::size_t capacity() const;

  /// Record one finished device launch: `cells` cell updates and the
  /// per-reason stall ticks, spread uniformly over the intervals the
  /// launch [t0_ms, t0_ms + dur_ms) overlaps. Called from the simulator's
  /// serial post-pass; launches on one device arrive in cursor order.
  void record_launch(
      const std::string& device, double t0_ms, double dur_ms,
      std::uint64_t cells,
      const std::vector<std::pair<std::string, std::uint64_t>>& stall_ticks,
      std::uint64_t charged_ticks);

  /// Record one pre-aggregated sample point (the serve layer's per-window
  /// telemetry). Points of one series must arrive in non-decreasing t_ms;
  /// concurrent runs sharing a process must use distinct series names
  /// (the serve layer keys by its trace category).
  void record_point(const std::string& series, double t_ms,
                    const std::vector<std::pair<std::string, double>>& values);

  /// Assemble every series, sorted by name, points in time order, channel
  /// values sorted by channel. Launch series are named `gpusim.<device>`
  /// with channels `gcups` and `stall_frac.<reason>`.
  std::vector<SampleSeries> series() const;

  /// The capsule "series" section: {"every_ms": ..., "capacity": ...,
  /// "series": [{"name", "dropped", "points": [{"t_ms", "values"}]}]}.
  /// Deterministic (sorted, %.12g numbers); {"every_ms": 0, ...} with an
  /// empty series list when the sampler is disarmed.
  std::string to_json() const;

  /// Emit every series as Chrome-trace "C" events (cat "sample") on
  /// kSamplerPid, one tid per series. No-op when disarmed or empty.
  void render_trace(TraceWriter& tw) const;

 private:
  Sampler() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace cusw::obs
