#include "obs/capsule.h"

#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "cusw_version.h"
#include "obs/counters.h"
#include "obs/sampler.h"
#include "obs/trace_check.h"
#include "obs/whatif.h"
#include "util/env.h"
#include "util/json.h"
#include "util/parallel.h"

namespace cusw::obs {

namespace {

std::mutex& sections_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, std::string>& sections() {
  static std::map<std::string, std::string> s;
  return s;
}

/// The per-kernel counter tree of one KernelCounters entry. Stall and
/// space values stay raw integers (ticks / counts) so two capsules of the
/// same run compare bit-for-bit and perf_explain's attribution sums are
/// exact.
std::string kernel_to_json(const KernelCounters& k) {
  util::JsonFields f;
  f.field("label", k.label)
      .field("launches", k.launches)
      .field("blocks", k.blocks)
      .field("windows", k.windows)
      .field("syncs", k.syncs)
      .field("cells", k.cells)
      .field("shared_accesses", k.shared_accesses)
      .field("bank_conflict_cycles", k.bank_conflict_cycles)
      .field("seconds", k.seconds)
      .field("gcups", k.seconds > 0.0
                          ? static_cast<double>(k.cells) / k.seconds / 1e9
                          : 0.0)
      .field("total_block_cycles", k.total_block_cycles);
  util::JsonFields stall;
  for (const auto& [reason, ticks] : k.stall) stall.field(reason, ticks);
  f.raw("stall_ticks", stall.object());
  util::JsonFields spaces;
  for (const auto& [space, fields] : k.spaces) {
    util::JsonFields sf;
    for (const auto& [field, v] : fields) sf.field(field, v);
    spaces.raw(space, sf.object());
  }
  f.raw("spaces", spaces.object());
  std::string sites = "[";
  bool first = true;
  for (const auto& [key, fields] : k.sites) {
    util::JsonFields sf;
    sf.field("site", key.first).field("space", key.second);
    util::JsonFields cf;
    for (const auto& [field, v] : fields) cf.field(field, v);
    sf.raw("counters", cf.object());
    sites += std::string(first ? "" : ", ") + sf.object();
    first = false;
  }
  sites += "]";
  f.raw("sites", sites);
  return f.object();
}

}  // namespace

void capsule_note_section(const std::string& name, std::string json) {
  std::lock_guard<std::mutex> lk(sections_mu());
  sections()[name] = std::move(json);
}

void capsule_clear_sections() {
  std::lock_guard<std::mutex> lk(sections_mu());
  sections().clear();
}

void capsule_init() {
  std::lock_guard<std::mutex> lk(sections_mu());
  (void)sections();
}

std::string capsule_to_json(const Snapshot& snap, const std::string& run) {
  util::JsonFields prov;
  prov.field("git_sha", std::string_view(CUSW_GIT_SHA))
      .field("threads", static_cast<std::uint64_t>(util::parallelism()))
      .field("memo", std::string_view(
                         util::env_enabled("CUSW_SIM_MEMO", true) ? "on"
                                                                  : "off"))
      .field("sample_every_ms", Sampler::global().every_ms());
  // A capsule captured under an active what-if plan is a counterfactual,
  // not a measurement — stamp the plan so no tool compares it against a
  // real baseline by accident. Malformed CUSW_WHATIF is recorded rather
  // than thrown: provenance is best-effort at process exit.
  try {
    if (const whatif::Plan* plan = whatif::active_plan(); plan != nullptr)
      prov.field("whatif", std::string_view(plan->spec));
  } catch (const std::exception&) {
    prov.field("whatif", std::string_view("<invalid CUSW_WHATIF>"));
  }

  std::ostringstream os;
  os << "{\n  \"capsule_version\": " << kCapsuleVersion << ",\n";
  os << "  \"run\": \"" << util::json_escape(run) << "\",\n";
  os << "  \"provenance\": " << prov.object() << ",\n";

  os << "  \"kernels\": [";
  bool first = true;
  for (const KernelCounters& k : collect_kernel_counters(snap)) {
    // A diff snapshot carries zeroed entries for kernels that ran before
    // the window but not inside it; a capsule records only what ran.
    const auto charged = k.stall.find("charged");
    if (k.launches == 0 &&
        (charged == k.stall.end() || charged->second == 0)) {
      continue;
    }
    os << (first ? "\n   " : ",\n   ") << kernel_to_json(k);
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n";

  os << "  \"metrics\": " << snap.to_json() << ",\n";
  os << "  \"series\": " << Sampler::global().to_json() << ",\n";

  util::JsonFields secs;
  {
    std::lock_guard<std::mutex> lk(sections_mu());
    for (const auto& [name, json] : sections()) secs.raw(name, json);
  }
  os << "  \"sections\": " << secs.object() << "\n}\n";
  return os.str();
}

std::string capsule_to_json(const std::string& run) {
  return capsule_to_json(Registry::global().snapshot(), run);
}

bool write_capsule(const std::string& path, const std::string& run) {
  const std::string json = capsule_to_json(run);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

namespace {

CapsuleCheck capsule_fail(std::string what) {
  CapsuleCheck out;
  out.error = std::move(what);
  return out;
}

}  // namespace

CapsuleCheck validate_capsule(std::string_view text) {
  json::Value root;
  std::string perr;
  if (!json::parse(text, root, &perr))
    return capsule_fail("JSON parse error: " + perr);
  if (root.kind != json::Value::Kind::kObject)
    return capsule_fail("top level is not an object");
  const json::Value* version = root.find("capsule_version");
  if (version == nullptr || version->kind != json::Value::Kind::kNumber)
    return capsule_fail("missing numeric capsule_version");
  const json::Value* prov = root.find("provenance");
  if (prov == nullptr || prov->kind != json::Value::Kind::kObject)
    return capsule_fail("missing provenance object");

  CapsuleCheck out;
  if (const json::Value* kernels = root.find("kernels")) {
    if (kernels->kind != json::Value::Kind::kArray)
      return capsule_fail("kernels is not an array");
    for (const json::Value& k : kernels->array) {
      const json::Value* label =
          k.kind == json::Value::Kind::kObject ? k.find("label") : nullptr;
      if (label == nullptr || label->kind != json::Value::Kind::kString)
        return capsule_fail("kernel entry missing string label");
      ++out.kernels;
    }
  }
  if (const json::Value* series = root.find("series")) {
    if (series->kind != json::Value::Kind::kObject)
      return capsule_fail("series is not an object");
    const json::Value* list = series->find("series");
    if (list == nullptr || list->kind != json::Value::Kind::kArray)
      return capsule_fail("series section missing its series array");
    for (const json::Value& s : list->array) {
      const json::Value* name =
          s.kind == json::Value::Kind::kObject ? s.find("name") : nullptr;
      if (name == nullptr || name->kind != json::Value::Kind::kString)
        return capsule_fail("time series missing string name");
      const json::Value* points = s.find("points");
      if (points == nullptr || points->kind != json::Value::Kind::kArray)
        return capsule_fail("time series '" + name->string +
                            "' missing points array");
      double last_ms = 0.0;
      bool have_last = false;
      for (const json::Value& p : points->array) {
        const json::Value* t =
            p.kind == json::Value::Kind::kObject ? p.find("t_ms") : nullptr;
        if (t == nullptr || t->kind != json::Value::Kind::kNumber)
          return capsule_fail("sample point of '" + name->string +
                              "' missing numeric t_ms");
        if (have_last && t->number < last_ms) {
          return capsule_fail("time series '" + name->string +
                              "' timestamps are unordered");
        }
        last_ms = t->number;
        have_last = true;
        const json::Value* values = p.find("values");
        if (values == nullptr ||
            values->kind != json::Value::Kind::kObject)
          return capsule_fail("sample point of '" + name->string +
                              "' missing values object");
        for (const auto& [channel, v] : values->object) {
          if (v.kind != json::Value::Kind::kNumber)
            return capsule_fail("channel '" + channel + "' of '" +
                                name->string + "' is not numeric");
        }
        ++out.points;
      }
      if (const json::Value* dropped = s.find("dropped");
          dropped != nullptr &&
          dropped->kind == json::Value::Kind::kNumber &&
          dropped->number > 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f", dropped->number);
        out.warnings.push_back("time series '" + name->string +
                               "' dropped " + buf +
                               " point(s) to the sampler ring bound");
      }
      ++out.series;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace cusw::obs
