// Chrome-trace schema validation without Python: a minimal JSON parser
// plus the structural checks CI runs on emitted trace files — required
// fields per event, non-negative durations, and per-track monotonic,
// properly nested spans. Tests use it to assert every trace this process
// writes actually loads in chrome://tracing.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cusw::obs::json {

/// A parsed JSON value. Objects keep insertion order (trace validation
/// cares about event order, which maps to array order anyway).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member of an object value with this key, or nullptr.
  const Value* find(std::string_view key) const;
};

/// Parse `text` into `out`. On failure returns false and sets `error` (if
/// non-null) to a message with a byte offset.
bool parse(std::string_view text, Value& out, std::string* error);

}  // namespace cusw::obs::json

namespace cusw::obs {

struct TraceCheck {
  bool ok = false;
  std::string error;          // first violation, empty when ok
  std::size_t events = 0;     // all trace events
  std::size_t spans = 0;      // complete ("X") events
  std::size_t instants = 0;   // instant ("i") events
  std::size_t counters = 0;   // counter ("C") samples
  std::size_t samples = 0;    // sampled-telemetry counters (cat "sample")
  std::size_t asyncs = 0;     // async ("b"/"n"/"e") events
  std::size_t lanes = 0;      // distinct async (pid, cat, id) lanes
  std::size_t tracks = 0;     // distinct (pid, tid) with at least one span
};

/// Validate Chrome trace-event JSON: top-level object with a `traceEvents`
/// array; every event has name/ph/pid/tid; "X" events carry numeric ts and
/// dur >= 0; "i" instants carry a numeric ts (and never a dur); "C"
/// counter samples carry a numeric ts, no dur, and an args object whose
/// values are all numeric (each is one counter series); within each
/// (pid, tid) track, spans are monotonically ordered by start time and
/// properly nested (a span never straddles the end of an enclosing span).
/// Instants and counters obey track monotonicity but do not participate in
/// nesting. A span whose args carry a stall breakdown (`stall_*` keys plus
/// `charged_cycles`) is rejected when the stall sum exceeds the charged
/// total — the simulator's per-window sum invariant, rechecked end to end
/// on the emitted file.
///
/// Async events ("b" begin / "n" instant / "e" end) carry a numeric ts, a
/// non-empty cat and an id (string or number); each (pid, cat, id) triple
/// is one lane (a per-request lane in the serve layer). Within a lane the
/// checker enforces: every "e" matches the most recent unclosed "b" by
/// name (LIFO nesting — phase spans stay confined inside their request
/// span), no span ends before it begins, "n" instants only occur inside
/// an open span, every "b" is closed by the end of the file, and once a
/// lane's outermost span has closed no further events may use that lane.
///
/// Sampled-telemetry counter tracks (cat "sample", emitted by
/// obs::Sampler::render_trace) get one extra rule: every sampled counter
/// must fall inside the span of the run it samples — no earlier than the
/// first timestamped non-sample event and no later than the last one
/// ends. Per-track timestamp monotonicity already applies through the
/// counter rule above (sample points are simulated-time events).
TraceCheck validate_chrome_trace(std::string_view text);

}  // namespace cusw::obs
