// Profiler hooks for the simulator: a callback interface tools attach to
// a Device to see per-window and per-block events (cycles, transactions,
// cache hits, bank conflicts) as they are produced, without the simulator
// paying anything when no observer is attached — the hot-path hook is one
// null-pointer check (see BlockCtx::close_window), never a virtual call.
#pragma once

#include <cstdint>

#include "gpusim/stall.h"

namespace cusw::gpusim {

struct LaunchConfig;
struct LaunchStats;

/// One closed window of one block. Cycle fields are block-local (the
/// block's execution starts at 0); counter fields are this window's deltas
/// of the block's `LaunchStats`.
struct WindowEvent {
  int block_id = 0;
  std::uint64_t window_index = 0;  // 0-based within the block
  double start_cycles = 0.0;       // block-local start of the window
  double cycles = 0.0;             // cost of this window
  bool barrier = false;            // closed by sync() rather than flush()
  std::uint64_t requests = 0;      // pre-coalescing records, all spaces
  std::uint64_t transactions = 0;  // global + local + texture
  std::uint64_t dram_transactions = 0;
  std::uint64_t cache_hits = 0;    // l1 + l2 + texture hits, all spaces
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflict_cycles = 0;
  /// Per-reason decomposition of this window's `cycles` (gpusim/stall.h);
  /// occupancy_idle is always zero at window scope.
  StallBreakdown stall;
};

/// One finished block: its total cost and its private counters (the same
/// values the launch later reduces in block-index order).
struct BlockEvent {
  int block_id = 0;
  double cycles = 0.0;
  const LaunchStats* counters = nullptr;  // valid only during the call
};

/// Observer attached via Device::set_observer(). Callbacks fire on the
/// host worker threads executing the blocks, possibly concurrently —
/// implementations must be thread-safe. Observers see events in block
/// execution order, which is *not* block-index order; reduce on block_id
/// if deterministic aggregation matters.
class LaunchObserver {
 public:
  virtual ~LaunchObserver() = default;

  virtual void on_window(const WindowEvent&) {}
  virtual void on_block(const BlockEvent&) {}
  /// After the launch's ordered reduction, on the launching thread.
  virtual void on_launch(const LaunchConfig&, const LaunchStats&) {}
};

}  // namespace cusw::gpusim
