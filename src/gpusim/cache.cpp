#include "gpusim/cache.h"

namespace cusw::gpusim {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}

Cache::Cache(std::size_t size_bytes, std::size_t line_bytes, int associativity)
    : line_bytes_(line_bytes), ways_(associativity) {
  if (size_bytes == 0) {
    sets_ = 0;
    return;
  }
  CUSW_REQUIRE(is_pow2(line_bytes), "cache line size must be a power of two");
  CUSW_REQUIRE(associativity > 0, "cache associativity must be positive");
  const std::size_t lines = size_bytes / line_bytes;
  CUSW_REQUIRE(lines >= static_cast<std::size_t>(associativity),
               "cache too small for its associativity");
  sets_ = lines / static_cast<std::size_t>(associativity);
  // Round the set count down to a power of two so indexing is a mask.
  while (!is_pow2(sets_)) --sets_;
  lines_.assign(sets_ * static_cast<std::size_t>(ways_), Way{});
}

bool Cache::access(std::uint64_t addr) {
  if (!enabled()) {
    ++misses_;
    return false;
  }
  const std::uint64_t line = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  Way* base = &lines_[set * static_cast<std::size_t>(ways_)];
  ++tick_;
  Way* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = tick_;
  ++misses_;
  return false;
}

void Cache::invalidate(std::uint64_t addr) {
  if (!enabled()) return;
  const std::uint64_t line = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  Way* base = &lines_[set * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line) {
      base[w].valid = false;
      return;
    }
  }
}

void Cache::clear() {
  for (auto& w : lines_) w = Way{};
}

std::size_t Cache::translation_span(std::size_t size_bytes,
                                    std::size_t line_bytes,
                                    int associativity) {
  // Mirrors the constructor's geometry: sets rounded down to a power of
  // two. Shifting addresses by line_bytes * sets adds a multiple of the
  // set count to every line number (set index preserved, pow2 mask) and
  // shifts every tag by the same amount (tag equalities preserved), so
  // the whole LRU state machine replays identically.
  if (size_bytes == 0) return 0;
  std::size_t sets = size_bytes / line_bytes /
                     static_cast<std::size_t>(associativity);
  if (sets == 0) return 0;
  while (!is_pow2(sets)) --sets;
  return line_bytes * sets;
}

}  // namespace cusw::gpusim
