#include "gpusim/launch.h"

#include "gpusim/fault.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <queue>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/whatif.h"
#include "util/check.h"
#include "util/env.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace cusw::gpusim {

namespace {

// Local-memory arena: a distinct address region so local traffic never
// aliases real buffers in the caches.
constexpr std::uint64_t kLocalArenaBase = std::uint64_t{1} << 40;

// Transaction size classes, as on GT200: 32, 64 or 128 bytes depending on
// how much of the segment the warp actually covers.
std::uint32_t size_class(std::uint32_t covered) {
  if (covered <= 32) return 32;
  if (covered <= 64) return 64;
  return 128;
}

// Cycles -> stall ticks, rounded to nearest (gpusim/stall.h fixed point).
std::uint64_t to_ticks(double cycles) {
  return cycles <= 0.0
             ? 0
             : static_cast<std::uint64_t>(std::llround(
                   cycles * static_cast<double>(kStallTicksPerCycle)));
}

// CUSW_SIM_MEMO gate: block memoization defaults to on; "off", "0" or
// "false" disable it. Read per launch (not cached) so tests and tools can
// flip it with setenv between launches.
bool memo_env_enabled() { return util::env_enabled("CUSW_SIM_MEMO", true); }

// Resolve the active what-if plan (obs/whatif.h, DESIGN.md §14) against
// this launch: kernel:<label> factors fold into every per-reason
// multiplier, site targets are interned, factor-1.0 targets are dropped
// outright (they are exact no-ops by definition, and dropping them keeps
// an all-ones plan on the unscaled code path byte for byte). Returns
// nullptr when nothing in the plan can affect this launch, so such
// launches also keep their unsalted memo keys and share entries with
// plan-free runs.
std::unique_ptr<WhatIfResolved> resolve_whatif(const obs::whatif::Plan* plan,
                                               const char* label) {
  if (plan == nullptr) return nullptr;
  auto r = std::make_unique<WhatIfResolved>();
  bool effective = false;
  for (const obs::whatif::Target& t : plan->targets) {
    if (t.factor == 1.0) continue;
    switch (t.kind) {
      case obs::whatif::Target::Kind::kKernel:
        if (t.name == label) {
          r->compute *= t.factor;
          r->mem_issue *= t.factor;
          r->txn_issue *= t.factor;
          r->exposed_latency *= t.factor;
          r->sync *= t.factor;
          r->bank_conflict *= t.factor;
          r->occupancy_idle *= t.factor;
          effective = true;
        }
        break;
      case obs::whatif::Target::Kind::kStall:
        // Names were validated against the reason list at parse time.
        if (t.name == "compute") r->compute *= t.factor;
        else if (t.name == "mem_issue") r->mem_issue *= t.factor;
        else if (t.name == "txn_issue") r->txn_issue *= t.factor;
        else if (t.name == "exposed_latency") r->exposed_latency *= t.factor;
        else if (t.name == "sync") r->sync *= t.factor;
        else if (t.name == "bank_conflict") r->bank_conflict *= t.factor;
        else if (t.name == "occupancy_idle") r->occupancy_idle *= t.factor;
        effective = true;
        break;
      case obs::whatif::Target::Kind::kSite: {
        int space = -1;
        if (t.space == "global") space = static_cast<int>(Space::Global);
        else if (t.space == "local") space = static_cast<int>(Space::Local);
        else if (t.space == "texture") space = static_cast<int>(Space::Texture);
        r->sites.push_back(
            WhatIfResolved::SiteFactor{intern_site(t.name), space, t.factor});
        effective = true;
        break;
      }
      case obs::whatif::Target::Kind::kParam:
        if (t.name == "dram_latency") r->dram_latency *= t.factor;
        else if (t.name == "l1_latency") r->l1_latency *= t.factor;
        else if (t.name == "l2_latency") r->l2_latency *= t.factor;
        else if (t.name == "tex_hit_latency") r->tex_hit_latency *= t.factor;
        effective = true;
        break;
    }
  }
  if (!effective) return nullptr;
  return r;
}

// Scale an integer latency parameter; identity factors never round.
int scale_latency(int latency, double factor) {
  if (factor == 1.0) return latency;
  return static_cast<int>(
      std::llround(factor * static_cast<double>(latency)));
}

// Fold one block's counters into the launch total. Only the fields a
// BlockCtx mutates are added here; occupancy, block counts and the
// scheduling-derived cycle figures belong to the launch, not to blocks.
void add_block_counters(LaunchStats& into, const LaunchStats& block) {
  into.global += block.global;
  into.local += block.local;
  into.texture += block.texture;
  for (const SiteCounters& sc : block.sites)
    into.site_counters(sc.site, sc.space) += sc.counters;
  into.stall += block.stall;
  into.whatif_removed_ticks += block.whatif_removed_ticks;
  into.shared_accesses += block.shared_accesses;
  into.bank_conflict_cycles += block.bank_conflict_cycles;
  into.syncs += block.syncs;
  into.windows += block.windows;
}

// Mirror one SpaceCounters into the registry. Iterates the canonical field
// visitor so a field added to the struct is published (and, through the
// same visitor, tested) without touching this file.
void publish_space(obs::Registry& reg, const std::string& prefix,
                   const SpaceCounters& c) {
  for_each_space_counter_field(c, [&](const char* field, std::uint64_t v) {
    reg.counter(prefix + field).add(v);
  });
}

// Mirror a finished launch into the metrics registry: per-kernel counters
// under gpusim.kernel.<label>.* (every LaunchStats field, so registry
// snapshots diff bit-for-bit against the structs) plus the device-wide
// aggregates. Once per launch — never on the per-window path.
void publish_launch_metrics(const LaunchConfig& cfg, const LaunchStats& s) {
  auto& reg = obs::Registry::global();
  const std::string p = std::string("gpusim.kernel.") + cfg.label + ".";
  reg.counter(p + "launches").inc();
  reg.counter(p + "blocks").add(static_cast<std::uint64_t>(s.blocks));
  reg.counter(p + "windows").add(s.windows);
  reg.counter(p + "syncs").add(s.syncs);
  reg.counter(p + "cells").add(cfg.cells);
  reg.counter(p + "shared.accesses").add(s.shared_accesses);
  reg.counter(p + "shared.bank_conflict_cycles").add(s.bank_conflict_cycles);
  // Stall attribution in raw ticks: integer counters, so registry
  // snapshots diff bit-for-bit against LaunchStats::stall.
  for_each_stall_reason(s.stall, [&](const char* reason, std::uint64_t v) {
    reg.counter(p + "stall." + reason).add(v);
  });
  reg.counter(p + "stall.charged").add(s.stall.charged);
  publish_space(reg, p + "global.", s.global);
  publish_space(reg, p + "local.", s.local);
  publish_space(reg, p + "texture.", s.texture);
  // Per-site attribution rows under <label>.site.<site>.<space>.* — the
  // same field set as the space totals, to which they sum exactly.
  for (const SiteCounters& sc : s.sites) {
    publish_space(reg, p + "site." + site_name(sc.site) + "." +
                           space_name(sc.space) + ".",
                  sc.counters);
  }
  reg.gauge(p + "seconds").add(s.seconds);
  reg.gauge(p + "makespan_cycles").add(s.makespan_cycles);
  reg.gauge(p + "total_block_cycles").add(s.total_block_cycles);
  reg.counter(p + "total_block_ticks").add(s.total_block_ticks);
  // Net ticks a what-if plan removed — published only when a plan
  // actually changed something, so plan-free registries are unchanged.
  if (s.whatif_removed_ticks != 0) {
    reg.gauge(p + "whatif.removed_ticks")
        .add(static_cast<double>(s.whatif_removed_ticks));
  }

  reg.counter("gpusim.launch.count").inc();
  reg.gauge("gpusim.launch.seconds").add(s.seconds);
  reg.histogram("gpusim.launch.occupancy", {0.25, 0.5, 0.75, 1.0})
      .observe(s.occupancy.occupancy);
  reg.counter("gpusim.global.transactions").add(s.global.transactions);
  reg.counter("gpusim.local.transactions").add(s.local.transactions);
  reg.counter("gpusim.texture.transactions").add(s.texture.transactions);
  reg.counter("gpusim.global_memory.transactions")
      .add(s.global_memory_transactions());
  reg.counter("gpusim.shared.accesses").add(s.shared_accesses);
}

// When tracing, windows are buffered per block (each block runs on exactly
// one worker, so slots are written race-free) and replayed onto the
// device timeline once the scheduler has placed the blocks. Forwards to
// the user's observer so tracing and external tools compose.
class TraceCollector final : public LaunchObserver {
 public:
  TraceCollector(int blocks, LaunchObserver* user)
      : windows_(static_cast<std::size_t>(blocks)), user_(user) {}

  void on_window(const WindowEvent& e) override {
    windows_[static_cast<std::size_t>(e.block_id)].push_back(e);
    if (user_ != nullptr) user_->on_window(e);
  }
  void on_block(const BlockEvent& e) override {
    if (user_ != nullptr) user_->on_block(e);
  }
  void on_launch(const LaunchConfig& cfg, const LaunchStats& s) override {
    if (user_ != nullptr) user_->on_launch(cfg, s);
  }

  const std::vector<WindowEvent>& windows(int block) const {
    return windows_[static_cast<std::size_t>(block)];
  }

 private:
  std::vector<std::vector<WindowEvent>> windows_;
  LaunchObserver* user_;
};

int next_device_trace_pid() {
  static std::atomic<int> next{obs::kFirstDevicePid};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Append a stall breakdown to trace-event args: the charged total plus
// one `stall_<reason>` entry per nonzero reason, in simulated cycles. The
// validator (obs/trace_check) rechecks the sum invariant on every span.
void stall_args(util::JsonFields& f, const StallBreakdown& st) {
  f.field("charged_cycles", stall_ticks_to_cycles(st.charged));
  for_each_stall_reason(st, [&](const char* reason, std::uint64_t v) {
    if (v != 0)
      f.field(std::string("stall_") + reason, stall_ticks_to_cycles(v));
  });
}

// Replay one finished launch onto the device's simulated timeline starting
// at `t0` µs: the launch span on track 0, each block on its SM-slot track
// (tid = slot + 1), windows nested inside their block span. Timestamps are
// simulated microseconds (cycles / clock), not wall-clock. Counter tracks
// ("C" events) render the device's GCUPS and stall-fraction timelines: a
// sample at launch start holds the launch's level, a zero sample at launch
// end drops it, so serial launches draw as a step chart.
void emit_device_trace(obs::TraceWriter& tw, int pid, double t0,
                       const LaunchConfig& cfg, const DeviceSpec& eff,
                       const LaunchStats& stats,
                       const std::vector<double>& block_cycles,
                       const std::vector<int>& block_slot,
                       const std::vector<double>& block_start,
                       const std::vector<LaunchStats>& block_stats,
                       const std::vector<std::uint8_t>& replayed,
                       const TraceCollector& collector) {
  const double us_per_cycle = 1.0 / (eff.clock_ghz * 1e3);

  obs::TraceEvent launch_ev;
  launch_ev.name = cfg.label;
  launch_ev.cat = "launch";
  launch_ev.pid = pid;
  launch_ev.tid = 0;
  launch_ev.ts_us = t0;
  launch_ev.dur_us = stats.seconds * 1e6;
  {
    util::JsonFields f;
    f.field("blocks", cfg.blocks)
        .field("threads_per_block", cfg.threads_per_block)
        .field("occupancy", stats.occupancy.occupancy);
    stall_args(f, stats.stall);
    launch_ev.args_json = f.list();
  }
  const double launch_end_us = t0 + launch_ev.dur_us;
  tw.span(std::move(launch_ev));

  // GCUPS counter track: this launch's simulated throughput while it runs.
  const auto emit_counter = [&](const char* name, double ts,
                                const std::string& args) {
    obs::TraceEvent c;
    c.name = name;
    c.cat = "counter";
    c.pid = pid;
    c.tid = 0;
    c.ts_us = ts;
    c.args_json = args;
    tw.counter(std::move(c));
  };
  const double gcups =
      cfg.cells != 0 && stats.seconds > 0.0
          ? static_cast<double>(cfg.cells) / stats.seconds * 1e-9
          : 0.0;
  emit_counter("GCUPS", t0,
               util::JsonFields().field("gcups", gcups).list());
  emit_counter("GCUPS", launch_end_us,
               util::JsonFields().field("gcups", 0.0).list());

  // Stall-fraction counter track: share of the launch's charged cycles per
  // reason (sums to 1 while a launch runs — a stacked chart in Perfetto).
  if (stats.stall.charged > 0) {
    const double charged = static_cast<double>(stats.stall.charged);
    util::JsonFields lvl, zero;
    for_each_stall_reason(stats.stall,
                          [&](const char* reason, std::uint64_t v) {
                            lvl.field(reason, static_cast<double>(v) / charged);
                            zero.field(reason, 0.0);
                          });
    emit_counter("stall fraction", t0, lvl.list());
    emit_counter("stall fraction", launch_end_us, zero.list());
  }

  const double blocks_t0 = t0 + eff.launch_overhead_us;
  for (int b = 0; b < static_cast<int>(block_cycles.size()); ++b) {
    const auto bi = static_cast<std::size_t>(b);
    const int slot = block_slot[bi];
    tw.name_track(pid, slot + 1, "SM slot " + std::to_string(slot));
    const double block_ts = blocks_t0 + block_start[bi] * us_per_cycle;

    obs::TraceEvent be;
    be.name = std::string(cfg.label) + " block " + std::to_string(b);
    be.cat = "block";
    be.pid = pid;
    be.tid = slot + 1;
    be.ts_us = block_ts;
    be.dur_us = block_cycles[bi] * us_per_cycle;
    tw.span(std::move(be));

    if (replayed[bi]) {
      // Memoized block: no per-window events were recorded (the kernel
      // body never ran); one replay span carries the cached block-level
      // totals instead, with the same sum-to-charged stall contract the
      // validator enforces on window spans.
      const LaunchStats& bs = block_stats[bi];
      obs::TraceEvent we;
      we.name = "memo replay";
      we.cat = "window";
      we.pid = pid;
      we.tid = slot + 1;
      we.ts_us = block_ts;
      we.dur_us = block_cycles[bi] * us_per_cycle;
      util::JsonFields wf;
      wf.field("requests", bs.global.requests + bs.local.requests +
                               bs.texture.requests)
          .field("transactions", bs.global.transactions +
                                     bs.local.transactions +
                                     bs.texture.transactions)
          .field("windows", bs.windows);
      stall_args(wf, bs.stall);
      we.args_json = wf.list();
      tw.span(std::move(we));
      continue;
    }

    for (const WindowEvent& w : collector.windows(b)) {
      obs::TraceEvent we;
      we.name = w.barrier ? "window (sync)" : "window";
      we.cat = "window";
      we.pid = pid;
      we.tid = slot + 1;
      we.ts_us = block_ts + w.start_cycles * us_per_cycle;
      we.dur_us = w.cycles * us_per_cycle;
      // `requests` rides along so per-window coalescing efficiency
      // (requests / transactions) is computable straight from the trace.
      util::JsonFields wf;
      wf.field("requests", w.requests)
          .field("transactions", w.transactions)
          .field("dram", w.dram_transactions)
          .field("cache_hits", w.cache_hits)
          .field("shared", w.shared_accesses);
      stall_args(wf, w.stall);
      we.args_json = wf.list();
      tw.span(std::move(we));
    }
  }
}

}  // namespace

BlockCtx::BlockCtx(const DeviceSpec& spec, const CostModel& cost,
                   LaunchStats& stats, Cache& l2, Cache& tex_l2,
                   std::size_t l1_bytes, int block_id, int threads,
                   int resident_per_sm, int concurrent_blocks,
                   LaunchObserver* observer, const WhatIfResolved* whatif)
    : spec_(&spec),
      cost_(&cost),
      stats_(&stats),
      l2_(&l2),
      tex_l2_(&tex_l2),
      l1_(l1_bytes, 128, 4),
      // The texture path serves read-only data (the query profile) that
      // co-resident blocks share rather than compete for, so texture
      // caches keep their full capacity under contention.
      tex_cache_(spec.tex_cache_bytes, 32, 4),
      block_id_(block_id),
      threads_(threads),
      resident_per_sm_(resident_per_sm),
      concurrent_blocks_(concurrent_blocks),
      lane_compute_(static_cast<std::size_t>(threads), 0.0),
      warp_instr_(static_cast<std::size_t>((threads + 31) / 32), 0.0),
      warp_lat_sum_(warp_instr_.size(), 0.0),
      warp_txn_(warp_instr_.size(), 0),
      observer_(observer),
      whatif_(whatif) {}

void BlockCtx::shared_access(int lane, std::uint64_t n) {
  stats_->shared_accesses += n;
  lane_compute_[lane] += static_cast<double>(n) * cost_->cycles_per_shared_access;
  if (lane >= lane_hi_) lane_hi_ = lane + 1;
}

int BlockCtx::bank_conflict_degree(int word_stride) {
  if (word_stride == 0) return 1;  // broadcast: conflict-free
  int a = word_stride < 0 ? -word_stride : word_stride;
  int b = 32;
  while (b != 0) {
    const int t = a % b;
    a = b;
    b = t;
  }
  return a;  // gcd(|stride|, 32)
}

void BlockCtx::shared_access_strided(int lane, std::uint64_t n,
                                     int word_stride) {
  const int degree = bank_conflict_degree(word_stride);
  stats_->shared_accesses += n;
  const double cycles = static_cast<double>(n) * static_cast<double>(degree) *
                        cost_->cycles_per_shared_access;
  lane_compute_[lane] += cycles;
  if (lane >= lane_hi_) lane_hi_ = lane + 1;
  if (degree > 1) {
    stats_->bank_conflict_cycles += static_cast<std::uint64_t>(
        static_cast<double>(n) * static_cast<double>(degree - 1) *
        cost_->cycles_per_shared_access);
  }
}

void BlockCtx::access(Space space, int lane, std::uint64_t addr,
                      std::uint32_t bytes, bool write, SiteId site) {
  mem_pending_ = true;
  records_.push_back(Record{addr, bytes, static_cast<std::uint16_t>(lane / 32),
                            site, space, write});
  warp_instr_[static_cast<std::size_t>(lane / 32)] += 1.0 / 32.0;
}

void BlockCtx::warp_access(Space space, int warp, std::uint64_t addr,
                           std::uint64_t bytes, bool write, SiteId site) {
  mem_pending_ = true;
  warp_instr_[static_cast<std::size_t>(warp)] += 1.0;
  // Split long cooperative runs so a single record never spans more than
  // 1 GiB (records store 32-bit lengths); typical runs are far smaller.
  while (bytes > 0) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bytes, 1u << 30));
    records_.push_back(Record{addr, chunk, static_cast<std::uint16_t>(warp),
                              site, space, write});
    addr += chunk;
    bytes -= chunk;
  }
}

void BlockCtx::local_access(int lane, int array_id, std::uint32_t index,
                            std::uint32_t elem_bytes, bool write,
                            SiteId site) {
  // nvcc interleaves local arrays across threads: element i of thread t
  // lives at base + (i * threads + t) * elem_bytes, so lockstep accesses
  // from a warp are contiguous.
  const std::uint64_t addr =
      kLocalArenaBase +
      (static_cast<std::uint64_t>(array_id) << 24) * elem_bytes +
      (static_cast<std::uint64_t>(index) * static_cast<std::uint64_t>(threads_) +
       static_cast<std::uint64_t>(lane)) *
          elem_bytes;
  mem_pending_ = true;
  records_.push_back(Record{addr, elem_bytes,
                            static_cast<std::uint16_t>(lane / 32), site,
                            Space::Local, write});
}

void BlockCtx::close_window(bool barrier) {
  // ---- compute term -----------------------------------------------------
  const int warp_count = warps();
  const double cores_eff = static_cast<double>(spec_->cores_per_sm) /
                           static_cast<double>(resident_per_sm_);
  double per_warp_max_sum = 0.0;
  if (lane_hi_ > 0) {
    // Lanes above the charge watermark hold 0.0 by invariant, so both the
    // per-warp max scan and the reset stop there.
    const int warp_hi = (lane_hi_ + 31) / 32;
    for (int w = 0; w < warp_hi; ++w) {
      double m = 0.0;
      const int lo = w * 32;
      const int hi = std::min(lane_hi_, lo + 32);
      for (int lane = lo; lane < hi; ++lane)
        m = std::max(m, lane_compute_[lane]);
      per_warp_max_sum += m;
    }
    std::fill(lane_compute_.begin(), lane_compute_.begin() + lane_hi_, 0.0);
    lane_hi_ = 0;
  }
  per_warp_max_sum += uniform_compute_ * warp_count + warp_uniform_sum_;
  uniform_compute_ = 0.0;
  warp_uniform_sum_ = 0.0;
  const double compute_term = per_warp_max_sum * 32.0 / cores_eff;

  // ---- memory stages ------------------------------------------------------
  // Fast-forward: when the window carried no memory records or memory
  // instructions (mem_pending_ unset — proven, not inferred), the
  // coalescer, cache walk and latency chains are exact no-ops on their
  // empty inputs, so they are skipped and the closed-form window cost
  // below sees zero memory terms. Bit-identical to walking the empty
  // structures.
  double bw_term = 0.0;
  double lat_term = 0.0;
  double issue_term = 0.0;
  double max_chain_lat_part = 0.0;
  double max_chain_issue_part = 0.0;
  site_weights_.clear();
  if (mem_pending_) {
    mem_pending_ = false;

  // ---- coalescing: expand records into per-warp 128 B segments -----------
  segs_.clear();
  for (const Record& r : records_) {
    stats_->requests_for(r.space) += 1;
    stats_->site_counters(r.site, r.space).requests += 1;
    const std::uint64_t first = r.addr / 128;
    const std::uint64_t last = (r.addr + r.bytes - 1) / 128;
    for (std::uint64_t s = first; s <= last; ++s) {
      const std::uint64_t seg_lo = s * 128;
      const std::uint64_t seg_hi = seg_lo + 128;
      const std::uint32_t covered = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(r.addr + r.bytes, seg_hi) -
          std::max<std::uint64_t>(r.addr, seg_lo));
      segs_.push_back(SegKey{s, covered,
                             static_cast<std::uint32_t>(segs_.size()), r.warp,
                             r.site, r.space, r.write});
    }
  }
  records_.clear();

  // The site is *not* part of the merge key (two sites touching the same
  // segment in one window still coalesce into one transaction, as on
  // hardware), so the merged transaction is attributed to the site whose
  // record was issued first. The insertion index is the final tiebreaker,
  // which makes the order total and program-order-stable under plain
  // std::sort (std::stable_sort allocates a temp buffer per call — a
  // measurable cost at millions of windows) — deterministic for any host
  // thread count and across runs.
  std::sort(segs_.begin(), segs_.end(), [](const SegKey& a, const SegKey& b) {
    if (a.warp != b.warp) return a.warp < b.warp;
    if (a.space != b.space) return a.space < b.space;
    if (a.write != b.write) return a.write < b.write;
    if (a.seg != b.seg) return a.seg < b.seg;
    return a.seq < b.seq;
  });

  // ---- cache filtering + latency chains ----------------------------------
  // Stall-attribution weights: every transaction contributes its observed
  // latency plus its issue cost to its (site, space) row; the window's
  // memory-reason ticks are later split proportionally over these weights.
  const auto add_weight = [this](SiteId site, Space space, double w) {
    for (SiteWeight& sw : site_weights_) {
      if (sw.site == site && sw.space == space) {
        sw.weight += w;
        return;
      }
    }
    site_weights_.push_back(SiteWeight{site, space, w});
  };
  std::uint64_t window_dram_bytes = 0;
  std::size_t i = 0;
  while (i < segs_.size()) {
    // Merge duplicates of the same (warp, space, write, seg).
    SegKey k = segs_[i];
    std::uint32_t covered = k.bytes;
    std::size_t j = i + 1;
    while (j < segs_.size() && segs_[j].warp == k.warp &&
           segs_[j].space == k.space && segs_[j].write == k.write &&
           segs_[j].seg == k.seg) {
      covered = std::min<std::uint32_t>(128, covered + segs_[j].bytes);
      ++j;
    }
    i = j;
    double& warp_latency = warp_lat_sum_[k.warp];
    std::uint32_t& warp_txn = warp_txn_[k.warp];
    const double lat_before = warp_latency;

    const std::uint32_t txn_bytes = size_class(covered);
    const std::uint64_t addr = k.seg * 128;
    SpaceCounters& ctr = stats_->counters_for(k.space);
    // Attribution row of the owning site: every transaction, hit and DRAM
    // byte below is counted into both the space total and exactly one
    // site, so per-site rows sum to the totals bit for bit.
    SpaceCounters& sctr = stats_->site_counters(k.site, k.space);
    ctr.transactions += 1;
    sctr.transactions += 1;
    warp_txn += 1;

    if (k.space == Space::Texture) {
      if (tex_cache_.access(addr)) {
        ctr.tex_hits += 1;
        sctr.tex_hits += 1;
        warp_latency += spec_->tex_hit_latency;
      } else if (tex_l2_->enabled() && tex_l2_->access(addr)) {
        ctr.l2_hits += 1;
        sctr.l2_hits += 1;
        warp_latency += spec_->l2_latency;
      } else if (spec_->has_l2 && l2_->access(addr)) {
        ctr.l2_hits += 1;
        sctr.l2_hits += 1;
        warp_latency += spec_->l2_latency;
      } else {
        ctr.dram_transactions += 1;
        sctr.dram_transactions += 1;
        ctr.dram_bytes += 32;  // texture line fill
        sctr.dram_bytes += 32;
        window_dram_bytes += 32;
        warp_latency += spec_->dram_latency;
      }
      add_weight(k.site, k.space,
                 warp_latency - lat_before + cost_->txn_issue_cycles);
      continue;
    }

    if (k.write) {
      // Write-through: stores are fire-and-forget (no latency chain) but
      // consume DRAM bandwidth; the line is dropped from L1 and allocated
      // in L2 so subsequent reads hit.
      if (spec_->has_l1) l1_.invalidate(addr);
      if (spec_->has_l2) l2_->access(addr);
      ctr.dram_transactions += 1;
      sctr.dram_transactions += 1;
      ctr.dram_bytes += txn_bytes;
      sctr.dram_bytes += txn_bytes;
      window_dram_bytes += txn_bytes;
      add_weight(k.site, k.space, cost_->txn_issue_cycles);
      continue;
    }

    if (spec_->has_l1 && l1_.access(addr)) {
      ctr.l1_hits += 1;
      sctr.l1_hits += 1;
      warp_latency += spec_->l1_latency;
    } else if (spec_->has_l2 && l2_->access(addr)) {
      ctr.l2_hits += 1;
      sctr.l2_hits += 1;
      warp_latency += spec_->l2_latency;
    } else {
      ctr.dram_transactions += 1;
      sctr.dram_transactions += 1;
      ctr.dram_bytes += txn_bytes;
      sctr.dram_bytes += txn_bytes;
      window_dram_bytes += txn_bytes;
      warp_latency += spec_->dram_latency;
    }
    add_weight(k.site, k.space,
               warp_latency - lat_before + cost_->txn_issue_cycles);
  }
  // Latency chain of the slowest warp: each memory *instruction* stalls the
  // warp for the average observed latency of its transactions, plus the
  // per-transaction issue cost (which is what makes uncoalesced instructions
  // expensive); MLP lets a few stalls overlap. The slowest warp's chain
  // components are kept apart (outer-scope max_chain_*_part) so a
  // latency-bound window can be attributed between exposed latency and
  // issue throughput.
  double max_warp_chain = 0.0;
  double instr_issue_sum = 0.0;
  for (std::size_t w = 0; w < warp_instr_.size(); ++w) {
    const double txns = static_cast<double>(warp_txn_[w]);
    if (txns == 0.0 && warp_instr_[w] == 0.0) continue;
    const double avg_lat = txns > 0.0 ? warp_lat_sum_[w] / txns : 0.0;
    const double lat_part = warp_instr_[w] * avg_lat;
    const double issue_part = txns * cost_->txn_issue_cycles;
    const double chain = lat_part + issue_part;
    if (chain > max_warp_chain) {
      max_warp_chain = chain;
      max_chain_lat_part = lat_part;
      max_chain_issue_part = issue_part;
    }
    instr_issue_sum += warp_instr_[w];
    warp_instr_[w] = 0.0;
    warp_lat_sum_[w] = 0.0;
    warp_txn_[w] = 0;
  }
  // Memory instructions occupy issue slots even when every access hits a
  // cache; fold their issue cost into the compute term.
  issue_term = instr_issue_sum * cost_->mem_issue_cycles * 32.0 / cores_eff;

  const double bw_per_block =
      spec_->bytes_per_cycle() / static_cast<double>(concurrent_blocks_);
  bw_term = static_cast<double>(window_dram_bytes) / bw_per_block;
  lat_term = max_warp_chain / cost_->mlp;
  }  // if (mem_pending_)

  // ---- combine ------------------------------------------------------------
  double window = std::max({compute_term + issue_term, bw_term, lat_term});
  if (barrier) {
    window += cost_->sync_cycles;
    stats_->syncs += 1;
  }
  stats_->windows += 1;

  // ---- stall attribution --------------------------------------------------
  // Partition this window's ticks among the reasons of gpusim/stall.h.
  // Each step takes min(share, remainder) and the final component takes
  // what is left, so the parts sum to total_ticks exactly — in integers,
  // hence bit-identically for any block/thread interleaving.
  //
  // The window's tick count is the *cumulative* block total rounded once,
  // minus what previous windows already charged: the rounding remainder is
  // carried across windows instead of being dropped per window, so a
  // block's charged ticks equal to_ticks(final block cycles) exactly and
  // the launch identity `charged - occupancy_idle == total_block_ticks`
  // holds without tolerance (to_ticks is monotone and window >= 0, so the
  // subtraction never underflows).
  const std::uint64_t cum_ticks = to_ticks(block_cycles_ + window);
  const std::uint64_t total_ticks = cum_ticks - charged_ticks_cum_;
  charged_ticks_cum_ = cum_ticks;
  StallBreakdown ws;
  ws.charged = total_ticks;
  std::uint64_t rem = total_ticks;
  if (barrier) {
    ws.sync = std::min(rem, to_ticks(cost_->sync_cycles));
    rem -= ws.sync;
  }
  const double ci_term = compute_term + issue_term;
  if (ci_term >= bw_term && ci_term >= lat_term) {
    // Compute/issue-bound window: split off the memory-instruction issue
    // slots and the bank-conflict serialisation; the rest is arithmetic.
    ws.mem_issue = std::min(rem, to_ticks(issue_term));
    rem -= ws.mem_issue;
    const double conflict_delta =
        static_cast<double>(stats_->bank_conflict_cycles - conflict_base_) *
        32.0 / cores_eff;
    ws.bank_conflict = std::min(rem, to_ticks(conflict_delta));
    rem -= ws.bank_conflict;
    ws.compute = rem;
  } else if (bw_term >= lat_term) {
    // DRAM-bandwidth-bound: every cycle waits on transaction throughput.
    ws.txn_issue = rem;
  } else {
    // Latency-bound: split the winning warp's chain between the latency
    // MLP failed to hide and the per-transaction issue cost.
    const double denom = max_chain_lat_part + max_chain_issue_part;
    if (denom > 0.0) {
      ws.txn_issue = std::min(
          rem, static_cast<std::uint64_t>(std::llround(
                   static_cast<double>(rem) * max_chain_issue_part / denom)));
    }
    ws.exposed_latency = rem - ws.txn_issue;
  }
  conflict_base_ = stats_->bank_conflict_cycles;

  // ---- what-if virtual speedup: block-scope reasons ----------------------
  // Scale the selected reasons of the *unscaled* partition above
  // (DESIGN.md §14). The memory reasons are scaled here as a group input
  // to the site distribution; a site-targeted plan rescales individual
  // rows below and the three memory reasons are then re-partitioned to
  // the new total with the same min/remainder scheme, so
  // Σ reasons == charged is restored exactly at every factor. Identity
  // factors never reach llround, which is what keeps a factor-1.0 plan
  // byte-identical to no plan.
  if (whatif_ != nullptr) {
    const auto scale = [](std::uint64_t& v, double f) {
      if (f != 1.0 && v != 0) {
        v = static_cast<std::uint64_t>(
            std::llround(f * static_cast<double>(v)));
      }
    };
    scale(ws.compute, whatif_->compute);
    scale(ws.mem_issue, whatif_->mem_issue);
    scale(ws.txn_issue, whatif_->txn_issue);
    scale(ws.exposed_latency, whatif_->exposed_latency);
    scale(ws.sync, whatif_->sync);
    scale(ws.bank_conflict, whatif_->bank_conflict);
  }

  // Distribute the memory-reason ticks over the (site, space) rows whose
  // transactions this window issued, proportional to observed latency +
  // issue weight. Sequential cumulative rounding with a last-row
  // remainder keeps Σ site rows == Σ space totals exact per field. The
  // shares are staged in site_shares_ so a what-if plan can rescale
  // individual rows before they are committed.
  const std::uint64_t mem_ticks = ws.memory_ticks();
  site_shares_.clear();
  if (mem_ticks > 0) {
    double total_weight = 0.0;
    for (const SiteWeight& sw : site_weights_) total_weight += sw.weight;
    if (total_weight <= 0.0) {
      // No transactions observed (statistical-only traffic): keep the
      // invariant by attributing to the unattributed global row.
      site_shares_.push_back(
          SiteShare{kSiteUnattributed, Space::Global, mem_ticks});
    } else {
      std::uint64_t allocated = 0;
      double cum_weight = 0.0;
      for (std::size_t s = 0; s < site_weights_.size(); ++s) {
        const SiteWeight& sw = site_weights_[s];
        cum_weight += sw.weight;
        std::uint64_t target =
            s + 1 == site_weights_.size()
                ? mem_ticks
                : std::min(mem_ticks,
                           static_cast<std::uint64_t>(std::llround(
                               static_cast<double>(mem_ticks) * cum_weight /
                               total_weight)));
        target = std::max(target, allocated);
        const std::uint64_t share = target - allocated;
        allocated = target;
        if (share == 0) continue;
        site_shares_.push_back(SiteShare{sw.site, sw.space, share});
      }
    }
    // ---- what-if virtual speedup: (site, space) rows ---------------------
    if (whatif_ != nullptr && !whatif_->sites.empty()) {
      std::int64_t removed = 0;
      for (SiteShare& sh : site_shares_) {
        const double f = whatif_->site_factor(sh.site, sh.space);
        if (f == 1.0 || sh.ticks == 0) continue;
        const std::uint64_t scaled = static_cast<std::uint64_t>(
            std::llround(f * static_cast<double>(sh.ticks)));
        removed += static_cast<std::int64_t>(sh.ticks) -
                   static_cast<std::int64_t>(scaled);
        sh.ticks = scaled;
      }
      if (removed != 0) {
        // Re-partition {mem_issue, txn_issue, exposed_latency} to the new
        // site total with the same cumulative min/remainder scheme, so
        // the reasons again sum to the site rows exactly. Guarded on
        // removed != 0: the re-partition reproduces the inputs only up to
        // llround, so an untouched window must never enter it.
        const std::uint64_t new_total = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(mem_ticks) - removed);
        std::uint64_t vals[3] = {ws.mem_issue, ws.txn_issue,
                                 ws.exposed_latency};
        std::uint64_t allocated = 0;
        std::uint64_t cum = 0;
        for (int i = 0; i < 3; ++i) {
          cum += vals[i];
          std::uint64_t target =
              i == 2 ? new_total
                     : std::min(new_total,
                                static_cast<std::uint64_t>(std::llround(
                                    static_cast<double>(new_total) *
                                    static_cast<double>(cum) /
                                    static_cast<double>(mem_ticks))));
          target = std::max(target, allocated);
          vals[i] = target - allocated;
          allocated = target;
        }
        ws.mem_issue = vals[0];
        ws.txn_issue = vals[1];
        ws.exposed_latency = vals[2];
      }
    }
    for (const SiteShare& sh : site_shares_) {
      if (sh.ticks == 0) continue;
      stats_->counters_for(sh.space).stall_ticks += sh.ticks;
      stats_->site_counters(sh.site, sh.space).stall_ticks += sh.ticks;
    }
  }

  // Re-derive the charged total from the (possibly scaled) reasons; the
  // ticks the plan deleted leave the clock through the removed-ticks
  // carry, never through the per-window rounding remainder (the raw
  // cycle/tick carry above is untouched, so the unscaled accounting of
  // later windows is bit-identical with and without a plan).
  std::int64_t removed_w = 0;
  if (whatif_ != nullptr) {
    const std::uint64_t charged_scaled = ws.compute + ws.mem_issue +
                                         ws.txn_issue + ws.exposed_latency +
                                         ws.sync + ws.bank_conflict;
    removed_w = static_cast<std::int64_t>(total_ticks) -
                static_cast<std::int64_t>(charged_scaled);
    ws.charged = charged_scaled;
    removed_ticks_cum_ += removed_w;
    stats_->whatif_removed_ticks += removed_w;
  }
  stats_->stall += ws;

  // Profiler hook — a single null check when no observer is attached; the
  // delta bookkeeping only exists behind it (zero-overhead contract,
  // DESIGN.md §7).
  if (observer_ != nullptr) {
    const LaunchStats& s = *stats_;
    const LaunchStats& b = window_base_;
    WindowEvent e;
    e.block_id = block_id_;
    e.window_index = s.windows - 1;
    e.start_cycles = block_cycles_;
    e.cycles = window;
    if (whatif_ != nullptr) {
      // Events report the *effective* clock: raw cycles minus what the
      // plan removed (prior windows for the start, this window for the
      // duration, clamped against the sub-tick rounding remainder).
      e.start_cycles -= static_cast<double>(removed_ticks_cum_ - removed_w) /
                        static_cast<double>(kStallTicksPerCycle);
      e.cycles = std::max(
          0.0, e.cycles - static_cast<double>(removed_w) /
                              static_cast<double>(kStallTicksPerCycle));
    }
    e.barrier = barrier;
    e.requests = (s.global.requests - b.global.requests) +
                 (s.local.requests - b.local.requests) +
                 (s.texture.requests - b.texture.requests);
    e.transactions = (s.global.transactions - b.global.transactions) +
                     (s.local.transactions - b.local.transactions) +
                     (s.texture.transactions - b.texture.transactions);
    e.dram_transactions =
        (s.global.dram_transactions - b.global.dram_transactions) +
        (s.local.dram_transactions - b.local.dram_transactions) +
        (s.texture.dram_transactions - b.texture.dram_transactions);
    e.cache_hits = (s.global.l1_hits - b.global.l1_hits) +
                   (s.global.l2_hits - b.global.l2_hits) +
                   (s.local.l1_hits - b.local.l1_hits) +
                   (s.local.l2_hits - b.local.l2_hits) +
                   (s.texture.l2_hits - b.texture.l2_hits) +
                   (s.texture.tex_hits - b.texture.tex_hits);
    e.shared_accesses = s.shared_accesses - b.shared_accesses;
    e.bank_conflict_cycles =
        s.bank_conflict_cycles - b.bank_conflict_cycles;
    e.stall = ws;
    observer_->on_window(e);
    window_base_ = s;
  }

  block_cycles_ += window;
}

double BlockCtx::finish() {
  close_window(false);
  if (whatif_ == nullptr) return block_cycles_;
  // Effective block cycles: raw minus the removed ticks. The clamp covers
  // the sub-cycle case where the block's (single) rounding remainder left
  // fewer raw cycles than removed ticks.
  return std::max(0.0, block_cycles_ -
                           static_cast<double>(removed_ticks_cum_) /
                               static_cast<double>(kStallTicksPerCycle));
}

Device::Device(DeviceSpec spec, CostModel cost)
    : spec_(std::move(spec)), cost_(cost) {}

LaunchStats Device::launch(const LaunchConfig& cfg,
                           const std::function<void(BlockCtx&)>& body) {
  CUSW_REQUIRE(cfg.blocks >= 0, "negative grid size");
  // Fault hook: consulted before any work so an injected fault aborts the
  // launch with no partial state and the caller can reissue it wholesale.
  if (fault_ != nullptr) fault_->on_launch(fault_device_id_);
  obs::install_process_exports();
  LaunchStats stats;
  stats.blocks = cfg.blocks;
  if (cfg.blocks == 0) return stats;

  // Active what-if plan, resolved once per launch (DESIGN.md §14);
  // nullptr when no plan is set or nothing in it affects this launch —
  // then every path below is the unscaled one, bit for bit.
  const obs::whatif::Plan* whatif_plan = obs::whatif::active_plan();
  const std::unique_ptr<WhatIfResolved> whatif =
      resolve_whatif(whatif_plan, cfg.label);

  // Fermi's configurable shared/L1 split.
  DeviceSpec eff = spec_;
  if (eff.has_l1 && cfg.prefer_l1) {
    eff.l1_bytes = 48 * 1024;
    eff.shared_mem_per_sm = 16 * 1024;
  }
  if (whatif != nullptr) {
    // param:<name> targets scale the latency parameter itself; the
    // coalescer/cache walk then reprices every window downstream (weights,
    // chains and the window max all shift), which is exactly the
    // counterfactual a parameter sweep asks for.
    eff.dram_latency = scale_latency(eff.dram_latency, whatif->dram_latency);
    eff.l1_latency = scale_latency(eff.l1_latency, whatif->l1_latency);
    eff.l2_latency = scale_latency(eff.l2_latency, whatif->l2_latency);
    eff.tex_hit_latency =
        scale_latency(eff.tex_hit_latency, whatif->tex_hit_latency);
  }
  CUSW_REQUIRE(cfg.shared_bytes_per_block <= eff.shared_mem_per_sm,
               "block shared memory exceeds the SM's");

  stats.occupancy = compute_occupancy(eff, cfg.threads_per_block,
                                      cfg.shared_bytes_per_block,
                                      cfg.regs_per_thread);
  CUSW_REQUIRE(stats.occupancy.blocks_per_sm > 0,
               "launch config admits zero resident blocks");
  stats.occupancy_min = stats.occupancy.occupancy;
  stats.occupancy_max = stats.occupancy.occupancy;

  const int slots = eff.sm_count * stats.occupancy.blocks_per_sm;
  const int concurrent = std::min(cfg.blocks, slots);
  // Average co-residency per SM (rounded): how many blocks share one SM's
  // cores while this launch is saturated.
  const int resident_per_sm = std::max(
      1, static_cast<int>((static_cast<double>(concurrent) /
                           static_cast<double>(eff.sm_count)) +
                          0.5));
  stats.concurrent_blocks = concurrent;

  // Effective cache capacities under contention: co-resident blocks share
  // the SM's L1/texture caches and every concurrent block competes for L2.
  // Contention is modelled by shrinking each block's effective capacity,
  // not by literal cross-block cache state — every block starts from cold
  // caches, which is what makes block execution order (and host thread
  // count) irrelevant to the result. The L2 floor reflects that a block's
  // most recently written lines survive even under heavy sharing.
  const std::size_t l1_eff =
      eff.has_l1 ? eff.l1_bytes / static_cast<std::size_t>(resident_per_sm) : 0;
  std::size_t l2_eff = 0;
  if (eff.has_l2) {
    l2_eff = std::max(std::min<std::size_t>(eff.l2_bytes, 64 * 1024),
                      eff.l2_bytes / static_cast<std::size_t>(concurrent));
  }

  // ---- block memoization setup (DESIGN.md §12) ---------------------------
  // Engaged when the kernel provides both hooks, no user observer is
  // attached (per-window/per-block callbacks must fire from a real
  // simulation) and CUSW_SIM_MEMO is not off. Tracing does not disengage
  // it: replayed blocks draw a single "memo replay" span instead of
  // window spans.
  const bool memo_on = cfg.memo_key != nullptr && cfg.memo_replay != nullptr &&
                       observer_ == nullptr && memo_env_enabled();
  MemoPeriods periods;
  std::vector<std::uint64_t> memo_prefix;
  if (memo_on) {
    // Translation periods per space: lcm of the 128 B coalescing segment
    // and every enabled cache's set span under *this launch's* effective
    // capacities (all powers of two, so the lcm is just the max — std::lcm
    // keeps it honest if a future geometry is not).
    const auto fold = [](std::uint64_t& p, std::size_t size, std::size_t line,
                         int assoc) {
      const std::size_t span = Cache::translation_span(size, line, assoc);
      if (span != 0) p = std::lcm(p, static_cast<std::uint64_t>(span));
    };
    if (eff.has_l1) fold(periods.global, l1_eff, 128, 4);
    if (eff.has_l2) fold(periods.global, l2_eff, 128, 16);
    fold(periods.texture, eff.tex_cache_bytes, 32, 4);
    fold(periods.texture, eff.tex_l2_bytes, 32, 8);
    if (eff.has_l2) fold(periods.texture, l2_eff, 128, 16);
    // Launch-level key context: the label (length-prefixed, so keys are
    // prefix-free across kernels) plus every launch knob the per-block
    // cost model reads. The kernel's memo_key appends the rest.
    const auto pack_string = [&memo_prefix](std::string_view sv) {
      memo_prefix.push_back(sv.size());
      std::uint64_t packed = 0;
      for (std::size_t c = 0; c < sv.size(); ++c) {
        packed = (packed << 8) | static_cast<unsigned char>(sv[c]);
        if ((c + 1) % 8 == 0) {
          memo_prefix.push_back(packed);
          packed = 0;
        }
      }
      if (sv.size() % 8 != 0) memo_prefix.push_back(packed);
    };
    pack_string(cfg.label);
    memo_prefix.push_back(static_cast<std::uint64_t>(cfg.threads_per_block));
    memo_prefix.push_back(static_cast<std::uint64_t>(concurrent));
    memo_prefix.push_back(static_cast<std::uint64_t>(resident_per_sm));
    memo_prefix.push_back(static_cast<std::uint64_t>(l1_eff));
    memo_prefix.push_back(static_cast<std::uint64_t>(l2_eff));
    if (whatif != nullptr) {
      // Salt the key with the plan's canonical spec so memoization
      // composes with what-if runs instead of silently replaying blocks
      // cached under a different (or no) plan. Plans that resolve to
      // nullptr (ineffective for this launch) keep the unsalted key and
      // share entries with plan-free runs — their results are identical.
      pack_string(whatif_plan->spec);
    }
  }

  // Execute blocks sharded across host workers. Each worker owns private
  // L2 / texture-L2 clones (cleared before every block) and each block
  // accumulates into a private LaunchStats, so per-block results do not
  // depend on which worker ran them or in what order. The reduction below
  // walks blocks in index order, making every counter — and the double
  // accumulation of total_block_cycles — bit-identical for any
  // CUSW_THREADS value, including the serial fallback (same code path
  // with one worker).
  const std::size_t workers = std::min<std::size_t>(
      util::parallelism(), static_cast<std::size_t>(cfg.blocks));
  struct WorkerCaches {
    Cache l2;
    Cache tex_l2;
  };
  std::vector<WorkerCaches> caches;
  caches.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    caches.push_back(WorkerCaches{Cache(l2_eff, 128, 16),
                                  // Texture data is shared read-only across
                                  // blocks (see BlockCtx ctor): the L2
                                  // texture cache keeps full capacity.
                                  Cache(eff.tex_l2_bytes, 32, 8)});
  }
  // Observer wiring: the user's observer, wrapped in a TraceCollector when
  // a trace is being recorded. With neither, `effective` stays null and
  // the per-window hot path is one null check inside BlockCtx.
  LaunchObserver* effective = observer_;
  std::unique_ptr<TraceCollector> collector;
  if (obs::trace_enabled()) {
    collector = std::make_unique<TraceCollector>(cfg.blocks, observer_);
    effective = collector.get();
  }

  std::vector<LaunchStats> block_stats(static_cast<std::size_t>(cfg.blocks));
  std::vector<double> block_cycles(static_cast<std::size_t>(cfg.blocks), 0.0);
  std::vector<std::uint8_t> replayed(static_cast<std::size_t>(cfg.blocks), 0);
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> memo_misses{0};
  ThreadPool::shared().run_indexed(
      static_cast<std::size_t>(cfg.blocks), workers,
      [&](std::size_t worker, std::size_t b) {
        std::vector<std::uint64_t> key;
        if (memo_on) {
          key.reserve(memo_prefix.size() + 72);
          key = memo_prefix;
          cfg.memo_key(static_cast<int>(b), periods, key);
          bool hit = false;
          {
            std::lock_guard<std::mutex> lk(memo_mu_);
            const auto it = memo_.find(key);
            if (it != memo_.end()) {
              block_stats[b] = it->second.stats;
              block_cycles[b] = it->second.cycles;
              hit = true;
            }
          }
          if (hit) {
            // Replay: cached accounting above, functional outputs here.
            cfg.memo_replay(static_cast<int>(b));
            replayed[b] = 1;
            memo_hits.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          memo_misses.fetch_add(1, std::memory_order_relaxed);
        }
        WorkerCaches& wc = caches[worker];
        wc.l2.clear();
        wc.tex_l2.clear();
        BlockCtx ctx(eff, cost_, block_stats[b], wc.l2, wc.tex_l2, l1_eff,
                     static_cast<int>(b), cfg.threads_per_block,
                     resident_per_sm, concurrent, effective, whatif.get());
        body(ctx);
        block_cycles[b] = ctx.finish();
        if (memo_on) {
          std::lock_guard<std::mutex> lk(memo_mu_);
          memo_.emplace(std::move(key),
                        MemoEntry{block_stats[b], block_cycles[b]});
        }
        if (effective != nullptr) {
          BlockEvent ev;
          ev.block_id = static_cast<int>(b);
          ev.cycles = block_cycles[b];
          ev.counters = &block_stats[b];
          effective->on_block(ev);
        }
      });

  // Serial post-pass in block-index order: reduce the per-block stats and
  // compute the makespan of the block costs over the SM slots with greedy
  // list scheduling. The queue carries (end, slot) so the trace can place
  // blocks on SM-slot tracks; ties break on the lower slot index, which
  // keeps the placement deterministic and the makespan value unchanged.
  using SlotEnd = std::pair<double, int>;
  std::priority_queue<SlotEnd, std::vector<SlotEnd>, std::greater<>> slot_ends;
  for (int s = 0; s < slots; ++s) slot_ends.push({0.0, s});
  std::vector<int> block_slot;
  std::vector<double> block_start;
  if (collector != nullptr) {
    block_slot.resize(static_cast<std::size_t>(cfg.blocks), 0);
    block_start.resize(static_cast<std::size_t>(cfg.blocks), 0.0);
  }
  double makespan = 0.0;
  for (int b = 0; b < cfg.blocks; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    add_block_counters(stats, block_stats[bi]);
    stats.total_block_cycles += block_cycles[bi];
    const SlotEnd slot = slot_ends.top();
    slot_ends.pop();
    const double end = slot.first + block_cycles[bi];
    slot_ends.push({end, slot.second});
    if (collector != nullptr) {
      block_slot[bi] = slot.second;
      block_start[bi] = slot.first;
    }
    makespan = std::max(makespan, end);
  }
  stats.makespan_cycles = makespan;
  stats.seconds = makespan / (eff.clock_ghz * 1e9) +
                  eff.launch_overhead_us * 1e-6;

  // Each block's charged ticks are its cycle total rounded once (the
  // per-window carry in close_window), so the pre-idle charged sum IS the
  // exact fixed-point image of the per-block cycle totals.
  stats.total_block_ticks = stats.stall.charged;

  // Occupancy idle: ticks the concurrently occupied SM slots spend empty
  // between their last block retiring and the launch's end. A launch-level
  // reason — blocks never see it — folded into the charged total so the
  // stall breakdown accounts for device time, not just block time.
  // Computed in integer ticks against total_block_ticks so that
  // `charged - occupancy_idle == total_block_ticks` holds exactly (the
  // saturation guard covers the sub-tick case where per-block rounding
  // lands above the rounded device-time product).
  const std::uint64_t device_ticks =
      to_ticks(makespan * static_cast<double>(concurrent));
  std::uint64_t idle_ticks = device_ticks > stats.total_block_ticks
                                 ? device_ticks - stats.total_block_ticks
                                 : 0;
  if (whatif != nullptr && whatif->occupancy_idle != 1.0 && idle_ticks != 0) {
    // stall:occupancy_idle (or a whole-kernel factor) also shrinks the
    // idle tail: the removed idle ticks come off the makespan — spread
    // over the `concurrent` slots they were counted across — and the
    // launch's wall seconds follow. Subtraction (not recomputation) so an
    // identity factor leaves every derived figure byte-identical.
    const std::uint64_t idle_scaled = static_cast<std::uint64_t>(std::llround(
        whatif->occupancy_idle * static_cast<double>(idle_ticks)));
    const std::int64_t removed = static_cast<std::int64_t>(idle_ticks) -
                                 static_cast<std::int64_t>(idle_scaled);
    stats.whatif_removed_ticks += removed;
    makespan = std::max(
        0.0, makespan - static_cast<double>(removed) /
                            static_cast<double>(kStallTicksPerCycle) /
                            static_cast<double>(concurrent));
    stats.makespan_cycles = makespan;
    stats.seconds =
        makespan / (eff.clock_ghz * 1e9) + eff.launch_overhead_us * 1e-6;
    idle_ticks = idle_scaled;
  }
  stats.stall.occupancy_idle = idle_ticks;
  stats.stall.charged += idle_ticks;

  if (memo_on) {
    auto& reg = obs::Registry::global();
    reg.counter("gpusim.memo.hits")
        .add(memo_hits.load(std::memory_order_relaxed));
    reg.counter("gpusim.memo.misses")
        .add(memo_misses.load(std::memory_order_relaxed));
    reg.counter("gpusim.memo.blocks_replayed")
        .add(memo_hits.load(std::memory_order_relaxed));
  }

  publish_launch_metrics(cfg, stats);
  if (effective != nullptr) effective->on_launch(cfg, stats);

  // Reserve this launch's interval on the device's simulated timeline —
  // unconditionally, so the trace writer and the telemetry sampler place
  // the launch at the same simulated time whichever of them is enabled.
  // Concurrent host-side launches serialise on the cursor, matching the
  // one-queue device model. The trace pid is still assigned lazily, only
  // when a trace is being recorded.
  obs::TraceWriter* tw = collector != nullptr ? obs::trace() : nullptr;
  double t0 = 0.0;
  {
    std::lock_guard<std::mutex> lk(timeline_mu_);
    t0 = sim_cursor_us_;
    sim_cursor_us_ += stats.seconds * 1e6;
    if (tw != nullptr && trace_pid_ == 0) {
      trace_pid_ = next_device_trace_pid();
      tw->name_process(trace_pid_, spec_.name + " (simulated)");
      tw->name_track(trace_pid_, 0, "launches");
    }
  }
  if (obs::Sampler* sp = obs::Sampler::active()) {
    // Launch aggregates (seconds, cells, stall ticks) are bit-identical
    // for any CUSW_THREADS and for memo replay vs simulation, and the
    // cursor above serialises launches per device — so the sampled
    // series inherit the simulator's determinism contract.
    std::vector<std::pair<std::string, std::uint64_t>> reasons;
    for_each_stall_reason(stats.stall,
                          [&](const char* reason, std::uint64_t v) {
                            reasons.emplace_back(reason, v);
                          });
    // Active what-if channel: the ticks the plan removed ride along as a
    // pseudo-reason, so the sampled series show the virtual speedup as a
    // share of the (scaled) charged total. Appended only when nonzero —
    // plan-free series stay byte-identical. A net virtual *slowdown*
    // (negative removal) has no unsigned representation here and is
    // visible in the registry gauge instead.
    if (stats.whatif_removed_ticks > 0) {
      reasons.emplace_back(
          "whatif_removed",
          static_cast<std::uint64_t>(stats.whatif_removed_ticks));
    }
    sp->record_launch(spec_.name, t0 * 1e-3, stats.seconds * 1e3, cfg.cells,
                      reasons, stats.stall.charged);
  }
  if (tw != nullptr) {
    emit_device_trace(*tw, trace_pid_, t0, cfg, eff, stats, block_cycles,
                      block_slot, block_start, block_stats, replayed,
                      *collector);
  }
  return stats;
}

}  // namespace cusw::gpusim
