#include "gpusim/fault.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"

namespace cusw::gpusim {

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const auto& [key, value] : util::parse_kv_spec(spec)) {
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(
          util::parse_int(value, "CUSW_FAULTS seed"));
    } else if (key == "transfer") {
      plan.transfer_fail_rate =
          util::parse_double(value, "CUSW_FAULTS transfer");
    } else if (key == "launch") {
      plan.launch_fail_rate = util::parse_double(value, "CUSW_FAULTS launch");
    } else if (key == "lose") {
      // lose=<device>[@<launch ordinal>]
      const std::size_t at = value.find('@');
      plan.lose_device = static_cast<int>(util::parse_int(
          at == std::string::npos ? value : value.substr(0, at),
          "CUSW_FAULTS lose device"));
      plan.lose_at =
          at == std::string::npos
              ? 0
              : static_cast<std::uint64_t>(util::parse_int(
                    value.substr(at + 1), "CUSW_FAULTS lose ordinal"));
    } else {
      throw std::invalid_argument("unknown CUSW_FAULTS key '" + key + "'");
    }
  }
  CUSW_REQUIRE(plan.transfer_fail_rate >= 0.0 && plan.transfer_fail_rate <= 1.0,
               "transfer fault rate outside [0, 1]");
  CUSW_REQUIRE(plan.launch_fail_rate >= 0.0 && plan.launch_fail_rate <= 1.0,
               "launch fault rate outside [0, 1]");
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("CUSW_FAULTS");
  if (spec == nullptr || *spec == '\0') return FaultPlan{};
  return parse(spec);
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  CUSW_REQUIRE(plan_.lose_device < kMaxDevices,
               "fault plan device id exceeds the fleet limit");
}

std::size_t FaultInjector::check_id(int device_id) {
  CUSW_REQUIRE(device_id >= 0 && device_id < kMaxDevices,
               "fault injector device id out of range");
  return static_cast<std::size_t>(device_id);
}

bool FaultInjector::decide(FaultKind kind, int device_id,
                          std::uint64_t ordinal, double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Stateless Bernoulli draw: hash (seed, kind, device, ordinal) so the
  // decision for a given ordinal never depends on who else is drawing.
  SplitMix64 h(plan_.seed ^
               (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(kind) + 1)) ^
               (static_cast<std::uint64_t>(device_id) << 32) ^ ordinal);
  h.next();
  const double u =
      static_cast<double>(h.next() >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return u < rate;
}

void FaultInjector::note_injection(FaultKind kind, int device_id,
                                   std::uint64_t ordinal) {
  auto& reg = obs::Registry::global();
  const char* name = kind == FaultKind::kTransfer ? "fault.transfer.injected"
                     : kind == FaultKind::kLaunch ? "fault.launch.injected"
                                                  : "fault.device.lost";
  reg.counter(name).inc();
  const char* label = kind == FaultKind::kTransfer ? "fault: transfer"
                      : kind == FaultKind::kLaunch ? "fault: launch"
                                                   : "fault: device lost";
  obs::trace_instant(label, "fault",
                     "\"device\": " + std::to_string(device_id) +
                         ", \"ordinal\": " + std::to_string(ordinal));
}

void FaultInjector::on_launch(int device_id) {
  const std::size_t id = check_id(device_id);
  if (lost_[id].load(std::memory_order_relaxed)) {
    throw DeviceLost(FaultKind::kDeviceLoss,
                     "device " + std::to_string(device_id) + " is lost",
                     device_id);
  }
  const std::uint64_t ordinal =
      launch_ordinal_[id].fetch_add(1, std::memory_order_relaxed);
  if (device_id == plan_.lose_device && ordinal >= plan_.lose_at) {
    // Sticky: first loser wins; later launches hit the check above.
    if (!lost_[id].exchange(true, std::memory_order_relaxed)) {
      note_injection(FaultKind::kDeviceLoss, device_id, ordinal);
    }
    throw DeviceLost(FaultKind::kDeviceLoss,
                     "device " + std::to_string(device_id) + " lost at launch " +
                         std::to_string(ordinal),
                     device_id);
  }
  if (decide(FaultKind::kLaunch, device_id, ordinal, plan_.launch_fail_rate)) {
    injected_launch_.fetch_add(1, std::memory_order_relaxed);
    note_injection(FaultKind::kLaunch, device_id, ordinal);
    throw TransientFault(FaultKind::kLaunch,
                         "transient launch fault on device " +
                             std::to_string(device_id) + " (launch " +
                             std::to_string(ordinal) + ")",
                         device_id);
  }
}

void FaultInjector::on_transfer(int device_id) {
  const std::size_t id = check_id(device_id);
  if (lost_[id].load(std::memory_order_relaxed)) {
    throw DeviceLost(FaultKind::kDeviceLoss,
                     "device " + std::to_string(device_id) + " is lost",
                     device_id);
  }
  const std::uint64_t ordinal =
      transfer_ordinal_[id].fetch_add(1, std::memory_order_relaxed);
  if (decide(FaultKind::kTransfer, device_id, ordinal,
             plan_.transfer_fail_rate)) {
    injected_transfer_.fetch_add(1, std::memory_order_relaxed);
    note_injection(FaultKind::kTransfer, device_id, ordinal);
    throw TransientFault(FaultKind::kTransfer,
                         "transient transfer fault to device " +
                             std::to_string(device_id) + " (copy " +
                             std::to_string(ordinal) + ")",
                         device_id);
  }
}

}  // namespace cusw::gpusim
