// Kernel launch machinery: block execution contexts, the per-warp
// coalescer, cache filtering, the window cost model, and the block
// scheduler.
//
// Execution model: a kernel is a callable invoked once per block with a
// BlockCtx. Inside, the kernel loops over its threads explicitly between
// synchronisation points (the classic SPMD-to-loop transformation). The
// context accumulates per-lane compute charges and memory access records;
// each sync() (or flush()) closes a "window", runs the records through the
// coalescer and caches, and converts the window into cycles:
//
//   window = max(compute, bandwidth, latency) + sync_cost
//
// See DESIGN.md §5 and cost_model.h for the calibration story.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gpusim/cache.h"
#include "gpusim/cost_model.h"
#include "gpusim/device_spec.h"
#include "gpusim/memory.h"
#include "gpusim/observer.h"
#include "gpusim/occupancy.h"
#include "gpusim/site.h"
#include "gpusim/stall.h"

namespace cusw::gpusim {

class FaultInjector;

/// Address-translation periods of the launch's effective cache configs
/// (DESIGN.md §12). Two blocks of one kernel behave identically — same
/// counters, stall rows and cycles — when their address footprints are
/// translates of each other by a multiple of the relevant space's period:
/// 128 B coalescing segments and every enabled cache's set span
/// (Cache::translation_span) divide the period, so the coalescer and
/// cache state machines replay exactly. A kernel's `memo_key` callback
/// folds each block-dependent region offset *modulo* these periods into
/// the key; block-invariant regions (e.g. the local-memory arena)
/// contribute nothing.
struct MemoPeriods {
  std::uint64_t global = 128;   // global + local read/write path
  std::uint64_t texture = 128;  // texture read path
};

struct LaunchConfig {
  int blocks = 1;
  int threads_per_block = 256;
  std::size_t shared_bytes_per_block = 0;
  int regs_per_thread = 32;
  /// Fermi only: request the 48 KB L1 / 16 KB shared split instead of the
  /// default 16 KB L1 / 48 KB shared.
  bool prefer_l1 = false;
  /// Kernel name for observability: the per-kernel metrics prefix
  /// (`gpusim.kernel.<label>.*`), the cusw-prof report row, and trace
  /// span names. Must point at a string literal (not owned).
  const char* label = "kernel";
  /// SW cell updates this launch will perform, when the kernel knows it
  /// up front (all four CUDASW++ kernels do). Feeds the per-kernel
  /// `cells` counter, the GCUPS trace timeline and the roofline verdict;
  /// zero simply disables those.
  std::uint64_t cells = 0;

  /// Block-memoization hooks (both must be set for memoization to engage;
  /// see DESIGN.md §12 and Device::launch). `memo_key` appends, to `key`,
  /// words that determine the block's simulation outcome exactly: every
  /// block-dependent loop bound (sequence lengths), every block-dependent
  /// region offset reduced modulo the matching MemoPeriods period, and —
  /// for kernels whose accounted addresses depend on data — the data
  /// itself. The device prepends launch-level context (label, geometry,
  /// effective cache sizes), and entries match only on full key equality,
  /// so a conservative key can only cost hits, never correctness.
  std::function<void(int block, const MemoPeriods&,
                     std::vector<std::uint64_t>& key)>
      memo_key;
  /// Invoked instead of the kernel body when a block is replayed from the
  /// memo store: recompute the block's *functional* outputs (scores) —
  /// the accounting side is restored from the cached LaunchStats.
  std::function<void(int block)> memo_replay;
};

/// The active what-if plan (obs/whatif.h) resolved against one launch:
/// per-reason tick multipliers with any kernel:<label> factor already
/// folded in, the (site, space) factors, and the DeviceSpec latency
/// parameter factors. A null WhatIfResolved pointer on a BlockCtx means
/// no injection — the per-window path then pays one null check, and the
/// scaled path is constructed so every factor-1.0 multiplication is
/// skipped outright, keeping an all-ones plan byte-identical to no plan.
struct WhatIfResolved {
  // Per-reason multipliers (kernel factor folded in; occupancy_idle is
  // applied at launch scope, the rest per window).
  double compute = 1.0;
  double mem_issue = 1.0;
  double txn_issue = 1.0;
  double exposed_latency = 1.0;
  double sync = 1.0;
  double bank_conflict = 1.0;
  double occupancy_idle = 1.0;
  struct SiteFactor {
    SiteId site = kSiteUnattributed;
    int space = -1;  // -1 = any space, else static_cast<int>(Space)
    double factor = 1.0;
  };
  std::vector<SiteFactor> sites;
  // DeviceSpec latency parameter multipliers (applied to the launch's
  // effective spec before any block runs).
  double dram_latency = 1.0;
  double l1_latency = 1.0;
  double l2_latency = 1.0;
  double tex_hit_latency = 1.0;

  /// The multiplier for one (site, space) attribution row: the product
  /// of every matching site target (space-qualified and any-space).
  double site_factor(SiteId site, Space space) const {
    double f = 1.0;
    for (const SiteFactor& sf : sites) {
      if (sf.site == site &&
          (sf.space < 0 || sf.space == static_cast<int>(space))) {
        f *= sf.factor;
      }
    }
    return f;
  }
};

/// Per-(site, space) slice of a launch's counters: the attribution rows
/// behind the space totals. Each transaction, hit and DRAM byte is
/// attributed to exactly one site, so summing `counters` over all entries
/// of one space reproduces that space's `SpaceCounters` bit for bit.
struct SiteCounters {
  SiteId site = kSiteUnattributed;
  Space space = Space::Global;
  SpaceCounters counters;
};

struct LaunchStats {
  SpaceCounters global;
  SpaceCounters local;
  SpaceCounters texture;
  /// Per-site attribution rows, in first-touch order (reduced in
  /// block-index order, so the order — like every value — is independent
  /// of the host thread count). Typically ~a dozen entries per kernel.
  std::vector<SiteCounters> sites;
  /// Per-reason attribution of every charged cycle (gpusim/stall.h):
  /// the seven reasons sum to `stall.charged` exactly, and
  /// `stall.charged - stall.occupancy_idle` equals `total_block_ticks`
  /// exactly (each block carries its tick-rounding remainder across
  /// windows, so a block's charged ticks are its total cycles rounded
  /// once, not once per window).
  StallBreakdown stall;
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflict_cycles = 0;
  std::uint64_t syncs = 0;
  std::uint64_t windows = 0;
  double total_block_cycles = 0.0;  // sum over blocks
  /// Sum over blocks of each block's charged stall ticks — the exact
  /// fixed-point image of total_block_cycles (one rounding per block).
  std::uint64_t total_block_ticks = 0;
  double makespan_cycles = 0.0;     // after scheduling onto SM slots
  double seconds = 0.0;             // makespan / clock + launch overhead
  /// Net ticks removed (negative: added) by an active what-if plan
  /// (obs/whatif.h, DESIGN.md §14) — the difference between what the
  /// unscaled cost model charged and what was recorded. Exactly 0 when
  /// no plan is active or every factor is 1.0.
  std::int64_t whatif_removed_ticks = 0;
  Occupancy occupancy;
  /// Occupancy range across accumulated launches: a merged report keeps
  /// the *first* launch's `occupancy` for shape context, and these track
  /// the spread so merging launches with different configs isn't silently
  /// misreported as uniform. Single launches have min == max.
  double occupancy_min = 0.0;
  double occupancy_max = 0.0;
  int blocks = 0;
  int concurrent_blocks = 0;

  /// Combined global+local transaction count — what a profiler reports as
  /// "global memory transactions" (CUDA local memory lives in DRAM).
  std::uint64_t global_memory_transactions() const {
    return global.transactions + local.transactions;
  }

  /// Accumulate another launch's stats (seconds add up: launches on one
  /// device are serialised, as CUDASW++'s per-group kernel calls are).
  LaunchStats& operator+=(const LaunchStats& o) {
    global += o.global;
    local += o.local;
    texture += o.texture;
    for (const SiteCounters& sc : o.sites)
      site_counters(sc.site, sc.space) += sc.counters;
    stall += o.stall;
    shared_accesses += o.shared_accesses;
    bank_conflict_cycles += o.bank_conflict_cycles;
    syncs += o.syncs;
    windows += o.windows;
    whatif_removed_ticks += o.whatif_removed_ticks;
    total_block_cycles += o.total_block_cycles;
    total_block_ticks += o.total_block_ticks;
    makespan_cycles += o.makespan_cycles;
    seconds += o.seconds;
    blocks += o.blocks;
    concurrent_blocks = std::max(concurrent_blocks, o.concurrent_blocks);
    // Merge the occupancy range; a stats object whose range was never set
    // contributes its point occupancy (tests build these by hand). A side
    // with no occupancy sample at all — default-constructed, or shape-only
    // with every occupancy figure still zero — contributes nothing: its
    // zero "minimum" comes from never having launched, and must not
    // clobber a real minimum.
    const auto has_sample = [](const LaunchStats& s) {
      return s.occupancy_min != 0.0 || s.occupancy_max != 0.0 ||
             s.occupancy.occupancy != 0.0;
    };
    if (has_sample(o)) {
      const double lo =
          o.occupancy_min != 0.0 ? o.occupancy_min : o.occupancy.occupancy;
      const double hi =
          o.occupancy_max != 0.0 ? o.occupancy_max : o.occupancy.occupancy;
      if (has_sample(*this)) {
        occupancy_min = std::min(
            occupancy_min != 0.0 ? occupancy_min : occupancy.occupancy, lo);
        occupancy_max = std::max(
            occupancy_max != 0.0 ? occupancy_max : occupancy.occupancy, hi);
      } else {
        occupancy_min = lo;
        occupancy_max = hi;
      }
    }
    if (occupancy.blocks_per_sm == 0) occupancy = o.occupancy;
    return *this;
  }

  SpaceCounters& counters_for(Space s) {
    switch (s) {
      case Space::Global:
        return global;
      case Space::Local:
        return local;
      case Space::Texture:
        return texture;
    }
    return global;  // unreachable
  }
  const SpaceCounters& counters_for(Space s) const {
    return const_cast<LaunchStats*>(this)->counters_for(s);
  }
  std::uint64_t& requests_for(Space s) { return counters_for(s).requests; }

  /// Attribution row for (site, space), created on first touch. Linear
  /// scan: launches carry ~a dozen sites, and the per-window path scans
  /// sorted runs so consecutive lookups mostly hit the same entry.
  SpaceCounters& site_counters(SiteId site, Space space) {
    for (SiteCounters& sc : sites) {
      if (sc.site == site && sc.space == space) return sc.counters;
    }
    sites.push_back(SiteCounters{site, space, {}});
    return sites.back().counters;
  }

  /// Attribution row by site *name* (stable across runs), or nullptr.
  const SpaceCounters* find_site(std::string_view name, Space space) const {
    for (const SiteCounters& sc : sites) {
      if (sc.space == space && site_name(sc.site) == name)
        return &sc.counters;
    }
    return nullptr;
  }
};

class Device;

/// Per-block execution context handed to the kernel body.
class BlockCtx {
 public:
  int block_id() const { return block_id_; }
  int threads() const { return threads_; }
  int warps() const { return (threads_ + 31) / 32; }

  // ---- compute charges -------------------------------------------------
  /// Charge `cycles` of arithmetic to one lane.
  void charge(int lane, double cycles) {
    lane_compute_[lane] += cycles;
    if (lane >= lane_hi_) lane_hi_ = lane + 1;
  }
  /// Charge the same arithmetic to every lane of the block (fast path).
  void charge_uniform(double cycles) { uniform_compute_ += cycles; }
  /// Charge `cycles` per lane to exactly `active_warps` warps — the fast
  /// path for lockstep kernels whose wavefront does not fill the block.
  void charge_warp_uniform(int active_warps, double cycles) {
    warp_uniform_sum_ += static_cast<double>(active_warps) * cycles;
  }
  /// Charge `n` shared-memory accesses to a lane.
  void shared_access(int lane, std::uint64_t n);

  /// Charge `n` shared-memory accesses whose per-lane addresses are
  /// `stride` words apart across the warp. Shared memory has 32 banks of
  /// 4-byte words: a warp whose lanes hit gcd(stride, 32) ways into the
  /// same bank serialises into that many conflict-free passes.
  void shared_access_strided(int lane, std::uint64_t n, int word_stride);

  /// Conflict degree of a warp-wide strided shared access.
  static int bank_conflict_degree(int word_stride);

  // ---- memory access records -------------------------------------------
  // Every record may carry an interned access-site label (gpusim/site.h);
  // the profiler attributes the resulting requests, transactions and cache
  // hits to that site (kSiteUnattributed when omitted). Intern sites once
  // at launch setup, never inside per-cell loops.

  /// Record a contiguous per-lane access run of `bytes` at device address
  /// `addr`. Runs from lanes of the same warp coalesce into 128 B segments.
  void access(Space space, int lane, std::uint64_t addr, std::uint32_t bytes,
              bool write, SiteId site = kSiteUnattributed);

  /// Record a run accessed cooperatively by a whole warp (already
  /// coalesced); cheaper than 32 per-lane records.
  void warp_access(Space space, int warp, std::uint64_t addr,
                   std::uint64_t bytes, bool write,
                   SiteId site = kSiteUnattributed);

  /// CUDA local-memory access: per-thread array `array_id`, element
  /// `index` of `elem_bytes`. Addresses are interleaved across threads the
  /// way nvcc lays local memory out, so lockstep accesses coalesce — yet
  /// the traffic still goes to DRAM, reproducing the §III-A penalty.
  void local_access(int lane, int array_id, std::uint32_t index,
                    std::uint32_t elem_bytes, bool write,
                    SiteId site = kSiteUnattributed);

  // ---- functional + accounted element accesses --------------------------
  template <class T>
  T ld(const Buffer<T>& buf, std::size_t i, int lane,
       SiteId site = kSiteUnattributed) {
    access(Space::Global, lane, buf.device_addr(i), sizeof(T), false, site);
    return buf[i];
  }

  template <class T>
  void st(Buffer<T>& buf, std::size_t i, T v, int lane,
          SiteId site = kSiteUnattributed) {
    access(Space::Global, lane, buf.device_addr(i), sizeof(T), true, site);
    buf[i] = v;
  }

  template <class T>
  T tex(const TextureBuffer<T>& buf, std::size_t i, int lane,
        SiteId site = kSiteUnattributed) {
    access(Space::Texture, lane, buf.device_addr(i), sizeof(T), false, site);
    return buf[i];
  }

  /// Bump a space's request counter without simulating addresses — for
  /// traffic that is modelled statistically (documented per call site).
  void note_requests(Space s, std::uint64_t n,
                     SiteId site = kSiteUnattributed) {
    stats_->requests_for(s) += n;
    stats_->site_counters(site, s).requests += n;
  }

  // ---- window control ----------------------------------------------------
  /// Barrier: close the window and charge the barrier cost.
  void sync() { close_window(true); }
  /// Close the window without a barrier (e.g. periodic flush in kernels
  /// whose threads run independently).
  void flush() { close_window(false); }

  const DeviceSpec& device() const { return *spec_; }

 private:
  friend class Device;

  struct Record {
    std::uint64_t addr;
    std::uint32_t bytes;
    std::uint16_t warp;
    SiteId site;
    Space space;
    bool write;
  };

  BlockCtx(const DeviceSpec& spec, const CostModel& cost, LaunchStats& stats,
           Cache& l2, Cache& tex_l2, std::size_t l1_bytes, int block_id,
           int threads, int resident_per_sm, int concurrent_blocks,
           LaunchObserver* observer = nullptr,
           const WhatIfResolved* whatif = nullptr);

  void close_window(bool barrier);
  double finish();  // returns total block cycles

  const DeviceSpec* spec_;
  const CostModel* cost_;
  LaunchStats* stats_;
  Cache* l2_;
  Cache* tex_l2_;
  Cache l1_;
  Cache tex_cache_;
  int block_id_;
  int threads_;
  int resident_per_sm_;
  int concurrent_blocks_;

  std::vector<double> lane_compute_;
  double uniform_compute_ = 0.0;
  double warp_uniform_sum_ = 0.0;
  std::vector<Record> records_;
  // Estimated memory *instructions* issued per warp this window: a
  // cooperative warp_access is one instruction; a per-lane access
  // contributes 1/32 (32 lanes execute one SIMT instruction together).
  std::vector<double> warp_instr_;
  std::vector<double> warp_lat_sum_;
  std::vector<std::uint32_t> warp_txn_;
  double block_cycles_ = 0.0;
  // Charged ticks so far: to_ticks(block_cycles_) after every window.
  // Each window charges to_ticks(block_cycles_ + window) - charged so far,
  // carrying the fixed-point remainder across windows — the block's
  // charged total is its cycle total rounded once, which is what makes
  // `stall.charged - occupancy_idle == total_block_ticks` exact.
  std::uint64_t charged_ticks_cum_ = 0;
  // Set by access()/warp_access()/local_access(); false means the open
  // window carried no memory records or instructions, so close_window can
  // skip the coalescer/cache/latency walk entirely (the fast-forward path
  // — those stages are exact no-ops on empty input).
  bool mem_pending_ = false;
  // Highest lane index touched by charge() since the last window close
  // (exclusive). Lanes above the watermark hold 0.0 by invariant, so the
  // per-warp max scan and the reset stop there.
  int lane_hi_ = 0;

  // Profiler hook. The per-window hot path pays one null check when no
  // observer is attached; the previous-counter copy for window deltas is
  // only maintained behind that check.
  LaunchObserver* observer_ = nullptr;
  LaunchStats window_base_;  // counters at the last window close

  // scratch reused across windows
  struct SegKey {
    std::uint64_t seg;
    std::uint32_t bytes;
    // Insertion index: the last sort tiebreaker, making the order a total
    // one so plain std::sort (no per-call temp buffer, unlike
    // std::stable_sort) reproduces the stable program-order attribution.
    std::uint32_t seq;
    std::uint16_t warp;
    SiteId site;
    Space space;
    bool write;
  };
  std::vector<SegKey> segs_;

  // Stall-attribution scratch: per-window (site, space) weights — observed
  // latency plus issue cost per transaction — over which the window's
  // memory-reason ticks are distributed (gpusim/stall.h).
  struct SiteWeight {
    SiteId site;
    Space space;
    double weight;
  };
  std::vector<SiteWeight> site_weights_;
  // Launch-total bank-conflict cycles at the last window close, so the
  // window's conflict delta can be split out of the compute term.
  std::uint64_t conflict_base_ = 0;

  // Active what-if injection (null = none; see WhatIfResolved). The
  // block's cycle/tick carry (block_cycles_, charged_ticks_cum_) stays
  // *unscaled* so the per-window rounding remainder is identical with
  // and without a plan; removed_ticks_cum_ tracks the net ticks the plan
  // deleted, and the block's effective cycles are raw minus
  // removed / kStallTicksPerCycle (exactly raw when nothing was removed).
  const WhatIfResolved* whatif_ = nullptr;
  std::int64_t removed_ticks_cum_ = 0;
  // Per-window (site, space) share scratch of the memory-tick
  // distribution, so what-if site factors can rescale the rows before
  // they are committed to the launch stats.
  struct SiteShare {
    SiteId site;
    Space space;
    std::uint64_t ticks;
  };
  std::vector<SiteShare> site_shares_;
};

class Device {
 public:
  explicit Device(DeviceSpec spec, CostModel cost = {});

  const DeviceSpec& spec() const { return spec_; }
  const CostModel& cost_model() const { return cost_; }

  template <class T>
  Buffer<T> alloc(std::size_t n) {
    return arena_.alloc<T>(n);
  }

  template <class T>
  TextureBuffer<T> make_texture(std::vector<T> data) {
    return arena_.make_texture(std::move(data));
  }

  /// Reserve a device address range without host-side storage. Used for
  /// large inputs whose *functional* bytes the kernels read from host
  /// containers while accounting through real device addresses.
  ///
  /// The device-wide cursor moves with every allocation, so concurrent
  /// kernel runs that need address-stable (hence run-count-independent)
  /// layouts should allocate from their own MemoryArena instead.
  std::uint64_t reserve(std::size_t bytes) { return arena_.reserve(bytes); }

  /// Run `body` once per block and schedule the resulting block costs onto
  /// the device's SM slots. Blocks are sharded across host worker threads
  /// (CUSW_THREADS, see util::parallelism()); each block runs against
  /// private cache state and a private LaunchStats, reduced in block-index
  /// order, so the result is bit-identical for any thread count. Thread
  /// safe as long as `body` only writes block-disjoint host state, which
  /// kernels satisfy by construction (one output slot per block/lane).
  LaunchStats launch(const LaunchConfig& cfg,
                     const std::function<void(BlockCtx&)>& body);

  /// Attach a profiler observer (nullptr detaches). Callbacks fire on the
  /// worker threads executing blocks — see gpusim/observer.h. Not
  /// synchronised against in-flight launches; attach between launches.
  void set_observer(LaunchObserver* obs) { observer_ = obs; }
  LaunchObserver* observer() const { return observer_; }

  /// Attach a fault injector (nullptr detaches) and tell the device its
  /// fleet id. Every launch() then consults the injector before doing any
  /// work: a TransientFault or DeviceLost (see gpusim/fault.h) is thrown
  /// out of launch() with no partial side effects, so callers can retry
  /// the launch wholesale. Attach between launches, like set_observer.
  void set_fault_injector(FaultInjector* f, int device_id = 0) {
    fault_ = f;
    fault_device_id_ = device_id;
  }
  FaultInjector* fault_injector() const { return fault_; }
  int fault_device_id() const { return fault_device_id_; }

  /// Blocks currently memoized on this device (testing/introspection).
  std::size_t memo_entries() const {
    std::lock_guard<std::mutex> lk(memo_mu_);
    return memo_.size();
  }
  /// Drop every memo entry (testing; never required for correctness —
  /// keys cover everything an entry's validity depends on).
  void memo_clear() {
    std::lock_guard<std::mutex> lk(memo_mu_);
    memo_.clear();
  }

 private:
  DeviceSpec spec_;
  CostModel cost_;
  MemoryArena arena_;
  LaunchObserver* observer_ = nullptr;
  FaultInjector* fault_ = nullptr;
  int fault_device_id_ = 0;

  // Block-memoization store (DESIGN.md §12). Keyed by the *full* key
  // vector — launch-level context plus the kernel's memo_key words — and
  // compared by equality, so a lookup can never alias two different
  // blocks: the hash only buckets. Device-scoped because kernels allocate
  // from per-run arenas (identical addresses for identical-shape runs),
  // so entries stay valid across launches; hit/miss *counts* depend on
  // host thread timing, the replayed values never do.
  struct MemoEntry {
    LaunchStats stats;    // block-level counters, sites and stall rows
    double cycles = 0.0;  // the block's total simulated cycles
  };
  struct MemoKeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the words
      for (const std::uint64_t w : key) {
        h ^= w;
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  mutable std::mutex memo_mu_;
  std::unordered_map<std::vector<std::uint64_t>, MemoEntry, MemoKeyHash>
      memo_;

  // Device timeline state: the simulated-time cursor every launch
  // reserves its interval from — always advanced, so the trace writer and
  // the telemetry sampler agree on when a launch ran whichever surfaces
  // are enabled (launches on one device serialise, so concurrent
  // host-side launches book disjoint device-time intervals) — plus this
  // device's lazily assigned track group in the trace file.
  std::mutex timeline_mu_;
  int trace_pid_ = 0;
  double sim_cursor_us_ = 0.0;
};

}  // namespace cusw::gpusim
