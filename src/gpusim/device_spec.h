// Simulated CUDA device descriptions.
//
// Two presets match the GPUs of the paper: the Tesla C1060 (GT200, no
// global-memory caches) and the Tesla C2050 (Fermi, per-SM L1 plus a shared
// L2). `with_caches_disabled()` reproduces the paper's Fig. 6 experiment,
// where Fermi's L1/L2 are turned off.
#pragma once

#include <cstddef>
#include <string>

namespace cusw::gpusim {

struct DeviceSpec {
  std::string name;

  // Compute resources.
  int sm_count = 30;
  int cores_per_sm = 8;         // scalar lanes issued per cycle per SM
  double clock_ghz = 1.3;       // shader clock
  int warp_size = 32;
  int max_threads_per_block = 512;
  int max_threads_per_sm = 1024;
  int max_blocks_per_sm = 8;
  std::size_t shared_mem_per_sm = 16 * 1024;
  std::size_t registers_per_sm = 16 * 1024;  // 32-bit registers

  // Global memory.
  double mem_bandwidth_gbs = 102.0;  // GB/s peak
  /// Achievable fraction of peak bandwidth for kernel-style access streams
  /// (read/write turnaround, refresh, partial bursts).
  double dram_efficiency = 0.7;
  int dram_latency = 500;           // cycles
  int segment_bytes = 128;          // coalescing granularity

  // Caches. The C1060 has none on the global path; every device has a small
  // read-only texture cache per SM.
  bool has_l1 = false;
  bool has_l2 = false;
  std::size_t l1_bytes = 0;
  std::size_t l2_bytes = 0;
  int l1_latency = 30;
  int l2_latency = 200;
  std::size_t tex_cache_bytes = 8 * 1024;  // per-SM L1 texture cache
  /// GT200-class chips back the per-SM texture caches with a dedicated L2
  /// texture cache in the memory partitions; Fermi folds this into the
  /// unified L2 (set this to 0 and rely on l2_bytes there).
  std::size_t tex_l2_bytes = 256 * 1024;
  int tex_hit_latency = 100;

  /// Microseconds of host-side overhead per kernel launch.
  double launch_overhead_us = 5.0;

  static DeviceSpec tesla_c1060();
  static DeviceSpec tesla_c2050();

  /// Fig. 6 configuration: same device with L1 and L2 disabled (the texture
  /// cache stays, as on real hardware).
  DeviceSpec with_caches_disabled() const;

  /// A proportionally shrunk device: `factor` of the SMs, DRAM bandwidth and
  /// L2 capacity, with identical per-SM resources and latencies. Kernel
  /// blocks are independent, so per-block behaviour is unchanged and GCUPs
  /// scale linearly in `factor` (the same argument the paper makes for
  /// multi-GPU scaling); benches run statistically scaled databases on
  /// scaled devices and report full-device-equivalent GCUPs by dividing by
  /// `factor`.
  DeviceSpec scaled(double factor) const;

  /// Device-wide achievable DRAM bytes per shader cycle.
  double bytes_per_cycle() const {
    return mem_bandwidth_gbs * dram_efficiency / clock_ghz;
  }
};

}  // namespace cusw::gpusim
