// Seeded, deterministic fault injection for the simulated device fleet.
//
// A FaultPlan describes what can go wrong in a run: transient host-to-device
// transfer failures, transient kernel-launch faults, and the permanent loss
// of one device after a given number of launches. A FaultInjector attached
// to a Device (Device::set_fault_injector) turns the plan into thrown
// exceptions at the launch and transfer hook points; the fleet drivers
// (multi_gpu_search, chunked_search) catch them and walk the degradation
// ladder — retry with capped exponential backoff, redistribute the dead
// device's shard, or fall back to the striped CPU engine.
//
// Determinism: each decision hashes (seed, fault kind, device id, ordinal)
// through SplitMix64, where the ordinal is a per-(device, kind) atomic
// counter. Concurrent launches may consume ordinals in any order, but the
// *set* of ordinals spent by n launches is always {0..n-1}, so the number
// of faults injected for a given amount of work — and, by the drivers'
// retry-until-clean structure, the final scores — do not depend on the host
// thread schedule. Scores under any fault plan are bit-identical to the
// clean run (DESIGN.md §8).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cusw::gpusim {

enum class FaultKind { kTransfer, kLaunch, kDeviceLoss };

/// Base of everything the injector throws.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, const std::string& what, int device_id)
      : std::runtime_error(what), kind_(kind), device_id_(device_id) {}
  FaultKind kind() const { return kind_; }
  int device_id() const { return device_id_; }

 private:
  FaultKind kind_;
  int device_id_;
};

/// Retryable: the operation may succeed when reissued.
class TransientFault : public FaultError {
  using FaultError::FaultError;
};

/// Permanent: the device is gone; all further operations on it throw too.
class DeviceLost : public FaultError {
  using FaultError::FaultError;
};

/// What can go wrong in a run. Default-constructed plans are disabled and
/// cost nothing.
struct FaultPlan {
  std::uint64_t seed = 0;
  double transfer_fail_rate = 0.0;  // per transfer attempt, in [0, 1]
  double launch_fail_rate = 0.0;    // per kernel launch, in [0, 1]
  int lose_device = -1;             // fleet id of the device to lose, or -1
  std::uint64_t lose_at = 0;        // launch ordinal at which it dies

  bool enabled() const {
    return transfer_fail_rate > 0.0 || launch_fail_rate > 0.0 ||
           lose_device >= 0;
  }

  /// Parse a spec like "seed=42,transfer=0.1,launch=0.05,lose=1@3" (any
  /// subset of keys; `lose=<device>` defaults to `@0`). Throws
  /// std::invalid_argument on unknown keys or malformed values.
  static FaultPlan parse(std::string_view spec);

  /// Plan from the CUSW_FAULTS environment variable; disabled when unset
  /// or empty.
  static FaultPlan from_env();
};

/// Per-run fault bookkeeping, aggregated up the report chain.
struct FaultStats {
  std::uint64_t transfer_faults = 0;  // transient transfer faults seen
  std::uint64_t launch_faults = 0;    // transient launch faults seen
  std::uint64_t retries = 0;          // retry attempts issued by a driver
  std::uint64_t failovers = 0;        // shards moved off a dead device
  std::uint64_t devices_lost = 0;
  bool degraded_to_cpu = false;
  double backoff_seconds = 0.0;  // modelled retry delay, part of seconds

  bool any() const {
    return transfer_faults + launch_faults + retries + failovers +
                   devices_lost !=
               0 ||
           degraded_to_cpu;
  }

  FaultStats& operator+=(const FaultStats& o) {
    transfer_faults += o.transfer_faults;
    launch_faults += o.launch_faults;
    retries += o.retries;
    failovers += o.failovers;
    devices_lost += o.devices_lost;
    degraded_to_cpu = degraded_to_cpu || o.degraded_to_cpu;
    backoff_seconds += o.backoff_seconds;
    return *this;
  }
};

/// Turns a FaultPlan into thrown faults. One injector is shared by every
/// device of a fleet; devices are told their fleet id via
/// Device::set_fault_injector(injector, id). Thread safe; decisions are
/// hashed, not drawn from mutable RNG state.
class FaultInjector {
 public:
  static constexpr int kMaxDevices = 64;

  explicit FaultInjector(FaultPlan plan);

  /// Launch hook, called by Device::launch before any work. Throws
  /// DeviceLost (sticky) or TransientFault; publishes fault.*.injected
  /// metrics and a trace instant per injection.
  void on_launch(int device_id);

  /// Transfer hook, called by drivers before charging a host-to-device
  /// copy. Throws DeviceLost if the device is gone, TransientFault on an
  /// injected copy failure.
  void on_transfer(int device_id);

  bool device_lost(int device_id) const {
    return lost_[check_id(device_id)].load(std::memory_order_relaxed);
  }

  const FaultPlan& plan() const { return plan_; }

  /// Injections so far (all devices). Monotonic, thread safe.
  std::uint64_t injected_transfer_faults() const {
    return injected_transfer_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_launch_faults() const {
    return injected_launch_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t check_id(int device_id);
  bool decide(FaultKind kind, int device_id, std::uint64_t ordinal,
              double rate) const;
  void note_injection(FaultKind kind, int device_id, std::uint64_t ordinal);

  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kMaxDevices> launch_ordinal_{};
  std::array<std::atomic<std::uint64_t>, kMaxDevices> transfer_ordinal_{};
  std::array<std::atomic<bool>, kMaxDevices> lost_{};
  std::atomic<std::uint64_t> injected_transfer_{0};
  std::atomic<std::uint64_t> injected_launch_{0};
};

}  // namespace cusw::gpusim
