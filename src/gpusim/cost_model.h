// Cycle-cost calibration constants for the timing model.
//
// DESIGN.md §5 describes the model. The constants below were calibrated once
// against three anchor points from the paper (C1060): inter-task kernel ≈ 17
// GCUPs on a near-uniform database, original intra-task kernel ≈ 1.5 GCUPs,
// improved intra-task kernel ≈ 11x the original. Every other number the
// benches report is emergent from the transaction counts, cache behaviour,
// occupancy and scheduling — not from further tuning.
#pragma once

namespace cusw::gpusim {

struct CostModel {
  /// Arithmetic cycles to update one SW cell held entirely in registers
  /// (profile add, three maxes, clamp, bookkeeping).
  double cycles_per_cell = 10.0;

  /// Cycles per shared-memory access (Fermi L1-equivalent throughput).
  double cycles_per_shared_access = 1.5;

  /// Cycles charged to a block for each __syncthreads barrier.
  double sync_cycles = 24.0;

  /// Memory-level parallelism: independent outstanding loads a single warp
  /// sustains, which divide the serial latency chain.
  double mlp = 4.0;

  /// Pipeline cycles to issue one memory transaction from a warp (the
  /// throughput cost of uncoalesced instructions that split into many
  /// transactions).
  double txn_issue_cycles = 8.0;

  /// Issue-slot cycles a memory instruction costs its warp even when the
  /// data is cached — this is why fetching one packed profile word per tile
  /// beats four plain fetches (§III-B) even with perfect caching.
  double mem_issue_cycles = 4.0;

  /// Cap on how many co-resident warps can hide each other's latency.
  double latency_hide_warps = 8.0;
};

}  // namespace cusw::gpusim
