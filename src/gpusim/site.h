// Access-site interning: the per-source-site attribution labels carried by
// gpusim access records (DESIGN.md §9). A site names one memory-access
// statement in a kernel ("profile.tex_fetch", "strip.boundary_store"); the
// profiler attributes every request, transaction and cache hit to the site
// that issued it, the way Nsight Compute attributes SASS memory
// instructions to source lines.
//
// Sites are interned once, at kernel-launch setup time, into small dense
// ids; the per-record hot path carries only the id. Interning is process
// global so the same label always maps to the same id within a run, and
// reports always key on the *name*, which is stable across runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cusw::gpusim {

using SiteId = std::uint16_t;

/// Id 0 is pre-registered as "unattributed": the site of every access
/// record whose call site predates attribution (or chooses not to label).
inline constexpr SiteId kSiteUnattributed = 0;

/// Intern `name`, returning its stable id (allocating one on first use).
/// Thread-safe; cheap enough for launch setup, not for per-cell loops —
/// kernels intern once and reuse the id.
SiteId intern_site(std::string_view name);

/// Name of an interned site. References stay valid for the process
/// lifetime. Unknown ids report as "unattributed".
const std::string& site_name(SiteId id);

/// Number of interned sites (including the pre-registered id 0).
std::size_t site_count();

}  // namespace cusw::gpusim
