// Simulated-cycle stall attribution: every cycle the cost model charges
// to a launch is tagged with the reason it was spent.
//
// The window cost model (launch.cpp, DESIGN.md §5) prices each window as
//   max(compute + issue, bandwidth, latency) + sync
// so a window's cycles are decomposed by which term won the max and, for
// the winner, by its additive components. DESIGN.md §10 maps each reason
// to the CostModel constant behind it.
//
// Breakdowns are kept in fixed-point integer *ticks* (1024 per simulated
// cycle) rather than doubles: every window's tick total is partitioned
// exactly (the last component takes the remainder), and integer addition
// is associative, so the per-reason sums equal the charged total exactly
// and the whole breakdown is bit-identical for any CUSW_THREADS value —
// the same determinism contract the memory counters already honour.
#pragma once

#include <cstdint>

namespace cusw::gpusim {

/// Fixed-point scale of stall accounting: ticks per simulated cycle.
inline constexpr std::uint64_t kStallTicksPerCycle = 1024;

/// Convert a tick count back to (approximate) simulated cycles.
inline double stall_ticks_to_cycles(std::uint64_t ticks) {
  return static_cast<double>(ticks) /
         static_cast<double>(kStallTicksPerCycle);
}

/// Per-reason cycle attribution of a launch (or of one window, in which
/// case occupancy_idle is zero — idle slots exist only at launch scope).
/// Invariant: the seven reasons sum to `charged` exactly.
struct StallBreakdown {
  std::uint64_t compute = 0;          // arithmetic + shared-memory work
  std::uint64_t mem_issue = 0;        // memory-instruction issue slots
  std::uint64_t txn_issue = 0;        // transaction throughput (coalescing)
  std::uint64_t exposed_latency = 0;  // latency MLP could not hide
  std::uint64_t sync = 0;             // __syncthreads barriers
  std::uint64_t bank_conflict = 0;    // shared-memory bank serialisation
  std::uint64_t occupancy_idle = 0;   // SM slots idle before launch end
  /// Total ticks charged: Σ windows (+ occupancy idle at launch scope).
  std::uint64_t charged = 0;

  /// Ticks attributed to the memory system — the portion distributed over
  /// per-site attribution rows (SpaceCounters::stall_ticks).
  std::uint64_t memory_ticks() const {
    return mem_issue + txn_issue + exposed_latency;
  }

  StallBreakdown& operator+=(const StallBreakdown& o) {
    compute += o.compute;
    mem_issue += o.mem_issue;
    txn_issue += o.txn_issue;
    exposed_latency += o.exposed_latency;
    sync += o.sync;
    bank_conflict += o.bank_conflict;
    occupancy_idle += o.occupancy_idle;
    charged += o.charged;
    return *this;
  }
};

/// Visit every stall reason as (name, value reference) — the single
/// source of truth for the reason list, iterated by the registry mirror,
/// the counters report, the trace args and the sum-invariant tests. The
/// static_assert trips when a reason is added without extending it
/// (`charged` is deliberately not visited: it is the sum, not a reason).
template <class B, class F>
inline void for_each_stall_reason(B&& b, F&& f) {
  static_assert(sizeof(StallBreakdown) == 8 * sizeof(std::uint64_t),
                "StallBreakdown changed: extend for_each_stall_reason");
  f("compute", b.compute);
  f("mem_issue", b.mem_issue);
  f("txn_issue", b.txn_issue);
  f("exposed_latency", b.exposed_latency);
  f("sync", b.sync);
  f("bank_conflict", b.bank_conflict);
  f("occupancy_idle", b.occupancy_idle);
}

}  // namespace cusw::gpusim
