// Human-readable profiler-style reports for launch statistics — the
// simulator's equivalent of the CUDA profiler output the paper used to
// count global memory accesses (Table I).
#pragma once

#include <string>

#include "gpusim/launch.h"

namespace cusw::gpusim {

/// Multi-line summary of a launch: occupancy, time, per-space requests /
/// transactions / cache hits, shared traffic and barriers.
std::string format_launch_report(const LaunchStats& stats,
                                 const DeviceSpec& spec);

/// One-line summary (label: time, transactions, hit rates).
std::string format_launch_line(const std::string& label,
                               const LaunchStats& stats);

/// The launch's per-site attribution rows as a JSON array
/// (`[{"site": ..., "space": ..., counters..., "coalescing_efficiency":
/// ..., "hit_rate": ...}, ...]`), sorted by (site name, space) so the
/// output is stable across runs regardless of interning order. Benches
/// embed this next to their aggregate numbers.
std::string site_breakdown_json(const LaunchStats& stats);

}  // namespace cusw::gpusim
