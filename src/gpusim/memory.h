// Simulated device memory: buffers with device addresses plus the counter
// structures the profiler-style experiments (Table I) read out.
//
// Buffers are functional (they really hold the data the kernels compute
// with) and carry a device address so the coalescer and caches see the same
// layout a real kernel would.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cusw::gpusim {

enum class Space : std::uint8_t { Global, Local, Texture };

struct SpaceCounters {
  std::uint64_t requests = 0;      // access records before coalescing
  std::uint64_t transactions = 0;  // post-coalescing memory transactions
  std::uint64_t dram_transactions = 0;  // transactions that reached DRAM
  std::uint64_t dram_bytes = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t tex_hits = 0;

  SpaceCounters& operator+=(const SpaceCounters& o) {
    requests += o.requests;
    transactions += o.transactions;
    dram_transactions += o.dram_transactions;
    dram_bytes += o.dram_bytes;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    tex_hits += o.tex_hits;
    return *this;
  }
};

/// A device allocation. Functional storage plus a stable device address.
template <class T>
class Buffer {
 public:
  Buffer() = default;
  Buffer(std::uint64_t base, std::size_t n) : base_(base), data_(n) {}

  std::size_t size() const { return data_.size(); }
  std::uint64_t device_addr(std::size_t i = 0) const {
    return base_ + i * sizeof(T);
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& at(std::size_t i) { return data_.at(i); }
  const T& at(std::size_t i) const { return data_.at(i); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::uint64_t base_ = 0;
  std::vector<T> data_;
};

/// Read-only buffer bound to the texture unit (cached through the per-SM
/// texture cache, as the CUDASW++ query profile is).
template <class T>
class TextureBuffer {
 public:
  TextureBuffer() = default;
  TextureBuffer(std::uint64_t base, std::vector<T> data)
      : base_(base), data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  std::uint64_t device_addr(std::size_t i = 0) const {
    return base_ + i * sizeof(T);
  }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* data() const { return data_.data(); }

 private:
  std::uint64_t base_ = 0;
  std::vector<T> data_;
};

}  // namespace cusw::gpusim
