// Simulated device memory: buffers with device addresses plus the counter
// structures the profiler-style experiments (Table I) read out.
//
// Buffers are functional (they really hold the data the kernels compute
// with) and carry a device address so the coalescer and caches see the same
// layout a real kernel would.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cusw::gpusim {

enum class Space : std::uint8_t { Global, Local, Texture };

/// Stable lowercase name of a memory space ("global" / "local" /
/// "texture"), used in metric paths and counter reports.
inline const char* space_name(Space s) {
  switch (s) {
    case Space::Global:
      return "global";
    case Space::Local:
      return "local";
    case Space::Texture:
      return "texture";
  }
  return "global";  // unreachable
}

struct SpaceCounters {
  std::uint64_t requests = 0;      // access records before coalescing
  std::uint64_t transactions = 0;  // post-coalescing memory transactions
  std::uint64_t dram_transactions = 0;  // transactions that reached DRAM
  std::uint64_t dram_bytes = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t tex_hits = 0;
  /// Memory-stall ticks (gpusim/stall.h fixed point) attributed to this
  /// space/site: each window's memory-reason ticks are distributed over
  /// the (site, space) rows that issued its transactions, weighted by
  /// observed latency + issue cost.
  std::uint64_t stall_ticks = 0;

  SpaceCounters& operator+=(const SpaceCounters& o) {
    requests += o.requests;
    transactions += o.transactions;
    dram_transactions += o.dram_transactions;
    dram_bytes += o.dram_bytes;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    tex_hits += o.tex_hits;
    stall_ticks += o.stall_ticks;
    return *this;
  }
};

/// Visit every SpaceCounters field as (name, value reference). This is the
/// single source of truth for the counter schema: the registry mirror in
/// gpusim::launch, the bit-for-bit mirror test, and the cusw-counters
/// report all iterate it, so a field added here is automatically
/// published, reported and tested. The static_assert below trips when a
/// field is added to the struct without extending the visitor.
template <class C, class F>
inline void for_each_space_counter_field(C&& c, F&& f) {
  static_assert(sizeof(SpaceCounters) == 8 * sizeof(std::uint64_t),
                "SpaceCounters changed: extend for_each_space_counter_field");
  f("requests", c.requests);
  f("transactions", c.transactions);
  f("dram_transactions", c.dram_transactions);
  f("dram_bytes", c.dram_bytes);
  f("l1_hits", c.l1_hits);
  f("l2_hits", c.l2_hits);
  f("tex_hits", c.tex_hits);
  f("stall_ticks", c.stall_ticks);
}

/// A device allocation. Functional storage plus a stable device address.
template <class T>
class Buffer {
 public:
  Buffer() = default;
  Buffer(std::uint64_t base, std::size_t n) : base_(base), data_(n) {}

  std::size_t size() const { return data_.size(); }
  std::uint64_t device_addr(std::size_t i = 0) const {
    return base_ + i * sizeof(T);
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& at(std::size_t i) { return data_.at(i); }
  const T& at(std::size_t i) const { return data_.at(i); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::uint64_t base_ = 0;
  std::vector<T> data_;
};

/// Read-only buffer bound to the texture unit (cached through the per-SM
/// texture cache, as the CUDASW++ query profile is).
template <class T>
class TextureBuffer {
 public:
  TextureBuffer() = default;
  TextureBuffer(std::uint64_t base, std::vector<T> data)
      : base_(base), data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  std::uint64_t device_addr(std::size_t i = 0) const {
    return base_ + i * sizeof(T);
  }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* data() const { return data_.data(); }

 private:
  std::uint64_t base_ = 0;
  std::vector<T> data_;
};

/// Bump allocator for simulated device addresses. Caches never persist
/// across launches (Device::launch builds them per launch), so a kernel run
/// may draw its addresses from a private arena at a fixed base: the
/// addresses — and with them cache set indexing and every derived counter —
/// come out identical no matter how many kernel runs execute concurrently
/// on host threads. The cursor is atomic so an arena may also be shared
/// (Device's process-lifetime allocator is one).
class MemoryArena {
 public:
  static constexpr std::uint64_t kDefaultBase = std::uint64_t{1} << 16;

  explicit MemoryArena(std::uint64_t base = kDefaultBase) : cursor_(base) {}

  template <class T>
  Buffer<T> alloc(std::size_t n) {
    return Buffer<T>(bump(n * sizeof(T)), n);
  }

  template <class T>
  TextureBuffer<T> make_texture(std::vector<T> data) {
    const std::size_t bytes = data.size() * sizeof(T);
    return TextureBuffer<T>(bump(bytes), std::move(data));
  }

  /// Reserve an address range without host-side storage (for inputs whose
  /// functional bytes the kernels read from host containers while
  /// accounting through device addresses).
  std::uint64_t reserve(std::size_t bytes) { return bump(bytes); }

 private:
  std::uint64_t bump(std::size_t bytes) {
    // 256-byte allocation granularity, as on the real devices.
    return cursor_.fetch_add((bytes + 255) / 256 * 256,
                             std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> cursor_;
};

}  // namespace cusw::gpusim
