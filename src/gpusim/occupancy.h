// CUDA occupancy calculation: how many blocks of a given shape fit on one SM.
#pragma once

#include <algorithm>
#include <cstddef>

#include "gpusim/device_spec.h"
#include "util/check.h"

namespace cusw::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  double occupancy = 0.0;  // active warps / max warps
};

inline Occupancy compute_occupancy(const DeviceSpec& dev, int threads_per_block,
                                   std::size_t shared_bytes_per_block,
                                   int regs_per_thread) {
  CUSW_REQUIRE(threads_per_block > 0 &&
                   threads_per_block <= dev.max_threads_per_block,
               "threads per block out of range for device");
  CUSW_REQUIRE(regs_per_thread >= 0, "negative register count");

  int blocks = dev.max_blocks_per_sm;
  blocks = std::min(blocks, dev.max_threads_per_sm / threads_per_block);
  if (shared_bytes_per_block > 0) {
    blocks = std::min(blocks, static_cast<int>(dev.shared_mem_per_sm /
                                               shared_bytes_per_block));
  }
  if (regs_per_thread > 0) {
    const std::size_t regs_per_block =
        static_cast<std::size_t>(regs_per_thread) *
        static_cast<std::size_t>(threads_per_block);
    blocks = std::min(blocks,
                      static_cast<int>(dev.registers_per_sm / regs_per_block));
  }
  blocks = std::max(blocks, 0);

  Occupancy occ;
  occ.blocks_per_sm = blocks;
  const int warps_per_block =
      (threads_per_block + dev.warp_size - 1) / dev.warp_size;
  occ.warps_per_sm = blocks * warps_per_block;
  const int max_warps = dev.max_threads_per_sm / dev.warp_size;
  occ.occupancy =
      max_warps > 0 ? static_cast<double>(occ.warps_per_sm) / max_warps : 0.0;
  return occ;
}

}  // namespace cusw::gpusim
