#include "gpusim/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/json.h"

namespace cusw::gpusim {

namespace {

void space_row(std::ostream& os, const char* name, const SpaceCounters& c) {
  os << "  " << std::left << std::setw(8) << name << std::right
     << " requests " << std::setw(12) << c.requests << "  transactions "
     << std::setw(12) << c.transactions << "  dram " << std::setw(12)
     << c.dram_transactions;
  const std::uint64_t hits = c.l1_hits + c.l2_hits + c.tex_hits;
  if (c.transactions > 0) {
    os << "  hit-rate " << std::fixed << std::setprecision(1)
       << 100.0 * static_cast<double>(hits) /
              static_cast<double>(c.transactions)
       << "%";
  }
  os << "\n";
}

}  // namespace

std::string format_launch_report(const LaunchStats& stats,
                                 const DeviceSpec& spec) {
  std::ostringstream os;
  os << "launch on " << spec.name << ": " << stats.blocks << " blocks x "
     << "(" << stats.occupancy.blocks_per_sm << " resident/SM, occupancy "
     << std::fixed << std::setprecision(2) << stats.occupancy.occupancy;
  // Merged reports carry an occupancy range; show the spread when the
  // accumulated launches differed (a single launch has min == max).
  if (stats.occupancy_min != 0.0 && stats.occupancy_min != stats.occupancy_max) {
    os << " [" << stats.occupancy_min << ".." << stats.occupancy_max << "]";
  }
  os << ")\n";
  os << "  time " << std::scientific << std::setprecision(3) << stats.seconds
     << " s  (" << std::fixed << std::setprecision(0) << stats.makespan_cycles
     << " cycles makespan, " << stats.total_block_cycles
     << " block-cycles total)\n";
  space_row(os, "global", stats.global);
  space_row(os, "local", stats.local);
  space_row(os, "texture", stats.texture);
  os << "  shared   accesses " << std::setw(12) << stats.shared_accesses
     << "  bank conflicts " << stats.bank_conflict_cycles << " cycles\n";
  os << "  barriers " << stats.syncs << " (windows " << stats.windows << ")\n";
  // Stall attribution (absent for hand-built stats with no breakdown, so
  // pre-stall reports — and their golden strings — are unchanged).
  if (stats.stall.charged > 0) {
    const double charged = static_cast<double>(stats.stall.charged);
    os << "  stall   ";
    for_each_stall_reason(stats.stall,
                          [&](const char* reason, std::uint64_t v) {
                            os << " " << reason << " " << std::fixed
                               << std::setprecision(1)
                               << 100.0 * static_cast<double>(v) / charged
                               << "%";
                          });
    os << "\n";
  }
  return os.str();
}

std::string format_launch_line(const std::string& label,
                               const LaunchStats& stats) {
  std::ostringstream os;
  os << label << ": " << std::scientific << std::setprecision(3)
     << stats.seconds << " s, global txns "
     << stats.global_memory_transactions() << ", tex "
     << stats.texture.transactions << ", shared " << stats.shared_accesses
     << ", syncs " << stats.syncs;
  return os.str();
}

std::string site_breakdown_json(const LaunchStats& stats) {
  std::vector<SiteCounters> rows = stats.sites;
  std::sort(rows.begin(), rows.end(),
            [](const SiteCounters& a, const SiteCounters& b) {
              const std::string& an = site_name(a.site);
              const std::string& bn = site_name(b.site);
              if (an != bn) return an < bn;
              return static_cast<int>(a.space) < static_cast<int>(b.space);
            });
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    util::JsonFields f;
    f.field("site", std::string_view(site_name(rows[i].site)));
    f.field("space", std::string_view(space_name(rows[i].space)));
    const SpaceCounters& c = rows[i].counters;
    for_each_space_counter_field(c, [&](const char* field, std::uint64_t v) {
      f.field(field, v);
    });
    // Derived ratios are always present and guarded: a site with zero
    // transactions (request-only statistical traffic) reports 0.0, never
    // NaN, so downstream JSON consumers need no special cases.
    f.field("coalescing_efficiency",
            c.transactions > 0
                ? static_cast<double>(c.requests) /
                      static_cast<double>(c.transactions)
                : 0.0);
    f.field("hit_rate",
            c.transactions > 0
                ? static_cast<double>(c.l1_hits + c.l2_hits + c.tex_hits) /
                      static_cast<double>(c.transactions)
                : 0.0);
    f.field("stall_cycles", stall_ticks_to_cycles(c.stall_ticks));
    out += i ? ",\n   " : "\n   ";
    out += f.object();
  }
  out += "\n  ]";
  return out;
}

}  // namespace cusw::gpusim
