// Set-associative cache with LRU replacement, simulated at line granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cusw::gpusim {

class Cache {
 public:
  /// A cache of `size_bytes` capacity with `line_bytes` lines and
  /// `associativity` ways. size_bytes == 0 builds a disabled cache that
  /// never hits.
  Cache(std::size_t size_bytes, std::size_t line_bytes, int associativity);

  bool enabled() const { return sets_ > 0; }

  /// Look up (and on miss, fill) the line containing `addr`.
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  /// Drop a line if present (used for write-invalidate in L1).
  void invalidate(std::uint64_t addr);

  void clear();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Address-translation period of a cache with this geometry: shifting
  /// every address of a trace by a multiple of `line_bytes * sets` maps
  /// each line to the same set with consistently shifted tags, so the
  /// hit/miss/eviction sequence is preserved exactly. Zero for a disabled
  /// cache (no constraint). This is what makes block memoization sound:
  /// two blocks whose footprints are translates of each other by a
  /// multiple of every enabled cache's period behave identically
  /// (gpusim/launch.h, MemoPeriods).
  static std::size_t translation_span(std::size_t size_bytes,
                                      std::size_t line_bytes,
                                      int associativity);

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t lru = 0;
    bool valid = false;
  };

  std::size_t line_bytes_;
  std::size_t sets_;
  int ways_;
  std::vector<Way> lines_;  // sets_ x ways_, row-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cusw::gpusim
