#include "gpusim/site.h"

#include <deque>
#include <map>
#include <mutex>

#include "util/check.h"

namespace cusw::gpusim {

namespace {

// The interner: names live in a deque so references never move, the map
// keys view into it. Guarded by a plain mutex — interning happens at
// launch setup, never on the per-record path.
struct SiteTable {
  std::mutex mu;
  std::deque<std::string> names;
  std::map<std::string, SiteId, std::less<>> ids;

  SiteTable() {
    names.emplace_back("unattributed");
    ids.emplace(names.back(), kSiteUnattributed);
  }
};

SiteTable& table() {
  // Leaked intentionally: atexit reporters resolve site names after static
  // destructors would have run (same contract as obs::Registry::global).
  static SiteTable* t = new SiteTable;
  return *t;
}

}  // namespace

SiteId intern_site(std::string_view name) {
  SiteTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  const auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  CUSW_CHECK(t.names.size() < 0xFFFF, "site table overflow");
  const auto id = static_cast<SiteId>(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(t.names.back(), id);
  return id;
}

const std::string& site_name(SiteId id) {
  SiteTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  if (id >= t.names.size()) return t.names.front();
  return t.names[id];
}

std::size_t site_count() {
  SiteTable& t = table();
  std::lock_guard<std::mutex> lk(t.mu);
  return t.names.size();
}

}  // namespace cusw::gpusim
