#include "gpusim/device_spec.h"

#include <algorithm>

namespace cusw::gpusim {

DeviceSpec DeviceSpec::tesla_c1060() {
  DeviceSpec d;
  d.name = "Tesla C1060";
  d.sm_count = 30;
  d.cores_per_sm = 8;
  d.clock_ghz = 1.296;
  d.max_threads_per_block = 512;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm = 16 * 1024;
  d.registers_per_sm = 16 * 1024;
  d.mem_bandwidth_gbs = 102.0;
  d.dram_latency = 550;
  d.has_l1 = false;
  d.has_l2 = false;
  d.tex_l2_bytes = 256 * 1024;
  return d;
}

DeviceSpec DeviceSpec::tesla_c2050() {
  DeviceSpec d;
  d.name = "Tesla C2050";
  d.sm_count = 14;
  d.cores_per_sm = 32;
  d.clock_ghz = 1.15;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 8;
  d.shared_mem_per_sm = 48 * 1024;
  d.registers_per_sm = 32 * 1024;
  d.mem_bandwidth_gbs = 144.0;
  d.dram_latency = 500;
  d.has_l1 = true;
  d.has_l2 = true;
  d.l1_bytes = 16 * 1024;  // default split: 48 KB shared / 16 KB L1
  d.l2_bytes = 768 * 1024;
  d.l1_latency = 30;
  d.l2_latency = 200;
  d.tex_l2_bytes = 0;  // Fermi textures are backed by the unified L2
  return d;
}

DeviceSpec DeviceSpec::scaled(double factor) const {
  DeviceSpec d = *this;
  d.sm_count = std::max(1, static_cast<int>(sm_count * factor + 0.5));
  const double real_factor = static_cast<double>(d.sm_count) / sm_count;
  d.mem_bandwidth_gbs *= real_factor;
  d.l2_bytes = static_cast<std::size_t>(
      static_cast<double>(l2_bytes) * real_factor);
  // The texture L2 serves one shared read-only copy of the query profile;
  // a device slice keeps it at full capacity.
  return d;
}

DeviceSpec DeviceSpec::with_caches_disabled() const {
  DeviceSpec d = *this;
  d.name = name + " (L1/L2 off)";
  d.has_l1 = false;
  d.has_l2 = false;
  d.l1_bytes = 0;
  d.l2_bytes = 0;
  return d;
}

}  // namespace cusw::gpusim
