// §VI: scanning databases larger than device memory.
//
// "This would allow large databases to be used, such as the NR database or
// TrEMBL, which are currently too large to fit in the memory of a single
// Tesla C1060 or C2050."
//
// The chunked scanner estimates the device-resident footprint of the
// search (encoded residues, per-thread row buffers, profile, score
// vectors), splits the length-sorted database into chunks that fit the
// device's global memory, and scans chunk by chunk, accounting the
// host-to-device copy of each chunk — overlapped with the previous chunk's
// kernels when streaming is enabled (the paper's other §VI proposal).
#pragma once

#include "cudasw/multi_gpu.h"
#include "cudasw/pipeline.h"

namespace cusw::cudasw {

struct ChunkedConfig {
  SearchConfig search;
  /// Device global memory budget in bytes (defaults are per-GPU presets:
  /// 4 GiB C1060, 3 GiB C2050). Exposed so tests and scaled experiments can
  /// shrink it.
  std::uint64_t device_memory_bytes = 4ull << 30;
  TransferModel transfer;
  bool overlap_transfers = true;
  /// Fault schedule (gpusim/fault.h); default-constructed = disabled.
  /// Chunk copies and chunk scans faulted transiently are retried under
  /// `backoff` (each re-copy is charged again); a device loss degrades the
  /// remaining chunks to the striped CPU engine when `allow_cpu_fallback`,
  /// and rethrows otherwise. Scores are bit-identical either way.
  gpusim::FaultPlan faults;
  util::BackoffPolicy backoff;
  bool allow_cpu_fallback = true;
};

struct ChunkedReport {
  std::vector<int> scores;  // original database order
  std::size_t chunks = 0;
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  double total_seconds = 0.0;  // with or without overlap per config
  gpusim::FaultStats faults;

  double gcups(std::uint64_t cells) const {
    return total_seconds > 0.0
               ? static_cast<double>(cells) / total_seconds * 1e-9
               : 0.0;
  }
};

/// Device bytes needed to hold a database chunk of `residues` residues and
/// `sequences` sequences for the given search configuration.
std::uint64_t device_footprint_bytes(std::uint64_t residues,
                                     std::uint64_t sequences,
                                     std::size_t query_length,
                                     const SearchConfig& cfg);

/// Scan a database of any size, splitting it into device-memory-sized
/// chunks. Scores are identical to a single search() over the whole
/// database.
ChunkedReport chunked_search(gpusim::Device& dev,
                             const std::vector<seq::Code>& query,
                             const seq::SequenceDB& db,
                             const sw::ScoringMatrix& matrix,
                             const ChunkedConfig& cfg);

}  // namespace cusw::cudasw
