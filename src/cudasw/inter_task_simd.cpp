#include "cudasw/inter_task_simd.h"

#include <algorithm>
#include <array>
#include <limits>

#include "cudasw/memo_util.h"
#include "gpusim/occupancy.h"
#include "util/check.h"

namespace cusw::cudasw {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
// Amortised cycles per similarity fetch (lane-divergent addresses; modelled
// statistically, as in the SIMT inter-task kernel — see DESIGN.md §5).
constexpr double kTexFetchCycles = 4.0;
}  // namespace

std::size_t inter_task_simd_group_size(const gpusim::DeviceSpec& dev,
                                       const InterTaskSimdParams& params) {
  const gpusim::Occupancy occ = gpusim::compute_occupancy(
      dev, params.threads_per_block, 0, params.regs_per_thread);
  CUSW_CHECK(occ.blocks_per_sm > 0, "vSIMD config admits no blocks");
  return static_cast<std::size_t>(dev.sm_count) *
         static_cast<std::size_t>(occ.blocks_per_sm) *
         static_cast<std::size_t>(params.threads_per_block) /
         InterTaskSimdParams::kQuadLanes;
}

KernelRun run_inter_task_simd(gpusim::Device& dev,
                              const std::vector<seq::Code>& query,
                              seq::SequenceDBView group,
                              const sw::ScoringMatrix& matrix,
                              sw::GapPenalty gap,
                              const InterTaskSimdParams& params) {
  constexpr int kLanes = InterTaskSimdParams::kQuadLanes;
  CUSW_REQUIRE(params.threads_per_block % kLanes == 0,
               "block size must be a multiple of the quad width");

  KernelRun out;
  out.scores.assign(group.size(), 0);
  if (group.empty() || query.empty()) return out;

  const std::size_t m = query.size();
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const int tpb = params.threads_per_block;
  const int quads_per_block = tpb / kLanes;
  const int blocks =
      (static_cast<int>(group.size()) + quads_per_block - 1) / quads_per_block;
  const std::size_t band = (m + kLanes - 1) / kLanes;  // query rows per lane

  std::size_t max_len = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    max_len = std::max(max_len, group[i].length());
    out.cells += m * group[i].length();
  }

  // Device layout: sequences interleaved by quad index within the group,
  // at per-run arena addresses (independent of launch concurrency/order).
  gpusim::MemoryArena arena;
  const std::uint64_t db_base =
      arena.reserve(max_len * static_cast<std::uint64_t>(group.size()));

  // Attribution sites, interned once per run (see gpusim/site.h).
  const gpusim::SiteId kSiteProfile = gpusim::intern_site("profile.tex_fetch");
  const gpusim::SiteId kSiteDb = gpusim::intern_site("db.symbol_load");
  const gpusim::SiteId kSiteScore = gpusim::intern_site("score.store");

  gpusim::LaunchConfig cfg;
  cfg.label = "inter_task_simd";
  cfg.cells = out.cells;
  cfg.blocks = blocks;
  cfg.threads_per_block = tpb;
  cfg.regs_per_thread = params.regs_per_thread;
  // Quad-boundary H/F handoffs, double buffered.
  cfg.shared_bytes_per_block = static_cast<std::size_t>(2 * 2 * tpb) * 4;

  const double cell_cycles = dev.cost_model().cycles_per_cell;

  // Block memoization (DESIGN.md §12). Database fetches address
  // db_base + (k % max_len) * |group| + base_seq + q, so beyond the quad
  // lengths the key pins max_len (which shapes the k-periodic term), the
  // group-size stride and base_seq modulo the translation period.
  const swps3::StripedEngine engine(query, matrix, gap);
  cfg.memo_key = [&](int block, const gpusim::MemoPeriods& p,
                     std::vector<std::uint64_t>& key) {
    const int base_seq = block * quads_per_block;
    const int quads =
        std::min(quads_per_block, static_cast<int>(group.size()) - base_seq);
    key.push_back(m);
    key.push_back(max_len);
    key.push_back(db_base % p.global);
    key.push_back(static_cast<std::uint64_t>(group.size()) % p.global);
    key.push_back(static_cast<std::uint64_t>(base_seq) % p.global);
    key.push_back(static_cast<std::uint64_t>(quads));
    for (int q = 0; q < quads; ++q) {
      key.push_back(group[static_cast<std::size_t>(base_seq + q)].length());
    }
  };
  cfg.memo_replay = [&](int block) {
    const int base_seq = block * quads_per_block;
    const int quads =
        std::min(quads_per_block, static_cast<int>(group.size()) - base_seq);
    for (int q = 0; q < quads; ++q) {
      const auto& target =
          group[static_cast<std::size_t>(base_seq + q)].residues;
      out.scores[static_cast<std::size_t>(base_seq + q)] =
          memo_replay_score(engine, query, target, matrix, gap);
    }
  };

  out.stats = dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
    const int block = ctx.block_id();
    const int base_seq = block * quads_per_block;
    const int quads =
        std::min(quads_per_block, static_cast<int>(group.size()) - base_seq);

    // Functional state, per quad: horizontal carries for every lane's band
    // and the double-buffered cross-lane boundary values.
    std::vector<std::vector<int>> h_left(static_cast<std::size_t>(quads)),
        e_left(static_cast<std::size_t>(quads));
    std::vector<std::array<int, kLanes>> diag_reg(
        static_cast<std::size_t>(quads));
    std::vector<std::array<int, 2 * kLanes>> sh_h(
        static_cast<std::size_t>(quads)),
        sh_f(static_cast<std::size_t>(quads));
    std::vector<int> best(static_cast<std::size_t>(quads), 0);
    std::size_t steps = 0;
    for (int q = 0; q < quads; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      h_left[qi].assign(static_cast<std::size_t>(kLanes) * band, 0);
      e_left[qi].assign(static_cast<std::size_t>(kLanes) * band, kNegInf);
      diag_reg[qi].fill(0);
      sh_h[qi].fill(0);
      sh_f[qi].fill(kNegInf);
      steps = std::max(
          steps, group[static_cast<std::size_t>(base_seq + q)].length() +
                     kLanes - 1);
    }

    // Lockstep wavefront: at step k, lane j of each quad computes column
    // k - j of its band. The block barrier per step means the slowest
    // (longest) sequence in the block paces everyone — but a block holds
    // only `quads` sequences, a 4x narrower slice of the sorted order than
    // the SIMT kernel's.
    for (std::size_t k = 0; k < steps; ++k) {
      const int cur = static_cast<int>(k % 2);
      const int prev = 1 - cur;
      int active_lanes = 0;
      for (int q = 0; q < quads; ++q) {
        const auto qi = static_cast<std::size_t>(q);
        const auto& target =
            group[static_cast<std::size_t>(base_seq + q)].residues;
        const std::size_t n = target.size();
        for (int j = 0; j < kLanes; ++j) {
          if (k < static_cast<std::size_t>(j)) continue;
          const std::size_t c = k - static_cast<std::size_t>(j);
          if (c >= n) continue;
          const std::size_t r0 = static_cast<std::size_t>(j) * band;
          if (r0 >= m) continue;
          const std::size_t rows = std::min(band, m - r0);
          ++active_lanes;
          const int lane = q * kLanes + j;

          int top_h, top_f;
          if (j == 0) {
            top_h = 0;
            top_f = kNegInf;
          } else {
            top_h = sh_h[qi][static_cast<std::size_t>(prev * kLanes + j - 1)];
            top_f = sh_f[qi][static_cast<std::size_t>(prev * kLanes + j - 1)];
          }
          const int diag_h =
              c > 0 ? diag_reg[qi][static_cast<std::size_t>(j)] : 0;

          int* hl = &h_left[qi][r0];
          int* el = &e_left[qi][r0];
          const seq::Code d = target[c];
          int up_h = top_h, up_f = top_f, dval = diag_h;
          int b = best[qi];
          for (std::size_t r = 0; r < rows; ++r) {
            const int e = std::max(el[r] - sigma, hl[r] - rho);
            const int fv = std::max(up_f - sigma, up_h - rho);
            int hv = dval + matrix.score(query[r0 + r], d);
            hv = std::max(std::max(0, hv), std::max(e, fv));
            dval = hl[r];
            hl[r] = hv;
            el[r] = e;
            up_h = hv;
            up_f = fv;
            b = std::max(b, hv);
          }
          best[qi] = b;
          diag_reg[qi][static_cast<std::size_t>(j)] = top_h;
          sh_h[qi][static_cast<std::size_t>(cur * kLanes + j)] = up_h;
          sh_f[qi][static_cast<std::size_t>(cur * kLanes + j)] = up_f;

          ctx.charge(lane, static_cast<double>(rows) * cell_cycles +
                               static_cast<double>(rows) * kTexFetchCycles /
                                   4.0);
          ctx.note_requests(gpusim::Space::Texture, (rows + 3) / 4,
                            kSiteProfile);
          ctx.shared_access(lane, 2 + (j > 0 ? 2 : 0));
        }
        // Database symbol for this quad's current columns: one byte per
        // active lane, lanes of a warp land in different sequences.
        if (k < group[static_cast<std::size_t>(base_seq + q)].length() +
                    kLanes - 1) {
          ctx.access(gpusim::Space::Global, q * kLanes,
                     db_base + (k % max_len) *
                                   static_cast<std::uint64_t>(group.size()) +
                         static_cast<std::uint64_t>(base_seq + q),
                     1, false, kSiteDb);
        }
      }
      if (active_lanes == 0) break;
      ctx.sync();
    }
    for (int q = 0; q < quads; ++q) {
      out.scores[static_cast<std::size_t>(base_seq + q)] =
          best[static_cast<std::size_t>(q)];
      ctx.access(gpusim::Space::Global, q * kLanes,
                 db_base + static_cast<std::uint64_t>(base_seq + q) * 4, 4,
                 true, kSiteScore);
    }
  });
  return out;
}

}  // namespace cusw::cudasw
