// Configuration of the CUDASW++ search pipeline and its kernels.
#pragma once

#include <cstddef>

#include "sw/scoring.h"

namespace cusw::cudasw {

enum class IntraKernel {
  kOriginal,  // CUDASW++ 1.x/2.0 wavefront kernel (global-memory working set)
  kImproved,  // this paper's tiled strip-mined kernel
};

/// Inter-task kernel parameters (one thread per database sequence,
/// 8-column x 4-row register tiles).
struct InterTaskParams {
  int threads_per_block = 64;
  int regs_per_thread = 40;
  int tile_cols = 8;
  int tile_rows = 4;
  /// §II-A: CUDASW++ builds a packed query profile in texture memory for
  /// this kernel (one fetch per tile column). With the profile off, every
  /// cell pays its own similarity lookup — the pre-Rognes/Seeberg design.
  bool use_query_profile = true;
};

/// Original intra-task kernel parameters (one block per pair, wavefront
/// order over single cells).
struct OriginalIntraParams {
  int threads_per_block = 256;
  int regs_per_thread = 24;
};

/// Improved intra-task kernel parameters and feature toggles. The defaults
/// are the paper's final configuration; the toggles recreate the incremental
/// versions of §III and the future-work extensions of §VI.
struct ImprovedIntraParams {
  int threads_per_block = 256;
  int tile_height = 4;
  int tile_width = 1;
  int regs_per_thread = 32;

  // §III-A: with `deep_swap` false, the shallow pointer swap makes nvcc
  // spill the per-tile H/E register arrays to local (= global) memory.
  bool deep_swap = true;
  // §III-A: with `unroll_profile_loop` false, the texture fetch inside the
  // tile loop prevents unrolling and spills the tile accumulators to local.
  bool unroll_profile_loop = true;
  // §III-B: packed query profile (4 scores per fetch) vs one fetch per cell.
  bool packed_profile = true;

  // §VI future-work extensions.
  bool coalesced_strip_io = false;   // stage strip rows through shared memory
  bool shared_only = false;          // keep strip rows in shared (Fermi, short)
  bool persistent_pipeline = false;  // one pipeline fill/flush per alignment
  /// Longest database sequence eligible for shared-only mode.
  std::size_t shared_only_max_len = 10000;

  /// Rows of the DP table computed per pass.
  std::size_t strip_height() const {
    return static_cast<std::size_t>(threads_per_block) *
           static_cast<std::size_t>(tile_height);
  }
};

struct SearchConfig {
  /// Database sequences longer than this go to the intra-task kernel.
  std::size_t threshold = 3072;
  IntraKernel intra_kernel = IntraKernel::kImproved;
  InterTaskParams inter;
  OriginalIntraParams original_intra;
  ImprovedIntraParams improved_intra;
  sw::GapPenalty gap{10, 2};
};

}  // namespace cusw::cudasw
