// The original CUDASW++ intra-task kernel (§II-B-2): one thread block per
// query/database pair, wavefront (anti-diagonal) order over single cells,
// with the three most recent wavefronts of H plus the E and F wavefronts
// kept in global memory — roughly ten global accesses per cell update. This
// is the bottleneck the paper identifies; it is reproduced faithfully so the
// comparisons in Figs. 3/5/6/7 and Tables I/II have their baseline.
#pragma once

#include "cudasw/inter_task.h"

namespace cusw::cudasw {

/// Score `query` against every sequence of `longs` (each above the
/// threshold), one block per pair, with the original wavefront kernel.
KernelRun run_intra_task_original(gpusim::Device& dev,
                                  const std::vector<seq::Code>& query,
                                  seq::SequenceDBView longs,
                                  const sw::ScoringMatrix& matrix,
                                  sw::GapPenalty gap,
                                  const OriginalIntraParams& params);

}  // namespace cusw::cudasw
