// The CUDASW++ 2.0 "virtualized SIMD" inter-task kernel.
//
// The system the paper improves (CUDASW++ 2.0, its reference [5]) ships two
// inter-task implementations: the SIMT kernel reproduced in inter_task.h
// (one thread per sequence) and a *virtualised SIMD* kernel in which a
// quad of threads cooperates on one alignment like the four lanes of an
// SSE vector. Each lane owns a horizontal band of ceil(m/4) query rows and
// sweeps its band column by column, staggered one column behind the lane
// above; band-boundary values cross lanes through shared memory.
//
// The structural consequence the simulator exposes: a launch needs 4x
// fewer sequences to fill the device, so groups span a narrower length
// range and the kernel tolerates length variance better than the SIMT
// kernel — at the cost of intra-quad pipeline fill and shared-memory
// traffic. This is the same tradeoff axis as the paper's inter/intra
// threshold, one level down.
#pragma once

#include "cudasw/inter_task.h"

namespace cusw::cudasw {

struct InterTaskSimdParams {
  int threads_per_block = 64;  // 16 quads
  int regs_per_thread = 32;
  static constexpr int kQuadLanes = 4;
};

/// Group size (in sequences) for the virtualised SIMD kernel: one quad per
/// sequence.
std::size_t inter_task_simd_group_size(const gpusim::DeviceSpec& dev,
                                       const InterTaskSimdParams& params);

/// Score `query` against every sequence of `group` with quad-lane
/// virtualised SIMD vectors.
KernelRun run_inter_task_simd(gpusim::Device& dev,
                              const std::vector<seq::Code>& query,
                              seq::SequenceDBView group,
                              const sw::ScoringMatrix& matrix,
                              sw::GapPenalty gap,
                              const InterTaskSimdParams& params);

}  // namespace cusw::cudasw
