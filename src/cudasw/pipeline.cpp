#include "cudasw/pipeline.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "gpusim/occupancy.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace cusw::cudasw {

namespace {

// Mirror a finished search into the metrics registry (once per search —
// launches publish their own gpusim.* counters). Names follow the dotted
// scheme in DESIGN.md §7.
void publish_search_metrics(const SearchReport& report) {
  auto& reg = obs::Registry::global();
  reg.counter("pipeline.searches").inc();
  reg.counter("pipeline.groups").add(report.groups);
  reg.counter("pipeline.inter.cells").add(report.inter_cells);
  reg.counter("pipeline.intra.cells").add(report.intra_cells);
  reg.counter("pipeline.inter.sequences").add(report.inter_sequences);
  reg.counter("pipeline.intra.sequences").add(report.intra_sequences);
  reg.gauge("pipeline.inter.seconds").add(report.inter_seconds);
  reg.gauge("pipeline.intra.seconds").add(report.intra_seconds);
  reg.histogram("pipeline.search.gcups",
                {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0})
      .observe(report.gcups());
}

}  // namespace

std::size_t inter_task_group_size(const gpusim::DeviceSpec& dev,
                                  const InterTaskParams& params) {
  const gpusim::Occupancy occ = gpusim::compute_occupancy(
      dev, params.threads_per_block, 0, params.regs_per_thread);
  CUSW_CHECK(occ.blocks_per_sm > 0, "inter-task config admits no blocks");
  return static_cast<std::size_t>(dev.sm_count) *
         static_cast<std::size_t>(occ.blocks_per_sm) *
         static_cast<std::size_t>(params.threads_per_block);
}

PreparedDatabase::PreparedDatabase(const seq::SequenceDB& db,
                                   std::size_t threshold)
    : db_(&db), threshold_(threshold) {
  obs::HostSpan span("pipeline.prepare", "pipeline");
  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].length() < db[b].length();
                   });
  for (std::size_t idx : order) {
    (db[idx].length() > threshold ? above_ : below_).push_back(idx);
  }
}

SearchReport search(gpusim::Device& dev, const std::vector<seq::Code>& query,
                    const PreparedDatabase& prepared,
                    const sw::ScoringMatrix& matrix, const SearchConfig& cfg) {
  CUSW_REQUIRE(!query.empty(), "empty query");
  CUSW_REQUIRE(prepared.threshold() == cfg.threshold,
               "database was prepared with a different threshold");
  obs::install_process_exports();
  obs::HostSpan search_span("pipeline.search", "pipeline");
  const seq::SequenceDB& db = prepared.db();
  SearchReport report;
  report.scores.assign(db.size(), 0);
  if (db.empty()) return report;

  const auto& below = prepared.below();
  const auto& above = prepared.above();
  report.inter_sequences = below.size();
  report.intra_sequences = above.size();

  // Inter-task: one launch per occupancy-sized group of short sequences.
  // Kernels take index-span views of the prepared database (no per-group
  // sequence copies), and group launches run concurrently on host workers;
  // each produces an independent KernelRun, reduced below in group order so
  // the report is bit-identical for any CUSW_THREADS value.
  const std::size_t group_size = inter_task_group_size(dev.spec(), cfg.inter);
  const std::size_t n_groups = (below.size() + group_size - 1) / group_size;
  std::vector<KernelRun> runs(n_groups);
  ThreadPool::shared().run_indexed(
      n_groups, std::min(util::parallelism(), n_groups),
      [&](std::size_t /*worker*/, std::size_t g) {
        obs::HostSpan span("pipeline.inter group " + std::to_string(g),
                           "pipeline");
        const std::size_t lo = g * group_size;
        const std::size_t hi = std::min(below.size(), lo + group_size);
        runs[g] = run_inter_task(
            dev, query, seq::SequenceDBView(db, below.data() + lo, hi - lo),
            matrix, cfg.gap, cfg.inter);
      });
  for (std::size_t g = 0; g < n_groups; ++g) {
    const KernelRun& run = runs[g];
    const std::size_t lo = g * group_size;
    for (std::size_t i = 0; i < run.scores.size(); ++i)
      report.scores[below[lo + i]] = run.scores[i];
    report.inter_seconds += run.stats.seconds;
    report.inter_cells += run.cells;
    report.inter_stats += run.stats;
    ++report.groups;
  }

  // Intra-task: a single launch, one block per long sequence (the launch
  // itself shards blocks across host workers).
  if (!above.empty()) {
    obs::HostSpan span("pipeline.intra", "pipeline");
    const seq::SequenceDBView longs(db, above.data(), above.size());
    KernelRun run =
        cfg.intra_kernel == IntraKernel::kImproved
            ? run_intra_task_improved(dev, query, longs, matrix, cfg.gap,
                                      cfg.improved_intra)
            : run_intra_task_original(dev, query, longs, matrix, cfg.gap,
                                      cfg.original_intra);
    for (std::size_t i = 0; i < above.size(); ++i)
      report.scores[above[i]] = run.scores[i];
    report.intra_seconds += run.stats.seconds;
    report.intra_cells += run.cells;
    report.intra_stats += run.stats;
  }
  publish_search_metrics(report);
  return report;
}

SearchReport search(gpusim::Device& dev, const std::vector<seq::Code>& query,
                    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
                    const SearchConfig& cfg) {
  const PreparedDatabase prepared(db, cfg.threshold);
  return search(dev, query, prepared, matrix, cfg);
}

std::vector<SearchReport> search_batch(
    gpusim::Device& dev, const std::vector<std::vector<seq::Code>>& queries,
    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
    const SearchConfig& cfg) {
  obs::install_process_exports();
  obs::HostSpan batch_span("pipeline.search_batch", "pipeline");
  const PreparedDatabase prepared(db, cfg.threshold);
  // Queries are independent scans over the shared prepared database; run
  // them concurrently. Each report is written to its own slot, so the
  // batch result is identical to the serial loop.
  std::vector<SearchReport> reports(queries.size());
  ThreadPool::shared().run_indexed(
      queries.size(), std::min(util::parallelism(), queries.size()),
      [&](std::size_t /*worker*/, std::size_t q) {
        obs::HostSpan lane("pipeline.query " + std::to_string(q), "pipeline");
        reports[q] = search(dev, queries[q], prepared, matrix, cfg);
      });
  return reports;
}

double kernel_gcups(const KernelRun& run) {
  return run.stats.seconds > 0.0
             ? static_cast<double>(run.cells) / run.stats.seconds * 1e-9
             : 0.0;
}

}  // namespace cusw::cudasw
