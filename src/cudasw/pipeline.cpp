#include "cudasw/pipeline.h"

#include <algorithm>
#include <numeric>

#include "gpusim/occupancy.h"
#include "util/check.h"

namespace cusw::cudasw {

std::size_t inter_task_group_size(const gpusim::DeviceSpec& dev,
                                  const InterTaskParams& params) {
  const gpusim::Occupancy occ = gpusim::compute_occupancy(
      dev, params.threads_per_block, 0, params.regs_per_thread);
  CUSW_CHECK(occ.blocks_per_sm > 0, "inter-task config admits no blocks");
  return static_cast<std::size_t>(dev.sm_count) *
         static_cast<std::size_t>(occ.blocks_per_sm) *
         static_cast<std::size_t>(params.threads_per_block);
}

PreparedDatabase::PreparedDatabase(const seq::SequenceDB& db,
                                   std::size_t threshold)
    : db_(&db), threshold_(threshold) {
  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].length() < db[b].length();
                   });
  for (std::size_t idx : order) {
    (db[idx].length() > threshold ? above_ : below_).push_back(idx);
  }
}

SearchReport search(gpusim::Device& dev, const std::vector<seq::Code>& query,
                    const PreparedDatabase& prepared,
                    const sw::ScoringMatrix& matrix, const SearchConfig& cfg) {
  CUSW_REQUIRE(!query.empty(), "empty query");
  CUSW_REQUIRE(prepared.threshold() == cfg.threshold,
               "database was prepared with a different threshold");
  const seq::SequenceDB& db = prepared.db();
  SearchReport report;
  report.scores.assign(db.size(), 0);
  if (db.empty()) return report;

  const auto& below = prepared.below();
  const auto& above = prepared.above();
  report.inter_sequences = below.size();
  report.intra_sequences = above.size();

  // Inter-task: one launch per occupancy-sized group of short sequences.
  const std::size_t group_size = inter_task_group_size(dev.spec(), cfg.inter);
  for (std::size_t lo = 0; lo < below.size(); lo += group_size) {
    const std::size_t hi = std::min(below.size(), lo + group_size);
    seq::SequenceDB group;
    for (std::size_t g = lo; g < hi; ++g) group.add(db[below[g]]);
    KernelRun run =
        run_inter_task(dev, query, group, matrix, cfg.gap, cfg.inter);
    for (std::size_t g = lo; g < hi; ++g)
      report.scores[below[g]] = run.scores[g - lo];
    report.inter_seconds += run.stats.seconds;
    report.inter_cells += run.cells;
    report.inter_stats += run.stats;
    ++report.groups;
  }

  // Intra-task: a single launch, one block per long sequence.
  if (!above.empty()) {
    seq::SequenceDB longs;
    for (std::size_t idx : above) longs.add(db[idx]);
    KernelRun run =
        cfg.intra_kernel == IntraKernel::kImproved
            ? run_intra_task_improved(dev, query, longs, matrix, cfg.gap,
                                      cfg.improved_intra)
            : run_intra_task_original(dev, query, longs, matrix, cfg.gap,
                                      cfg.original_intra);
    for (std::size_t i = 0; i < above.size(); ++i)
      report.scores[above[i]] = run.scores[i];
    report.intra_seconds += run.stats.seconds;
    report.intra_cells += run.cells;
    report.intra_stats += run.stats;
  }
  return report;
}

SearchReport search(gpusim::Device& dev, const std::vector<seq::Code>& query,
                    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
                    const SearchConfig& cfg) {
  const PreparedDatabase prepared(db, cfg.threshold);
  return search(dev, query, prepared, matrix, cfg);
}

std::vector<SearchReport> search_batch(
    gpusim::Device& dev, const std::vector<std::vector<seq::Code>>& queries,
    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
    const SearchConfig& cfg) {
  const PreparedDatabase prepared(db, cfg.threshold);
  std::vector<SearchReport> reports;
  reports.reserve(queries.size());
  for (const auto& q : queries) {
    reports.push_back(search(dev, q, prepared, matrix, cfg));
  }
  return reports;
}

double kernel_gcups(const KernelRun& run) {
  return run.stats.seconds > 0.0
             ? static_cast<double>(run.cells) / run.stats.seconds * 1e-9
             : 0.0;
}

}  // namespace cusw::cudasw
