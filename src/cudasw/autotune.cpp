#include "cudasw/autotune.h"

#include <algorithm>

#include "cudasw/pipeline.h"
#include "seq/generate.h"
#include "util/check.h"

namespace cusw::cudasw {

ThresholdAutotuner::ThresholdAutotuner(gpusim::Device& dev,
                                       const sw::ScoringMatrix& matrix,
                                       const SearchConfig& cfg,
                                       std::size_t probe_query_len) {
  group_size_ = inter_task_group_size(dev.spec(), cfg.inter);

  Rng rng(0xCA11B8A7E);
  const seq::Sequence probe_query =
      seq::random_protein(probe_query_len, rng, "probe_query");

  // Inter-task probe: a uniform group, so the per-launch cost divided by
  // (longest length x query length x group size) calibrates the rate at
  // which a group's longest member sets the launch time.
  {
    const std::size_t probe_len = 512;
    seq::SequenceDB group = seq::uniform_db(
        std::min<std::size_t>(group_size_, 2048), probe_len, probe_len, 7);
    const KernelRun run = run_inter_task(dev, probe_query.residues, group,
                                         matrix, cfg.gap, cfg.inter);
    inter_rate_ = run.stats.seconds /
                  (static_cast<double>(probe_len) *
                   static_cast<double>(probe_query_len) *
                   static_cast<double>(group.size()));
  }

  // Intra-task probe: a handful of long sequences through the configured
  // intra kernel.
  {
    seq::SequenceDB longs = seq::uniform_db(8, 4096, 4096, 11);
    const KernelRun run =
        cfg.intra_kernel == IntraKernel::kImproved
            ? run_intra_task_improved(dev, probe_query.residues, longs, matrix,
                                      cfg.gap, cfg.improved_intra)
            : run_intra_task_original(dev, probe_query.residues, longs, matrix,
                                      cfg.gap, cfg.original_intra);
    intra_rate_ = run.stats.seconds / static_cast<double>(run.cells);
  }
}

double ThresholdAutotuner::predict_seconds(
    const std::vector<std::size_t>& sorted_lengths, std::size_t query_len,
    std::size_t threshold) const {
  CUSW_REQUIRE(
      std::is_sorted(sorted_lengths.begin(), sorted_lengths.end()),
      "autotuner expects lengths sorted ascending");
  const double q = static_cast<double>(query_len);
  double seconds = 0.0;
  std::size_t i = 0;
  const std::size_t n = sorted_lengths.size();
  // Below threshold: groups of group_size_, each launch bounded by its
  // longest (= last, lengths sorted) member across every resident thread.
  while (i < n && sorted_lengths[i] <= threshold) {
    const std::size_t lo = i;
    while (i < n && sorted_lengths[i] <= threshold && i - lo < group_size_) ++i;
    const auto longest = static_cast<double>(sorted_lengths[i - 1]);
    const auto members = static_cast<double>(i - lo);
    seconds += inter_rate_ * longest * q * members;
  }
  // Above threshold: intra-task cost is proportional to actual cells.
  for (; i < n; ++i) {
    seconds += intra_rate_ * static_cast<double>(sorted_lengths[i]) * q;
  }
  return seconds;
}

ThresholdPrediction ThresholdAutotuner::tune(
    const seq::SequenceDB& db, std::size_t query_len,
    const std::vector<std::size_t>& candidates) const {
  CUSW_REQUIRE(!candidates.empty(), "no candidate thresholds");
  std::vector<std::size_t> lengths;
  lengths.reserve(db.size());
  for (const auto& s : db.sequences()) lengths.push_back(s.length());
  std::sort(lengths.begin(), lengths.end());

  ThresholdPrediction best;
  best.threshold = candidates.front();
  best.predicted_seconds =
      predict_seconds(lengths, query_len, candidates.front());
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    const double s = predict_seconds(lengths, query_len, candidates[c]);
    if (s < best.predicted_seconds) {
      best.predicted_seconds = s;
      best.threshold = candidates[c];
    }
  }
  return best;
}

}  // namespace cusw::cudasw
