#include "cudasw/chunked.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "swps3/striped8.h"
#include "util/check.h"

namespace cusw::cudasw {

std::uint64_t device_footprint_bytes(std::uint64_t residues,
                                     std::uint64_t sequences,
                                     std::size_t query_length,
                                     const SearchConfig& cfg) {
  // Encoded residues (1 B each) plus alignment padding.
  std::uint64_t bytes = residues + 32 * sequences;
  // Inter-task row buffers: H and F (4 B each) per residue of the resident
  // group — conservatively charged for every below-threshold residue.
  bytes += residues * 8;
  // Intra-task strip rows: H and F per column for the long sequences; the
  // wavefront banks of the original kernel are bounded by the query length.
  bytes += residues * 8 + 7ull * 4 * query_length * sequences / 1000;
  // Query profile texture (packed) and score vector.
  bytes += (query_length + 3) / 4 * 4 * 24 + sequences * 4;
  (void)cfg;
  return bytes;
}

namespace {

// Same driver-level fault names multi_gpu_search publishes; kept local to
// each translation unit to avoid a header for two mirror-only helpers.
void publish_chunked_fault_stats(const gpusim::FaultStats& s) {
  auto& reg = obs::Registry::global();
  reg.counter("fault.retries").add(s.retries);
  reg.counter("fault.devices_failed").add(s.devices_lost);
  if (s.degraded_to_cpu) reg.counter("fault.degraded").inc();
  reg.gauge("fault.backoff_seconds").add(s.backoff_seconds);
}

// Restores the caller's Device to injector-free on scope exit: the device
// is borrowed, the injector lives on this driver's stack.
class FaultScope {
 public:
  explicit FaultScope(gpusim::Device& dev) : dev_(dev) {}
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
  ~FaultScope() { dev_.set_fault_injector(nullptr); }

 private:
  gpusim::Device& dev_;
};

}  // namespace

ChunkedReport chunked_search(gpusim::Device& dev,
                             const std::vector<seq::Code>& query,
                             const seq::SequenceDB& db,
                             const sw::ScoringMatrix& matrix,
                             const ChunkedConfig& cfg) {
  CUSW_REQUIRE(!query.empty(), "empty query");
  ChunkedReport report;
  report.scores.assign(db.size(), 0);
  if (db.empty()) return report;

  // Length-sorted order, as the single-device pipeline uses.
  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].length() < db[b].length();
                   });

  // Greedily fill chunks up to the memory budget (always at least one
  // sequence per chunk so arbitrarily small budgets still make progress).
  std::vector<std::pair<std::size_t, std::size_t>> chunks;  // [lo, hi) in order
  std::size_t lo = 0;
  while (lo < order.size()) {
    std::uint64_t residues = 0;
    std::size_t hi = lo;
    while (hi < order.size()) {
      const std::uint64_t next = residues + db[order[hi]].length();
      if (hi > lo && device_footprint_bytes(next, hi - lo + 1, query.size(),
                                            cfg.search) >
                         cfg.device_memory_bytes) {
        break;
      }
      residues = next;
      ++hi;
    }
    chunks.emplace_back(lo, hi);
    lo = hi;
  }
  report.chunks = chunks.size();

  const bool faulty = cfg.faults.enabled();
  gpusim::FaultInjector injector(cfg.faults);
  std::optional<FaultScope> scope;
  if (faulty) {
    dev.set_fault_injector(&injector, 0);
    scope.emplace(dev);
  }
  std::optional<swps3::StripedEngine> cpu;
  bool device_gone = false;

  const double per_byte = 1.0 / (cfg.transfer.pcie_bandwidth_gbs * 1e9);
  double prev_kernel = 0.0;
  for (const auto& [c_lo, c_hi] : chunks) {
    if (device_gone) {
      // Degraded: the remaining chunks are scored on the host. Only kernel
      // and copy work that actually ran stays in the timing fields.
      if (!cpu) cpu.emplace(query, matrix, cfg.search.gap);
      for (std::size_t i = c_lo; i < c_hi; ++i) {
        report.scores[order[i]] = cpu->score(db[order[i]].residues);
      }
      continue;
    }

    seq::SequenceDB chunk;
    std::uint64_t bytes = 0;
    for (std::size_t i = c_lo; i < c_hi; ++i) {
      chunk.add(db[order[i]]);
      bytes += db[order[i]].length();
    }
    const double copy = static_cast<double>(bytes) * per_byte +
                        cfg.transfer.chunk_overhead_us * 1e-6;

    int attempt = 0;
    double chunk_copy_seconds = 0.0;  // every attempt's copy is paid for
    while (true) {
      try {
        // The copy attempt costs its time whether or not it faults.
        chunk_copy_seconds += copy;
        if (faulty) injector.on_transfer(0);
        const SearchReport r = search(dev, query, chunk, matrix, cfg.search);
        for (std::size_t i = c_lo; i < c_hi; ++i) {
          report.scores[order[i]] = r.scores[i - c_lo];
        }
        report.transfer_seconds += chunk_copy_seconds;
        report.kernel_seconds += r.seconds();
        if (cfg.overlap_transfers) {
          // This chunk's copies (including retried ones) overlap the
          // previous chunk's kernels.
          report.total_seconds += std::max(chunk_copy_seconds, prev_kernel);
          prev_kernel = r.seconds();
        } else {
          report.total_seconds += chunk_copy_seconds + r.seconds();
        }
        break;
      } catch (const gpusim::TransientFault& f) {
        if (f.kind() == gpusim::FaultKind::kTransfer) {
          ++report.faults.transfer_faults;
        } else {
          ++report.faults.launch_faults;
        }
        if (attempt >= cfg.backoff.max_retries) {
          // The only device is unusable; same degradation as a hard loss.
          if (!cfg.allow_cpu_fallback) throw;
          ++report.faults.devices_lost;
          device_gone = true;
          break;
        }
        const double delay = cfg.backoff.delay_seconds(attempt);
        report.faults.backoff_seconds += delay;
        report.total_seconds += delay;
        ++report.faults.retries;
        ++attempt;
      } catch (const gpusim::DeviceLost&) {
        if (!cfg.allow_cpu_fallback) throw;
        ++report.faults.devices_lost;
        device_gone = true;
        break;
      }
    }
    if (device_gone) {
      obs::trace_instant("degrade: cpu fallback", "fault",
                         "\"chunk\": " + std::to_string(c_lo));
      if (!cpu) cpu.emplace(query, matrix, cfg.search.gap);
      for (std::size_t i = c_lo; i < c_hi; ++i) {
        report.scores[order[i]] = cpu->score(db[order[i]].residues);
      }
      report.faults.degraded_to_cpu = true;
    }
  }
  // In overlap mode the last completed chunk's kernels have nothing to
  // hide behind; on a degraded run prev_kernel is the last chunk the
  // device finished before it died.
  if (cfg.overlap_transfers) report.total_seconds += prev_kernel;
  if (faulty) publish_chunked_fault_stats(report.faults);
  return report;
}

}  // namespace cusw::cudasw
