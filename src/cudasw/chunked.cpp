#include "cudasw/chunked.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cusw::cudasw {

std::uint64_t device_footprint_bytes(std::uint64_t residues,
                                     std::uint64_t sequences,
                                     std::size_t query_length,
                                     const SearchConfig& cfg) {
  // Encoded residues (1 B each) plus alignment padding.
  std::uint64_t bytes = residues + 32 * sequences;
  // Inter-task row buffers: H and F (4 B each) per residue of the resident
  // group — conservatively charged for every below-threshold residue.
  bytes += residues * 8;
  // Intra-task strip rows: H and F per column for the long sequences; the
  // wavefront banks of the original kernel are bounded by the query length.
  bytes += residues * 8 + 7ull * 4 * query_length * sequences / 1000;
  // Query profile texture (packed) and score vector.
  bytes += (query_length + 3) / 4 * 4 * 24 + sequences * 4;
  (void)cfg;
  return bytes;
}

ChunkedReport chunked_search(gpusim::Device& dev,
                             const std::vector<seq::Code>& query,
                             const seq::SequenceDB& db,
                             const sw::ScoringMatrix& matrix,
                             const ChunkedConfig& cfg) {
  CUSW_REQUIRE(!query.empty(), "empty query");
  ChunkedReport report;
  report.scores.assign(db.size(), 0);
  if (db.empty()) return report;

  // Length-sorted order, as the single-device pipeline uses.
  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].length() < db[b].length();
                   });

  // Greedily fill chunks up to the memory budget (always at least one
  // sequence per chunk so arbitrarily small budgets still make progress).
  std::vector<std::pair<std::size_t, std::size_t>> chunks;  // [lo, hi) in order
  std::size_t lo = 0;
  while (lo < order.size()) {
    std::uint64_t residues = 0;
    std::size_t hi = lo;
    while (hi < order.size()) {
      const std::uint64_t next = residues + db[order[hi]].length();
      if (hi > lo && device_footprint_bytes(next, hi - lo + 1, query.size(),
                                            cfg.search) >
                         cfg.device_memory_bytes) {
        break;
      }
      residues = next;
      ++hi;
    }
    chunks.emplace_back(lo, hi);
    lo = hi;
  }
  report.chunks = chunks.size();

  const double per_byte = 1.0 / (cfg.transfer.pcie_bandwidth_gbs * 1e9);
  double prev_kernel = 0.0;
  for (const auto& [c_lo, c_hi] : chunks) {
    seq::SequenceDB chunk;
    std::uint64_t bytes = 0;
    for (std::size_t i = c_lo; i < c_hi; ++i) {
      chunk.add(db[order[i]]);
      bytes += db[order[i]].length();
    }
    const double copy = static_cast<double>(bytes) * per_byte +
                        cfg.transfer.chunk_overhead_us * 1e-6;
    report.transfer_seconds += copy;

    const SearchReport r = search(dev, query, chunk, matrix, cfg.search);
    for (std::size_t i = c_lo; i < c_hi; ++i) {
      report.scores[order[i]] = r.scores[i - c_lo];
    }
    report.kernel_seconds += r.seconds();

    if (cfg.overlap_transfers) {
      // This chunk's copy overlaps the previous chunk's kernels.
      report.total_seconds += std::max(copy, prev_kernel);
      prev_kernel = r.seconds();
    } else {
      report.total_seconds += copy + r.seconds();
    }
  }
  if (cfg.overlap_transfers) report.total_seconds += prev_kernel;
  return report;
}

}  // namespace cusw::cudasw
