#include "cudasw/intra_task_improved.h"

#include <algorithm>
#include <limits>

#include "cudasw/memo_util.h"
#include "util/check.h"

namespace cusw::cudasw {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

KernelRun run_intra_task_improved(gpusim::Device& dev,
                                  const std::vector<seq::Code>& query,
                                  seq::SequenceDBView longs,
                                  const sw::ScoringMatrix& matrix,
                                  sw::GapPenalty gap,
                                  const ImprovedIntraParams& params) {
  CUSW_REQUIRE(params.tile_height > 0 && params.tile_width > 0,
               "tile dimensions must be positive");
  CUSW_REQUIRE(!params.packed_profile || params.tile_height % 4 == 0,
               "packed profile requires tile height to be a multiple of 4");

  CUSW_REQUIRE(params.tile_height <= 8, "tile height is limited to 8 rows");

  KernelRun out;
  out.scores.assign(longs.size(), 0);
  if (longs.empty() || query.empty()) return out;

  const std::size_t m = query.size();
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const int n_th = params.threads_per_block;
  const int th = params.tile_height;
  const int tw = params.tile_width;
  const std::size_t strip = params.strip_height();
  for (std::size_t i = 0; i < longs.size(); ++i)
    out.cells += m * longs[i].length();

  // Per-run address arena: buffers and textures land at the same device
  // addresses for every run of this kernel, keeping simulated cache
  // behaviour independent of host-side launch concurrency and order.
  gpusim::MemoryArena arena;

  // Query profile in texture memory: packed (one texel per 4 query rows) or
  // plain (one int8 texel per cell). Both are functional — the kernel's
  // scores really come from these fetches.
  const sw::PackedQueryProfile packed(query, matrix);
  std::vector<std::uint32_t> packed_words;
  packed_words.reserve(packed.words().size());
  for (const auto& w : packed.words()) packed_words.push_back(w.word);
  const auto packed_tex = arena.make_texture(std::move(packed_words));

  const sw::QueryProfile plain(query, matrix);
  std::vector<std::int8_t> plain_bytes(
      plain.row(0), plain.row(0) + matrix.alphabet().size() * m);
  const auto plain_tex = arena.make_texture(std::move(plain_bytes));

  // Strip-boundary row buffers (H and F per column), one region per block.
  std::uint64_t row_total = 0;
  std::vector<std::uint64_t> row_offset;
  row_offset.reserve(longs.size());
  std::uint64_t db_total = 0;
  std::vector<std::uint64_t> db_offset;
  db_offset.reserve(longs.size());
  for (std::size_t i = 0; i < longs.size(); ++i) {
    const std::size_t len = longs[i].length();
    row_offset.push_back(row_total);
    row_total += (len + 32) & ~std::uint64_t{31};
    db_offset.push_back(db_total);
    db_total += (len + 31) & ~std::uint64_t{31};
  }
  const std::uint64_t row_h_base = arena.reserve(row_total * 4);
  const std::uint64_t row_f_base = arena.reserve(row_total * 4);
  const std::uint64_t db_base = arena.reserve(db_total);
  // Synthetic local-memory region for the §III-A register-spill variants.
  const std::uint64_t spill_base = arena.reserve(
      static_cast<std::size_t>(n_th) * static_cast<std::size_t>(th) * 4 * 4);

  const bool spill_swap = !params.deep_swap;
  const bool spill_unroll = !params.unroll_profile_loop;

  // Access sites for the memory-hierarchy attribution profiler, interned
  // once here (never in per-cell loops — interning takes a lock).
  const gpusim::SiteId kSiteProfile = gpusim::intern_site("profile.tex_fetch");
  const gpusim::SiteId kSiteDb = gpusim::intern_site("db.symbol_load");
  const gpusim::SiteId kSiteSpill = gpusim::intern_site("local.spill");
  const gpusim::SiteId kSiteStripLoad =
      gpusim::intern_site("strip.boundary_load");
  const gpusim::SiteId kSiteStripStore =
      gpusim::intern_site("strip.boundary_store");

  gpusim::LaunchConfig cfg;
  cfg.label = "intra_task_improved";
  cfg.cells = out.cells;
  cfg.blocks = static_cast<int>(longs.size());
  cfg.threads_per_block = n_th;
  cfg.regs_per_thread = params.regs_per_thread;
  // Shared usage: double-buffered H and F boundary values per thread
  // (4 ints), plus the staging buffer for coalesced strip I/O.
  // Double-buffered H and F boundary slots per thread per tile column,
  // plus the staging buffer for coalesced strip I/O.
  cfg.shared_bytes_per_block =
      static_cast<std::size_t>(2 * 2 * n_th * tw) * sizeof(int) +
      (params.coalesced_strip_io ? std::size_t{2 * 128} : 0) +
      // Shared-only mode keeps the strip-boundary rows resident as short2.
      (params.shared_only ? params.shared_only_max_len * 4 : 0);

  const double cell_cycles = dev.cost_model().cycles_per_cell;

  // Block memoization (DESIGN.md §12). Unlike the other kernels, this one's
  // texture-fetch addresses depend on the target's residue *content* (the
  // profile texel index is a function of each database symbol), so the key
  // carries the full residue vector packed eight symbols per word. The
  // texture base addresses are the first two arena reservations and thus a
  // function of (m, alphabet) alone; the remaining regions enter via their
  // per-block base modulo the translation period.
  const swps3::StripedEngine sw_engine(query, matrix, gap);
  cfg.memo_key = [&](int block, const gpusim::MemoPeriods& p,
                     std::vector<std::uint64_t>& key) {
    const auto blk = static_cast<std::size_t>(block);
    const auto& target = longs[blk].residues;
    key.push_back(m);
    key.push_back(target.size());
    key.push_back(matrix.alphabet().size());
    key.push_back(static_cast<std::uint64_t>(th) << 32 |
                  static_cast<std::uint64_t>(tw));
    key.push_back(params.shared_only_max_len);
    key.push_back((params.packed_profile ? 1u : 0u) |
                  (params.coalesced_strip_io ? 2u : 0u) |
                  (params.shared_only ? 4u : 0u) |
                  (params.persistent_pipeline ? 8u : 0u) |
                  (params.deep_swap ? 16u : 0u) |
                  (params.unroll_profile_loop ? 32u : 0u));
    key.push_back((db_base + db_offset[blk]) % p.global);
    key.push_back((row_h_base + row_offset[blk] * 4) % p.global);
    key.push_back((row_f_base + row_offset[blk] * 4) % p.global);
    key.push_back(spill_base % p.global);
    std::uint64_t word = 0;
    for (std::size_t c = 0; c < target.size(); ++c) {
      word = word << 8 | static_cast<std::uint64_t>(target[c]);
      if ((c & 7) == 7) {
        key.push_back(word);
        word = 0;
      }
    }
    if (target.size() & 7) key.push_back(word);
  };
  cfg.memo_replay = [&](int block) {
    const auto blk = static_cast<std::size_t>(block);
    out.scores[blk] =
        memo_replay_score(sw_engine, query, longs[blk].residues, matrix, gap);
  };

  out.stats = dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
    const auto blk = static_cast<std::size_t>(ctx.block_id());
    const auto& target = longs[blk].residues;
    const std::size_t n = target.size();
    const std::size_t cols = (n + static_cast<std::size_t>(tw) - 1) /
                             static_cast<std::size_t>(tw);
    const std::size_t passes = (m + strip - 1) / strip;
    const bool shared_rows =
        params.shared_only && n <= params.shared_only_max_len;

    // Functional strip-boundary rows (H and F of the last row of the strip).
    std::vector<int> row_h(n, 0), row_f(n, kNegInf);
    // Shared-memory boundary values, double buffered by step parity; one
    // slot per thread per tile column.
    const auto sh_stride = static_cast<std::size_t>(n_th * tw);
    std::vector<int> sh_h(2 * sh_stride, 0);
    std::vector<int> sh_f(2 * sh_stride, kNegInf);
    // Per-thread register state.
    std::vector<int> h_left(static_cast<std::size_t>(n_th * th), 0);
    std::vector<int> e_left(static_cast<std::size_t>(n_th * th), kNegInf);
    std::vector<int> diag_reg(static_cast<std::size_t>(n_th), 0);
    int best = 0;
    int staged_io = 0;  // columns accumulated in the coalesced-IO buffer

    for (std::size_t pass = 0; pass < passes; ++pass) {
      const std::size_t r_base = pass * strip;
      // Threads whose whole tile row lies past the query end stay idle.
      const int live_threads = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(n_th),
          (m - r_base + static_cast<std::size_t>(th) - 1) /
              static_cast<std::size_t>(th)));
      std::fill(h_left.begin(), h_left.end(), 0);
      std::fill(e_left.begin(), e_left.end(), kNegInf);
      std::fill(diag_reg.begin(), diag_reg.end(), 0);

      const std::size_t steps =
          cols + static_cast<std::size_t>(live_threads) - 1;
      for (std::size_t k = 0; k < steps; ++k) {
        const int t_lo = k >= cols ? static_cast<int>(k - cols + 1) : 0;
        const int t_hi =
            std::min(live_threads - 1, static_cast<int>(k));
        const int cur = static_cast<int>(k % 2);
        const int prev = 1 - cur;

        for (int t = t_lo; t <= t_hi; ++t) {
          const std::size_t c0 = (k - static_cast<std::size_t>(t)) *
                                 static_cast<std::size_t>(tw);
          const std::size_t c1 = std::min(n, c0 + static_cast<std::size_t>(tw));
          const std::size_t r0 =
              r_base + static_cast<std::size_t>(t) * static_cast<std::size_t>(th);
          const std::size_t rows =
              std::min<std::size_t>(static_cast<std::size_t>(th), m - r0);
          int* hl = &h_left[static_cast<std::size_t>(t * th)];
          int* el = &e_left[static_cast<std::size_t>(t * th)];

          // The diagonal input of a tile column is the *top* input of the
          // previous column; at a step boundary it is carried in a register.
          int prev_top = diag_reg[static_cast<std::size_t>(t)];
          for (std::size_t c = c0; c < c1; ++c) {
            // Vertical inputs for the top cell of this tile column.
            int top_h, top_f;
            if (t == 0) {
              if (pass == 0) {
                top_h = 0;
                top_f = kNegInf;
              } else {
                top_h = row_h[c];
                top_f = row_f[c];
              }
            } else {
              const std::size_t slot =
                  static_cast<std::size_t>(prev) * sh_stride +
                  static_cast<std::size_t>(t - 1) * static_cast<std::size_t>(tw) +
                  (c - c0);
              top_h = sh_h[slot];
              top_f = sh_f[slot];
            }
            const int diag_h = c > 0 ? prev_top : 0;

            // Fetch the tile's profile scores from texture (functional).
            int score_col[8];
            const seq::Code d = target[c];
            if (params.packed_profile) {
              for (std::size_t r4 = 0; r4 < rows; r4 += 4) {
                const std::size_t block_idx = (r0 + r4) / 4;
                const sw::Packed4 word{ctx.tex(
                    packed_tex, packed.texel_index(d, block_idx), t,
                    kSiteProfile)};
                for (int lane = 0; lane < 4 && r4 + static_cast<std::size_t>(
                                                    lane) < rows;
                     ++lane)
                  score_col[r4 + static_cast<std::size_t>(lane)] =
                      word.get(lane);
              }
            } else {
              for (std::size_t r = 0; r < rows; ++r) {
                score_col[r] = ctx.tex(
                    plain_tex, static_cast<std::size_t>(d) * m + r0 + r, t,
                    kSiteProfile);
              }
            }

            int up_h = top_h, up_f = top_f, dval = diag_h;
            for (std::size_t r = 0; r < rows; ++r) {
              const int e = std::max(el[r] - sigma, hl[r] - rho);
              const int fv = std::max(up_f - sigma, up_h - rho);
              int hv = dval + score_col[r];
              hv = std::max({0, hv, e, fv});
              dval = hl[r];
              hl[r] = hv;
              el[r] = e;
              up_h = hv;
              up_f = fv;
              best = std::max(best, hv);
            }
            // Retain the top value: it is the next column's diagonal input.
            prev_top = top_h;

            // Shared-memory handoff of this tile column's bottom cell.
            const std::size_t slot =
                static_cast<std::size_t>(cur) * sh_stride +
                static_cast<std::size_t>(t) * static_cast<std::size_t>(tw) +
                (c - c0);
            sh_h[slot] = up_h;
            sh_f[slot] = up_f;

            // Strip-boundary output by the last live thread.
            if (t == live_threads - 1 &&
                r0 + rows >= std::min(m, r_base + strip)) {
              row_h[c] = up_h;
              row_f[c] = up_f;
            }
          }
          diag_reg[static_cast<std::size_t>(t)] = prev_top;
          ctx.shared_access(
              t, static_cast<std::uint64_t>(c1 - c0) * (2 + (t > 0 ? 2 : 0)));
          ctx.charge(t, static_cast<double>((c1 - c0) * rows) * cell_cycles);
        }

        // ---- per-step memory accounting -------------------------------
        const int active = t_hi - t_lo + 1;
        if (active > 0) {
          // Database symbols: thread t reads d[(k-t)*tw ..]; contiguous
          // (descending) across a warp.
          for (int w = t_lo / 32; w <= t_hi / 32; ++w) {
            const int a_lo = std::max(t_lo, w * 32);
            const int a_hi = std::min(t_hi, w * 32 + 31);
            const std::size_t c_min =
                (k - static_cast<std::size_t>(a_hi)) * static_cast<std::size_t>(tw);
            const auto span = static_cast<std::uint64_t>(
                (static_cast<std::size_t>(a_hi - a_lo) + 1) *
                static_cast<std::size_t>(tw));
            // One database-symbol fetch instruction per tile column; for
            // tile widths > 1 the lanes' addresses are strided by tw, so
            // every instruction spans the warp's whole column range.
            for (int c_off = 0; c_off < tw; ++c_off) {
              const auto off = static_cast<std::uint64_t>(c_off);
              ctx.warp_access(gpusim::Space::Global, w,
                              db_base + db_offset[blk] + c_min + off,
                              span > off ? span - off : 1, false, kSiteDb);
            }
            // §III-A spill variants: tile register arrays demoted to local
            // memory, read+written once per element per tile.
            if (spill_swap) {
              ctx.warp_access(gpusim::Space::Local, w, spill_base,
                              static_cast<std::uint64_t>(2 * th * 4 * 32),
                              false, kSiteSpill);
              ctx.warp_access(gpusim::Space::Local, w, spill_base,
                              static_cast<std::uint64_t>(2 * th * 4 * 32),
                              true, kSiteSpill);
            }
            if (spill_unroll) {
              ctx.warp_access(gpusim::Space::Local, w,
                              spill_base + static_cast<std::uint64_t>(
                                               2 * th * 4 * n_th),
                              static_cast<std::uint64_t>(th * 4 * 32), false,
                              kSiteSpill);
              ctx.warp_access(gpusim::Space::Local, w,
                              spill_base + static_cast<std::uint64_t>(
                                               2 * th * 4 * n_th),
                              static_cast<std::uint64_t>(th * 4 * 32), true,
                              kSiteSpill);
            }
          }

          // Strip-boundary I/O.
          const std::size_t c_first = (k - static_cast<std::size_t>(t_lo)) *
                                      static_cast<std::size_t>(tw);
          if (t_lo == 0 && pass > 0) {
            // Thread 0 reads the previous strip's bottom row.
            if (shared_rows) {
              ctx.shared_access(0, 2 * static_cast<std::uint64_t>(tw));
            } else {
              const std::uint64_t a =
                  (row_offset[blk] + c_first) * 4;
              ctx.access(gpusim::Space::Global, 0, row_h_base + a,
                         static_cast<std::uint32_t>(4 * tw), false,
                         kSiteStripLoad);
              ctx.access(gpusim::Space::Global, 0, row_f_base + a,
                         static_cast<std::uint32_t>(4 * tw), false,
                         kSiteStripLoad);
            }
          }
          if (t_hi == live_threads - 1 && pass + 1 < passes) {
            // The last thread writes its bottom row, one column at a time
            // (uncoalesced) unless the §VI staging extension is on.
            const std::size_t c_last = (k - static_cast<std::size_t>(t_hi)) *
                                       static_cast<std::size_t>(tw);
            if (shared_rows) {
              ctx.shared_access(t_hi, 2 * static_cast<std::uint64_t>(tw));
            } else if (params.coalesced_strip_io) {
              ctx.shared_access(t_hi, 2 * static_cast<std::uint64_t>(tw));
              staged_io += tw;
              if (staged_io >= 32) {
                // One warp cooperatively flushes 32 columns of H and F.
                const std::uint64_t a = (row_offset[blk] + c_last) * 4;
                ctx.warp_access(gpusim::Space::Global, t_hi / 32,
                                row_h_base + a, 32 * 4, true, kSiteStripStore);
                ctx.warp_access(gpusim::Space::Global, t_hi / 32,
                                row_f_base + a, 32 * 4, true, kSiteStripStore);
                ctx.shared_access(t_hi, 2 * 2);  // re-read staged values
                staged_io = 0;
              }
            } else {
              const std::uint64_t a = (row_offset[blk] + c_last) * 4;
              ctx.access(gpusim::Space::Global, t_hi, row_h_base + a,
                         static_cast<std::uint32_t>(4 * tw), true,
                         kSiteStripStore);
              ctx.access(gpusim::Space::Global, t_hi, row_f_base + a,
                         static_cast<std::uint32_t>(4 * tw), true,
                         kSiteStripStore);
            }
          }
        }

        // Barrier per wavefront step. With the §VI persistent pipeline, the
        // fill steps of pass > 0 overlap the previous pass's drain, so their
        // windows merge instead of closing on a barrier.
        if (params.persistent_pipeline && pass > 0 &&
            k + 1 < static_cast<std::size_t>(live_threads)) {
          // merged window: no sync
        } else {
          ctx.sync();
        }
      }
    }
    out.scores[blk] = best;
  });
  return out;
}

}  // namespace cusw::cudasw
