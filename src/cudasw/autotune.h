// §VI future work: automatic detection of the optimal inter/intra threshold.
//
// "It is possible to characterize the relative performance of the inter-task
// and intra-task kernels based on the mean and maximum lengths of a given
// group of sequences. In this way, during the database preprocessing step,
// we can find the transition point where the intra-task kernel will
// outperform the inter-task kernel."
//
// The tuner does exactly that: it calibrates per-cell rates for both kernels
// once per device (tiny probe launches), then — using only the database's
// sorted length list — predicts, for each candidate threshold, the
// inter-task time (each group pays for its *longest* member; the
// load-imbalance model of §II-C) and the intra-task time, and returns the
// argmin.
#pragma once

#include <cstddef>
#include <vector>

#include "cudasw/config.h"
#include "gpusim/launch.h"
#include "seq/database.h"
#include "sw/scoring.h"

namespace cusw::cudasw {

struct ThresholdPrediction {
  std::size_t threshold = 0;
  double predicted_seconds = 0.0;
};

class ThresholdAutotuner {
 public:
  /// Calibrate both kernels' per-cell rates on `dev` with probe workloads.
  ThresholdAutotuner(gpusim::Device& dev, const sw::ScoringMatrix& matrix,
                     const SearchConfig& cfg, std::size_t probe_query_len = 256);

  double inter_seconds_per_cell_column() const { return inter_rate_; }
  double intra_seconds_per_cell() const { return intra_rate_; }

  /// Predicted total scan time (seconds) for a given threshold.
  double predict_seconds(const std::vector<std::size_t>& sorted_lengths,
                         std::size_t query_len, std::size_t threshold) const;

  /// Pick the best threshold among `candidates` for this database.
  ThresholdPrediction tune(const seq::SequenceDB& db, std::size_t query_len,
                           const std::vector<std::size_t>& candidates) const;

 private:
  std::size_t group_size_;
  double inter_rate_ = 0.0;  // seconds per (longest-length x query) cell
  double intra_rate_ = 0.0;  // seconds per cell
};

}  // namespace cusw::cudasw
