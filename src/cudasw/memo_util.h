// Helpers shared by the kernels' block-memoization hooks (gpusim/launch.h,
// DESIGN.md §12). Replayed blocks skip the simulated DP body, so the score
// each block would have produced is recomputed on the host with the
// adaptive striped engine (saturating 8-bit pass, exact 16-bit fallback) —
// proven score-identical to the exact reference in the test suite —
// falling back to the linear-space reference where even the 16-bit
// kernel's arithmetic could saturate.
#pragma once

#include <vector>

#include "seq/database.h"
#include "sw/scoring.h"
#include "sw/smith_waterman.h"
#include "swps3/striped8.h"

namespace cusw::cudasw {

/// Exact local-alignment score for memo replay.
inline int memo_replay_score(const swps3::StripedEngine& engine,
                             const std::vector<seq::Code>& query,
                             const std::vector<seq::Code>& target,
                             const sw::ScoringMatrix& matrix,
                             sw::GapPenalty gap) {
  const int s = engine.score(target);
  if (s < 30000) return s;  // int16 headroom exhausted: recompute exactly
  return sw::sw_score(query, target, matrix, gap);
}

}  // namespace cusw::cudasw
