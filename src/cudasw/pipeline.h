// The CUDASW++ host pipeline: sort the database by length, dispatch
// sequences below the threshold to the inter-task kernel in
// occupancy-sized groups, and the rest to the configured intra-task
// kernel. Reports the GCUPs and per-kernel time split the paper's
// experiments are built on.
#pragma once

#include <cstdint>
#include <vector>

#include "cudasw/config.h"
#include "cudasw/inter_task.h"
#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "gpusim/fault.h"
#include "seq/database.h"

namespace cusw::cudasw {

struct SearchReport {
  /// Optimal local-alignment scores, in original database order.
  std::vector<int> scores;

  double inter_seconds = 0.0;
  double intra_seconds = 0.0;
  std::uint64_t inter_cells = 0;
  std::uint64_t intra_cells = 0;
  std::size_t inter_sequences = 0;
  std::size_t intra_sequences = 0;
  std::size_t groups = 0;
  gpusim::LaunchStats inter_stats;
  gpusim::LaunchStats intra_stats;
  /// Fault events behind this report. search() itself never retries — a
  /// faulted launch aborts it — so this stays empty unless a fleet driver
  /// (multi_gpu_search, chunked_search) produced the report and records
  /// what it took to complete it.
  gpusim::FaultStats faults;

  double seconds() const { return inter_seconds + intra_seconds; }
  std::uint64_t cells() const { return inter_cells + intra_cells; }
  double gcups() const {
    return seconds() > 0.0 ? static_cast<double>(cells()) / seconds() * 1e-9
                           : 0.0;
  }
  /// Fraction of the run spent in the intra-task kernel (Fig. 5b / 6).
  double intra_time_fraction() const {
    return seconds() > 0.0 ? intra_seconds / seconds() : 0.0;
  }
};

/// Group size for inter-task launches: enough sequences to give every
/// resident thread of the device one sequence, "calculated at runtime based
/// on machine parameters to maximize the occupancy" (§II-C).
std::size_t inter_task_group_size(const gpusim::DeviceSpec& dev,
                                  const InterTaskParams& params);

/// The host-side database preprocessing step: sort by length, split at the
/// threshold, remember the original order. Shared across queries when
/// scanning with several (the sort only depends on the database and the
/// threshold).
class PreparedDatabase {
 public:
  PreparedDatabase(const seq::SequenceDB& db, std::size_t threshold);

  const seq::SequenceDB& db() const { return *db_; }
  std::size_t threshold() const { return threshold_; }
  /// Original-order indices of sequences at/below the threshold, sorted by
  /// ascending length.
  const std::vector<std::size_t>& below() const { return below_; }
  /// Original-order indices above the threshold, sorted by length.
  const std::vector<std::size_t>& above() const { return above_; }

 private:
  const seq::SequenceDB* db_;
  std::size_t threshold_;
  std::vector<std::size_t> below_;
  std::vector<std::size_t> above_;
};

/// Full database scan with the configured kernels.
SearchReport search(gpusim::Device& dev, const std::vector<seq::Code>& query,
                    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
                    const SearchConfig& cfg);

/// Scan with a pre-sorted database (must have been prepared with the same
/// threshold as cfg.threshold).
SearchReport search(gpusim::Device& dev, const std::vector<seq::Code>& query,
                    const PreparedDatabase& prepared,
                    const sw::ScoringMatrix& matrix, const SearchConfig& cfg);

/// Scan several queries, sharing the database preprocessing — the batch
/// workflow of a server scanning many queries against one database.
std::vector<SearchReport> search_batch(
    gpusim::Device& dev, const std::vector<std::vector<seq::Code>>& queries,
    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
    const SearchConfig& cfg);

/// GCUPs of a single kernel run (simulated time).
double kernel_gcups(const KernelRun& run);

}  // namespace cusw::cudasw
