// The paper's improved intra-task kernel (§III): one thread block per pair,
// 4x1 register tiles, strip mining.
//
// A strip is threads x tile_height query rows. Thread t owns tile row t of
// the strip and sweeps it column by column, staggered one column behind
// thread t-1 (a wavefront of tiles, Fig. 4). Horizontal dependencies (H, E)
// live in registers; vertical and diagonal dependencies (H, F) cross threads
// through shared memory; only the bottom row of a strip round-trips through
// global memory. The packed query profile (4 scores per 32-bit texel) is
// fetched once per tile from texture memory.
//
// The parameter toggles in ImprovedIntraParams recreate the incremental
// versions of §III-A/B (register-spill workarounds, packed profile) and the
// §VI future-work extensions (coalesced strip I/O, shared-only mode,
// persistent pipeline).
#pragma once

#include "cudasw/inter_task.h"
#include "sw/query_profile.h"

namespace cusw::cudasw {

/// Score `query` against every sequence of `longs`, one block per pair.
KernelRun run_intra_task_improved(gpusim::Device& dev,
                                  const std::vector<seq::Code>& query,
                                  seq::SequenceDBView longs,
                                  const sw::ScoringMatrix& matrix,
                                  sw::GapPenalty gap,
                                  const ImprovedIntraParams& params);

}  // namespace cusw::cudasw
