// The inter-task kernel: one thread per database sequence (§II-B-1).
//
// Each thread walks its own DP table in 8-column x 4-row register tiles,
// row-major over tiles, column-major inside a tile. The bottom row of each
// tile row (H and F) round-trips through a global-memory row buffer laid
// out interleaved across the group's threads so accesses coalesce; the
// right column stays in registers. The query profile sits in texture
// memory.
//
// A launch covers one *group* of sequences (the host sorts the database by
// length and partitions it, §II-C); because threads of a launch finish
// together, the group's longest sequence bounds the launch — the
// load-balancing sensitivity of Fig. 2 emerges from exactly this.
#pragma once

#include <vector>

#include "cudasw/config.h"
#include "gpusim/launch.h"
#include "seq/database.h"
#include "sw/scoring.h"

namespace cusw::cudasw {

struct KernelRun {
  std::vector<int> scores;  // one per sequence, group order
  gpusim::LaunchStats stats;
  std::uint64_t cells = 0;
};

/// Score `query` against every sequence of `group` (a view of a
/// contiguous, length-sorted slice of the database — the pipeline passes
/// index spans of the prepared database, copy-free) with the inter-task
/// kernel.
KernelRun run_inter_task(gpusim::Device& dev,
                         const std::vector<seq::Code>& query,
                         seq::SequenceDBView group,
                         const sw::ScoringMatrix& matrix, sw::GapPenalty gap,
                         const InterTaskParams& params);

}  // namespace cusw::cudasw
