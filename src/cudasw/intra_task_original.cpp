#include "cudasw/intra_task_original.h"

#include <algorithm>
#include <limits>

#include "cudasw/memo_util.h"
#include "util/check.h"

namespace cusw::cudasw {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

KernelRun run_intra_task_original(gpusim::Device& dev,
                                  const std::vector<seq::Code>& query,
                                  seq::SequenceDBView longs,
                                  const sw::ScoringMatrix& matrix,
                                  sw::GapPenalty gap,
                                  const OriginalIntraParams& params) {
  KernelRun out;
  out.scores.assign(longs.size(), 0);
  if (longs.empty() || query.empty()) return out;

  const std::size_t m = query.size();
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const int tpb = params.threads_per_block;
  for (std::size_t i = 0; i < longs.size(); ++i)
    out.cells += m * longs[i].length();

  // Per-block wavefront storage in global memory: three banks of H and two
  // each of E and F, every bank one diagonal of up to m entries. Bank b of
  // block blk lives at wave_base + ((blk*7 + b) * m_pad + i) * 4. Addresses
  // come from a per-run arena so the layout is independent of host-side
  // launch concurrency and order.
  gpusim::MemoryArena arena;
  const std::uint64_t m_pad = (m + 32) & ~std::uint64_t{31};
  const std::uint64_t wave_base =
      arena.reserve(static_cast<std::size_t>(longs.size()) * 7 * m_pad * 4);
  std::uint64_t db_total = 0;
  std::vector<std::uint64_t> db_offset;
  db_offset.reserve(longs.size());
  for (std::size_t i = 0; i < longs.size(); ++i) {
    db_offset.push_back(db_total);
    db_total += (longs[i].length() + 31) & ~std::uint64_t{31};
  }
  const std::uint64_t db_base = arena.reserve(db_total);
  const std::uint64_t query_base = arena.reserve((m + 31) & ~std::size_t{31});

  // Attribution sites, interned once per run (see gpusim/site.h).
  const gpusim::SiteId kSiteWaveLoad = gpusim::intern_site("wavefront.load");
  const gpusim::SiteId kSiteWaveStore = gpusim::intern_site("wavefront.store");
  const gpusim::SiteId kSiteQuery = gpusim::intern_site("query.symbol_load");
  const gpusim::SiteId kSiteDb = gpusim::intern_site("db.symbol_load");

  gpusim::LaunchConfig cfg;
  cfg.label = "intra_task_original";
  cfg.cells = out.cells;
  cfg.blocks = static_cast<int>(longs.size());
  cfg.threads_per_block = tpb;
  cfg.regs_per_thread = params.regs_per_thread;
  cfg.prefer_l1 = true;  // the kernel uses no shared memory

  const double cell_cycles = dev.cost_model().cycles_per_cell;

  // Block memoization (DESIGN.md §12). Every address a block touches is one
  // of three base terms — its wavefront bank region, its database slice, or
  // the shared query buffer — plus an offset that is a pure function of
  // (m, n, diagonal index), so the key is (m, n) plus each base modulo the
  // cache translation period.
  const swps3::StripedEngine engine(query, matrix, gap);
  cfg.memo_key = [&](int block, const gpusim::MemoPeriods& p,
                     std::vector<std::uint64_t>& key) {
    const auto blk = static_cast<std::size_t>(block);
    key.push_back(m);
    key.push_back(longs[blk].length());
    key.push_back((wave_base + blk * 7 * m_pad * 4) % p.global);
    key.push_back((db_base + db_offset[blk]) % p.global);
    key.push_back(query_base % p.global);
  };
  cfg.memo_replay = [&](int block) {
    const auto blk = static_cast<std::size_t>(block);
    out.scores[blk] =
        memo_replay_score(engine, query, longs[blk].residues, matrix, gap);
  };

  out.stats = dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
    const auto blk = static_cast<std::size_t>(ctx.block_id());
    const auto& target = longs[blk].residues;
    const std::size_t n = target.size();
    auto bank_addr = [&](int bank, std::size_t i) {
      return wave_base + ((blk * 7 + static_cast<std::size_t>(bank)) * m_pad +
                          static_cast<std::uint64_t>(i)) *
                             4;
    };

    // Functional wavefront state, indexed by query row i.
    std::vector<int> h_prev2(m, 0), h_prev(m, 0), h_cur(m, 0);
    std::vector<int> e_prev(m, kNegInf), e_cur(m, kNegInf);
    std::vector<int> f_prev(m, kNegInf), f_cur(m, kNegInf);
    int best = 0;

    for (std::size_t d = 0; d < m + n - 1; ++d) {
      const std::size_t i_lo = d >= n ? d - n + 1 : 0;
      const std::size_t i_hi = std::min(m - 1, d);  // inclusive
      const int h_bank = static_cast<int>(d % 3);
      const int e_bank = 3 + static_cast<int>(d % 2);
      const int f_bank = 5 + static_cast<int>(d % 2);

      // The diagonal is processed in chunks of `tpb` threads; each chunk is
      // one synchronised step ("all threads in the block are busy only when
      // the length of the minor diagonal is a multiple of the number of
      // threads per block").
      for (std::size_t c_lo = i_lo; c_lo <= i_hi;
           c_lo += static_cast<std::size_t>(tpb)) {
        const std::size_t c_hi =
            std::min(i_hi, c_lo + static_cast<std::size_t>(tpb) - 1);
        const auto active = static_cast<int>(c_hi - c_lo + 1);

        for (std::size_t i = c_lo; i <= c_hi; ++i) {
          const std::size_t j = d - i;
          const int e =
              j > 0 ? std::max(e_prev[i] - sigma, h_prev[i] - rho) : kNegInf;
          const int f = i > 0 ? std::max(f_prev[i - 1] - sigma,
                                         h_prev[i - 1] - rho)
                              : kNegInf;
          const int diag = (i > 0 && j > 0) ? h_prev2[i - 1] : 0;
          const int hv =
              std::max({0, diag + matrix.score(query[i], target[j]), e, f});
          h_cur[i] = hv;
          e_cur[i] = e;
          f_cur[i] = f;
          best = std::max(best, hv);
        }
        ctx.charge_warp_uniform((active + 31) / 32, cell_cycles);

        // Ten global accesses per cell, coalesced along the diagonal: five
        // wavefront reads, three wavefront writes, plus the two symbols.
        const int warps = (active + 31) / 32;
        for (int w = 0; w < warps; ++w) {
          const std::size_t i0 = c_lo + static_cast<std::size_t>(w) * 32;
          const auto span = static_cast<std::uint64_t>(
              std::min<std::size_t>(32, c_hi - i0 + 1));
          const std::uint64_t b4 = span * 4;
          const int hp = static_cast<int>((d + 2) % 3);   // H[d-1]
          const int hp2 = static_cast<int>((d + 1) % 3);  // H[d-2]
          const int ep = 3 + static_cast<int>((d + 1) % 2);
          const int fp = 5 + static_cast<int>((d + 1) % 2);
          ctx.warp_access(gpusim::Space::Global, w, bank_addr(hp, i0), b4,
                          false, kSiteWaveLoad);
          // H[d-1][i-1], F[d-1][i-1]: shifted reads, distinct transactions
          // at the warp boundary.
          ctx.warp_access(gpusim::Space::Global, w,
                          bank_addr(hp, i0 > 0 ? i0 - 1 : 0), b4, false,
                          kSiteWaveLoad);
          ctx.warp_access(gpusim::Space::Global, w,
                          bank_addr(hp2, i0 > 0 ? i0 - 1 : 0), b4, false,
                          kSiteWaveLoad);
          ctx.warp_access(gpusim::Space::Global, w, bank_addr(ep, i0), b4,
                          false, kSiteWaveLoad);
          ctx.warp_access(gpusim::Space::Global, w,
                          bank_addr(fp, i0 > 0 ? i0 - 1 : 0), b4, false,
                          kSiteWaveLoad);
          ctx.warp_access(gpusim::Space::Global, w, bank_addr(h_bank, i0), b4,
                          true, kSiteWaveStore);
          ctx.warp_access(gpusim::Space::Global, w, bank_addr(e_bank, i0), b4,
                          true, kSiteWaveStore);
          ctx.warp_access(gpusim::Space::Global, w, bank_addr(f_bank, i0), b4,
                          true, kSiteWaveStore);
          // Query symbol (by i) and database symbol (by j = d - i).
          ctx.warp_access(gpusim::Space::Global, w, query_base + i0, span,
                          false, kSiteQuery);
          const std::uint64_t j_hi = d - i0;  // j for the first lane
          ctx.warp_access(gpusim::Space::Global, w,
                          db_base + db_offset[blk] + (j_hi >= span ? j_hi - span + 1 : 0),
                          span, false, kSiteDb);
        }
        ctx.sync();
      }

      std::swap(h_prev2, h_prev);
      std::swap(h_prev, h_cur);
      std::swap(e_prev, e_cur);
      std::swap(f_prev, f_cur);
    }
    out.scores[blk] = best;
  });
  return out;
}

}  // namespace cusw::cudasw
