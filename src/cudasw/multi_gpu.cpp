#include "cudasw/multi_gpu.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace cusw::cudasw {

MultiGpuReport multi_gpu_search(const gpusim::DeviceSpec& spec, int gpus,
                                const std::vector<seq::Code>& query,
                                const seq::SequenceDB& db,
                                const sw::ScoringMatrix& matrix,
                                const SearchConfig& cfg) {
  CUSW_REQUIRE(gpus > 0, "need at least one GPU");
  MultiGpuReport out;

  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].length() < db[b].length();
                   });

  for (int g = 0; g < gpus; ++g) {
    seq::SequenceDB shard;
    for (std::size_t i = static_cast<std::size_t>(g); i < order.size();
         i += static_cast<std::size_t>(gpus)) {
      shard.add(db[order[i]]);
    }
    gpusim::Device dev(spec);
    SearchReport r = search(dev, query, shard, matrix, cfg);
    out.seconds = std::max(out.seconds, r.seconds());
    out.cells += r.cells();
    out.per_gpu.push_back(std::move(r));
  }
  return out;
}

StreamingReport model_streaming_transfer(std::uint64_t db_bytes,
                                         double compute_seconds, int chunks,
                                         const TransferModel& xfer) {
  CUSW_REQUIRE(chunks > 0, "need at least one chunk");
  StreamingReport r;
  r.compute_seconds = compute_seconds;
  const double per_byte = 1.0 / (xfer.pcie_bandwidth_gbs * 1e9);
  r.transfer_seconds = static_cast<double>(db_bytes) * per_byte +
                       static_cast<double>(chunks) * xfer.chunk_overhead_us * 1e-6;
  r.blocking_total = static_cast<double>(db_bytes) * per_byte +
                     xfer.chunk_overhead_us * 1e-6 + compute_seconds;
  // Streamed: the first chunk must land before compute starts; the
  // remaining chunks copy in the background while kernels run.
  const double chunk_seconds =
      r.transfer_seconds / static_cast<double>(chunks);
  const double background = r.transfer_seconds - chunk_seconds;
  r.streamed_total = chunk_seconds + std::max(background, compute_seconds);
  r.saved_seconds = r.blocking_total - r.streamed_total;
  return r;
}

}  // namespace cusw::cudasw
