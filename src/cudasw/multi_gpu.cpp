#include "cudasw/multi_gpu.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "swps3/striped8.h"
#include "util/check.h"

namespace cusw::cudasw {

namespace {

// Driver-level fault metrics: what it took to complete the scan, on top of
// the per-injection counters the FaultInjector itself publishes. Only
// called for fault-enabled runs, preserving the zero-overhead contract.
void publish_fault_stats(const gpusim::FaultStats& s) {
  auto& reg = obs::Registry::global();
  reg.counter("fault.retries").add(s.retries);
  reg.counter("fault.failovers").add(s.failovers);
  reg.counter("fault.devices_failed").add(s.devices_lost);
  if (s.degraded_to_cpu) reg.counter("fault.degraded").inc();
  reg.gauge("fault.backoff_seconds").add(s.backoff_seconds);
}

}  // namespace

MultiGpuReport multi_gpu_search(const gpusim::DeviceSpec& spec, int gpus,
                                const std::vector<seq::Code>& query,
                                const seq::SequenceDB& db,
                                const sw::ScoringMatrix& matrix,
                                const MultiGpuConfig& cfg) {
  CUSW_REQUIRE(gpus > 0, "need at least one GPU");
  MultiGpuReport out;
  out.scores.assign(db.size(), 0);
  if (db.empty()) return out;

  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].length() < db[b].length();
                   });

  // A fleet larger than the database leaves the surplus devices without a
  // shard: every active device gets a non-empty round-robin slice of the
  // sorted order, so per_gpu stays one report per device that did work.
  const int active = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(gpus), db.size()));

  const bool faulty = cfg.faults.enabled();
  gpusim::FaultInjector injector(cfg.faults);

  std::vector<std::unique_ptr<gpusim::Device>> devs;
  devs.reserve(static_cast<std::size_t>(active));
  for (int g = 0; g < active; ++g) {
    devs.push_back(std::make_unique<gpusim::Device>(spec));
    if (faulty) devs.back()->set_fault_injector(&injector, g);
  }

  // Work queue of (device, original-order indices) shard assignments.
  // Failover pushes a dead device's indices back, resharded over the
  // survivors, so the queue drains exactly when every sequence is scored.
  struct ShardWork {
    int g;
    std::vector<std::size_t> idx;
  };
  std::deque<ShardWork> work;
  {
    std::vector<std::vector<std::size_t>> shards(
        static_cast<std::size_t>(active));
    for (std::size_t i = 0; i < order.size(); ++i) {
      shards[i % static_cast<std::size_t>(active)].push_back(order[i]);
    }
    for (int g = 0; g < active; ++g) {
      work.push_back(ShardWork{g, std::move(shards[static_cast<std::size_t>(g)])});
    }
  }

  std::vector<double> device_seconds(static_cast<std::size_t>(active), 0.0);
  std::vector<bool> dead(static_cast<std::size_t>(active), false);
  std::optional<swps3::StripedEngine> cpu;

  const auto score_on_cpu = [&](const std::vector<std::size_t>& idx) {
    if (!cpu) cpu.emplace(query, matrix, cfg.search.gap);
    for (const std::size_t i : idx) {
      out.scores[i] = cpu->score(db[i].residues);
    }
    out.faults.degraded_to_cpu = true;
  };

  // Redistribute `idx` over the surviving devices, or degrade to the CPU
  // engine when none survive. Returns normally unless the fleet is gone
  // and the config forbids the CPU path.
  const auto fail_over = [&](std::vector<std::size_t> idx,
                             const gpusim::FaultError& cause) {
    std::vector<int> alive;
    for (int g = 0; g < active; ++g) {
      if (!dead[static_cast<std::size_t>(g)]) alive.push_back(g);
    }
    if (alive.empty()) {
      if (!cfg.allow_cpu_fallback) throw cause;
      obs::trace_instant("degrade: cpu fallback", "fault",
                         "\"sequences\": " + std::to_string(idx.size()));
      score_on_cpu(idx);
      return;
    }
    ++out.faults.failovers;
    obs::trace_instant("failover: reshard", "fault",
                       "\"sequences\": " + std::to_string(idx.size()) +
                           ", \"survivors\": " + std::to_string(alive.size()));
    std::vector<std::vector<std::size_t>> resharded(alive.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      resharded[i % alive.size()].push_back(idx[i]);
    }
    for (std::size_t a = 0; a < alive.size(); ++a) {
      if (!resharded[a].empty()) {
        work.push_back(ShardWork{alive[a], std::move(resharded[a])});
      }
    }
  };

  while (!work.empty()) {
    ShardWork item = std::move(work.front());
    work.pop_front();
    if (item.idx.empty()) continue;
    const auto gi = static_cast<std::size_t>(item.g);
    if (dead[gi]) {
      fail_over(std::move(item.idx),
                gpusim::DeviceLost(gpusim::FaultKind::kDeviceLoss,
                                   "device already lost", item.g));
      continue;
    }

    seq::SequenceDB shard;
    for (const std::size_t i : item.idx) shard.add(db[i]);

    gpusim::FaultStats shard_stats;
    int attempt = 0;
    while (true) {
      try {
        // The shard's host-to-device upload, then the scan. Either may
        // fault; both are retried wholesale, so a completed iteration
        // always carries a full, clean set of shard scores.
        if (faulty) injector.on_transfer(item.g);
        SearchReport r = search(*devs[gi], query, shard, matrix, cfg.search);
        for (std::size_t k = 0; k < item.idx.size(); ++k) {
          out.scores[item.idx[k]] = r.scores[k];
        }
        r.faults = shard_stats;
        device_seconds[gi] += r.seconds() + shard_stats.backoff_seconds;
        out.cells += r.cells();
        out.faults += shard_stats;
        out.per_gpu.push_back(std::move(r));
        break;
      } catch (const gpusim::TransientFault& f) {
        if (f.kind() == gpusim::FaultKind::kTransfer) {
          ++shard_stats.transfer_faults;
        } else {
          ++shard_stats.launch_faults;
        }
        if (attempt >= cfg.backoff.max_retries) {
          // Retries exhausted: give up on this device and reshard, the
          // same path a hard loss takes.
          dead[gi] = true;
          ++shard_stats.devices_lost;
          out.faults += shard_stats;
          device_seconds[gi] += shard_stats.backoff_seconds;
          fail_over(std::move(item.idx), f);
          break;
        }
        shard_stats.backoff_seconds += cfg.backoff.delay_seconds(attempt);
        ++shard_stats.retries;
        ++attempt;
      } catch (const gpusim::DeviceLost& f) {
        dead[gi] = true;
        ++shard_stats.devices_lost;
        out.faults += shard_stats;
        device_seconds[gi] += shard_stats.backoff_seconds;
        fail_over(std::move(item.idx), f);
        break;
      }
    }
  }

  out.seconds =
      *std::max_element(device_seconds.begin(), device_seconds.end());
  if (faulty) publish_fault_stats(out.faults);
  return out;
}

MultiGpuReport multi_gpu_search(const gpusim::DeviceSpec& spec, int gpus,
                                const std::vector<seq::Code>& query,
                                const seq::SequenceDB& db,
                                const sw::ScoringMatrix& matrix,
                                const SearchConfig& cfg) {
  MultiGpuConfig mc;
  mc.search = cfg;
  mc.faults = gpusim::FaultPlan::from_env();
  return multi_gpu_search(spec, gpus, query, db, matrix, mc);
}

StreamingReport model_streaming_transfer(std::uint64_t db_bytes,
                                         double compute_seconds, int chunks,
                                         const TransferModel& xfer) {
  CUSW_REQUIRE(chunks > 0, "need at least one chunk");
  StreamingReport r;
  r.compute_seconds = compute_seconds;
  const double per_byte = 1.0 / (xfer.pcie_bandwidth_gbs * 1e9);
  // Both schedules move the same chunked copy plan: db_bytes at PCIe
  // bandwidth plus one setup overhead per chunk. They differ only in
  // whether the copies overlap compute, so saved_seconds isolates the
  // overlap win: min(compute, transfer * (1 - 1/chunks)).
  r.transfer_seconds =
      static_cast<double>(db_bytes) * per_byte +
      static_cast<double>(chunks) * xfer.chunk_overhead_us * 1e-6;
  r.blocking_total = r.transfer_seconds + compute_seconds;
  // Streamed: the first chunk must land before compute starts; the
  // remaining chunks copy in the background while kernels run.
  const double chunk_seconds =
      r.transfer_seconds / static_cast<double>(chunks);
  const double background = r.transfer_seconds - chunk_seconds;
  r.streamed_total = chunk_seconds + std::max(background, compute_seconds);
  r.saved_seconds = r.blocking_total - r.streamed_total;
  return r;
}

}  // namespace cusw::cudasw
