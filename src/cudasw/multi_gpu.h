// §VI future work models: multi-GPU scaling and streamed host-to-device
// database transfer.
//
// "The kernel tasks are independent, and thus the running time will scale
// almost linearly with the number of GPUs" — the multi-GPU driver shards the
// database across device instances (round-robin over the sorted order, so
// every shard keeps the same length profile) and the wall time is the
// slowest shard.
//
// "Rather than copy the entire database to device memory before starting any
// alignments, the algorithm could copy over a small portion ... and start
// performing alignments on those sequences. Then the rest of the database
// can be copied in the background" — the streaming model compares the
// all-up-front transfer with the overlapped schedule.
#pragma once

#include <vector>

#include "cudasw/pipeline.h"

namespace cusw::cudasw {

struct MultiGpuReport {
  std::vector<SearchReport> per_gpu;
  double seconds = 0.0;  // max over shards
  std::uint64_t cells = 0;

  double gcups() const {
    return seconds > 0.0 ? static_cast<double>(cells) / seconds * 1e-9 : 0.0;
  }
};

/// Scan `db` with `gpus` identical devices, sharding round-robin over the
/// length-sorted order.
MultiGpuReport multi_gpu_search(const gpusim::DeviceSpec& spec, int gpus,
                                const std::vector<seq::Code>& query,
                                const seq::SequenceDB& db,
                                const sw::ScoringMatrix& matrix,
                                const SearchConfig& cfg);

struct TransferModel {
  double pcie_bandwidth_gbs = 5.5;  // PCIe 2.0 x16 effective
  double chunk_overhead_us = 10.0;  // per-chunk setup cost
};

struct StreamingReport {
  double transfer_seconds = 0.0;  // full database copy time
  double compute_seconds = 0.0;   // kernel time (from a SearchReport)
  double blocking_total = 0.0;    // copy everything, then compute
  double streamed_total = 0.0;    // overlap: first chunk + max(rest, compute)
  double saved_seconds = 0.0;
};

/// Model the host-to-device copy schedule for a database of `db_bytes`
/// split into `chunks`, overlapped with `compute_seconds` of kernel work.
StreamingReport model_streaming_transfer(std::uint64_t db_bytes,
                                         double compute_seconds, int chunks,
                                         const TransferModel& xfer = {});

}  // namespace cusw::cudasw
