// §VI future work models: multi-GPU scaling and streamed host-to-device
// database transfer.
//
// "The kernel tasks are independent, and thus the running time will scale
// almost linearly with the number of GPUs" — the multi-GPU driver shards the
// database across device instances (round-robin over the sorted order, so
// every shard keeps the same length profile) and the wall time is the
// slowest shard.
//
// "Rather than copy the entire database to device memory before starting any
// alignments, the algorithm could copy over a small portion ... and start
// performing alignments on those sequences. Then the rest of the database
// can be copied in the background" — the streaming model compares the
// all-up-front transfer with the overlapped schedule.
//
// The driver also survives injected faults (gpusim/fault.h, DESIGN.md §8):
// transient transfer/launch faults are retried under a capped exponential
// backoff, a lost device's shard is redistributed across the survivors,
// and when no device survives the scan degrades to the striped CPU engine.
// Scores under any fault plan are bit-identical to the clean run.
#pragma once

#include <vector>

#include "cudasw/pipeline.h"
#include "gpusim/fault.h"
#include "util/backoff.h"

namespace cusw::cudasw {

struct MultiGpuConfig {
  SearchConfig search;
  /// Fault schedule; default-constructed = no faults injected.
  gpusim::FaultPlan faults;
  util::BackoffPolicy backoff;
  /// Degrade to swps3::StripedEngine when no device survives; when false,
  /// an unrecoverable fleet throws the last FaultError instead.
  bool allow_cpu_fallback = true;
};

struct MultiGpuReport {
  /// One report per completed shard search. In a clean run this is one
  /// entry per active device; failover appends an entry per redistributed
  /// sub-shard, and CPU-degraded work has no entry here (its scores only
  /// appear in `scores`).
  std::vector<SearchReport> per_gpu;
  /// Combined scores, in original database order.
  std::vector<int> scores;
  double seconds = 0.0;  // max over devices (search + modelled backoff)
  std::uint64_t cells = 0;
  gpusim::FaultStats faults;

  double gcups() const {
    return seconds > 0.0 ? static_cast<double>(cells) / seconds * 1e-9 : 0.0;
  }
};

/// Scan `db` with up to `gpus` identical devices, sharding round-robin over
/// the length-sorted order. At most db.size() devices are instantiated —
/// surplus GPUs get no shard, no Device and no per_gpu entry.
MultiGpuReport multi_gpu_search(const gpusim::DeviceSpec& spec, int gpus,
                                const std::vector<seq::Code>& query,
                                const seq::SequenceDB& db,
                                const sw::ScoringMatrix& matrix,
                                const MultiGpuConfig& cfg);

/// Convenience overload: search config only, fault plan from CUSW_FAULTS
/// (disabled when unset).
MultiGpuReport multi_gpu_search(const gpusim::DeviceSpec& spec, int gpus,
                                const std::vector<seq::Code>& query,
                                const seq::SequenceDB& db,
                                const sw::ScoringMatrix& matrix,
                                const SearchConfig& cfg);

struct TransferModel {
  double pcie_bandwidth_gbs = 5.5;  // PCIe 2.0 x16 effective
  double chunk_overhead_us = 10.0;  // per-chunk setup cost
};

struct StreamingReport {
  double transfer_seconds = 0.0;  // full chunked database copy time
  double compute_seconds = 0.0;   // kernel time (from a SearchReport)
  double blocking_total = 0.0;    // copy everything, then compute
  double streamed_total = 0.0;    // overlap: first chunk + max(rest, compute)
  double saved_seconds = 0.0;
};

/// Model the host-to-device copy schedule for a database of `db_bytes`
/// split into `chunks`, overlapped with `compute_seconds` of kernel work.
/// Both schedules move the same chunked copy plan — db_bytes at PCIe
/// bandwidth plus `chunks` per-chunk setup overheads — so `saved_seconds`
/// isolates the effect of overlapping, not of chunking itself:
/// saved = min(compute_seconds, transfer_seconds * (1 - 1/chunks)).
StreamingReport model_streaming_transfer(std::uint64_t db_bytes,
                                         double compute_seconds, int chunks,
                                         const TransferModel& xfer = {});

}  // namespace cusw::cudasw
