#include "cudasw/inter_task.h"

#include <algorithm>
#include <limits>

#include "cudasw/memo_util.h"
#include "util/check.h"

namespace cusw::cudasw {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
// Amortised cycles per texture fetch in the inter-task kernel, where fetch
// addresses diverge per lane (every lane scans a different sequence) and the
// per-fetch cache behaviour is modelled statistically rather than per
// address. See DESIGN.md §5.
constexpr double kTexFetchCycles = 4.0;
}  // namespace

KernelRun run_inter_task(gpusim::Device& dev,
                         const std::vector<seq::Code>& query,
                         seq::SequenceDBView group,
                         const sw::ScoringMatrix& matrix, sw::GapPenalty gap,
                         const InterTaskParams& params) {
  KernelRun out;
  out.scores.assign(group.size(), 0);
  if (group.empty() || query.empty()) return out;

  const std::size_t m = query.size();
  const int s_threads = static_cast<int>(group.size());
  const int tpb = params.threads_per_block;
  const int blocks = (s_threads + tpb - 1) / tpb;
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const int tile_cols = params.tile_cols;
  const int tile_rows = params.tile_rows;

  std::size_t max_len = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    max_len = std::max(max_len, group[i].length());
    out.cells += m * group[i].length();
  }

  // Device layout: the group's sequences and per-thread row buffers are
  // interleaved by thread index so lockstep accesses from a warp land in one
  // 128 B segment. Element (j, t): db at db_base + j*s + t (1 byte); H/F row
  // buffers at base + (j*s + t)*4. Addresses come from a per-run arena so
  // the layout (and cache behaviour) is independent of how many kernel runs
  // the host executes, concurrently or before this one.
  gpusim::MemoryArena arena;
  const auto s_u = static_cast<std::uint64_t>(s_threads);
  const std::uint64_t db_base = arena.reserve(max_len * s_u);
  const std::uint64_t h_base = arena.reserve(max_len * s_u * 4);
  const std::uint64_t f_base = arena.reserve(max_len * s_u * 4);

  // Attribution sites, interned once per run (see gpusim/site.h).
  const gpusim::SiteId kSiteProfile = gpusim::intern_site("profile.tex_fetch");
  const gpusim::SiteId kSiteDb = gpusim::intern_site("db.symbol_load");
  const gpusim::SiteId kSiteRowLoad = gpusim::intern_site("row.load");
  const gpusim::SiteId kSiteRowStore = gpusim::intern_site("row.store");
  const gpusim::SiteId kSiteScore = gpusim::intern_site("score.store");

  gpusim::LaunchConfig cfg;
  cfg.label = "inter_task";
  cfg.cells = out.cells;
  cfg.blocks = blocks;
  cfg.threads_per_block = tpb;
  cfg.regs_per_thread = params.regs_per_thread;

  const double cell_cycles = dev.cost_model().cycles_per_cell;

  // Block memoization (DESIGN.md §12). A block's simulated timing is fully
  // determined by the query length, the tile/profile parameters, its lanes'
  // sequence lengths, and the position of its footprint modulo the device's
  // cache translation period: every address the block touches is one of the
  // region bases plus a multiple of s_u plus the lane index, so pushing each
  // base, the stride, and base_seq modulo the period pins the coalescer and
  // cache behaviour exactly. Scores are recomputed on replay.
  const swps3::StripedEngine engine(query, matrix, gap);
  cfg.memo_key = [&](int block, const gpusim::MemoPeriods& p,
                     std::vector<std::uint64_t>& key) {
    const int base_seq = block * tpb;
    const int lanes = std::min(tpb, s_threads - base_seq);
    key.push_back(m);
    key.push_back(static_cast<std::uint64_t>(tile_cols) << 33 |
                  static_cast<std::uint64_t>(tile_rows) << 1 |
                  (params.use_query_profile ? 1u : 0u));
    key.push_back(s_u % p.global);
    key.push_back(db_base % p.global);
    key.push_back(h_base % p.global);
    key.push_back(f_base % p.global);
    key.push_back(static_cast<std::uint64_t>(base_seq) % p.global);
    key.push_back(static_cast<std::uint64_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      key.push_back(group[static_cast<std::size_t>(base_seq + l)].length());
    }
  };
  cfg.memo_replay = [&](int block) {
    const int base_seq = block * tpb;
    const int lanes = std::min(tpb, s_threads - base_seq);
    for (int l = 0; l < lanes; ++l) {
      const auto& target =
          group[static_cast<std::size_t>(base_seq + l)].residues;
      out.scores[static_cast<std::size_t>(base_seq + l)] =
          memo_replay_score(engine, query, target, matrix, gap);
    }
  };

  out.stats = dev.launch(cfg, [&](gpusim::BlockCtx& ctx) {
    const int block = ctx.block_id();
    const int base_seq = block * tpb;
    const int lanes = std::min(tpb, s_threads - base_seq);

    // Per-lane DP state across tile rows: bottom-row H and F of the previous
    // tile row. Sized to each lane's own sequence.
    std::vector<std::vector<int>> h_row(static_cast<std::size_t>(lanes));
    std::vector<std::vector<int>> f_row(static_cast<std::size_t>(lanes));
    std::vector<int> best(static_cast<std::size_t>(lanes), 0);
    for (int l = 0; l < lanes; ++l) {
      const std::size_t n = group[static_cast<std::size_t>(base_seq + l)].length();
      h_row[static_cast<std::size_t>(l)].assign(n, 0);
      f_row[static_cast<std::size_t>(l)].assign(n, kNegInf);
    }

    const std::size_t tile_row_count =
        (m + static_cast<std::size_t>(tile_rows) - 1) /
        static_cast<std::size_t>(tile_rows);
    const std::int8_t* matrix_rows = matrix.data();

    for (std::size_t tr = 0; tr < tile_row_count; ++tr) {
      const std::size_t r0 = tr * static_cast<std::size_t>(tile_rows);
      const std::size_t rows = std::min<std::size_t>(tile_rows, m - r0);
      const bool first_row = tr == 0;
      const bool last_row = tr + 1 == tile_row_count;

      // Query-profile rows for this tile row (one pointer per query row, the
      // host-side equivalent of the packed texture fetch).
      const std::int8_t* qrow[8] = {};
      const auto dim = matrix.alphabet().size();
      for (std::size_t r = 0; r < rows; ++r) {
        qrow[r] = matrix_rows + static_cast<std::size_t>(query[r0 + r]) * dim;
      }

      for (int l = 0; l < lanes; ++l) {
        const auto& target =
            group[static_cast<std::size_t>(base_seq + l)].residues;
        const std::size_t n = target.size();
        int* h = h_row[static_cast<std::size_t>(l)].data();
        int* f = f_row[static_cast<std::size_t>(l)].data();
        const seq::Code* d = target.data();
        int h_left[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        int e_left[8];
        std::fill(e_left, e_left + 8, kNegInf);
        int diag_top = 0;
        int b = best[static_cast<std::size_t>(l)];
        for (std::size_t j = 0; j < n; ++j) {
          int up_h = h[j];
          int up_f = f[j];
          int dval = diag_top;
          diag_top = up_h;
          const std::size_t dj = d[j];
          for (std::size_t r = 0; r < rows; ++r) {
            const int e = std::max(e_left[r] - sigma, h_left[r] - rho);
            const int fv = std::max(up_f - sigma, up_h - rho);
            int hv = dval + qrow[r][dj];
            hv = std::max(std::max(0, hv), std::max(e, fv));
            dval = h_left[r];
            h_left[r] = hv;
            e_left[r] = e;
            up_h = hv;
            up_f = fv;
            b = std::max(b, hv);
          }
          h[j] = up_h;
          f[j] = up_f;
        }
        best[static_cast<std::size_t>(l)] = b;
        ctx.charge(l, static_cast<double>(n) * static_cast<double>(rows) *
                          cell_cycles);
        // Texture: one packed-profile fetch per tile column (4 query rows),
        // or — with the §II-A profile optimisation off — one similarity
        // lookup per cell.
        const std::size_t fetches =
            params.use_query_profile
                ? (n + static_cast<std::size_t>(tile_cols) - 1) /
                      static_cast<std::size_t>(tile_cols) *
                      static_cast<std::size_t>(tile_cols)
                : n * rows;
        ctx.note_requests(gpusim::Space::Texture, fetches, kSiteProfile);
        ctx.charge(l, static_cast<double>(fetches) * kTexFetchCycles);
      }

      // Memory accounting, per warp and per 8-column tile step. Lanes whose
      // sequence has ended drop out of the transaction (smaller size class).
      for (int w = 0; w < (lanes + 31) / 32; ++w) {
        const int lane_lo = w * 32;
        const int lane_hi = std::min(lanes, lane_lo + 32);
        std::size_t warp_max_len = 0;
        for (int l = lane_lo; l < lane_hi; ++l) {
          warp_max_len = std::max(
              warp_max_len, group[static_cast<std::size_t>(base_seq + l)].length());
        }
        const std::size_t steps =
            (warp_max_len + static_cast<std::size_t>(tile_cols) - 1) /
            static_cast<std::size_t>(tile_cols);
        for (std::size_t k = 0; k < steps; ++k) {
          int active = 0;
          for (int l = lane_lo; l < lane_hi; ++l) {
            if (k * static_cast<std::size_t>(tile_cols) <
                group[static_cast<std::size_t>(base_seq + l)].length())
              ++active;
          }
          const std::size_t j0 = k * static_cast<std::size_t>(tile_cols);
          const std::size_t j1 = std::min(
              warp_max_len, j0 + static_cast<std::size_t>(tile_cols));
          const auto lane0 =
              static_cast<std::uint64_t>(base_seq + lane_lo);
          for (std::size_t j = j0; j < j1; ++j) {
            const std::uint64_t elem = j * s_u + lane0;
            const auto cov4 = static_cast<std::uint64_t>(active) * 4;
            // Database symbols for this column.
            ctx.warp_access(gpusim::Space::Global, w, db_base + elem,
                            static_cast<std::uint64_t>(active), false,
                            kSiteDb);
            if (!first_row) {
              ctx.warp_access(gpusim::Space::Global, w, h_base + elem * 4,
                              cov4, false, kSiteRowLoad);
              ctx.warp_access(gpusim::Space::Global, w, f_base + elem * 4,
                              cov4, false, kSiteRowLoad);
            }
            if (!last_row) {
              ctx.warp_access(gpusim::Space::Global, w, h_base + elem * 4,
                              cov4, true, kSiteRowStore);
              ctx.warp_access(gpusim::Space::Global, w, f_base + elem * 4,
                              cov4, true, kSiteRowStore);
            }
          }
        }
      }
      ctx.flush();  // tile rows proceed independently per thread: no barrier
    }

    for (int l = 0; l < lanes; ++l) {
      out.scores[static_cast<std::size_t>(base_seq + l)] =
          best[static_cast<std::size_t>(l)];
      // Final score write-back.
      ctx.access(gpusim::Space::Global, l,
                 h_base + static_cast<std::uint64_t>(base_seq + l) * 4, 4,
                 true, kSiteScore);
    }
  });
  return out;
}

}  // namespace cusw::cudasw
