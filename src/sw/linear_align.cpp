#include "sw/linear_align.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cusw::sw {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Myers-Miller context. Gap runs are priced as open' + k*sigma with
// open' = rho - sigma (so a run of k costs rho + (k-1)*sigma). Boundary
// parameters tb/te give the open' price of a deletion run touching the
// top/bottom edge of a subproblem: open1 normally, 0 when the caller knows
// the run continues across that edge (its open was already charged).
struct MM {
  const seq::Code* a;  // query segment
  const seq::Code* b;  // target segment
  const ScoringMatrix* m;
  int sigma;
  int open1;  // rho - sigma
  std::string ops;
  std::vector<int> cc, dd, rr, ss;

  int ins_run(std::size_t k) const {
    return k == 0 ? 0 : -(open1 + static_cast<int>(k) * sigma);
  }

  void emit(char op, std::size_t count) { ops.append(count, op); }

  void diff(std::size_t a0, std::size_t M, std::size_t b0, std::size_t N,
            int tb, int te) {
    if (N == 0) {
      if (M > 0) emit('D', M);
      return;
    }
    if (M == 0) {
      emit('I', N);
      return;
    }
    if (M == 1) {
      diff_single_row(a0, b0, N, tb, te);
      return;
    }

    const std::size_t imid = M / 2;

    // Forward pass: cc[j]/dd[j] = best (any-state / ends-in-delete) score
    // of a[a0..a0+imid) vs b[b0..b0+j).
    cc.assign(N + 1, 0);
    dd.assign(N + 1, kNegInf);
    for (std::size_t j = 1; j <= N; ++j) cc[j] = ins_run(j);
    for (std::size_t i = 1; i <= imid; ++i) {
      const int open_del = (i == 1 ? tb : open1) + sigma;
      int s_diag = cc[0];
      cc[0] = -(tb + static_cast<int>(i) * sigma);
      dd[0] = cc[0];
      int e = kNegInf;
      const seq::Code ai = a[a0 + i - 1];
      for (std::size_t j = 1; j <= N; ++j) {
        dd[j] = std::max(dd[j] - sigma, cc[j] - open_del);
        e = std::max(e - sigma, cc[j - 1] - (open1 + sigma));
        const int c = s_diag + m->score(ai, b[b0 + j - 1]);
        s_diag = cc[j];
        cc[j] = std::max(std::max(c, dd[j]), e);
      }
    }

    // Backward pass: rr[j]/ss[j] for a[a0+imid..a0+M) vs b[b0+j..b0+N).
    rr.assign(N + 1, 0);
    ss.assign(N + 1, kNegInf);
    for (std::size_t j = 0; j < N; ++j) rr[j] = ins_run(N - j);
    const std::size_t M2 = M - imid;
    for (std::size_t i = 1; i <= M2; ++i) {
      const int open_del = (i == 1 ? te : open1) + sigma;
      int s_diag = rr[N];
      rr[N] = -(te + static_cast<int>(i) * sigma);
      ss[N] = rr[N];
      int e = kNegInf;
      const seq::Code ai = a[a0 + M - i];
      for (std::size_t j = N; j-- > 0;) {
        ss[j] = std::max(ss[j] - sigma, rr[j] - open_del);
        e = std::max(e - sigma, rr[j + 1] - (open1 + sigma));
        const int c = s_diag + m->score(ai, b[b0 + j]);
        s_diag = rr[j];
        rr[j] = std::max(std::max(c, ss[j]), e);
      }
    }

    // Join: either the path passes through node (imid, j) cleanly, or a
    // deletion run spans the midline (in which case both halves charged an
    // open; add one back).
    int best = kNegInf;
    std::size_t jstar = 0;
    bool type2 = false;
    for (std::size_t j = 0; j <= N; ++j) {
      const int t1 = cc[j] + rr[j];
      if (t1 > best) {
        best = t1;
        jstar = j;
        type2 = false;
      }
      if (dd[j] > kNegInf / 2 && ss[j] > kNegInf / 2) {
        const int t2 = dd[j] + ss[j] + open1;
        if (t2 > best) {
          best = t2;
          jstar = j;
          type2 = true;
        }
      }
    }

    // The pass arrays are scratch shared across recursion levels; the
    // recursive calls below rebuild them, so nothing to preserve.
    if (!type2) {
      diff(a0, imid, b0, jstar, tb, open1);
      diff(a0 + imid, M - imid, b0 + jstar, N - jstar, open1, te);
    } else {
      // Rows imid and imid+1 are both deletions of the spanning run.
      diff(a0, imid - 1, b0, jstar, tb, 0);
      emit('D', 2);
      diff(a0 + imid + 1, M - imid - 1, b0 + jstar, N - jstar, 0, te);
    }
  }

  // Base case: a single query row against b[b0..b0+N), N >= 1.
  void diff_single_row(std::size_t a0, std::size_t b0, std::size_t N, int tb,
                       int te) {
    // Option 1: delete the residue and insert all of b. The single-row
    // deletion touches both edges; it continues across whichever edge
    // offers the cheaper (possibly zero) open.
    int best = -(std::min(tb, te) + sigma) + ins_run(N);
    std::size_t best_k = 0;  // 0 = delete option
    for (std::size_t k = 1; k <= N; ++k) {
      const int v = ins_run(k - 1) + m->score(a[a0], b[b0 + k - 1]) +
                    ins_run(N - k);
      if (v > best) {
        best = v;
        best_k = k;
      }
    }
    if (best_k == 0) {
      emit('D', 1);
      emit('I', N);
    } else {
      emit('I', best_k - 1);
      emit('M', 1);
      emit('I', N - best_k);
    }
  }
};

// Render an edit script into gapped strings.
void render(const std::string& ops, const std::vector<seq::Code>& q,
            std::size_t q0, const std::vector<seq::Code>& t, std::size_t t0,
            const seq::Alphabet& alphabet, std::string& qa, std::string& ta) {
  std::size_t i = q0, j = t0;
  qa.clear();
  ta.clear();
  for (char op : ops) {
    switch (op) {
      case 'M':
        qa.push_back(alphabet.letter(q[i++]));
        ta.push_back(alphabet.letter(t[j++]));
        break;
      case 'D':
        qa.push_back(alphabet.letter(q[i++]));
        ta.push_back('-');
        break;
      default:
        qa.push_back('-');
        ta.push_back(alphabet.letter(t[j++]));
        break;
    }
  }
}

// Score an edit script under the affine model (merged gap runs pay one
// open each).
int score_ops(const std::string& ops, const std::vector<seq::Code>& q,
              std::size_t q0, const std::vector<seq::Code>& t, std::size_t t0,
              const ScoringMatrix& m, GapPenalty gap) {
  int score = 0;
  std::size_t i = q0, j = t0;
  char prev = 'M';
  for (char op : ops) {
    if (op == 'M') {
      score += m.score(q[i++], t[j++]);
    } else {
      score -= (op == prev) ? gap.extend : gap.open_cost();
      (op == 'D' ? i : j)++;
    }
    prev = op;
  }
  return score;
}

}  // namespace

GlobalAlignment nw_align_linear(const std::vector<seq::Code>& query,
                                const std::vector<seq::Code>& target,
                                const ScoringMatrix& matrix, GapPenalty gap) {
  MM mm{query.data(), target.data(), &matrix, gap.extend,
        gap.open_cost() - gap.extend, {}, {}, {}, {}, {}};
  mm.diff(0, query.size(), 0, target.size(), mm.open1, mm.open1);
  GlobalAlignment out;
  out.ops = std::move(mm.ops);
  out.score = score_ops(out.ops, query, 0, target, 0, matrix, gap);
  render(out.ops, query, 0, target, 0, matrix.alphabet(), out.query_aligned,
         out.target_aligned);
  return out;
}

LocalAlignment sw_align_linear(const seq::Sequence& query,
                               const seq::Sequence& target,
                               const ScoringMatrix& matrix, GapPenalty gap) {
  const auto& q = query.residues;
  const auto& t = target.residues;
  LocalAlignment out;
  if (q.empty() || t.empty()) return out;
  const int rho = gap.open_cost();
  const int sigma = gap.extend;

  // Pass 1: locate the optimal end cell (first maximum in row-major order,
  // matching sw_align's "strictly greater" update rule).
  std::size_t end_i = 0, end_j = 0;
  {
    std::vector<int> h(t.size() + 1, 0), e(t.size() + 1, kNegInf);
    int best = 0;
    for (std::size_t i = 1; i <= q.size(); ++i) {
      int f = kNegInf;
      int h_diag = 0;
      for (std::size_t j = 1; j <= t.size(); ++j) {
        e[j] = std::max(e[j] - sigma, h[j] - rho);
        f = std::max(f - sigma, h[j - 1] - rho);
        int hv = h_diag + matrix.score(q[i - 1], t[j - 1]);
        hv = std::max(std::max(0, hv), std::max(e[j], f));
        h_diag = h[j];
        h[j] = hv;
        if (hv > best) {
          best = hv;
          end_i = i;
          end_j = j;
        }
      }
    }
    out.score = best;
    if (best == 0) return out;
  }

  // Pass 2: anchored reverse DP. The optimal alignment ends with the match
  // (end_i-1, end_j-1); walking backwards, find where an alignment anchored
  // at that match reaches the full score — its start cell.
  std::size_t start_i = end_i - 1, start_j = end_j - 1;
  {
    const std::size_t m2 = end_i, n2 = end_j;
    std::vector<int> h(n2 + 1, kNegInf), e(n2 + 1, kNegInf);
    bool found = false;
    for (std::size_t i = 1; i <= m2 && !found; ++i) {
      int f = kNegInf;
      int h_diag = (i == 1) ? 0 : kNegInf;
      // h_diag must be 0 only for the anchored first cell (i=1, j=1).
      for (std::size_t j = 1; j <= n2; ++j) {
        const int e_new = std::max(e[j] - sigma, h[j] - rho);
        f = std::max(f - sigma, h[j - 1] - rho);
        const int diag = (i == 1 && j == 1) ? 0 : h_diag;
        int hv = diag > kNegInf / 2
                     ? diag + matrix.score(q[end_i - i], t[end_j - j])
                     : kNegInf;
        hv = std::max(hv, std::max(e_new, f));
        e[j] = e_new;
        h_diag = h[j];
        h[j] = hv;
        if (hv == out.score) {
          start_i = end_i - i;
          start_j = end_j - j;
          found = true;
          break;
        }
      }
    }
    CUSW_CHECK(found, "reverse pass failed to reach the optimal score");
  }

  // Pass 3: Myers-Miller global alignment of the delimited segment.
  const std::vector<seq::Code> qs(q.begin() + static_cast<std::ptrdiff_t>(start_i),
                                  q.begin() + static_cast<std::ptrdiff_t>(end_i));
  const std::vector<seq::Code> ts(t.begin() + static_cast<std::ptrdiff_t>(start_j),
                                  t.begin() + static_cast<std::ptrdiff_t>(end_j));
  MM mm{qs.data(), ts.data(), &matrix, sigma, rho - sigma, {}, {}, {}, {}, {}};
  mm.diff(0, qs.size(), 0, ts.size(), mm.open1, mm.open1);

  out.query_begin = start_i;
  out.query_end = end_i;
  out.target_begin = start_j;
  out.target_end = end_j;
  render(mm.ops, q, start_i, t, start_j, matrix.alphabet(), out.query_aligned,
         out.target_aligned);
  for (std::size_t k = 0; k < mm.ops.size(); ++k) {
    if (mm.ops[k] == 'M') {
      (out.query_aligned[k] == out.target_aligned[k] ? out.matches
                                                     : out.mismatches)++;
    } else {
      ++out.gaps;
    }
  }
  const int rescored = score_ops(mm.ops, q, start_i, t, start_j, matrix, gap);
  CUSW_CHECK(rescored == out.score,
             "linear-space alignment does not reproduce the optimal score");
  return out;
}

}  // namespace cusw::sw
