#include "sw/statistics.h"

#include <algorithm>
#include <cmath>

#include "seq/generate.h"
#include "sw/smith_waterman.h"
#include "util/check.h"
#include "util/stats.h"

namespace cusw::sw {

namespace {
constexpr double kLn2 = 0.6931471805599453;
constexpr double kEulerGamma = 0.5772156649015329;
}  // namespace

double KarlinAltschulParams::bit_score(int raw_score) const {
  CUSW_REQUIRE(lambda > 0.0 && k > 0.0, "uninitialised statistics parameters");
  return (lambda * raw_score - std::log(k)) / kLn2;
}

double KarlinAltschulParams::evalue(int raw_score, std::uint64_t query_length,
                                    std::uint64_t db_residues) const {
  CUSW_REQUIRE(lambda > 0.0 && k > 0.0, "uninitialised statistics parameters");
  return k * static_cast<double>(query_length) *
         static_cast<double>(db_residues) * std::exp(-lambda * raw_score);
}

double KarlinAltschulParams::pvalue(int raw_score, std::uint64_t query_length,
                                    std::uint64_t db_residues) const {
  const double e = evalue(raw_score, query_length, db_residues);
  return -std::expm1(-e);
}

int KarlinAltschulParams::score_for_evalue(double target,
                                           std::uint64_t query_length,
                                           std::uint64_t db_residues) const {
  CUSW_REQUIRE(target > 0.0, "target E-value must be positive");
  const double s = std::log(k * static_cast<double>(query_length) *
                            static_cast<double>(db_residues) / target) /
                   lambda;
  return static_cast<int>(std::ceil(s));
}

KarlinAltschulParams KarlinAltschulParams::blosum62_gapped() {
  // BLAST's gapped BLOSUM62 parameters (existence 10-11, extension 1-2
  // band); the standard reference values.
  return {0.267, 0.041};
}

KarlinAltschulParams KarlinAltschulParams::blosum50_gapped() {
  return {0.232, 0.112};
}

KarlinAltschulParams fit_karlin_altschul(const ScoringMatrix& matrix,
                                         GapPenalty gap, std::size_t m,
                                         std::size_t n, std::size_t samples,
                                         std::uint64_t seed) {
  CUSW_REQUIRE(samples >= 10, "need at least 10 samples for a Gumbel fit");
  CUSW_REQUIRE(m > 0 && n > 0, "sequence lengths must be positive");
  Rng rng(seed);
  OnlineStats st;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto q = seq::random_protein(m, rng).residues;
    const auto t = seq::random_protein(n, rng).residues;
    st.add(static_cast<double>(sw_score(q, t, matrix, gap)));
  }
  CUSW_CHECK(st.stddev() > 0.0, "degenerate score distribution");
  KarlinAltschulParams p;
  p.lambda = 3.14159265358979323846 / (std::sqrt(6.0) * st.stddev());
  const double mu = st.mean() - kEulerGamma / p.lambda;
  p.k = std::exp(p.lambda * mu) /
        (static_cast<double>(m) * static_cast<double>(n));
  return p;
}

std::vector<RankedHit> rank_hits(const std::vector<int>& scores,
                                 const KarlinAltschulParams& params,
                                 std::uint64_t query_length,
                                 std::uint64_t db_residues, double max_evalue,
                                 std::size_t limit) {
  std::vector<RankedHit> hits;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double e = params.evalue(scores[i], query_length, db_residues);
    if (e <= max_evalue) {
      hits.push_back(RankedHit{i, scores[i], params.bit_score(scores[i]), e});
    }
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const RankedHit& a, const RankedHit& b) {
                     return a.score > b.score;
                   });
  if (limit > 0 && hits.size() > limit) hits.resize(limit);
  return hits;
}

}  // namespace cusw::sw
