#include "sw/scoring.h"

#include <algorithm>
#include <sstream>

namespace cusw::sw {

ScoringMatrix::ScoringMatrix(const seq::Alphabet& alphabet, std::string name,
                             int fill)
    : alphabet_(&alphabet),
      name_(std::move(name)),
      dim_(alphabet.size()),
      cells_(dim_ * dim_, checked_narrow<std::int8_t>(fill)) {}

int ScoringMatrix::max_score() const {
  return *std::max_element(cells_.begin(), cells_.end());
}

int ScoringMatrix::min_score() const {
  return *std::min_element(cells_.begin(), cells_.end());
}

ScoringMatrix ScoringMatrix::parse_ncbi(const seq::Alphabet& alphabet,
                                        std::string name, std::istream& in0) {
  // Buffer the stream so the symmetry-validation pass can re-read it.
  std::ostringstream buffered;
  buffered << in0.rdbuf();
  const std::string text = buffered.str();
  std::istringstream in(text);
  std::string header_line;
  std::getline(in, header_line);
  std::istringstream header(header_line);
  std::vector<char> columns;
  for (std::string tok; header >> tok;) {
    CUSW_CHECK(tok.size() == 1, "matrix header tokens must be single letters");
    columns.push_back(tok[0]);
  }
  ScoringMatrix m(alphabet, std::move(name), 0);
  std::string row_letter;
  while (in >> row_letter) {
    CUSW_CHECK(row_letter.size() == 1, "matrix row label must be one letter");
    const seq::Code row = alphabet.encode(row_letter[0]);
    for (char col_letter : columns) {
      int v = 0;
      CUSW_CHECK(static_cast<bool>(in >> v), "matrix row truncated");
      const seq::Code col = alphabet.encode(col_letter);
      if (col <= row) {
        m.set(row, col, v);
      } else {
        // Upper triangle: must agree with what set() mirrored already once
        // the symmetric entry has been seen; defer check to full pass below.
      }
    }
  }
  // Re-parse to verify symmetry of the source table.
  std::istringstream in2(text);
  std::getline(in2, header_line);
  while (in2 >> row_letter) {
    const seq::Code row = alphabet.encode(row_letter[0]);
    for (char col_letter : columns) {
      int v = 0;
      in2 >> v;
      CUSW_CHECK(m.score(row, alphabet.encode(col_letter)) == v,
                 "matrix source is not symmetric");
    }
  }
  return m;
}

namespace {

constexpr const char* kBlosum62 = R"(A R N D C Q E G H I L K M F P S T W Y V B Z X *
A 4 -1 -2 -2 0 -1 -1 0 -2 -1 -1 -1 -1 -2 -1 1 0 -3 -2 0 -2 -1 0 -4
R -1 5 0 -2 -3 1 0 -2 0 -3 -2 2 -1 -3 -2 -1 -1 -3 -2 -3 -1 0 -1 -4
N -2 0 6 1 -3 0 0 0 1 -3 -3 0 -2 -3 -2 1 0 -4 -2 -3 3 0 -1 -4
D -2 -2 1 6 -3 0 2 -1 -1 -3 -4 -1 -3 -3 -1 0 -1 -4 -3 -3 4 1 -1 -4
C 0 -3 -3 -3 9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1 1 0 0 -3 5 2 -2 0 -3 -2 1 0 -3 -1 0 -1 -2 -1 -2 0 3 -1 -4
E -1 0 0 2 -4 2 5 -2 0 -3 -3 1 -2 -3 -1 0 -1 -3 -2 -2 1 4 -1 -4
G 0 -2 0 -1 -3 -2 -2 6 -2 -4 -4 -2 -3 -3 -2 0 -2 -2 -3 -3 -1 -2 -1 -4
H -2 0 1 -1 -3 0 0 -2 8 -3 -3 -1 -2 -1 -2 -1 -2 -2 2 -3 0 0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3 4 2 -3 1 0 -3 -2 -1 -3 -1 3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3 2 4 -2 2 0 -3 -2 -1 -2 -1 1 -4 -3 -1 -4
K -1 2 0 -1 -3 1 1 -2 -1 -3 -2 5 -1 -3 -1 0 -1 -3 -2 -2 0 1 -1 -4
M -1 -1 -2 -3 -1 0 -2 -3 -2 1 2 -1 5 0 -2 -1 -1 -1 -1 1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1 0 0 -3 0 6 -4 -2 -2 1 3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4 7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S 1 -1 1 0 -1 0 0 0 -1 -2 -2 0 -1 -2 -1 4 1 -3 -2 -2 0 0 0 -4
T 0 -1 0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1 1 5 -2 -2 0 -1 -1 0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1 1 -4 -3 -2 11 2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3 2 -1 -1 -2 -1 3 -3 -2 -2 2 7 -1 -3 -2 -1 -4
V 0 -3 -3 -3 -1 -2 -2 -3 -3 3 1 -2 1 -1 -2 -2 0 -3 -1 4 -3 -2 -1 -4
B -2 -1 3 4 -3 0 1 -1 0 -3 -4 0 -3 -3 -2 0 -1 -4 -3 -3 4 1 -1 -4
Z -1 0 0 1 -3 3 4 -2 0 -3 -3 1 -1 -3 -1 0 -1 -3 -2 -2 1 4 -1 -4
X 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2 0 0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 1
)";

constexpr const char* kBlosum50 = R"(A R N D C Q E G H I L K M F P S T W Y V B Z X *
A 5 -2 -1 -2 -1 -1 -1 0 -2 -1 -2 -1 -1 -3 -1 1 0 -3 -2 0 -2 -1 -1 -5
R -2 7 -1 -2 -4 1 0 -3 0 -4 -3 3 -2 -3 -3 -1 -1 -3 -1 -3 -1 0 -1 -5
N -1 -1 7 2 -2 0 0 0 1 -3 -4 0 -2 -4 -2 1 0 -4 -2 -3 4 0 -1 -5
D -2 -2 2 8 -4 0 2 -1 -1 -4 -4 -1 -4 -5 -1 0 -1 -5 -3 -4 5 1 -1 -5
C -1 -4 -2 -4 13 -3 -3 -3 -3 -2 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -3 -3 -2 -5
Q -1 1 0 0 -3 7 2 -2 1 -3 -2 2 0 -4 -1 0 -1 -1 -1 -3 0 4 -1 -5
E -1 0 0 2 -3 2 6 -3 0 -4 -3 1 -2 -3 -1 -1 -1 -3 -2 -3 1 5 -1 -5
G 0 -3 0 -1 -3 -2 -3 8 -2 -4 -4 -2 -3 -4 -2 0 -2 -3 -3 -4 -1 -2 -2 -5
H -2 0 1 -1 -3 1 0 -2 10 -4 -3 0 -1 -1 -2 -1 -2 -3 2 -4 0 0 -1 -5
I -1 -4 -3 -4 -2 -3 -4 -4 -4 5 2 -3 2 0 -3 -3 -1 -3 -1 4 -4 -3 -1 -5
L -2 -3 -4 -4 -2 -2 -3 -4 -3 2 5 -3 3 1 -4 -3 -1 -2 -1 1 -4 -3 -1 -5
K -1 3 0 -1 -3 2 1 -2 0 -3 -3 6 -2 -4 -1 0 -1 -3 -2 -3 0 1 -1 -5
M -1 -2 -2 -4 -2 0 -2 -3 -1 2 3 -2 7 0 -3 -2 -1 -1 0 1 -3 -1 -1 -5
F -3 -3 -4 -5 -2 -4 -3 -4 -1 0 1 -4 0 8 -4 -3 -2 1 4 -1 -4 -4 -2 -5
P -1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10 -1 -1 -4 -3 -3 -2 -1 -2 -5
S 1 -1 1 0 -1 0 -1 0 -1 -3 -3 0 -2 -3 -1 5 2 -4 -2 -2 0 0 -1 -5
T 0 -1 0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1 2 5 -3 -2 0 0 -1 0 -5
W -3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1 1 -4 -4 -3 15 2 -3 -5 -2 -3 -5
Y -2 -1 -2 -3 -3 -1 -2 -3 2 -1 -1 -2 0 4 -3 -2 -2 2 8 -1 -3 -2 -1 -5
V 0 -3 -3 -4 -1 -3 -3 -4 -4 4 1 -3 1 -1 -3 -2 0 -3 -1 5 -4 -3 -1 -5
B -2 -1 4 5 -3 0 1 -1 0 -4 -4 0 -3 -4 -2 0 0 -5 -3 -4 5 2 -1 -5
Z -1 0 0 1 -3 4 5 -2 0 -3 -3 1 -1 -4 -1 0 -1 -2 -2 -3 2 5 -1 -5
X -1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1 0 -3 -1 -1 -1 -1 -1 -5
* -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 1
)";

}  // namespace

const ScoringMatrix& ScoringMatrix::blosum62() {
  static const ScoringMatrix m = [] {
    std::istringstream in(kBlosum62);
    return parse_ncbi(seq::Alphabet::amino_acid(), "BLOSUM62", in);
  }();
  return m;
}

const ScoringMatrix& ScoringMatrix::blosum50() {
  static const ScoringMatrix m = [] {
    std::istringstream in(kBlosum50);
    return parse_ncbi(seq::Alphabet::amino_acid(), "BLOSUM50", in);
  }();
  return m;
}

ScoringMatrix ScoringMatrix::match_mismatch(const seq::Alphabet& alphabet,
                                            int match, int mismatch) {
  ScoringMatrix m(alphabet, "match/mismatch", mismatch);
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    m.set(static_cast<seq::Code>(i), static_cast<seq::Code>(i), match);
  }
  return m;
}

}  // namespace cusw::sw
