// Karlin–Altschul statistics for local alignment scores.
//
// A database search is only useful if raw Smith-Waterman scores can be
// turned into significance estimates: under the null model, optimal local
// alignment scores follow an extreme-value (Gumbel) distribution
//
//     P(S >= x) ~ 1 - exp(-K m n e^(-lambda x))
//
// with parameters (lambda, K) that depend on the scoring system. This
// module provides the standard presets for the gapped BLOSUM systems, a
// simulation-based fitter for arbitrary scoring systems (method of moments
// on the Gumbel distribution), and the bit-score / E-value / P-value
// conversions search tools report.
#pragma once

#include <cstdint>
#include <vector>

#include "sw/scoring.h"

namespace cusw::sw {

struct KarlinAltschulParams {
  double lambda = 0.0;  // scale of the score distribution (nats per unit)
  double k = 0.0;       // search-space prefactor

  /// Normalised bit score: S' = (lambda*S - ln K) / ln 2.
  double bit_score(int raw_score) const;

  /// Expected number of chance hits with score >= raw in a search of an
  /// m-residue query against n total database residues.
  double evalue(int raw_score, std::uint64_t query_length,
                std::uint64_t db_residues) const;

  /// P(at least one chance hit with score >= raw) = 1 - exp(-E).
  double pvalue(int raw_score, std::uint64_t query_length,
                std::uint64_t db_residues) const;

  /// Raw score needed for an E-value of `evalue` in the given search space
  /// (the inverse of evalue(), rounded up).
  int score_for_evalue(double evalue, std::uint64_t query_length,
                       std::uint64_t db_residues) const;

  /// Published gapped parameters (BLAST defaults) for the matrices this
  /// library embeds.
  static KarlinAltschulParams blosum62_gapped();  // open 10 extend 2 class
  static KarlinAltschulParams blosum50_gapped();  // open 10 extend 2 class
};

/// Fit (lambda, K) empirically by aligning random sequence pairs under the
/// given scoring system and fitting a Gumbel distribution to the maxima by
/// the method of moments:
///     lambda = pi / (sqrt(6) * stddev),   mu = mean - gamma/lambda,
///     K = exp(lambda * mu) / (m * n).
/// Deterministic in `seed`. Costs samples * m * n cell updates.
KarlinAltschulParams fit_karlin_altschul(const ScoringMatrix& matrix,
                                         GapPenalty gap, std::size_t m,
                                         std::size_t n, std::size_t samples,
                                         std::uint64_t seed);

/// A scored database hit annotated with significance.
struct RankedHit {
  std::size_t db_index = 0;
  int score = 0;
  double bit_score = 0.0;
  double evalue = 0.0;
};

/// Rank all database scores by significance and keep those with
/// E-value <= max_evalue (top `limit` of them; limit 0 = no limit).
std::vector<RankedHit> rank_hits(const std::vector<int>& scores,
                                 const KarlinAltschulParams& params,
                                 std::uint64_t query_length,
                                 std::uint64_t db_residues, double max_evalue,
                                 std::size_t limit = 0);

}  // namespace cusw::sw
