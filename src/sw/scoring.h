// Substitution matrices and affine gap penalties.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "util/check.h"

namespace cusw::sw {

/// Affine gap model: a gap of length k costs open + k * extend (i.e. the
/// first gap residue costs open + extend). Matches the recurrence in the
/// paper's Eq. (1) with rho = open + extend charged on gap opening and
/// sigma = extend on continuation.
struct GapPenalty {
  int open = 10;    // rho
  int extend = 2;   // sigma

  int open_cost() const { return open + extend; }
};

/// Square substitution matrix over an alphabet, stored row-major with
/// direct code indexing (the layout the query profile is built from).
class ScoringMatrix {
 public:
  ScoringMatrix(const seq::Alphabet& alphabet, std::string name, int fill);

  const std::string& name() const { return name_; }
  const seq::Alphabet& alphabet() const { return *alphabet_; }
  std::size_t dim() const { return dim_; }

  int score(seq::Code a, seq::Code b) const {
    return cells_[static_cast<std::size_t>(a) * dim_ + b];
  }

  void set(seq::Code a, seq::Code b, int v) {
    cells_[static_cast<std::size_t>(a) * dim_ + b] =
        checked_narrow<std::int8_t>(v);
    cells_[static_cast<std::size_t>(b) * dim_ + a] =
        checked_narrow<std::int8_t>(v);
  }

  void set_by_letter(char a, char b, int v) {
    set(alphabet_->encode(a), alphabet_->encode(b), v);
  }

  int max_score() const;
  int min_score() const;

  /// Raw row-major cell storage (dim() x dim() int8), for hot loops that
  /// hoist row pointers.
  const std::int8_t* data() const { return cells_.data(); }

  /// The standard matrices used by CUDASW++ benchmarks.
  static const ScoringMatrix& blosum62();
  static const ScoringMatrix& blosum50();
  /// Simple match/mismatch matrix (useful for DNA and for unit tests whose
  /// expected scores are easy to derive by hand).
  static ScoringMatrix match_mismatch(const seq::Alphabet& alphabet, int match,
                                      int mismatch);
  /// Parse an NCBI-format matrix (header row of column letters, then one
  /// "<letter> <scores...>" row per residue). Symmetry is validated; use
  /// this to load BLOSUM45/80/90, PAM matrices, or custom scoring systems.
  static ScoringMatrix parse_ncbi(const seq::Alphabet& alphabet,
                                  std::string name, std::istream& in);

 private:
  const seq::Alphabet* alphabet_;
  std::string name_;
  std::size_t dim_;
  std::vector<std::int8_t> cells_;
};

}  // namespace cusw::sw
