// Linear-space alignment with traceback (Hirschberg / Myers-Miller).
//
// sw_align() needs O(mn) memory for its traceback tables, which rules out
// aligning long pairs (the intra-task regime: sequences of tens of
// thousands of residues). This module produces the same optimal local
// alignment in O(m + n) memory:
//
//   1. a linear-space Smith-Waterman pass locates the optimal end cell;
//   2. an anchored reverse pass locates the matching start cell;
//   3. the Myers-Miller divide-and-conquer (affine-gap Hirschberg) aligns
//      the delimited segment, splitting on the middle row and handling
//      deletions that span the split with the classic gap-join treatment.
#pragma once

#include "sw/smith_waterman.h"

namespace cusw::sw {

/// Optimal global alignment of the full sequences in linear space.
/// Equivalent to a full Needleman-Wunsch with traceback.
struct GlobalAlignment {
  int score = 0;
  /// Edit script over (query, target): 'M' consumes one residue of each,
  /// 'D' consumes query only (gap in target), 'I' consumes target only.
  std::string ops;
  std::string query_aligned;
  std::string target_aligned;
};

GlobalAlignment nw_align_linear(const std::vector<seq::Code>& query,
                                const std::vector<seq::Code>& target,
                                const ScoringMatrix& matrix, GapPenalty gap);

/// Optimal local alignment with traceback in linear space; same result
/// contract as sw_align() (scores always identical; the alignment is one of
/// the co-optimal ones).
LocalAlignment sw_align_linear(const seq::Sequence& query,
                               const seq::Sequence& target,
                               const ScoringMatrix& matrix, GapPenalty gap);

}  // namespace cusw::sw
