#include "sw/query_profile.h"

#include "util/check.h"

namespace cusw::sw {

QueryProfile::QueryProfile(const std::vector<seq::Code>& query,
                           const ScoringMatrix& matrix)
    : length_(query.size()), alphabet_size_(matrix.alphabet().size()) {
  rows_.resize(alphabet_size_ * length_);
  for (std::size_t a = 0; a < alphabet_size_; ++a) {
    for (std::size_t i = 0; i < length_; ++i) {
      rows_[a * length_ + i] = checked_narrow<std::int8_t>(
          matrix.score(query[i], static_cast<seq::Code>(a)));
    }
  }
}

PackedQueryProfile::PackedQueryProfile(const std::vector<seq::Code>& query,
                                       const ScoringMatrix& matrix)
    : length_(query.size()), words_((query.size() + 3) / 4) {
  const std::size_t alphabet_size = matrix.alphabet().size();
  const int pad_score = matrix.min_score();
  words_data_.resize(alphabet_size * words_);
  for (std::size_t a = 0; a < alphabet_size; ++a) {
    for (std::size_t w = 0; w < words_; ++w) {
      int s[4];
      for (int lane = 0; lane < 4; ++lane) {
        const std::size_t i = 4 * w + static_cast<std::size_t>(lane);
        s[lane] = i < length_
                      ? matrix.score(query[i], static_cast<seq::Code>(a))
                      : pad_score;
      }
      words_data_[a * words_ + w] = Packed4::make(s[0], s[1], s[2], s[3]);
    }
  }
}

}  // namespace cusw::sw
