#include "sw/banded.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cusw::sw {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

int sw_banded_score(const std::vector<seq::Code>& query,
                    const std::vector<seq::Code>& target,
                    const ScoringMatrix& matrix, GapPenalty gap,
                    std::size_t bandwidth, std::ptrdiff_t diagonal_offset) {
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const auto m = static_cast<std::ptrdiff_t>(query.size());
  const auto n = static_cast<std::ptrdiff_t>(target.size());
  if (m == 0 || n == 0) return 0;
  const auto band = static_cast<std::ptrdiff_t>(bandwidth);

  // Row-indexed DP over the band window; h/e are indexed by j.
  std::vector<int> h(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> e(static_cast<std::size_t>(n) + 1, kNegInf);
  int best = 0;
  for (std::ptrdiff_t i = 1; i <= m; ++i) {
    // Band for row i (1-based): j in [i - offset - band, i - offset + band].
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(1, i - diagonal_offset - band);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n, i - diagonal_offset + band);
    if (lo > hi) continue;
    int f = kNegInf;
    // Diagonal input for the band's first cell, then reset the cell just
    // outside the left edge to the local-alignment boundary (score 0, no
    // open gap) so the in-band F recurrence sees it as outside.
    int h_diag = h[static_cast<std::size_t>(lo - 1)];
    if (lo >= 2) {
      h[static_cast<std::size_t>(lo - 1)] = 0;
      e[static_cast<std::size_t>(lo - 1)] = kNegInf;
    }
    for (std::ptrdiff_t j = lo; j <= hi; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      e[ju] = std::max(e[ju] - sigma, h[ju] - rho);
      f = std::max(f - sigma, h[ju - 1] - rho);
      int hv = h_diag + matrix.score(query[static_cast<std::size_t>(i - 1)],
                                     target[ju - 1]);
      hv = std::max(std::max(0, hv), std::max(e[ju], f));
      h_diag = h[ju];
      h[ju] = hv;
      best = std::max(best, hv);
    }
    // Invalidate the cell just right of the band for the next row.
    if (hi + 1 <= n) {
      h[static_cast<std::size_t>(hi + 1)] = 0;
      e[static_cast<std::size_t>(hi + 1)] = kNegInf;
    }
  }
  return best;
}

}  // namespace cusw::sw
