// Query profiles: vectorised similarity-score lookup tables.
//
// A query profile (Rognes & Seeberg; §II-A of the paper) precomputes, for
// every alphabet symbol `a`, the row of scores w(q_i, a) over all query
// positions i. During the database scan the inner loop then indexes by the
// *database* symbol once and reads scores sequentially — no per-cell matrix
// lookup.
//
// The packed variant stores four consecutive query positions' scores in one
// 32-bit word; the improved intra-task kernel fetches one such word per 4x1
// tile, cutting profile reads by 4x (§III-B).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "seq/sequence.h"
#include "sw/scoring.h"

namespace cusw::sw {

class QueryProfile {
 public:
  QueryProfile(const std::vector<seq::Code>& query, const ScoringMatrix& matrix);

  std::size_t query_length() const { return length_; }
  std::size_t alphabet_size() const { return alphabet_size_; }

  /// Score of query position i (0-based) against database symbol d.
  int score(seq::Code d, std::size_t i) const {
    return rows_[static_cast<std::size_t>(d) * length_ + i];
  }

  /// Whole row for a database symbol (length() entries).
  const std::int8_t* row(seq::Code d) const {
    return rows_.data() + static_cast<std::size_t>(d) * length_;
  }

 private:
  std::size_t length_;
  std::size_t alphabet_size_;
  std::vector<std::int8_t> rows_;
};

/// Four int8 scores packed into one 32-bit word, mirroring the device
/// texture layout.
struct Packed4 {
  std::uint32_t word = 0;

  static Packed4 make(int s0, int s1, int s2, int s3) {
    auto b = [](int s) {
      return static_cast<std::uint32_t>(static_cast<std::uint8_t>(
          static_cast<std::int8_t>(s)));
    };
    return {b(s0) | (b(s1) << 8) | (b(s2) << 16) | (b(s3) << 24)};
  }

  int get(int lane) const {
    return static_cast<std::int8_t>(
        static_cast<std::uint8_t>(word >> (8 * lane)));
  }
};

class PackedQueryProfile {
 public:
  PackedQueryProfile(const std::vector<seq::Code>& query,
                     const ScoringMatrix& matrix);

  std::size_t query_length() const { return length_; }
  /// Number of packed words per alphabet symbol: ceil(length / 4).
  std::size_t words_per_symbol() const { return words_; }

  /// Packed scores of query positions [4*block, 4*block+4) against symbol d.
  /// Positions past the end of the query score the matrix minimum so padded
  /// lanes can never win the running maximum.
  Packed4 packed(seq::Code d, std::size_t block) const {
    return words_data_[static_cast<std::size_t>(d) * words_ + block];
  }

  /// Linear index of packed(d, block) in the backing store — this is the
  /// texture address the simulated kernels fetch from.
  std::size_t texel_index(seq::Code d, std::size_t block) const {
    return static_cast<std::size_t>(d) * words_ + block;
  }

  const std::vector<Packed4>& words() const { return words_data_; }

 private:
  std::size_t length_;
  std::size_t words_;
  std::vector<Packed4> words_data_;
};

}  // namespace cusw::sw
