// Reference dynamic-programming aligners.
//
// These are the ground truth every kernel (simulated GPU and striped SIMD)
// is validated against. The recurrence matches the paper's Eq. (1):
//
//   E[i,j] = max(E[i,j-1] - sigma, H[i,j-1] - rho)
//   F[i,j] = max(F[i-1,j] - sigma, H[i-1,j] - rho)
//   H[i,j] = max(0, E[i,j], F[i,j], H[i-1,j-1] + w(q_i, d_j))
//
// with rho = GapPenalty::open_cost() (gap of length k costs open + k*extend).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "sw/scoring.h"

namespace cusw::sw {

/// Optimal local alignment score, O(min-memory) linear-space Gotoh.
int sw_score(const std::vector<seq::Code>& query,
             const std::vector<seq::Code>& target, const ScoringMatrix& matrix,
             GapPenalty gap);

/// Full H table (query.size()+1 rows by target.size()+1 columns) for tests
/// and visualisation. Quadratic memory: only use on small inputs.
std::vector<std::vector<int>> sw_full_table(
    const std::vector<seq::Code>& query, const std::vector<seq::Code>& target,
    const ScoringMatrix& matrix, GapPenalty gap);

/// A local alignment with traceback.
struct LocalAlignment {
  int score = 0;
  // Half-open residue ranges of the aligned region in each sequence.
  std::size_t query_begin = 0, query_end = 0;
  std::size_t target_begin = 0, target_end = 0;
  // Aligned strings with '-' for gaps, same length.
  std::string query_aligned;
  std::string target_aligned;
  std::size_t matches = 0, mismatches = 0, gaps = 0;
};

/// Optimal local alignment with traceback (quadratic memory).
LocalAlignment sw_align(const seq::Sequence& query, const seq::Sequence& target,
                        const ScoringMatrix& matrix, GapPenalty gap);

/// Needleman–Wunsch global alignment score (affine gaps), for completeness.
int nw_score(const std::vector<seq::Code>& query,
             const std::vector<seq::Code>& target, const ScoringMatrix& matrix,
             GapPenalty gap);

/// Semi-global score: gaps at the start/end of the *target* are free.
int semiglobal_score(const std::vector<seq::Code>& query,
                     const std::vector<seq::Code>& target,
                     const ScoringMatrix& matrix, GapPenalty gap);

}  // namespace cusw::sw
