// Banded Smith-Waterman: restrict the DP to a diagonal band.
//
// For pairs known to be globally similar (or as a fast rescoring filter
// after a heuristic seed), only cells with |i - j - offset| <= bandwidth
// matter. Complexity drops from O(mn) to O(band * max(m, n)); with a wide
// enough band the score equals the full computation.
#pragma once

#include <cstddef>
#include <vector>

#include "seq/sequence.h"
#include "sw/scoring.h"

namespace cusw::sw {

/// Optimal local alignment score within the band
/// { (i, j) : |(i - j) - diagonal_offset| <= bandwidth }, 0-based residue
/// indices. The result is a lower bound of the unbanded score and equals it
/// once the band covers the optimal alignment's diagonal range.
int sw_banded_score(const std::vector<seq::Code>& query,
                    const std::vector<seq::Code>& target,
                    const ScoringMatrix& matrix, GapPenalty gap,
                    std::size_t bandwidth, std::ptrdiff_t diagonal_offset = 0);

}  // namespace cusw::sw
