#include "sw/smith_waterman.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cusw::sw {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

int sw_score(const std::vector<seq::Code>& query,
             const std::vector<seq::Code>& target, const ScoringMatrix& matrix,
             GapPenalty gap) {
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  if (m == 0 || n == 0) return 0;

  // One row of H and E; F and the diagonal H value are carried in scalars.
  std::vector<int> h(n + 1, 0);
  std::vector<int> e(n + 1, kNegInf);
  int best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    int f = kNegInf;
    int h_diag = 0;  // H[i-1][j-1]
    h[0] = 0;
    const seq::Code qi = query[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      e[j] = std::max(e[j] - sigma, h[j] - rho);        // gap in query
      f = std::max(f - sigma, h[j - 1] - rho);          // gap in target
      int hij = h_diag + matrix.score(qi, target[j - 1]);
      hij = std::max({0, hij, e[j], f});
      h_diag = h[j];
      h[j] = hij;
      best = std::max(best, hij);
    }
  }
  return best;
}

std::vector<std::vector<int>> sw_full_table(
    const std::vector<seq::Code>& query, const std::vector<seq::Code>& target,
    const ScoringMatrix& matrix, GapPenalty gap) {
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  std::vector<std::vector<int>> h(m + 1, std::vector<int>(n + 1, 0));
  std::vector<std::vector<int>> e(m + 1, std::vector<int>(n + 1, kNegInf));
  std::vector<std::vector<int>> f(m + 1, std::vector<int>(n + 1, kNegInf));
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      e[i][j] = std::max(e[i][j - 1] - sigma, h[i][j - 1] - rho);
      f[i][j] = std::max(f[i - 1][j] - sigma, h[i - 1][j] - rho);
      const int diag =
          h[i - 1][j - 1] + matrix.score(query[i - 1], target[j - 1]);
      h[i][j] = std::max({0, diag, e[i][j], f[i][j]});
    }
  }
  return h;
}

LocalAlignment sw_align(const seq::Sequence& query, const seq::Sequence& target,
                        const ScoringMatrix& matrix, GapPenalty gap) {
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const auto& q = query.residues;
  const auto& t = target.residues;
  const std::size_t m = q.size();
  const std::size_t n = t.size();
  LocalAlignment out;
  if (m == 0 || n == 0) return out;

  std::vector<std::vector<int>> h(m + 1, std::vector<int>(n + 1, 0));
  std::vector<std::vector<int>> e(m + 1, std::vector<int>(n + 1, kNegInf));
  std::vector<std::vector<int>> f(m + 1, std::vector<int>(n + 1, kNegInf));
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      e[i][j] = std::max(e[i][j - 1] - sigma, h[i][j - 1] - rho);
      f[i][j] = std::max(f[i - 1][j] - sigma, h[i - 1][j] - rho);
      const int diag = h[i - 1][j - 1] + matrix.score(q[i - 1], t[j - 1]);
      h[i][j] = std::max({0, diag, e[i][j], f[i][j]});
      if (h[i][j] > out.score) {
        out.score = h[i][j];
        bi = i;
        bj = j;
      }
    }
  }
  if (out.score == 0) return out;

  // Trace back from the maximum until H drops to 0. State tracks which of
  // the three tables the current cell value came from.
  const auto& alphabet = matrix.alphabet();
  enum class State { H, E, F };
  State state = State::H;
  std::size_t i = bi, j = bj;
  std::string qa, ta;
  while (i > 0 && j > 0) {
    if (state == State::H) {
      if (h[i][j] == 0) break;
      const int diag = h[i - 1][j - 1] + matrix.score(q[i - 1], t[j - 1]);
      if (h[i][j] == diag) {
        qa.push_back(alphabet.letter(q[i - 1]));
        ta.push_back(alphabet.letter(t[j - 1]));
        (q[i - 1] == t[j - 1] ? out.matches : out.mismatches)++;
        --i;
        --j;
      } else if (h[i][j] == e[i][j]) {
        state = State::E;
      } else {
        CUSW_CHECK(h[i][j] == f[i][j], "traceback: H cell has no source");
        state = State::F;
      }
    } else if (state == State::E) {
      // Gap in the query: consume a target residue.
      qa.push_back('-');
      ta.push_back(alphabet.letter(t[j - 1]));
      ++out.gaps;
      const bool opened = (e[i][j] == h[i][j - 1] - rho);
      --j;
      if (opened) state = State::H;
    } else {
      qa.push_back(alphabet.letter(q[i - 1]));
      ta.push_back('-');
      ++out.gaps;
      const bool opened = (f[i][j] == h[i - 1][j] - rho);
      --i;
      if (opened) state = State::H;
    }
  }
  out.query_begin = i;
  out.query_end = bi;
  out.target_begin = j;
  out.target_end = bj;
  std::reverse(qa.begin(), qa.end());
  std::reverse(ta.begin(), ta.end());
  out.query_aligned = std::move(qa);
  out.target_aligned = std::move(ta);
  return out;
}

int nw_score(const std::vector<seq::Code>& query,
             const std::vector<seq::Code>& target, const ScoringMatrix& matrix,
             GapPenalty gap) {
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  std::vector<int> h(n + 1), e(n + 1, kNegInf);
  h[0] = 0;
  for (std::size_t j = 1; j <= n; ++j)
    h[j] = -rho - static_cast<int>(j - 1) * sigma;
  for (std::size_t i = 1; i <= m; ++i) {
    int h_diag = h[0];
    h[0] = -rho - static_cast<int>(i - 1) * sigma;
    int f = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e[j] = std::max(e[j] - sigma, h[j] - rho);
      f = std::max(f - sigma, h[j - 1] - rho);
      const int diag = h_diag + matrix.score(query[i - 1], target[j - 1]);
      h_diag = h[j];
      h[j] = std::max({diag, e[j], f});
    }
  }
  return h[n];
}

int semiglobal_score(const std::vector<seq::Code>& query,
                     const std::vector<seq::Code>& target,
                     const ScoringMatrix& matrix, GapPenalty gap) {
  const int rho = gap.open_cost();
  const int sigma = gap.extend;
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  if (m == 0) return 0;
  // Free leading/trailing gaps in the target: row 0 is all zeros, and the
  // answer is the best value in the final row.
  std::vector<int> h(n + 1, 0), e(n + 1, kNegInf);
  for (std::size_t i = 1; i <= m; ++i) {
    int h_diag = h[0];
    h[0] = -rho - static_cast<int>(i - 1) * sigma;
    int f = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e[j] = std::max(e[j] - sigma, h[j] - rho);
      f = std::max(f - sigma, h[j - 1] - rho);
      const int diag = h_diag + matrix.score(query[i - 1], target[j - 1]);
      h_diag = h[j];
      h[j] = std::max({diag, e[j], f});
    }
  }
  return *std::max_element(h.begin(), h.end());
}

}  // namespace cusw::sw
