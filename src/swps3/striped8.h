// 8-bit striped Smith-Waterman with 16-bit fallback — the precision scheme
// real SWPS3/Farrar implementations use: a first pass in saturated unsigned
// 8-bit arithmetic (twice the lanes, roughly twice the throughput), falling
// back to the exact 16-bit kernel only for the rare pairs whose score
// saturates.
//
// The unsigned trick: profile scores are stored biased by -min_score so
// every addition is non-negative, and saturating-subtract-at-zero doubles
// as the local-alignment floor. A pair overflows when a biased add
// saturates at 255 and clamps its true sum — detected per add, so any
// score up to 255 - bias that never clamped stays exact.
#pragma once

#include <atomic>

#include "swps3/striped_sw.h"

namespace cusw::swps3 {

/// Segment-interleaved 8-bit profile with biased scores.
class StripedProfile8 {
 public:
  StripedProfile8(const std::vector<seq::Code>& query,
                  const sw::ScoringMatrix& matrix);

  std::size_t query_length() const { return length_; }
  std::size_t segment_length() const { return seglen_; }
  int bias() const { return bias_; }

  using Vec8 = simd::Vec<std::uint8_t, 16>;
  const Vec8* row(seq::Code d) const {
    return vectors_.data() + static_cast<std::size_t>(d) * seglen_;
  }

 private:
  std::size_t length_;
  std::size_t seglen_;
  int bias_;
  std::vector<Vec8> vectors_;
};

struct Striped8Result {
  int score = 0;       // valid only if !overflow
  bool overflow = false;
  /// Lazy-F correction steps taken across the whole target — a cost
  /// diagnostic. Padding lanes charged a negative score (instead of the
  /// intended zero contribution) used to keep the correction loop spinning
  /// on non-multiple-of-16 queries; tests bound this counter to pin the
  /// fix.
  std::uint64_t lazy_f_iterations = 0;
};

/// 8-bit pass. Returns overflow=true exactly when a biased add saturated
/// (the true sum exceeded 255), i.e. when clamping may have corrupted the
/// score; any score up to 255 - bias that never clamped is reported
/// exactly. Detection happens at each add, not by inspecting the final
/// peak, so saturation can never be masked by later arithmetic.
Striped8Result striped8_sw_score(const StripedProfile8& profile,
                                 const std::vector<seq::Code>& target,
                                 sw::GapPenalty gap);

/// Adaptive engine: builds both profiles once per query, scores each target
/// with the 8-bit kernel and falls back to 16-bit on overflow.
class StripedEngine {
 public:
  StripedEngine(const std::vector<seq::Code>& query,
                const sw::ScoringMatrix& matrix, sw::GapPenalty gap);

  /// Thread-safe: one engine may score targets from concurrent workers
  /// (the memo replay hooks do).
  int score(const std::vector<seq::Code>& target) const;

  /// How many of the scored targets needed the 16-bit fallback.
  std::uint64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t scored() const {
    return scored_.load(std::memory_order_relaxed);
  }

 private:
  StripedProfile8 prof8_;
  StripedProfile prof16_;
  sw::GapPenalty gap_;
  mutable std::atomic<std::uint64_t> fallbacks_{0};
  mutable std::atomic<std::uint64_t> scored_{0};
};

}  // namespace cusw::swps3
