// Striped Smith-Waterman (Farrar 2007) with the lazy-F loop — the algorithm
// behind SWPS3, the CPU baseline in the paper's Fig. 7.
//
// The query is split into V = 8 interleaved segments ("stripes"); each SIMD
// lane processes one segment. Vertical (F) dependencies across the stripe
// boundary are resolved lazily: the main pass assumes F cannot propagate,
// and a correction loop re-runs columns where that assumption failed. The
// paper attributes SWPS3's query-length sensitivity to exactly this
// correction pass, which is why the implementation counts its iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/database.h"
#include "simd/vec.h"
#include "sw/scoring.h"

namespace cusw::swps3 {

/// Striped query profile: for each alphabet symbol, segment-interleaved
/// score vectors (Farrar's layout).
class StripedProfile {
 public:
  StripedProfile(const std::vector<seq::Code>& query,
                 const sw::ScoringMatrix& matrix);

  std::size_t query_length() const { return length_; }
  std::size_t segment_length() const { return seglen_; }

  const simd::VecI16* row(seq::Code d) const {
    return vectors_.data() + static_cast<std::size_t>(d) * seglen_;
  }

 private:
  std::size_t length_;
  std::size_t seglen_;
  std::vector<simd::VecI16> vectors_;
};

struct StripedResult {
  int score = 0;
  /// Number of extra lazy-F correction iterations executed (total across all
  /// columns); the source of SWPS3's sensitivity to query composition.
  std::uint64_t lazy_f_iterations = 0;
};

/// Local alignment score of query vs target using the striped kernel.
StripedResult striped_sw_score(const StripedProfile& profile,
                               const std::vector<seq::Code>& target,
                               sw::GapPenalty gap);

}  // namespace cusw::swps3
