#include "swps3/striped8.h"

#include "util/check.h"

namespace cusw::swps3 {

using Vec8 = StripedProfile8::Vec8;

StripedProfile8::StripedProfile8(const std::vector<seq::Code>& query,
                                 const sw::ScoringMatrix& matrix)
    : length_(query.size()),
      seglen_((query.size() + Vec8::lanes - 1) / Vec8::lanes),
      bias_(-matrix.min_score()) {
  CUSW_REQUIRE(!query.empty(), "striped profile needs a nonempty query");
  CUSW_CHECK(bias_ >= 0 && bias_ + matrix.max_score() <= 255,
             "matrix range does not fit the biased 8-bit profile");
  const std::size_t alphabet_size = matrix.alphabet().size();
  vectors_.resize(alphabet_size * seglen_);
  for (std::size_t a = 0; a < alphabet_size; ++a) {
    for (std::size_t j = 0; j < seglen_; ++j) {
      Vec8 v;
      for (int k = 0; k < Vec8::lanes; ++k) {
        const std::size_t pos = j + static_cast<std::size_t>(k) * seglen_;
        // Padding lanes get score 0 (biased: == bias with the bias later
        // subtracted), i.e. a zero contribution that the local floor keeps
        // from ever mattering. Charging them min_score instead would still
        // produce correct scores (padding cells only feed other padding
        // cells), but the decayed padding H keeps the lazy-F loop's
        // any_gt() test alive for ~f/ext extra iterations per column.
        const int s = pos < length_
                          ? matrix.score(query[pos], static_cast<seq::Code>(a))
                          : 0;
        v.lane[k] = static_cast<std::uint8_t>(s + bias_);
      }
      vectors_[a * seglen_ + j] = v;
    }
  }
}

Striped8Result striped8_sw_score(const StripedProfile8& profile,
                                 const std::vector<seq::Code>& target,
                                 sw::GapPenalty gap) {
  Striped8Result out;
  const std::size_t seglen = profile.segment_length();
  if (target.empty() || seglen == 0) return out;

  const auto bias = static_cast<std::uint8_t>(profile.bias());
  const Vec8 v_bias = Vec8::splat(bias);
  const Vec8 v_open = Vec8::splat(
      checked_narrow<std::uint8_t>(gap.open_cost()));
  const Vec8 v_ext = Vec8::splat(checked_narrow<std::uint8_t>(gap.extend));
  const Vec8 v_zero = Vec8::zero();
  const Vec8 v_limit = Vec8::splat(255);

  std::vector<Vec8> h_store(seglen, v_zero);
  std::vector<Vec8> h_load(seglen, v_zero);
  std::vector<Vec8> e(seglen, v_zero);
  Vec8 v_max = v_zero;
  // Accumulates, per lane, how far any biased add exceeded 255. Non-zero
  // anywhere at the end means a saturating add clamped a true sum — the
  // exact condition under which the 8-bit scores can be wrong.
  Vec8 v_excess = v_zero;

  for (const seq::Code d : target) {
    const Vec8* prof = profile.row(d);
    Vec8 v_f = v_zero;
    Vec8 v_h = shift_in(h_store[seglen - 1], std::uint8_t{0});
    std::swap(h_store, h_load);

    for (std::size_t j = 0; j < seglen; ++j) {
      // Saturation detection at the add itself: the add clamps iff
      // v_h > 255 - prof, and subs() leaves exactly that overshoot.
      v_excess = max(v_excess, subs(v_h, subs(v_limit, prof[j])));
      // Biased add then unbias; saturation at zero is the local floor.
      v_h = subs(adds(v_h, prof[j]), v_bias);
      v_h = max(v_h, e[j]);
      v_h = max(v_h, v_f);
      v_max = max(v_max, v_h);
      h_store[j] = v_h;
      const Vec8 h_open = subs(v_h, v_open);
      e[j] = max(subs(e[j], v_ext), h_open);
      v_f = max(subs(v_f, v_ext), h_open);
      v_h = h_load[j];
    }

    // Lazy-F correction (unsigned; zero plays the role of -inf). Farrar's
    // canonical loop: test the position about to be processed, wrapping
    // with a lane shift at the segment end (see striped_sw.cpp).
    {
      v_f = shift_in(v_f, std::uint8_t{0});
      std::size_t j = 0;
      int wraps = 0;
      while (any_gt(v_f, subs(h_store[j], v_open))) {
        ++out.lazy_f_iterations;
        const Vec8 raised = max(h_store[j], v_f);
        h_store[j] = raised;
        v_max = max(v_max, raised);
        e[j] = max(e[j], subs(raised, v_open));
        v_f = subs(v_f, v_ext);
        if (++j == seglen) {
          j = 0;
          v_f = shift_in(v_f, std::uint8_t{0});
          if (++wraps > Vec8::lanes) break;
        }
      }
    }
  }

  // Overflow iff some biased add actually clamped. (The previous test,
  // `peak + bias >= 255`, inspected only the final running maximum: it was
  // equivalent in the clamping cases but also flagged exact, unclamped
  // scores of 255 - bias, forcing needless 16-bit fallbacks.)
  if (horizontal_max(v_excess) > 0) {
    out.overflow = true;
    return out;
  }
  out.score = horizontal_max(v_max);
  return out;
}

StripedEngine::StripedEngine(const std::vector<seq::Code>& query,
                             const sw::ScoringMatrix& matrix,
                             sw::GapPenalty gap)
    : prof8_(query, matrix), prof16_(query, matrix), gap_(gap) {}

int StripedEngine::score(const std::vector<seq::Code>& target) const {
  scored_.fetch_add(1, std::memory_order_relaxed);
  const Striped8Result r8 = striped8_sw_score(prof8_, target, gap_);
  if (!r8.overflow) return r8.score;
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return striped_sw_score(prof16_, target, gap_).score;
}

}  // namespace cusw::swps3
