#include "swps3/search.h"

#include <atomic>

#include "util/timer.h"

namespace cusw::swps3 {

SearchResult search(const std::vector<seq::Code>& query,
                    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
                    sw::GapPenalty gap, ThreadPool& pool) {
  SearchResult result;
  result.scores.assign(db.size(), 0);
  result.cells = static_cast<std::uint64_t>(query.size()) * db.total_residues();

  const StripedProfile profile(query, matrix);
  std::atomic<std::uint64_t> lazy_f{0};

  WallTimer timer;
  pool.parallel_for(db.size(), [&](std::size_t i) {
    const StripedResult r = striped_sw_score(profile, db[i].residues, gap);
    result.scores[i] = r.score;
    lazy_f.fetch_add(r.lazy_f_iterations, std::memory_order_relaxed);
  });
  result.seconds = timer.seconds();
  result.lazy_f_iterations = lazy_f.load();
  return result;
}

}  // namespace cusw::swps3
