// Multithreaded database search with the striped kernel — the SWPS3 stand-in
// measured (in real wall-clock time) as the CPU baseline of Fig. 7.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/database.h"
#include "swps3/striped_sw.h"
#include "util/thread_pool.h"

namespace cusw::swps3 {

struct SearchResult {
  std::vector<int> scores;              // one per database sequence
  double seconds = 0.0;                 // wall-clock
  std::uint64_t cells = 0;              // query_len * total_db_residues
  std::uint64_t lazy_f_iterations = 0;  // summed across sequences

  double gcups() const {
    return seconds > 0.0 ? static_cast<double>(cells) / seconds * 1e-9 : 0.0;
  }
};

/// Score `query` against every sequence of `db`, splitting sequences over
/// `pool`. Deterministic: thread count affects time only, never scores.
SearchResult search(const std::vector<seq::Code>& query,
                    const seq::SequenceDB& db, const sw::ScoringMatrix& matrix,
                    sw::GapPenalty gap, ThreadPool& pool);

}  // namespace cusw::swps3
