#include "swps3/striped_sw.h"

#include "util/check.h"

namespace cusw::swps3 {

using simd::VecI16;

namespace {
// Large negative sentinel that survives a few saturating subtractions
// without wrapping; scores in this codebase are far from the int16 limits.
constexpr std::int16_t kNegInf = -30000;
// Padding score for stripe lanes beyond the query end: negative enough that
// a padded lane can never climb above the local-alignment floor of zero.
constexpr std::int16_t kPadScore = -100;
}  // namespace

StripedProfile::StripedProfile(const std::vector<seq::Code>& query,
                               const sw::ScoringMatrix& matrix)
    : length_(query.size()),
      seglen_((query.size() + VecI16::lanes - 1) / VecI16::lanes) {
  CUSW_REQUIRE(!query.empty(), "striped profile needs a nonempty query");
  const std::size_t alphabet_size = matrix.alphabet().size();
  vectors_.resize(alphabet_size * seglen_);
  for (std::size_t a = 0; a < alphabet_size; ++a) {
    for (std::size_t j = 0; j < seglen_; ++j) {
      VecI16 v;
      for (int k = 0; k < VecI16::lanes; ++k) {
        const std::size_t pos = j + static_cast<std::size_t>(k) * seglen_;
        v.lane[k] = pos < length_
                        ? static_cast<std::int16_t>(matrix.score(
                              query[pos], static_cast<seq::Code>(a)))
                        : kPadScore;
      }
      vectors_[a * seglen_ + j] = v;
    }
  }
}

StripedResult striped_sw_score(const StripedProfile& profile,
                               const std::vector<seq::Code>& target,
                               sw::GapPenalty gap) {
  StripedResult out;
  const std::size_t seglen = profile.segment_length();
  if (target.empty() || seglen == 0) return out;

  const VecI16 v_open = VecI16::splat(
      checked_narrow<std::int16_t>(gap.open_cost()));
  const VecI16 v_ext = VecI16::splat(checked_narrow<std::int16_t>(gap.extend));
  const VecI16 v_zero = VecI16::zero();

  std::vector<VecI16> h_store(seglen, v_zero);
  std::vector<VecI16> h_load(seglen, v_zero);
  std::vector<VecI16> e(seglen, VecI16::splat(kNegInf));
  VecI16 v_max = v_zero;

  for (const seq::Code d : target) {
    const VecI16* prof = profile.row(d);
    VecI16 v_f = VecI16::splat(kNegInf);
    // H of the previous column, shifted down one query position; lane 0
    // sees H = 0 (the local-alignment boundary).
    VecI16 v_h = shift_in(h_store[seglen - 1], std::int16_t{0});
    std::swap(h_store, h_load);

    for (std::size_t j = 0; j < seglen; ++j) {
      v_h = adds(v_h, prof[j]);
      v_h = max(v_h, e[j]);
      v_h = max(v_h, v_f);
      v_h = max(v_h, v_zero);
      v_max = max(v_max, v_h);
      h_store[j] = v_h;
      const VecI16 h_open = subs(v_h, v_open);
      e[j] = max(subs(e[j], v_ext), h_open);
      v_f = max(subs(v_f, v_ext), h_open);
      v_h = h_load[j];
    }

    // Lazy-F correction: the main pass assumed F never crosses the stripe
    // boundary. Walk the segment while the carried F can still beat a
    // freshly opened gap at the position about to be processed, wrapping
    // (with a lane shift) at the segment end — Farrar's canonical loop.
    // The exit test must use the post-shift F against the *next* position:
    // testing the just-processed one exits early when a whole-register
    // shift is what would carry the gap into the next lane. Unlike
    // Farrar's original, E is also re-raised so scores are exact.
    // The exit threshold is floored at zero: a negative F can never raise
    // an H (H is floored at zero), so the loop must not chase decaying
    // negative F values (that costs several useless passes per column).
    {
      v_f = shift_in(v_f, kNegInf);
      std::size_t j = 0;
      int wraps = 0;
      while (any_gt(v_f, max(subs(h_store[j], v_open), v_zero))) {
        const VecI16 raised = max(h_store[j], v_f);
        h_store[j] = raised;
        v_max = max(v_max, raised);
        e[j] = max(e[j], subs(raised, v_open));
        v_f = subs(v_f, v_ext);
        ++out.lazy_f_iterations;
        if (++j == seglen) {
          j = 0;
          v_f = shift_in(v_f, kNegInf);
          // After `lanes` wraps every originally carried value has been
          // shifted out and the remaining F chain is self-generated and
          // strictly decreasing; it cannot pass the test again.
          if (++wraps > VecI16::lanes) break;
        }
      }
    }
  }

  out.score = std::max<int>(0, horizontal_max(v_max));
  return out;
}

}  // namespace cusw::swps3
