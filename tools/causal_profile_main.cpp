// causal_profile CLI: virtual-speedup sweeps on the simulated clock
// (see tools/causal_profile_lib.h).
//
//   causal_profile --canonical [--service] [--factors=0.9,0.5,0]
//                  [--top=N] [--db=N] [--json=PATH]
//       sweep the canonical Table I original-kernel workload and print
//       the ranked advice
//   causal_profile --canonical-check
//       same sweep, exit 0 only when the report is valid AND the
//       cross-validation against perf_explain passes (the
//       `causal_profile_canonical` ctest / CI gate)
//   causal_profile --list-targets CAPSULE.json [--top=N]
//       mine the what-if targets of an arbitrary capsule without
//       re-running anything (arbitrary workloads cannot be replayed;
//       the sweep itself is canonical-only)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tools/causal_profile_lib.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

bool flag_value(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

bool parse_factors(const std::string& spec, std::vector<double>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string entry = spec.substr(pos, end - pos);
    if (!entry.empty()) {
      char* rest = nullptr;
      const double f = std::strtod(entry.c_str(), &rest);
      if (rest == nullptr || *rest != '\0' || f < 0.0) return false;
      out.push_back(f);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: causal_profile --canonical [--service] [--factors=F,F,...]"
      " [--top=N] [--db=N] [--json=PATH]\n"
      "       causal_profile --canonical-check [--json=PATH]\n"
      "       causal_profile --list-targets CAPSULE.json [--top=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cusw::tools::CausalOptions opts;
  std::string json_path, list_path, value;
  bool canonical = false, canonical_check = false, list_targets = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--canonical") {
      canonical = true;
    } else if (arg == "--canonical-check") {
      canonical_check = true;
    } else if (arg == "--list-targets") {
      list_targets = true;
    } else if (arg == "--service") {
      opts.service = true;
    } else if (flag_value(arg, "factors", value)) {
      if (!parse_factors(value, opts.factors)) {
        std::fprintf(stderr, "causal_profile: bad --factors '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (flag_value(arg, "top", value)) {
      opts.top_n = static_cast<std::size_t>(std::atoi(value.c_str()));
    } else if (flag_value(arg, "db", value)) {
      opts.db_sequences = static_cast<std::size_t>(std::atoi(value.c_str()));
    } else if (flag_value(arg, "json", value)) {
      json_path = value;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (list_targets) {
    if (paths.size() != 1 || canonical || canonical_check) return usage();
    std::string capsule;
    if (!read_file(paths[0], capsule)) {
      std::fprintf(stderr, "causal_profile: cannot read %s\n",
                   paths[0].c_str());
      return 1;
    }
    std::string error;
    const auto targets =
        cusw::tools::enumerate_targets(capsule, opts.top_n, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "causal_profile: %s\n", error.c_str());
      return 1;
    }
    std::printf("%-40s %-28s %14s %7s\n", "target", "kernel", "stall ticks",
                "local%");
    for (const cusw::tools::CausalTarget& t : targets) {
      std::printf("%-40s %-28s %14llu %6.1f%%\n", t.spec.c_str(),
                  t.kernel.c_str(),
                  static_cast<unsigned long long>(t.ticks),
                  100.0 * t.local_share);
    }
    return 0;
  }

  if ((!canonical && !canonical_check) || !paths.empty()) return usage();
  std::printf("causal_profile: sweeping %zu factors over the top %zu "
              "targets...\n",
              opts.factors.size(), opts.top_n);
  const cusw::tools::CausalReport report =
      cusw::tools::causal_profile_canonical(opts);
  std::printf("%s", report.to_ascii().c_str());
  if (!json_path.empty()) {
    if (!write_file(json_path, report.to_json() + "\n")) {
      std::fprintf(stderr, "causal_profile: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!report.ok) return 1;
  return canonical_check && !report.xval.ok ? 1 : 0;
}
