// counter_diff: compare the canonical workload's per-site counters
// against checked-in golden baselines (baselines/counter_baseline.json).
//
// The canonical workload is a fixed Table I slice — both intra-task
// kernels on a one-SM C1060 against the synthesized Swiss-Prot
// over-threshold subset, queries 567 and 1500 — whose coalescer counters
// are bit-deterministic (per-run arena addresses, per-block cold caches,
// block-index-order reduction). Counters therefore compare exactly by
// default; derived metrics (the original/improved transaction ratio) get
// an explicit drift tolerance so the paper's headline result is gated as
// a ratio, not as two brittle absolutes.
//
// Keys are flat dotted paths, e.g.
//   q567.intra_task_improved.global.transactions
//   q567.intra_task_improved.site.profile.tex_fetch.texture.requests
//   derived.q567.global_txn_ratio
// Tolerances match by substring (longest tolerance key contained in the
// counter key wins; "default" is the fallback) and compare relatively:
//   |current - baseline| <= tol * max(|baseline|, eps).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cusw::tools {

/// Run the canonical workload and return its flat counter map, including
/// the derived ratio keys. Deterministic for any CUSW_THREADS.
std::map<std::string, double> run_canonical_workload();

/// Resolve the tolerance for `key`: the longest tolerance-map key that is
/// a substring of `key` wins; falls back to "default", then to 0.
double tolerance_for(const std::map<std::string, double>& tolerances,
                     const std::string& key);

struct DiffResult {
  bool ok = true;
  std::size_t compared = 0;
  std::vector<std::string> failures;  // one human-readable line each
};

/// Compare `current` against `baseline` under `tolerances`. A key missing
/// from one side is treated as 0 on that side (so dropping traffic from a
/// site fails just like adding it).
DiffResult diff_counters(const std::map<std::string, double>& current,
                         const std::map<std::string, double>& baseline,
                         const std::map<std::string, double>& tolerances);

/// Parse a baseline document ({"tolerances": {...}, "counters": {...}}).
bool load_baseline(const std::string& text,
                   std::map<std::string, double>& counters,
                   std::map<std::string, double>& tolerances,
                   std::string* error);

/// Serialise a baseline document (sorted keys, one counter per line — the
/// file is checked in, so diffs must be reviewable).
std::string baseline_to_json(const std::map<std::string, double>& counters,
                             const std::map<std::string, double>& tolerances);

/// Tolerances for a fresh baseline: exact counters, 2% on derived ratios.
std::map<std::string, double> default_tolerances();

}  // namespace cusw::tools
