// perf_explain CLI: attribute the simulated-cycle delta between two run
// capsules (see tools/perf_explain_lib.h).
//
//   perf_explain A.json B.json [--threshold=F] [--max-residue=F]
//                [--json=PATH]
//   perf_explain --emit-canonical=DIR   write the canonical Table I
//                capsule pair to DIR and explain improved-vs-original
//   perf_explain --canonical-check      same pair, in memory (the
//                `perf_explain_canonical` ctest)
//
// Exit status is 0 only when both capsules parse/validate and every
// internal node's unattributed residue stays within --max-residue of the
// total delta.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/capsule.h"
#include "tools/perf_explain_lib.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

bool flag_value(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: perf_explain A.json B.json [--threshold=F] [--max-residue=F]"
      " [--map=labelA=labelB]... [--json=PATH]\n"
      "       perf_explain --emit-canonical=DIR [--json=PATH]\n"
      "       perf_explain --canonical-check [--json=PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cusw::tools::ExplainOptions opts;
  std::string json_path, emit_dir, value;
  bool canonical_check = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flag_value(arg, "threshold", value)) {
      opts.threshold = std::atof(value.c_str());
    } else if (flag_value(arg, "max-residue", value)) {
      opts.max_residue = std::atof(value.c_str());
    } else if (flag_value(arg, "map", value)) {
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        std::fprintf(stderr,
                     "perf_explain: --map wants labelA=labelB, got '%s'\n",
                     value.c_str());
        return 2;
      }
      opts.label_map.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (flag_value(arg, "json", value)) {
      json_path = value;
    } else if (flag_value(arg, "emit-canonical", value)) {
      emit_dir = value;
    } else if (arg == "--canonical-check") {
      canonical_check = true;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  std::string a, b;
  if (canonical_check || !emit_dir.empty()) {
    if (!paths.empty()) return usage();
    std::printf("perf_explain: building canonical Table I capsules...\n");
    a = cusw::tools::canonical_capsule_original();
    b = cusw::tools::canonical_capsule_improved();
    for (const auto& [name, text] :
         {std::pair<const char*, const std::string&>("original", a),
          std::pair<const char*, const std::string&>("improved", b)}) {
      const cusw::obs::CapsuleCheck check = cusw::obs::validate_capsule(text);
      if (!check.ok) {
        std::fprintf(stderr, "perf_explain: canonical %s capsule invalid: %s\n",
                     name, check.error.c_str());
        return 1;
      }
      std::printf(
          "  canonical %s capsule: %zu kernel(s), %zu series, %zu points\n",
          name, check.kernels, check.series, check.points);
    }
    if (!emit_dir.empty()) {
      for (const auto& [file, text] :
           {std::pair<const char*, const std::string&>(
                "capsule_table1_original.json", a),
            std::pair<const char*, const std::string&>(
                "capsule_table1_improved.json", b)}) {
        const std::string path = emit_dir + "/" + file;
        if (!write_file(path, text)) {
          std::fprintf(stderr, "perf_explain: cannot write %s\n",
                       path.c_str());
          return 1;
        }
        std::printf("wrote %s\n", path.c_str());
      }
    }
  } else {
    if (paths.size() != 2) return usage();
    if (!read_file(paths[0], a)) {
      std::fprintf(stderr, "perf_explain: cannot read %s\n", paths[0].c_str());
      return 1;
    }
    if (!read_file(paths[1], b)) {
      std::fprintf(stderr, "perf_explain: cannot read %s\n", paths[1].c_str());
      return 1;
    }
  }

  const cusw::tools::ExplainReport report =
      cusw::tools::explain_capsules(a, b, opts);
  std::printf("%s", report.to_ascii().c_str());
  if (!json_path.empty()) {
    if (!write_file(json_path, report.to_json() + "\n")) {
      std::fprintf(stderr, "perf_explain: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return report.ok && report.within_residue_bound ? 0 : 1;
}
