#include "tools/causal_profile_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "cudasw/intra_task_original.h"
#include "cudasw/multi_gpu.h"
#include "gpusim/stall.h"
#include "obs/capsule.h"
#include "obs/trace_check.h"
#include "obs/whatif.h"
#include "seq/generate.h"
#include "serve/service.h"
#include "util/json.h"
#include "util/rng.h"

namespace cusw::tools {

namespace {

bool is_memory_reason(const std::string& reason) {
  return reason == "mem_issue" || reason == "txn_issue" ||
         reason == "exposed_latency";
}

std::uint64_t as_ticks(const obs::json::Value* v) {
  if (v == nullptr || v->kind != obs::json::Value::Kind::kNumber ||
      v->number <= 0.0) {
    return 0;
  }
  return static_cast<std::uint64_t>(std::llround(v->number));
}

/// A sweep must see the clean baseline and exactly the plan it installs:
/// shelve any ambient CUSW_WHATIF for the duration (the programmatic plan
/// would shadow it anyway, but the baseline and service runs carry no
/// plan at all).
class WhatIfEnvShelf {
 public:
  WhatIfEnvShelf() {
    if (const char* v = std::getenv("CUSW_WHATIF"); v != nullptr) {
      had_ = true;
      saved_ = v;
      ::unsetenv("CUSW_WHATIF");
    }
  }
  ~WhatIfEnvShelf() {
    if (had_) ::setenv("CUSW_WHATIF", saved_.c_str(), 1);
  }
  WhatIfEnvShelf(const WhatIfEnvShelf&) = delete;
  WhatIfEnvShelf& operator=(const WhatIfEnvShelf&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

struct RunCost {
  std::uint64_t charged_ticks = 0;
  double charged_cycles = 0.0;
  double seconds = 0.0;
  double gcups = 0.0;
};

/// One canonical run under whatever plan is active. Verifies the
/// simulator's partition invariant (Σ reasons == charged) at this point
/// of the sweep; a violation poisons the whole report.
bool run_canonical_once(const CanonicalWorkload& w, RunCost& out,
                        std::string* error) {
  gpusim::Device dev(w.spec);
  const cudasw::KernelRun run =
      cudasw::run_intra_task_original(dev, w.query, w.longs, *w.matrix, w.gap,
                                      {});
  std::uint64_t reason_sum = 0;
  gpusim::for_each_stall_reason(
      run.stats.stall,
      [&](const char*, std::uint64_t v) { reason_sum += v; });
  if (reason_sum != run.stats.stall.charged) {
    const obs::whatif::Plan* plan = obs::whatif::active_plan();
    *error = "stall partition broken under plan '" +
             (plan != nullptr ? plan->spec : std::string("<none>")) +
             "': reasons sum to " + std::to_string(reason_sum) +
             " ticks, charged " + std::to_string(run.stats.stall.charged);
    return false;
  }
  out.charged_ticks = run.stats.stall.charged;
  out.charged_cycles = gpusim::stall_ticks_to_cycles(out.charged_ticks);
  out.seconds = run.stats.seconds;
  out.gcups = out.seconds > 0.0
                  ? static_cast<double>(run.cells) / out.seconds * 1e-9
                  : 0.0;
  return true;
}

/// Service objectives of the SLO projection. The bound sits a little
/// under the baseline tail so the burn rate starts above 1 (the budget is
/// being spent) and sweeps show how much of it each speedup buys back.
const char* const kServiceSlo = "p99<30ms,goodput>0.9";
constexpr std::uint64_t kServiceSeed = 0x51c0;

struct ServicePoint {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_burn = 0.0;
};

/// Project service latency/SLO standing under the active plan. Built
/// fresh per point: the Executor memoizes per query, so a cached scan
/// from one plan must never serve another.
ServicePoint run_service_once(const CausalOptions& opts) {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(160, kServiceSeed);
  const gpusim::DeviceSpec spec = gpusim::DeviceSpec::tesla_c1060();

  // Route the bulk of Swiss-Prot to the original intra-task kernel: the
  // projection asks what a fleet still running the paper's baseline
  // kernel would feel if the swept cost went away.
  cudasw::MultiGpuConfig mg;
  mg.search.intra_kernel = cudasw::IntraKernel::kOriginal;
  mg.search.threshold = 256;
  serve::Executor exec(spec, 2, db, matrix, mg);

  Rng qrng(kServiceSeed);
  std::vector<std::vector<seq::Code>> pool;
  for (const std::size_t len : {64, 144, 256, 367})
    pool.push_back(seq::random_protein(len, qrng).residues);

  serve::ServiceConfig cfg;
  cfg.arrival.kind = serve::ArrivalConfig::Kind::kPoisson;
  cfg.arrival.rate_rps = 45.0;
  cfg.admission.max_queue = 32;
  cfg.admission.max_inflight = 64;
  cfg.policy = serve::BatchPolicy::kFifo;
  cfg.deadline_ms = 30.0;
  cfg.num_requests = opts.service_requests;
  cfg.seed = kServiceSeed;
  cfg.window_ms = 250.0;
  cfg.slo = serve::SloSpec::parse(kServiceSlo);
  cfg.trace_cat = "causal.service";
  serve::Service svc(cfg, exec, pool);
  const serve::ServiceReport rep = svc.run();

  ServicePoint p;
  p.p50_ms = rep.latency_ms.quantile(0.50);
  p.p99_ms = rep.latency_ms.quantile(0.99);
  for (const serve::SloStatus& s : rep.slo)
    p.max_burn = std::max(p.max_burn, s.burn_rate);
  return p;
}

/// Gain-vs-(1 - factor) slope, least squares through the origin.
double fit_slope(const std::vector<SweepPoint>& points) {
  double num = 0.0, den = 0.0;
  for (const SweepPoint& p : points) {
    const double s = 1.0 - p.factor;
    num += s * p.gain;
    den += s * s;
  }
  return den > 0.0 ? num / den : 0.0;
}

/// "X (space)" — the node naming perf_explain uses for site rows.
std::string explain_row_name(const CausalTarget& t) {
  // spec is "site:<name>@<space>"; non-site targets have no explain row.
  const std::string body = t.spec.substr(5);
  const std::size_t at = body.rfind('@');
  return body.substr(0, at) + " (" + body.substr(at + 1) + ")";
}

std::string format_gain_header(double factor) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gain@%.2f", factor);
  return buf;
}

}  // namespace

std::vector<CausalTarget> enumerate_targets(std::string_view capsule,
                                            std::size_t top_n,
                                            std::string* error) {
  std::vector<CausalTarget> out;
  const obs::CapsuleCheck check = obs::validate_capsule(capsule);
  if (!check.ok) {
    *error = "capsule: " + check.error;
    return out;
  }
  obs::json::Value root;
  std::string perr;
  if (!obs::json::parse(capsule, root, &perr)) {
    *error = "capsule: " + perr;
    return out;
  }
  const obs::json::Value* kernels = root.find("kernels");
  if (kernels == nullptr) return out;

  std::uint64_t total_charged = 0;
  std::vector<CausalTarget> candidates;
  std::map<std::string, std::uint64_t> reasons;  // launch-wide, all kernels
  for (const obs::json::Value& k : kernels->array) {
    const std::string label = k.find("label")->string;  // validated above
    if (const obs::json::Value* stall = k.find("stall_ticks");
        stall != nullptr && stall->kind == obs::json::Value::Kind::kObject) {
      for (const auto& [reason, v] : stall->object) {
        const std::uint64_t ticks = as_ticks(&v);
        if (reason == "charged") {
          total_charged += ticks;
        } else if (!is_memory_reason(reason) && ticks > 0) {
          // Memory reasons are excluded: the site rows below decompose
          // them exactly, and sweeping both would double-count the cost.
          reasons[reason] += ticks;
        }
      }
    }
    if (const obs::json::Value* sites = k.find("sites");
        sites != nullptr && sites->kind == obs::json::Value::Kind::kArray) {
      for (const obs::json::Value& s : sites->array) {
        if (s.kind != obs::json::Value::Kind::kObject) continue;
        const obs::json::Value* site = s.find("site");
        const obs::json::Value* space = s.find("space");
        const obs::json::Value* ctr = s.find("counters");
        if (site == nullptr || site->kind != obs::json::Value::Kind::kString ||
            space == nullptr ||
            space->kind != obs::json::Value::Kind::kString ||
            ctr == nullptr || ctr->kind != obs::json::Value::Kind::kObject) {
          continue;
        }
        // The remainder bucket is not an actionable code location.
        if (site->string == "unattributed") continue;
        const std::uint64_t ticks = as_ticks(ctr->find("stall_ticks"));
        if (ticks == 0) continue;
        CausalTarget t;
        t.spec = "site:" + site->string + "@" + space->string;
        t.kernel = label;
        t.ticks = ticks;
        candidates.push_back(std::move(t));
      }
    }
  }
  for (const auto& [reason, ticks] : reasons) {
    CausalTarget t;
    t.spec = "stall:" + reason;
    t.ticks = ticks;
    candidates.push_back(std::move(t));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CausalTarget& a, const CausalTarget& b) {
              return a.ticks != b.ticks ? a.ticks > b.ticks
                                        : a.spec < b.spec;
            });
  if (candidates.size() > top_n) candidates.resize(top_n);
  for (CausalTarget& t : candidates) {
    t.local_share = total_charged > 0
                        ? static_cast<double>(t.ticks) /
                              static_cast<double>(total_charged)
                        : 0.0;
  }
  return candidates;
}

CausalReport causal_profile_canonical(const CausalOptions& options) {
  CausalReport rep;
  rep.options = options;
  if (options.factors.empty()) {
    rep.error = "no factors to sweep";
    return rep;
  }

  WhatIfEnvShelf shelf;
  obs::whatif::clear_plan();

  // 1. Capsule of the unmodified workload -> candidate targets.
  const std::string base_capsule =
      canonical_capsule_original(options.db_sequences);
  std::string enum_error;
  std::vector<CausalTarget> targets =
      enumerate_targets(base_capsule, options.top_n, &enum_error);
  if (!enum_error.empty()) {
    rep.error = enum_error;
    return rep;
  }
  if (targets.empty()) {
    rep.error = "no sweepable targets in the canonical capsule";
    return rep;
  }

  // 2. Baseline re-run: establishes the denominators and proves the
  // sweep harness reproduces the capsule's numbers exactly.
  const CanonicalWorkload w = canonical_workload(options.db_sequences);
  RunCost base;
  if (!run_canonical_once(w, base, &rep.error)) return rep;
  rep.base_charged_cycles = base.charged_cycles;
  rep.base_seconds = base.seconds;
  rep.base_gcups = base.gcups;
  if (options.service) {
    const ServicePoint sp = run_service_once(options);
    rep.base_p50_ms = sp.p50_ms;
    rep.base_p99_ms = sp.p99_ms;
    rep.base_max_burn = sp.max_burn;
    rep.slo_spec = kServiceSlo;
  }

  // 3. The sweep: one re-run per (target, factor).
  for (CausalTarget& target : targets) {
    TargetResult tr;
    tr.target = std::move(target);
    double min_factor = options.factors.front();
    for (const double factor : options.factors) {
      obs::whatif::set_plan(obs::whatif::parse_plan(
          tr.target.spec + "*" + util::json_number(factor)));
      SweepPoint p;
      p.factor = factor;
      RunCost cost;
      const bool ran = run_canonical_once(w, cost, &rep.error);
      if (ran && options.service) {
        const ServicePoint sp = run_service_once(options);
        p.p50_ms = sp.p50_ms;
        p.p99_ms = sp.p99_ms;
        p.max_burn = sp.max_burn;
      }
      obs::whatif::clear_plan();
      if (!ran) return rep;
      p.charged_cycles = cost.charged_cycles;
      p.seconds = cost.seconds;
      p.gcups = cost.gcups;
      p.gain = base.charged_cycles > 0.0
                   ? (base.charged_cycles - cost.charged_cycles) /
                         base.charged_cycles
                   : 0.0;
      if (factor < min_factor) min_factor = factor;
      tr.points.push_back(p);
    }
    for (const SweepPoint& p : tr.points) {
      if (p.factor == min_factor) tr.max_gain = p.gain;
    }
    tr.slope = fit_slope(tr.points);
    tr.causally_flat = tr.target.local_share > options.min_local_share &&
                       tr.max_gain < options.flat_ratio *
                                         tr.target.local_share;
    rep.ranked.push_back(std::move(tr));
  }
  std::stable_sort(rep.ranked.begin(), rep.ranked.end(),
                   [](const TargetResult& a, const TargetResult& b) {
                     return a.max_gain != b.max_gain
                                ? a.max_gain > b.max_gain
                                : a.target.spec < b.target.spec;
                   });

  // 4. Cross-validation against perf_explain's differential attribution:
  // the dominant memory site's full-speedup gain must predict the
  // measured orig -> improved memory-node delta, and the sweep's rank-1
  // target must be the attribution tree's dominant leaf.
  CrossValidation& xv = rep.xval;
  xv.ran = true;
  xv.top_target = rep.ranked.front().target.spec;
  const TargetResult* dominant_site = nullptr;
  for (const TargetResult& tr : rep.ranked) {
    if (tr.target.spec.rfind("site:", 0) != 0) continue;
    if (dominant_site == nullptr ||
        tr.target.ticks > dominant_site->target.ticks) {
      dominant_site = &tr;
    }
  }
  if (dominant_site == nullptr) {
    xv.detail = "no site target swept; cannot cross-validate";
  } else {
    xv.site_spec = dominant_site->target.spec;
    // Gain of deleting the site entirely: the factor-0 point when swept,
    // else the fitted slope extrapolated to (1 - factor) == 1.
    double gain_full = dominant_site->slope;
    for (const SweepPoint& p : dominant_site->points) {
      if (p.factor == 0.0) gain_full = p.gain;
    }
    xv.predicted_cycles = gain_full * base.charged_cycles;

    ExplainOptions eopts;
    eopts.threshold = 0.0;  // keep every site row unfolded
    const ExplainReport explain = explain_capsules(
        base_capsule, canonical_capsule_improved(options.db_sequences),
        eopts);
    if (!explain.ok) {
      xv.detail = "perf_explain failed: " + explain.error;
    } else {
      const ExplainNode* memory = nullptr;
      for (const ExplainNode& kernel : explain.root.children) {
        for (const ExplainNode& c : kernel.children) {
          if (c.name != "memory") continue;
          if (memory == nullptr ||
              std::fabs(c.delta) > std::fabs(memory->delta)) {
            memory = &c;
          }
        }
      }
      if (memory == nullptr) {
        xv.detail = "perf_explain tree has no memory node";
      } else {
        xv.measured_cycles = std::fabs(memory->delta);
        const ExplainNode* leaf = nullptr;
        for (const ExplainNode& row : memory->children) {
          if (leaf == nullptr ||
              std::fabs(row.delta) > std::fabs(leaf->delta)) {
            leaf = &row;
          }
        }
        xv.dominant_node = leaf != nullptr ? leaf->name : "";
        xv.rel_error =
            xv.measured_cycles > 0.0
                ? std::fabs(xv.predicted_cycles - xv.measured_cycles) /
                      xv.measured_cycles
                : 1.0;
        xv.ranking_agrees =
            rep.ranked.front().target.spec.rfind("site:", 0) == 0 &&
            explain_row_name(rep.ranked.front().target) == xv.dominant_node;
        xv.ok = xv.rel_error <= options.xval_bound && xv.ranking_agrees;
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "predicted %.0f vs measured %.0f cycles (%.1f%%, "
                      "bound %.1f%%); top target %s %s dominant node %s",
                      xv.predicted_cycles, xv.measured_cycles,
                      100.0 * xv.rel_error, 100.0 * options.xval_bound,
                      xv.top_target.c_str(),
                      xv.ranking_agrees ? "matches" : "DISAGREES with",
                      xv.dominant_node.c_str());
        xv.detail = buf;
      }
    }
  }

  rep.ok = true;
  obs::capsule_note_section("causal_profile", rep.to_json());
  return rep;
}

std::string CausalReport::to_ascii() const {
  std::ostringstream os;
  if (!ok) {
    os << "causal_profile: " << error << "\n";
    return os.str();
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "causal_profile: canonical Table I workload "
                "(intra_task_original, one-SM C1060 slice, %zu-sequence "
                "database)\n",
                options.db_sequences);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "baseline: charged %.1f cycles | %.6f s | %.3f GCUPS\n\n",
                base_charged_cycles, base_seconds, base_gcups);
  os << buf;

  std::snprintf(buf, sizeof(buf), "%4s  %-36s %7s %7s", "rank", "target",
                "local%", "slope");
  os << buf;
  const std::vector<double>& factors = options.factors;
  for (const double f : factors) {
    std::snprintf(buf, sizeof(buf), " %10s",
                  format_gain_header(f).c_str());
    os << buf;
  }
  os << "  verdict\n";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const TargetResult& tr = ranked[i];
    std::snprintf(buf, sizeof(buf), "%4zu  %-36s %6.1f%% %7.3f", i + 1,
                  tr.target.spec.c_str(), 100.0 * tr.target.local_share,
                  tr.slope);
    os << buf;
    for (const SweepPoint& p : tr.points) {
      std::snprintf(buf, sizeof(buf), " %9.1f%%", 100.0 * p.gain);
      os << buf;
    }
    os << "  " << (tr.causally_flat ? "causally flat" : "") << "\n";
  }

  if (!slo_spec.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "\nservice projection (%s; %zu requests):\n"
                  "  baseline: p50 %8.2f ms  p99 %8.2f ms  burn %6.2f\n",
                  slo_spec.c_str(), options.service_requests, base_p50_ms,
                  base_p99_ms, base_max_burn);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-36s %7s %10s %10s %7s\n", "target",
                  "factor", "p50 (ms)", "p99 (ms)", "burn");
    os << buf;
    for (const TargetResult& tr : ranked) {
      for (const SweepPoint& p : tr.points) {
        std::snprintf(buf, sizeof(buf),
                      "  %-36s %7.2f %10.2f %10.2f %7.2f\n",
                      tr.target.spec.c_str(), p.factor, p.p50_ms, p.p99_ms,
                      p.max_burn);
        os << buf;
      }
    }
  }

  os << "\ncross-validation vs perf_explain: ";
  if (!xval.ran || xval.measured_cycles <= 0.0) {
    os << (xval.detail.empty() ? "not run" : xval.detail) << "\n";
  } else {
    os << (xval.ok ? "OK" : "FAIL") << "\n  " << xval.detail << "\n";
  }
  return os.str();
}

std::string CausalReport::to_json() const {
  util::JsonFields f;
  f.field("tool", std::string_view("causal_profile")).field("ok", ok);
  if (!ok) {
    f.field("error", std::string_view(error));
    return f.object();
  }
  f.field("base_charged_cycles", base_charged_cycles)
      .field("base_seconds", base_seconds)
      .field("base_gcups", base_gcups)
      .field("db_sequences", static_cast<std::uint64_t>(options.db_sequences))
      .field("service", options.service);
  if (!slo_spec.empty()) {
    f.field("slo_spec", std::string_view(slo_spec))
        .field("base_p50_ms", base_p50_ms)
        .field("base_p99_ms", base_p99_ms)
        .field("base_max_burn", base_max_burn);
  }
  std::string arr = "[";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const TargetResult& tr = ranked[i];
    util::JsonFields t;
    t.field("rank", static_cast<std::uint64_t>(i + 1))
        .field("target", std::string_view(tr.target.spec))
        .field("kernel", std::string_view(tr.target.kernel))
        .field("local_share", tr.target.local_share)
        .field("max_gain", tr.max_gain)
        .field("slope", tr.slope)
        .field("causally_flat", tr.causally_flat);
    std::string pts = "[";
    for (std::size_t j = 0; j < tr.points.size(); ++j) {
      const SweepPoint& p = tr.points[j];
      util::JsonFields pf;
      pf.field("factor", p.factor)
          .field("charged_cycles", p.charged_cycles)
          .field("seconds", p.seconds)
          .field("gcups", p.gcups)
          .field("gain", p.gain);
      if (options.service) {
        pf.field("p50_ms", p.p50_ms)
            .field("p99_ms", p.p99_ms)
            .field("max_burn", p.max_burn);
      }
      pts += (j != 0 ? ", " : "") + pf.object();
    }
    pts += "]";
    t.raw("points", pts);
    arr += (i != 0 ? ", " : "") + t.object();
  }
  arr += "]";
  f.raw("ranked", arr);

  util::JsonFields xv;
  xv.field("ran", xval.ran)
      .field("ok", xval.ok)
      .field("site", std::string_view(xval.site_spec))
      .field("predicted_cycles", xval.predicted_cycles)
      .field("measured_cycles", xval.measured_cycles)
      .field("rel_error", xval.rel_error)
      .field("top_target", std::string_view(xval.top_target))
      .field("dominant_node", std::string_view(xval.dominant_node))
      .field("ranking_agrees", xval.ranking_agrees)
      .field("detail", std::string_view(xval.detail));
  f.raw("cross_validation", xv.object());
  return f.object();
}

}  // namespace cusw::tools
