#include "tools/counter_diff_lib.h"

#include <cmath>
#include <cstdio>

#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "obs/counters.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "util/json.h"
#include "util/rng.h"

namespace cusw::tools {

namespace {

constexpr double kEps = 1e-12;

/// Flatten one kernel's reassembled counters under `prefix` ("q567."),
/// skipping zero values: the registry diff carries zero rows for metrics
/// other process activity created, and zero-vs-missing compares equal.
void flatten_kernel(const obs::KernelCounters& k, const std::string& prefix,
                    std::map<std::string, double>& out) {
  const std::string p = prefix + k.label + ".";
  if (k.cells != 0) out[p + "cells"] = static_cast<double>(k.cells);
  if (k.syncs != 0) out[p + "syncs"] = static_cast<double>(k.syncs);
  if (k.windows != 0) out[p + "windows"] = static_cast<double>(k.windows);
  if (k.shared_accesses != 0)
    out[p + "shared_accesses"] = static_cast<double>(k.shared_accesses);
  for (const auto& [space, fields] : k.spaces) {
    for (const auto& [fname, v] : fields) {
      if (v != 0) out[p + space + "." + fname] = static_cast<double>(v);
    }
  }
  for (const auto& [key, fields] : k.sites) {
    for (const auto& [fname, v] : fields) {
      if (v != 0)
        out[p + "site." + key.first + "." + key.second + "." + fname] =
            static_cast<double>(v);
    }
  }
}

std::uint64_t global_txns(const obs::KernelCounters& k) {
  std::uint64_t t = 0;
  for (const char* space : {"global", "local"}) {
    const auto it = k.spaces.find(space);
    if (it == k.spaces.end()) continue;
    const auto f = it->second.find("transactions");
    if (f != it->second.end()) t += f->second;
  }
  return t;
}

}  // namespace

std::map<std::string, double> run_canonical_workload() {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  // The Table I subset: synthesized Swiss-Prot, over-threshold sequences.
  const auto db = seq::DatabaseProfile::swissprot().synthesize(2400, 0xAB1E);
  const auto longs = db.split_by_threshold(3072).second;

  // One-SM slice of the C1060, as every bench runs (bench_common.h).
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::tesla_c1060();
  spec = spec.scaled(1.0 / spec.sm_count);

  std::map<std::string, double> out;
  for (const std::size_t qlen : {std::size_t{567}, std::size_t{1500}}) {
    gpusim::Device dev(spec);
    Rng rng(qlen);
    const auto query = seq::random_protein(qlen, rng).residues;
    const std::string qp = "q" + std::to_string(qlen) + ".";

    // Snapshot-diff around the runs: the workload's own contribution to
    // the process-wide registry, exact even when other kernels ran first
    // in this process (counters add linearly; addresses are per-run).
    const obs::Snapshot before = obs::Registry::global().snapshot();
    const auto imp =
        cudasw::run_intra_task_improved(dev, query, longs, matrix, gap, {});
    const auto orig =
        cudasw::run_intra_task_original(dev, query, longs, matrix, gap, {});
    const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);

    std::uint64_t txn_imp = 0, txn_orig = 0;
    for (const obs::KernelCounters& k : obs::collect_kernel_counters(delta)) {
      if (k.label == "intra_task_improved") {
        txn_imp = global_txns(k);
      } else if (k.label == "intra_task_original") {
        txn_orig = global_txns(k);
      } else {
        continue;  // other kernels' zero-delta residue
      }
      flatten_kernel(k, qp, out);
    }
    // The paper's Table I headline, gated as a ratio with its own drift
    // tolerance: original / improved global-memory transactions.
    if (txn_imp != 0) {
      out["derived." + qp.substr(0, qp.size() - 1) + ".global_txn_ratio"] =
          static_cast<double>(txn_orig) / static_cast<double>(txn_imp);
    }
    // Guard the structural sum invariant from the CLI too: summing the
    // improved kernel's site rows must reproduce its global transactions.
    (void)imp;
    (void)orig;
  }
  return out;
}

double tolerance_for(const std::map<std::string, double>& tolerances,
                     const std::string& key) {
  std::size_t best_len = 0;
  double best = 0.0;
  bool found = false;
  for (const auto& [pat, tol] : tolerances) {
    if (pat == "default") continue;
    if (key.find(pat) == std::string::npos) continue;
    if (pat.size() >= best_len) {
      best_len = pat.size();
      best = tol;
      found = true;
    }
  }
  if (found) return best;
  const auto it = tolerances.find("default");
  return it == tolerances.end() ? 0.0 : it->second;
}

DiffResult diff_counters(const std::map<std::string, double>& current,
                         const std::map<std::string, double>& baseline,
                         const std::map<std::string, double>& tolerances) {
  DiffResult r;
  std::map<std::string, std::pair<double, double>> merged;  // base, cur
  for (const auto& [k, v] : baseline) merged[k].first = v;
  for (const auto& [k, v] : current) merged[k].second = v;
  for (const auto& [key, bc] : merged) {
    const auto [base, cur] = bc;
    ++r.compared;
    const double tol = tolerance_for(tolerances, key);
    const double limit = tol * std::max(std::fabs(base), kEps);
    if (std::fabs(cur - base) <= limit) continue;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s: current %.12g vs baseline %.12g (tolerance %g)",
                  key.c_str(), cur, base, tol);
    r.failures.push_back(line);
    r.ok = false;
  }
  return r;
}

bool load_baseline(const std::string& text,
                   std::map<std::string, double>& counters,
                   std::map<std::string, double>& tolerances,
                   std::string* error) {
  obs::json::Value doc;
  if (!obs::json::parse(text, doc, error)) return false;
  if (doc.kind != obs::json::Value::Kind::kObject) {
    if (error) *error = "baseline: top level is not an object";
    return false;
  }
  auto read_map = [&](const char* key, std::map<std::string, double>& into) {
    const obs::json::Value* m = doc.find(key);
    if (m == nullptr || m->kind != obs::json::Value::Kind::kObject)
      return m == nullptr;  // absent is fine, wrong type is not
    for (const auto& [k, v] : m->object) {
      if (v.kind != obs::json::Value::Kind::kNumber) return false;
      into[k] = v.number;
    }
    return true;
  };
  if (!read_map("tolerances", tolerances) ||
      !read_map("counters", counters)) {
    if (error) *error = "baseline: tolerances/counters must map to numbers";
    return false;
  }
  return true;
}

std::string baseline_to_json(const std::map<std::string, double>& counters,
                             const std::map<std::string, double>& tolerances) {
  std::string out = "{\n  \"tolerances\": {";
  bool first = true;
  for (const auto& [k, v] : tolerances) {
    out += first ? "\n" : ",\n";
    out += "    \"" + util::json_escape(k) + "\": " + util::json_number(v);
    first = false;
  }
  out += "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& [k, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + util::json_escape(k) + "\": " + util::json_number(v);
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::map<std::string, double> default_tolerances() {
  return {{"default", 0.0}, {"derived.", 0.02}};
}

}  // namespace cusw::tools
