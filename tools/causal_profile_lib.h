// causal_profile: virtual-speedup experiments on the simulated clock
// (obs/whatif.h, DESIGN.md §14).
//
// Classic profilers answer "where did the time go"; this tool answers
// "what would happen if a cost went away". It enumerates the hottest
// targets from a run capsule's counter tree — (site, space) attribution
// rows and the non-memory stall reasons — then re-runs the canonical
// Table I workload once per (target, factor) point with a what-if plan
// installed that scales the target's charged ticks by the factor. The
// end-to-end delta of each point (charged cycles, wall seconds, GCUPS)
// *is* the causal effect of that virtual speedup, including every
// downstream interaction a local stall share cannot see: window max()
// terms, occupancy idle, scheduling, service queueing.
//
// The report ranks targets by their gain at the most aggressive factor,
// fits a linear speedup curve through the sweep (gain per virtual %),
// and flags targets that are *locally hot but causally flat* — a large
// stall share whose removal barely moves the end-to-end clock because
// another term of the window max() backfills it.
//
// Two self-checks make the advice trustworthy:
//   - at every sweep point the simulator's Σ reasons == charged
//     invariant still holds (validated through the capsule checker), and
//     factor 1.0 is byte-identical to no plan at all;
//   - cross-validation: the predicted gain from deleting the original
//     kernel's dominant memory site must agree (within
//     CausalOptions::xval_bound) with the orig→improved memory-node
//     delta that tools/perf_explain measures, and the top-ranked target
//     must *be* perf_explain's dominant attribution node.
//
// With CausalOptions::service set, every sweep point additionally runs a
// small search-as-a-service projection (serve/service.h) under the same
// plan and reports p50/p99 latency and the worst SLO burn rate — turning
// "this optimisation removes N cycles" into "this optimisation buys back
// this much error budget".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tools/perf_explain_lib.h"

namespace cusw::tools {

struct CausalOptions {
  /// Virtual-speedup factors swept per target, applied in order. 0 means
  /// "this cost is free"; 1.0 would be a byte-exact no-op.
  std::vector<double> factors = {0.9, 0.75, 0.5, 0.0};
  /// How many targets (by local stall share) to sweep.
  std::size_t top_n = 6;
  /// "Causally flat" when end-to-end gain at the most aggressive factor
  /// is below this fraction of the target's local share…
  double flat_ratio = 0.25;
  /// …and the local share is big enough for the verdict to matter.
  double min_local_share = 0.02;
  /// Cross-validation bound: |predicted - measured| / measured of the
  /// dominant memory site's full-speedup gain vs perf_explain's
  /// memory-node delta.
  double xval_bound = 0.15;
  /// Project service p50/p99/burn-rate per sweep point (slower).
  bool service = false;
  /// Requests per service projection run.
  std::size_t service_requests = 160;
  /// Database size of the canonical workload; tests shrink it.
  std::size_t db_sequences = 2400;
};

/// One candidate target mined from the capsule counter tree.
struct CausalTarget {
  std::string spec;    // what-if grammar: "site:x@global", "stall:sync", …
  std::string kernel;  // owning kernel label ("" for launch-wide reasons)
  std::uint64_t ticks = 0;   // local stall ticks attributed to the target
  double local_share = 0.0;  // ticks / total charged ticks
};

/// One re-run of the workload under `factor` applied to one target.
struct SweepPoint {
  double factor = 1.0;
  double charged_cycles = 0.0;
  double seconds = 0.0;
  double gcups = 0.0;
  /// (baseline charged - charged) / baseline charged: the causal
  /// end-to-end gain of this virtual speedup.
  double gain = 0.0;
  // Service projection (CausalOptions::service only):
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_burn = 0.0;  // worst SLO objective burn rate
};

struct TargetResult {
  CausalTarget target;
  std::vector<SweepPoint> points;  // in CausalOptions::factors order
  double max_gain = 0.0;  // gain at the most aggressive factor
  /// Least-squares slope through the origin of gain vs (1 - factor):
  /// end-to-end gain per virtual % of this target's cost removed.
  double slope = 0.0;
  /// Locally hot, causally flat: big stall share, no clock movement.
  bool causally_flat = false;
};

/// The two-way self-check against perf_explain's differential attribution.
struct CrossValidation {
  bool ran = false;
  bool ok = false;  // rel_error <= bound AND ranking agreement
  std::string site_spec;       // the dominant memory site target swept
  double predicted_cycles = 0.0;  // its full-speedup charged-cycle gain
  double measured_cycles = 0.0;   // |memory-node delta| orig -> improved
  double rel_error = 0.0;
  std::string top_target;      // rank-1 target of the sweep
  std::string dominant_node;   // perf_explain's largest memory leaf
  bool ranking_agrees = false;
  std::string detail;          // human-readable failure description
};

struct CausalReport {
  bool ok = false;
  std::string error;  // validation failure, empty when ok
  double base_charged_cycles = 0.0;
  double base_seconds = 0.0;
  double base_gcups = 0.0;
  // Baseline service projection (CausalOptions::service only):
  double base_p50_ms = 0.0;
  double base_p99_ms = 0.0;
  double base_max_burn = 0.0;
  std::string slo_spec;  // objectives of the projection, "" without service
  std::vector<TargetResult> ranked;  // sorted by max_gain, descending
  CrossValidation xval;
  CausalOptions options;

  std::string to_ascii() const;
  std::string to_json() const;
};

/// Mine the top-N what-if targets from a capsule: per-(site, space)
/// attribution rows plus the non-memory stall reasons (compute, sync,
/// bank_conflict, occupancy_idle), ranked by local stall share. The
/// memory reasons themselves are excluded — the site rows decompose them
/// exactly, so sweeping both would double-count the same cost. Returns
/// an empty vector and sets *error on an invalid capsule.
std::vector<CausalTarget> enumerate_targets(std::string_view capsule,
                                            std::size_t top_n,
                                            std::string* error);

/// Run the full causal profile of the canonical Table I original-kernel
/// workload: capsule → targets → factor sweep → ranking → cross-validation
/// against perf_explain. On success, contributes the JSON report as the
/// process capsule's "causal_profile" section. Byte-identical output for
/// any CUSW_THREADS and for memo on/off.
CausalReport causal_profile_canonical(const CausalOptions& options = {});

}  // namespace cusw::tools
