#include "tools/capsule_summary_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "gpusim/stall.h"
#include "obs/capsule.h"
#include "obs/trace_check.h"

namespace cusw::tools {

namespace {

double num_or(const obs::json::Value* v, double fallback) {
  return v != nullptr && v->kind == obs::json::Value::Kind::kNumber
             ? v->number
             : fallback;
}

const std::string& str_or(const obs::json::Value* v,
                          const std::string& fallback) {
  return v != nullptr && v->kind == obs::json::Value::Kind::kString
             ? v->string
             : fallback;
}

struct KernelRow {
  std::string label;
  double charged_ticks = 0.0;
  double launches = 0.0;
  double seconds = 0.0;
  double gcups = 0.0;
};

struct SiteRow {
  std::string name;  // "site (space)"
  std::string kernel;
  double stall_ticks = 0.0;
};

}  // namespace

std::string summarize_capsule(std::string_view capsule,
                              const SummaryOptions& options, bool* ok) {
  *ok = false;
  const obs::CapsuleCheck check = obs::validate_capsule(capsule);
  if (!check.ok) {
    return "capsule_summary: invalid capsule: " + check.error + "\n";
  }
  obs::json::Value root;
  std::string perr;
  if (!obs::json::parse(capsule, root, &perr)) {
    return "capsule_summary: " + perr + "\n";
  }

  std::ostringstream os;
  char buf[256];
  const std::string none;
  os << "capsule: run '" << str_or(root.find("run"), none) << "'\n";
  for (const std::string& w : check.warnings) {
    os << "warning: " << w << "\n";
  }

  if (const obs::json::Value* prov = root.find("provenance");
      prov != nullptr && prov->kind == obs::json::Value::Kind::kObject) {
    os << "provenance:";
    for (const auto& [key, v] : prov->object) {
      os << " " << key << "=";
      if (v.kind == obs::json::Value::Kind::kString) {
        os << v.string;
      } else if (v.kind == obs::json::Value::Kind::kNumber) {
        std::snprintf(buf, sizeof(buf), "%g", v.number);
        os << buf;
      } else {
        os << "?";
      }
    }
    os << "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "contents: %zu kernel(s), %zu series, %zu sample point(s)\n",
                check.kernels, check.series, check.points);
  os << buf;

  std::vector<KernelRow> kernels;
  std::vector<SiteRow> sites;
  if (const obs::json::Value* ks = root.find("kernels");
      ks != nullptr && ks->kind == obs::json::Value::Kind::kArray) {
    for (const obs::json::Value& k : ks->array) {
      if (k.kind != obs::json::Value::Kind::kObject) continue;
      KernelRow row;
      row.label = str_or(k.find("label"), none);
      row.launches = num_or(k.find("launches"), 0.0);
      row.seconds = num_or(k.find("seconds"), 0.0);
      row.gcups = num_or(k.find("gcups"), 0.0);
      if (const obs::json::Value* stall = k.find("stall_ticks");
          stall != nullptr &&
          stall->kind == obs::json::Value::Kind::kObject) {
        row.charged_ticks = num_or(stall->find("charged"), 0.0);
      }
      if (const obs::json::Value* ss = k.find("sites");
          ss != nullptr && ss->kind == obs::json::Value::Kind::kArray) {
        for (const obs::json::Value& s : ss->array) {
          if (s.kind != obs::json::Value::Kind::kObject) continue;
          const obs::json::Value* ctr = s.find("counters");
          if (ctr == nullptr ||
              ctr->kind != obs::json::Value::Kind::kObject) {
            continue;
          }
          SiteRow sr;
          sr.name = str_or(s.find("site"), none) + " (" +
                    str_or(s.find("space"), none) + ")";
          sr.kernel = row.label;
          sr.stall_ticks = num_or(ctr->find("stall_ticks"), 0.0);
          if (sr.stall_ticks > 0.0) sites.push_back(std::move(sr));
        }
      }
      kernels.push_back(std::move(row));
    }
  }

  std::stable_sort(kernels.begin(), kernels.end(),
                   [](const KernelRow& a, const KernelRow& b) {
                     return a.charged_ticks > b.charged_ticks;
                   });
  if (!kernels.empty()) {
    std::snprintf(buf, sizeof(buf), "\ntop kernels by charged cycles:\n");
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-36s %9s %16s %10s %8s\n", "kernel",
                  "launches", "charged cycles", "seconds", "GCUPS");
    os << buf;
    const std::size_t nk = std::min(options.top_n, kernels.size());
    for (std::size_t i = 0; i < nk; ++i) {
      const KernelRow& r = kernels[i];
      std::snprintf(buf, sizeof(buf), "  %-36s %9.0f %16.1f %10.6f %8.3f\n",
                    r.label.c_str(), r.launches,
                    r.charged_ticks /
                        static_cast<double>(gpusim::kStallTicksPerCycle),
                    r.seconds, r.gcups);
      os << buf;
    }
    if (kernels.size() > nk) {
      std::snprintf(buf, sizeof(buf), "  (+%zu more)\n", kernels.size() - nk);
      os << buf;
    }
  }

  std::stable_sort(sites.begin(), sites.end(),
                   [](const SiteRow& a, const SiteRow& b) {
                     return a.stall_ticks > b.stall_ticks;
                   });
  if (!sites.empty()) {
    os << "\ntop sites by stall ticks:\n";
    std::snprintf(buf, sizeof(buf), "  %-28s %-36s %16s\n", "site", "kernel",
                  "stall cycles");
    os << buf;
    const std::size_t ns = std::min(options.top_n, sites.size());
    for (std::size_t i = 0; i < ns; ++i) {
      const SiteRow& r = sites[i];
      std::snprintf(buf, sizeof(buf), "  %-28s %-36s %16.1f\n",
                    r.name.c_str(), r.kernel.c_str(),
                    r.stall_ticks /
                        static_cast<double>(gpusim::kStallTicksPerCycle));
      os << buf;
    }
    if (sites.size() > ns) {
      std::snprintf(buf, sizeof(buf), "  (+%zu more)\n", sites.size() - ns);
      os << buf;
    }
  }

  // SLO standing from any serve section (ServiceReport::to_json shape:
  // an object with an "slo" array of objective rows).
  if (const obs::json::Value* sections = root.find("sections");
      sections != nullptr &&
      sections->kind == obs::json::Value::Kind::kObject) {
    for (const auto& [name, section] : sections->object) {
      if (section.kind != obs::json::Value::Kind::kObject) continue;
      const obs::json::Value* slo = section.find("slo");
      if (slo == nullptr || slo->kind != obs::json::Value::Kind::kArray ||
          slo->array.empty()) {
        continue;
      }
      os << "\nSLO standing (section '" << name << "'):\n";
      std::snprintf(buf, sizeof(buf), "  %-24s %12s %12s %10s %8s\n",
                    "objective", "observed", "bound", "burn", "status");
      os << buf;
      for (const obs::json::Value& s : slo->array) {
        if (s.kind != obs::json::Value::Kind::kObject) continue;
        const obs::json::Value* okv = s.find("ok");
        const bool met =
            okv != nullptr && okv->kind == obs::json::Value::Kind::kBool &&
            okv->boolean;
        std::snprintf(buf, sizeof(buf), "  %-24s %12.3f %12.3f %10.2f %8s\n",
                      str_or(s.find("objective"), none).c_str(),
                      num_or(s.find("observed"), 0.0),
                      num_or(s.find("bound"), 0.0),
                      num_or(s.find("burn_rate"), 0.0),
                      met ? "ok" : "VIOLATED");
        os << buf;
      }
    }
  }

  *ok = true;
  return os.str();
}

}  // namespace cusw::tools
