#include "tools/perf_diff_lib.h"

#include <cmath>
#include <string_view>

#include "cudasw/inter_task_simd.h"
#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/stall.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "util/rng.h"

namespace cusw::tools {

namespace {

/// Flatten one kernel run's perf profile under `raw.<prefix>.` /
/// `rate.<prefix>.`. Raw cycle values are llround'ed to integers: the
/// underlying ticks are exact multiples of 1/1024 cycle, so the rounding
/// is deterministic and the integers re-read from a %.12g baseline
/// compare exactly.
void flatten_perf(const std::string& prefix, const cudasw::KernelRun& run,
                  std::map<std::string, double>& out) {
  const gpusim::LaunchStats& s = run.stats;
  const std::string raw = "raw." + prefix + ".";
  const std::string rate = "rate." + prefix + ".";
  const auto cycles = [](std::uint64_t ticks) {
    return static_cast<double>(
        std::llround(gpusim::stall_ticks_to_cycles(ticks)));
  };
  gpusim::for_each_stall_reason(
      s.stall, [&](const char* reason, std::uint64_t v) {
        out[raw + "stall_cycles." + reason] = cycles(v);
      });
  out[raw + "stall_cycles.charged"] = cycles(s.stall.charged);
  out[raw + "makespan_cycles"] =
      static_cast<double>(std::llround(s.makespan_cycles));
  out[raw + "windows"] = static_cast<double>(s.windows);

  if (s.seconds > 0.0) {
    out[rate + "gcups"] =
        static_cast<double>(run.cells) / s.seconds / 1e9;
  }
  if (s.stall.charged > 0) {
    const double charged = static_cast<double>(s.stall.charged);
    gpusim::for_each_stall_reason(
        s.stall, [&](const char* reason, std::uint64_t v) {
          out[rate + "stall_share." + reason] =
              static_cast<double>(v) / charged;
        });
  }
}

}  // namespace

std::map<std::string, double> run_perf_workload() {
  return run_perf_workload(gpusim::CostModel{});
}

std::map<std::string, double> run_perf_workload(
    const gpusim::CostModel& cost) {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};

  // One-SM slice of the C1060, as every bench runs (bench_common.h).
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::tesla_c1060();
  spec = spec.scaled(1.0 / spec.sm_count);

  Rng rng(567);
  const auto query = seq::random_protein(567, rng).residues;

  std::map<std::string, double> out;

  // Table I slice: the intra-task pair on the over-threshold subset.
  {
    const auto db =
        seq::DatabaseProfile::swissprot().synthesize(2400, 0xAB1E);
    const auto longs = db.split_by_threshold(3072).second;
    gpusim::Device dev(spec, cost);
    flatten_perf(
        "table1.intra_task_improved",
        cudasw::run_intra_task_improved(dev, query, longs, matrix, gap, {}),
        out);
    flatten_perf(
        "table1.intra_task_original",
        cudasw::run_intra_task_original(dev, query, longs, matrix, gap, {}),
        out);
  }

  // Fig. 2 slice: the inter-task pair on a high-variance log-normal
  // database (stddev 1500, the paper's worst case for the SIMT kernel).
  {
    auto db = seq::lognormal_db(256, 4000.0, 1500.0, 0xF162, 32, 40000);
    db.sort_by_length();
    gpusim::Device dev(spec, cost);
    flatten_perf("fig2.inter_task",
                 cudasw::run_inter_task(dev, query, db, matrix, gap, {}),
                 out);
    flatten_perf(
        "fig2.inter_task_simd",
        cudasw::run_inter_task_simd(dev, query, db, matrix, gap, {}), out);
  }
  return out;
}

std::map<std::string, double> default_perf_tolerances() {
  // Wall-clock figures are host-load dependent; 25% catches regressions of
  // the "suddenly 2x slower" kind without flaking on scheduler noise.
  return {{"default", 0.0}, {"rate.", 0.02}, {"bench.", 0.25}};
}

bool load_bench_document(const std::string& text,
                         std::map<std::string, double>& out,
                         std::string* error) {
  obs::json::Value doc;
  if (!obs::json::parse(text, doc, error)) return false;
  if (doc.kind != obs::json::Value::Kind::kObject) {
    if (error) *error = "bench document: top level is not an object";
    return false;
  }
  std::string name = "unknown";
  if (const obs::json::Value* n = doc.find("bench");
      n != nullptr && n->kind == obs::json::Value::Kind::kString) {
    name = n->string;
  }
  const obs::json::Value* limited = doc.find("hardware_limited");
  const bool hardware_limited = limited != nullptr &&
                                limited->kind ==
                                    obs::json::Value::Kind::kBool &&
                                limited->boolean;
  const auto is_wall_clock = [](std::string_view field) {
    constexpr std::string_view kSuffix = "wall_seconds";
    return field == "speedup" ||
           (field.size() >= kSuffix.size() &&
            field.substr(field.size() - kSuffix.size()) == kSuffix);
  };
  for (const auto& [field, v] : doc.object) {
    if (v.kind != obs::json::Value::Kind::kNumber) continue;
    if (hardware_limited && is_wall_clock(field)) continue;
    out["bench." + name + "." + field] = v.number;
  }
  return true;
}

}  // namespace cusw::tools
