// perf_diff CLI — the CI gate behind `ctest -R perf_baseline`.
//
//   perf_diff [--baselines <dir>] [--update] [--bench <BENCH_*.json>]...
//
// Without --update: replay the canonical Table I / Fig 2 one-SM slices,
// compare their simulated-performance profile (charged cycles, stall
// attribution, makespan, GCUPS) against <dir>/perf_baseline.json, print
// any violations and exit non-zero. With --update: regenerate the
// baseline file in place, preserving its tolerances (run this after an
// intentional cost-model or kernel change and commit the result).
//
// --bench folds a bench harness's JSON payload into the comparison as
// `bench.<name>.<field>` keys. These are opt-in on both sides: a bench key
// is only compared when it appears in the current run AND the baseline, so
// adding --bench never breaks an older baseline (run --update with the
// same --bench flags to start gating them). Documents stamped
// `"hardware_limited": true` contribute no wall-clock keys.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/counter_diff_lib.h"
#include "tools/perf_diff_lib.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "baselines";
  bool update = false;
  std::vector<std::string> bench_files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--baselines") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc) {
      bench_files.push_back(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: perf_diff [--baselines <dir>] [--update] "
                   "[--bench <file>]...\n");
      return 2;
    }
  }
  const std::string path = dir + "/perf_baseline.json";

  std::printf("perf_diff: replaying canonical perf workloads...\n");
  auto current = cusw::tools::run_perf_workload();

  for (const std::string& f : bench_files) {
    std::string text, error;
    if (!read_file(f, text) ||
        !cusw::tools::load_bench_document(text, current, &error)) {
      std::fprintf(stderr, "perf_diff: cannot load bench document %s%s%s\n",
                   f.c_str(), error.empty() ? "" : ": ", error.c_str());
      return 2;
    }
  }

  std::map<std::string, double> base, tol;
  std::string text, error;
  const bool have_file = read_file(path, text);
  if (have_file && !cusw::tools::load_baseline(text, base, tol, &error)) {
    std::fprintf(stderr, "perf_diff: cannot parse %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }

  if (update) {
    if (!have_file || tol.empty()) tol = cusw::tools::default_perf_tolerances();
    const std::string json = cusw::tools::baseline_to_json(current, tol);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "perf_diff: cannot write %s\n", path.c_str());
      return 2;
    }
    out << json;
    std::printf("perf_diff: wrote %zu perf counters to %s\n", current.size(),
                path.c_str());
    return 0;
  }

  if (!have_file) {
    std::fprintf(stderr, "perf_diff: missing %s (generate it with --update)\n",
                 path.c_str());
    return 2;
  }
  // Bench keys are opt-in on both sides (see the header comment): drop any
  // bench.* key that only one side knows about before diffing.
  const auto prune_bench = [](std::map<std::string, double>& a,
                              const std::map<std::string, double>& b) {
    for (auto it = a.begin(); it != a.end();) {
      if (it->first.rfind("bench.", 0) == 0 && b.count(it->first) == 0) {
        it = a.erase(it);
      } else {
        ++it;
      }
    }
  };
  prune_bench(current, base);
  prune_bench(base, current);
  const auto r = cusw::tools::diff_counters(current, base, tol);
  for (const std::string& f : r.failures)
    std::fprintf(stderr, "perf_diff: FAIL %s\n", f.c_str());
  if (!r.ok) {
    std::fprintf(stderr,
                 "perf_diff: %zu of %zu perf counters outside tolerance "
                 "(intentional? rerun with --update and commit)\n",
                 r.failures.size(), r.compared);
    return 1;
  }
  std::printf("perf_diff: %zu perf counters within tolerance of %s\n",
              r.compared, path.c_str());
  return 0;
}
