// capsule_summary: a one-screen ASCII digest of a run capsule
// (obs/capsule.h).
//
// Capsules are complete by design — every counter, series and section a
// run produced — which makes them the wrong artifact to *read*. This
// tool answers "what is in this capsule" in a dozen lines: the
// provenance block (run name, git sha, thread count, memo state, any
// what-if plan), the top kernels by charged cycles, the top memory sites
// by stall ticks across all kernels, and the SLO standing of any serve
// section. Validation warnings (sampler ring overflow) are surfaced at
// the top so nobody trusts a truncated series by accident.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace cusw::tools {

struct SummaryOptions {
  /// Rows per ranked table (kernels, sites).
  std::size_t top_n = 5;
};

/// Render the digest. On an invalid capsule the returned text is a
/// single error line and *ok is set to false.
std::string summarize_capsule(std::string_view capsule,
                              const SummaryOptions& options, bool* ok);

}  // namespace cusw::tools
