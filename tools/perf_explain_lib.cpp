#include "tools/perf_explain_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "gpusim/device_spec.h"
#include "gpusim/stall.h"
#include "obs/capsule.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace_check.h"
#include "seq/generate.h"
#include "util/json.h"
#include "util/rng.h"

namespace cusw::tools {

namespace {

bool is_memory_reason(const std::string& reason) {
  return reason == "mem_issue" || reason == "txn_issue" ||
         reason == "exposed_latency";
}

/// One capsule kernel entry reduced to what attribution needs. Stall and
/// site values stay integer ticks so sums are exact.
struct CapKernel {
  std::string label;
  double gcups = 0.0;
  std::map<std::string, std::uint64_t> stall;  // reason -> ticks, + charged
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, std::uint64_t>>
      sites;
};

std::uint64_t as_u64(const obs::json::Value* v) {
  if (v == nullptr || v->kind != obs::json::Value::Kind::kNumber ||
      v->number <= 0.0) {
    return 0;
  }
  return static_cast<std::uint64_t>(std::llround(v->number));
}

double as_num(const obs::json::Value* v) {
  return v != nullptr && v->kind == obs::json::Value::Kind::kNumber
             ? v->number
             : 0.0;
}

bool load_capsule(std::string_view text, const char* which,
                  std::vector<CapKernel>& out, std::string* error,
                  std::vector<std::string>* warnings) {
  const obs::CapsuleCheck check = obs::validate_capsule(text);
  if (!check.ok) {
    *error = std::string("capsule ") + which + ": " + check.error;
    return false;
  }
  for (const std::string& w : check.warnings) {
    warnings->push_back(std::string("capsule ") + which + ": " + w);
  }
  obs::json::Value root;
  std::string perr;
  if (!obs::json::parse(text, root, &perr)) {
    *error = std::string("capsule ") + which + ": " + perr;
    return false;
  }
  const obs::json::Value* kernels = root.find("kernels");
  if (kernels == nullptr) return true;
  for (const obs::json::Value& k : kernels->array) {
    CapKernel ck;
    ck.label = k.find("label")->string;  // validated above
    ck.gcups = as_num(k.find("gcups"));
    if (const obs::json::Value* stall = k.find("stall_ticks");
        stall != nullptr && stall->kind == obs::json::Value::Kind::kObject) {
      for (const auto& [reason, v] : stall->object) ck.stall[reason] = as_u64(&v);
    }
    if (const obs::json::Value* sites = k.find("sites");
        sites != nullptr && sites->kind == obs::json::Value::Kind::kArray) {
      for (const obs::json::Value& s : sites->array) {
        if (s.kind != obs::json::Value::Kind::kObject) continue;
        const obs::json::Value* site = s.find("site");
        const obs::json::Value* space = s.find("space");
        if (site == nullptr || site->kind != obs::json::Value::Kind::kString ||
            space == nullptr ||
            space->kind != obs::json::Value::Kind::kString) {
          continue;
        }
        auto& fields = ck.sites[{site->string, space->string}];
        if (const obs::json::Value* ctr = s.find("counters");
            ctr != nullptr && ctr->kind == obs::json::Value::Kind::kObject) {
          for (const auto& [field, v] : ctr->object) fields[field] = as_u64(&v);
        }
      }
    }
    out.push_back(std::move(ck));
  }
  return true;
}

double cycles(std::uint64_t ticks) {
  return gpusim::stall_ticks_to_cycles(ticks);
}

ExplainNode make_node(std::string name, std::uint64_t ticks_a,
                      std::uint64_t ticks_b) {
  ExplainNode n;
  n.name = std::move(name);
  n.cycles_a = cycles(ticks_a);
  n.cycles_b = cycles(ticks_b);
  n.delta = n.cycles_b - n.cycles_a;
  return n;
}

std::uint64_t stall_of(const CapKernel* k, const std::string& reason) {
  if (k == nullptr) return 0;
  const auto it = k->stall.find(reason);
  return it == k->stall.end() ? 0 : it->second;
}

std::uint64_t site_field(const CapKernel* k,
                         const std::pair<std::string, std::string>& key,
                         const std::string& field) {
  if (k == nullptr) return 0;
  const auto it = k->sites.find(key);
  if (it == k->sites.end()) return 0;
  const auto f = it->second.find(field);
  return f == it->second.end() ? 0 : f->second;
}

double child_delta_sum(const ExplainNode& n) {
  double sum = 0.0;
  for (const ExplainNode& c : n.children) sum += c.delta;
  return sum;
}

/// Build one kernel node: direct stall-reason leaves, plus a "memory"
/// internal node holding the per-(site, space) attribution rows.
ExplainNode kernel_node(const std::string& name, const CapKernel* a,
                        const CapKernel* b) {
  ExplainNode n = make_node(name, stall_of(a, "charged"), stall_of(b, "charged"));

  std::set<std::string> reasons;
  if (a != nullptr)
    for (const auto& [r, v] : a->stall) reasons.insert(r);
  if (b != nullptr)
    for (const auto& [r, v] : b->stall) reasons.insert(r);
  reasons.erase("charged");

  std::uint64_t mem_a = 0, mem_b = 0;
  bool have_memory = false;
  for (const std::string& r : reasons) {
    if (is_memory_reason(r)) {
      mem_a += stall_of(a, r);
      mem_b += stall_of(b, r);
      have_memory = true;
      continue;
    }
    n.children.push_back(make_node(r, stall_of(a, r), stall_of(b, r)));
  }

  std::set<std::pair<std::string, std::string>> site_keys;
  if (a != nullptr)
    for (const auto& [key, fields] : a->sites) site_keys.insert(key);
  if (b != nullptr)
    for (const auto& [key, fields] : b->sites) site_keys.insert(key);

  if (have_memory || !site_keys.empty()) {
    ExplainNode mem = make_node("memory", mem_a, mem_b);
    for (const auto& key : site_keys) {
      ExplainNode row = make_node(key.first + " (" + key.second + ")",
                                  site_field(a, key, "stall_ticks"),
                                  site_field(b, key, "stall_ticks"));
      for (const char* field : {"transactions", "dram_bytes"}) {
        const std::uint64_t fa = site_field(a, key, field);
        const std::uint64_t fb = site_field(b, key, field);
        if (fa != 0 || fb != 0) {
          row.notes.emplace_back(field, static_cast<double>(fb) -
                                            static_cast<double>(fa));
        }
      }
      mem.children.push_back(std::move(row));
    }
    mem.residue = mem.delta - child_delta_sum(mem);
    n.children.push_back(std::move(mem));
  }
  n.residue = n.delta - child_delta_sum(n);
  return n;
}

struct KernelPair {
  std::string name;
  const CapKernel* a = nullptr;
  const CapKernel* b = nullptr;
};

std::string label_listing(const std::vector<const CapKernel*>& ks) {
  std::string out = "[";
  for (std::size_t i = 0; i < ks.size(); ++i) {
    out += (i != 0 ? ", " : "") + ks[i]->label;
  }
  return out + "]";
}

/// Align kernels by label. Explicit `--map=labelA=labelB` pairings apply
/// first; a lone unmatched kernel on each side is the renamed-kernel case
/// (the canonical orig-vs-improved comparison) and is paired as
/// "labelA -> labelB". When renaming leaves several unmatched kernels on
/// *each* side the pairing is ambiguous — guessing would attribute one
/// kernel's delta to another — so that is an error directing the caller
/// to --map. Leftovers with an empty opposite side (kernels genuinely
/// added or removed) stand alone.
bool pair_kernels(const std::vector<CapKernel>& ka,
                  const std::vector<CapKernel>& kb,
                  const ExplainOptions& options,
                  std::vector<KernelPair>& out, std::string* error) {
  std::map<std::string, const CapKernel*> by_label_a, by_label_b;
  for (const CapKernel& a : ka) by_label_a[a.label] = &a;
  for (const CapKernel& b : kb) by_label_b[b.label] = &b;

  std::set<std::string> matched_a, matched_b;
  for (const auto& [la, lb] : options.label_map) {
    const auto a = by_label_a.find(la);
    const auto b = by_label_b.find(lb);
    if (a == by_label_a.end() || b == by_label_b.end()) {
      *error = "--map " + la + "=" + lb + ": " +
               (a == by_label_a.end() ? "capsule A has no kernel '" + la + "'"
                                      : "capsule B has no kernel '" + lb +
                                            "'");
      return false;
    }
    out.push_back({la + " -> " + lb, a->second, b->second});
    matched_a.insert(la);
    matched_b.insert(lb);
  }

  std::vector<const CapKernel*> left_a, left_b;
  for (const CapKernel& a : ka) {
    if (matched_a.count(a.label) != 0) continue;
    if (const auto it = by_label_b.find(a.label);
        it != by_label_b.end() && matched_b.count(a.label) == 0) {
      out.push_back({a.label, &a, it->second});
      matched_b.insert(a.label);
    } else {
      left_a.push_back(&a);
    }
  }
  for (const CapKernel& b : kb) {
    if (matched_b.count(b.label) == 0) left_b.push_back(&b);
  }
  if (left_a.size() == 1 && left_b.size() == 1) {
    out.push_back(
        {left_a[0]->label + " -> " + left_b[0]->label, left_a[0], left_b[0]});
  } else if (!left_a.empty() && !left_b.empty()) {
    *error = "ambiguous kernel pairing: capsule A has unmatched " +
             label_listing(left_a) + " vs capsule B " + label_listing(left_b) +
             "; pair them explicitly with --map=labelA=labelB";
    return false;
  } else {
    for (const CapKernel* a : left_a) out.push_back({a->label, a, nullptr});
    for (const CapKernel* b : left_b) out.push_back({b->label, nullptr, b});
  }
  std::sort(out.begin(), out.end(),
            [](const KernelPair& x, const KernelPair& y) {
              return x.name < y.name;
            });
  return true;
}

void set_shares(ExplainNode& n, double total) {
  n.share = total != 0.0 ? n.delta / total : 0.0;
  for (ExplainNode& c : n.children) set_shares(c, total);
}

/// Pre-fold residue accounting: the sum of internal-node |residue| and the
/// worst single node, both against `denom` (|total delta| or 1).
void residue_stats(const ExplainNode& n, double denom, double& sum_abs,
                   double& max_share) {
  if (n.children.empty()) return;
  sum_abs += std::fabs(n.residue);
  max_share = std::max(max_share, std::fabs(n.residue) / denom);
  for (const ExplainNode& c : n.children) {
    residue_stats(c, denom, sum_abs, max_share);
  }
}

/// Fold a parent's below-threshold children (at least two — one row reads
/// fine on its own) into one aggregate leaf; sums are preserved, so the
/// residue accounting done before folding stays valid.
void fold_children(ExplainNode& n, double cut, double total) {
  for (ExplainNode& c : n.children) fold_children(c, cut, total);
  if (cut <= 0.0 || n.children.size() < 2) return;
  std::size_t candidates = 0;
  for (const ExplainNode& c : n.children) {
    if (std::fabs(c.delta) < cut) ++candidates;
  }
  if (candidates < 2) return;
  std::vector<ExplainNode> keep;
  ExplainNode agg;
  for (ExplainNode& c : n.children) {
    if (std::fabs(c.delta) < cut) {
      agg.cycles_a += c.cycles_a;
      agg.cycles_b += c.cycles_b;
      agg.delta += c.delta;
      agg.folded += c.folded > 0 ? c.folded : 1;
    } else {
      keep.push_back(std::move(c));
    }
  }
  agg.name = "(below threshold: " + std::to_string(agg.folded) + " rows)";
  agg.share = total != 0.0 ? agg.delta / total : 0.0;
  keep.push_back(std::move(agg));
  n.children = std::move(keep);
}

void render_node(const ExplainNode& n, int depth, std::string& out) {
  char buf[320];
  std::string name(static_cast<std::size_t>(depth) * 2, ' ');
  name += n.name;
  std::snprintf(buf, sizeof(buf), "%-48s %16.1f %16.1f %+14.1f %8.2f%%\n",
                name.c_str(), n.cycles_a, n.cycles_b, n.delta,
                100.0 * n.share);
  out += buf;
  if (!n.notes.empty()) {
    std::string notes(static_cast<std::size_t>(depth) * 2 + 2, ' ');
    notes += "~";
    for (const auto& [field, delta] : n.notes) {
      std::snprintf(buf, sizeof(buf), " %s %+.0f", field.c_str(), delta);
      notes += buf;
    }
    out += notes + "\n";
  }
  for (const ExplainNode& c : n.children) render_node(c, depth + 1, out);
  if (!n.children.empty() && n.residue != 0.0) {
    std::string rname(static_cast<std::size_t>(depth) * 2 + 2, ' ');
    rname += "(unattributed residue)";
    std::snprintf(buf, sizeof(buf), "%-48s %16s %16s %+14.1f\n", rname.c_str(),
                  "", "", n.residue);
    out += buf;
  }
}

std::string node_to_json(const ExplainNode& n) {
  util::JsonFields f;
  f.field("name", std::string_view(n.name))
      .field("cycles_a", n.cycles_a)
      .field("cycles_b", n.cycles_b)
      .field("delta", n.delta)
      .field("share", n.share)
      .field("residue", n.residue)
      .field("folded", static_cast<std::uint64_t>(n.folded));
  if (!n.notes.empty()) {
    util::JsonFields notes;
    for (const auto& [field, delta] : n.notes) notes.field(field, delta);
    f.raw("notes", notes.object());
  }
  if (!n.children.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      arr += (i != 0 ? ", " : "") + node_to_json(n.children[i]);
    }
    arr += "]";
    f.raw("children", arr);
  }
  return f.object();
}

}  // namespace

ExplainReport explain_capsules(std::string_view capsule_a,
                               std::string_view capsule_b,
                               const ExplainOptions& options) {
  ExplainReport rep;
  rep.options = options;
  std::vector<CapKernel> ka, kb;
  if (!load_capsule(capsule_a, "A", ka, &rep.error, &rep.warnings))
    return rep;
  if (!load_capsule(capsule_b, "B", kb, &rep.error, &rep.warnings))
    return rep;

  ExplainNode root;
  root.name = "total";
  std::vector<KernelPair> pairs;
  if (!pair_kernels(ka, kb, options, pairs, &rep.error)) return rep;
  for (const KernelPair& p : pairs) {
    ExplainNode k = kernel_node(p.name, p.a, p.b);
    root.cycles_a += k.cycles_a;
    root.cycles_b += k.cycles_b;
    rep.rates.push_back({p.name, p.a != nullptr ? p.a->gcups : 0.0,
                         p.b != nullptr ? p.b->gcups : 0.0});
    root.children.push_back(std::move(k));
  }
  root.delta = root.cycles_b - root.cycles_a;
  root.residue = root.delta - child_delta_sum(root);  // 0 by construction
  rep.total_delta_cycles = root.delta;

  set_shares(root, root.delta);
  const double denom = root.delta != 0.0 ? std::fabs(root.delta) : 1.0;
  double residue_sum = 0.0;
  residue_stats(root, denom, residue_sum, rep.max_residue_share);
  rep.attributed_share = std::max(0.0, 1.0 - residue_sum / denom);
  rep.within_residue_bound = rep.max_residue_share <= options.max_residue;
  fold_children(root, options.threshold * std::fabs(root.delta), root.delta);

  rep.root = std::move(root);
  rep.ok = true;
  return rep;
}

std::string ExplainReport::to_ascii() const {
  std::ostringstream os;
  if (!ok) {
    os << "perf_explain: " << error << "\n";
    return os.str();
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "perf_explain: total simulated cycles %.1f -> %.1f "
                "(delta %+.1f)\n",
                root.cycles_a, root.cycles_b, total_delta_cycles);
  os << buf;
  for (const std::string& w : warnings) {
    os << "warning: " << w << "\n";
  }
  if (!rates.empty()) {
    os << "\nkernel GCUPS:\n";
    for (const KernelRate& r : rates) {
      std::snprintf(buf, sizeof(buf), "  %-46s %10.3f -> %10.3f (%+.1f%%)\n",
                    r.name.c_str(), r.gcups_a, r.gcups_b,
                    r.gcups_a > 0.0 ? 100.0 * (r.gcups_b - r.gcups_a) / r.gcups_a
                                    : 0.0);
      os << buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "\n%-48s %16s %16s %14s %9s\n", "node",
                "cycles A", "cycles B", "delta", "share");
  os << buf;
  std::string tree;
  render_node(root, 0, tree);
  os << tree;
  std::snprintf(buf, sizeof(buf),
                "\nattributed %.2f%% of |total delta|; max residue %.3f%% "
                "(bound %.2f%%) -> %s\n",
                100.0 * attributed_share, 100.0 * max_residue_share,
                100.0 * options.max_residue,
                within_residue_bound ? "OK" : "FAIL");
  os << buf;
  return os.str();
}

std::string ExplainReport::to_json() const {
  util::JsonFields f;
  f.field("tool", std::string_view("perf_explain")).field("ok", ok);
  if (!ok) {
    f.field("error", std::string_view(error));
    return f.object();
  }
  f.field("total_delta_cycles", total_delta_cycles)
      .field("attributed_share", attributed_share)
      .field("max_residue_share", max_residue_share)
      .field("within_residue_bound", within_residue_bound)
      .field("threshold", options.threshold)
      .field("max_residue", options.max_residue);
  if (!warnings.empty()) {
    std::string warr = "[";
    for (std::size_t i = 0; i < warnings.size(); ++i) {
      warr += (i != 0 ? ", \"" : "\"") + util::json_escape(warnings[i]) + "\"";
    }
    warr += "]";
    f.raw("warnings", warr);
  }
  std::string arr = "[";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    util::JsonFields r;
    r.field("name", std::string_view(rates[i].name))
        .field("gcups_a", rates[i].gcups_a)
        .field("gcups_b", rates[i].gcups_b);
    arr += (i != 0 ? ", " : "") + r.object();
  }
  arr += "]";
  f.raw("rates", arr);
  f.raw("tree", node_to_json(root));
  return f.object();
}

namespace {

/// Simulated sampling interval of the canonical capsules: fine enough for
/// a multi-point series on the one-SM Table I slice, coarse enough to stay
/// far from the ring bound.
constexpr double kCanonicalSampleEveryMs = 1.0;

std::string canonical_capsule(bool improved, std::size_t db_sequences) {
  const CanonicalWorkload w = canonical_workload(db_sequences);

  obs::Sampler& sampler = obs::Sampler::global();
  const double prev_every = sampler.every_ms();
  const std::size_t prev_capacity = sampler.capacity();
  sampler.configure(kCanonicalSampleEveryMs);
  sampler.clear();
  obs::capsule_clear_sections();

  const obs::Snapshot before = obs::Registry::global().snapshot();
  gpusim::Device dev(w.spec);
  if (improved) {
    cudasw::run_intra_task_improved(dev, w.query, w.longs, *w.matrix, w.gap,
                                    {});
  } else {
    cudasw::run_intra_task_original(dev, w.query, w.longs, *w.matrix, w.gap,
                                    {});
  }
  const std::string capsule = obs::capsule_to_json(
      obs::Registry::global().snapshot().diff(before),
      improved ? "table1.intra_task_improved" : "table1.intra_task_original");

  if (prev_every > 0.0) {
    sampler.configure(prev_every, prev_capacity);
    sampler.clear();
  } else {
    sampler.disable();
  }
  return capsule;
}

}  // namespace

CanonicalWorkload canonical_workload(std::size_t db_sequences) {
  CanonicalWorkload w;
  // One-SM slice of the C1060 on the Table I over-threshold subset — the
  // same canonical workload tools/perf_diff_lib.cpp replays.
  w.spec = gpusim::DeviceSpec::tesla_c1060();
  w.spec = w.spec.scaled(1.0 / w.spec.sm_count);
  Rng rng(567);
  w.query = seq::random_protein(567, rng).residues;
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(db_sequences, 0xAB1E);
  w.longs = db.split_by_threshold(3072).second;
  w.matrix = &sw::ScoringMatrix::blosum62();
  return w;
}

std::string canonical_capsule_original() {
  return canonical_capsule(false, 2400);
}
std::string canonical_capsule_improved() {
  return canonical_capsule(true, 2400);
}
std::string canonical_capsule_original(std::size_t db_sequences) {
  return canonical_capsule(false, db_sequences);
}
std::string canonical_capsule_improved(std::size_t db_sequences) {
  return canonical_capsule(true, db_sequences);
}

}  // namespace cusw::tools
