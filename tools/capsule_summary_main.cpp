// capsule_summary CLI: one-screen digest of a run capsule
// (see tools/capsule_summary_lib.h).
//
//   capsule_summary CAPSULE.json [--top=N]
//
// Exit status 0 when the capsule validates (warnings included), 1 on an
// invalid or unreadable capsule.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tools/capsule_summary_lib.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

int usage() {
  std::fprintf(stderr, "usage: capsule_summary CAPSULE.json [--top=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cusw::tools::SummaryOptions opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--top=";
    if (arg.rfind(prefix, 0) == 0) {
      opts.top_n =
          static_cast<std::size_t>(std::atoi(arg.substr(prefix.size()).c_str()));
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 1) return usage();

  std::string capsule;
  if (!read_file(paths[0], capsule)) {
    std::fprintf(stderr, "capsule_summary: cannot read %s\n",
                 paths[0].c_str());
    return 1;
  }
  bool ok = false;
  const std::string digest =
      cusw::tools::summarize_capsule(capsule, opts, &ok);
  std::printf("%s", digest.c_str());
  return ok ? 0 : 1;
}
