// perf_diff: compare the canonical workloads' simulated-performance
// profile — charged cycles, per-reason stall attribution, makespan and
// derived rates — against checked-in golden baselines
// (baselines/perf_baseline.json). The memory-counter twin of
// counter_diff_lib.h; the generic machinery (tolerance matching, diffing,
// baseline (de)serialisation) is shared from there.
//
// The workload replays one-SM slices of the paper's two headline
// experiments:
//   - Table I: both intra-task kernels, query 567, against the
//     synthesized Swiss-Prot over-threshold subset (C1060 slice);
//   - Fig. 2: both inter-task kernels (SIMT and virtualised SIMD),
//     query 567, against a high-variance log-normal database.
// All cycle quantities are fixed-point deterministic for any CUSW_THREADS
// (gpusim/stall.h), so raw keys compare exactly; derived rates (GCUPS,
// stall shares) get a drift tolerance.
//
// Keys are flat dotted paths:
//   raw.table1.intra_task_improved.stall_cycles.txn_issue
//   raw.fig2.inter_task.makespan_cycles
//   rate.table1.intra_task_original.gcups
//   rate.fig2.inter_task_simd.stall_share.exposed_latency
// Raw values are integers (rounded cycles), so they survive the %.12g
// baseline serialisation bit for bit at tolerance 0.
#pragma once

#include <map>
#include <string>

#include "gpusim/cost_model.h"

namespace cusw::tools {

/// Run the canonical perf workloads and return the flat perf-counter map.
/// Deterministic for any CUSW_THREADS.
std::map<std::string, double> run_perf_workload();

/// Same workloads under an explicit cost model — the regression test uses
/// this to prove that perturbing one CostModel constant trips the gate.
std::map<std::string, double> run_perf_workload(
    const gpusim::CostModel& cost);

/// Tolerances for a fresh perf baseline: exact raw cycles, 2% on rates,
/// 25% on host wall-clock figures folded in via --bench.
std::map<std::string, double> default_perf_tolerances();

/// Flatten a bench JSON document (a BENCH_*.json payload) into `out`:
/// every top-level numeric scalar becomes `bench.<name>.<field>`, where
/// <name> is the document's "bench" field. Wall-clock keys (any field
/// ending in "wall_seconds", plus "speedup") are dropped when the document
/// stamps `"hardware_limited": true` — a host without enough hardware
/// threads produces no wall-clock signal worth gating on (see
/// bench/host_parallel_speedup.cpp). Returns false on parse failure.
bool load_bench_document(const std::string& text,
                         std::map<std::string, double>& out,
                         std::string* error);

}  // namespace cusw::tools
