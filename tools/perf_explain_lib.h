// perf_explain: differential attribution over run capsules (obs/capsule.h).
//
// Loads two capsules — typically "before" and "after" some change — aligns
// their per-kernel counter trees, and attributes the total charged-cycle
// delta hierarchically:
//
//   total
//     └─ kernel (matched by label; a lone unmatched kernel on each side is
//        paired as "labelA -> labelB", the orig-vs-improved case)
//          ├─ compute / sync / bank_conflict / occupancy_idle leaves
//          └─ memory (mem_issue + txn_issue + exposed_latency)
//               └─ per-(site, space) rows from the kernels' site
//                  attribution, annotated with transaction / DRAM-byte
//                  deltas
//
// The simulator's fixed-point invariants (reasons sum to charged exactly;
// site stall ticks sum to the memory reasons exactly — gpusim/stall.h,
// DESIGN.md §9) mean every internal node's delta equals the sum of its
// children's; any difference is reported as that node's "unattributed
// residue" and gated against ExplainOptions::max_residue. Children too
// small to matter (|delta| below `threshold` of the |total delta|) fold
// into one aggregate row per parent.
//
// The canonical_capsule_*() pair reruns the paper's Table I slice (the
// same workload as tools/perf_diff_lib.h) into isolated capsules; CI runs
// them through explain_capsules() and archives both artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/device_spec.h"
#include "seq/database.h"
#include "sw/scoring.h"

namespace cusw::tools {

struct ExplainOptions {
  /// Children whose |delta| is below this share of the |total delta| are
  /// folded into one "(below threshold: N rows)" aggregate per parent.
  double threshold = 0.005;
  /// The report fails (within_residue_bound == false) when any internal
  /// node's |unattributed residue| exceeds this share of the |total delta|.
  double max_residue = 0.01;
  /// Explicit cross-capsule kernel pairings (labelA -> labelB), applied
  /// before label matching — the `--map=labelA=labelB` flag. Required
  /// when renaming leaves more than one unmatched kernel on each side:
  /// guessing the pairing would silently attribute one kernel's delta to
  /// another, so that case is an error instead.
  std::vector<std::pair<std::string, std::string>> label_map;
};

/// One node of the attribution tree. Cycle values are exact: stall ticks
/// are parsed as integers and divided by the fixed-point scale once.
struct ExplainNode {
  std::string name;
  double cycles_a = 0.0;
  double cycles_b = 0.0;
  double delta = 0.0;      // cycles_b - cycles_a
  double share = 0.0;      // delta / total delta (signed); 0 when total == 0
  std::size_t folded = 0;  // >0: aggregate of that many below-threshold rows
  /// Internal nodes: delta - sum(children deltas). Exactly 0 when the
  /// capsule honours the simulator's partition invariants.
  double residue = 0.0;
  /// Site rows: supporting space-counter deltas (transactions, dram_bytes).
  std::vector<std::pair<std::string, double>> notes;
  std::vector<ExplainNode> children;
};

/// Per-kernel throughput framing of the same delta.
struct KernelRate {
  std::string name;
  double gcups_a = 0.0;
  double gcups_b = 0.0;
};

struct ExplainReport {
  bool ok = false;
  std::string error;  // parse/validation failure, empty when ok
  /// Non-fatal capsule observations (obs::CapsuleCheck::warnings, e.g.
  /// sampler ring overflow), prefixed with the capsule they came from.
  std::vector<std::string> warnings;
  ExplainNode root;   // name "total"; children are kernel nodes
  std::vector<KernelRate> rates;
  double total_delta_cycles = 0.0;
  /// 1 - (sum of internal |residue|) / |total delta|; 1 when everything
  /// attributed. The acceptance bar is >= 0.99.
  double attributed_share = 1.0;
  /// max over internal nodes of |residue| / |total delta|.
  double max_residue_share = 0.0;
  bool within_residue_bound = false;
  ExplainOptions options;

  std::string to_ascii() const;
  std::string to_json() const;
};

/// Attribute capsule B's simulated-cycle delta against capsule A down the
/// kernel -> stall-reason -> (site, space) tree.
ExplainReport explain_capsules(std::string_view capsule_a,
                               std::string_view capsule_b,
                               const ExplainOptions& options = {});

/// The canonical Table I workload every canonical artifact replays: the
/// 567-residue query against the over-threshold Swiss-Prot subset on a
/// one-SM C1060 slice (the tools/perf_diff_lib.h slice). Shared by the
/// capsule builders below and by tools/causal_profile_lib.h, so the
/// capsules being explained and the sweeps being run can never drift
/// apart.
struct CanonicalWorkload {
  gpusim::DeviceSpec spec;           // one-SM C1060 slice
  std::vector<seq::Code> query;      // the 567-residue Table I query
  seq::SequenceDB longs;             // sequences above the threshold
  const sw::ScoringMatrix* matrix = nullptr;
  sw::GapPenalty gap{10, 2};
};

/// Build the workload. `db_sequences` scales the synthesized database
/// before the threshold split (2400 is the canonical Table I size; tests
/// shrink it for speed).
CanonicalWorkload canonical_workload(std::size_t db_sequences = 2400);

/// Canonical Table I capsules: the paper's intra-task kernel pair on the
/// canonical_workload() slice, each run on a fresh device into an
/// isolated registry-diff capsule with the sampler armed. Byte-identical
/// for any CUSW_THREADS and for memo on/off.
std::string canonical_capsule_original();
std::string canonical_capsule_improved();
/// Same capsules on a shrunken database (tests/tools).
std::string canonical_capsule_original(std::size_t db_sequences);
std::string canonical_capsule_improved(std::size_t db_sequences);

}  // namespace cusw::tools
