// counter_diff CLI — the CI gate behind `ctest -R counter_baseline`.
//
//   counter_diff [--baselines <dir>] [--update]
//
// Without --update: run the canonical workload, compare its counters
// against <dir>/counter_baseline.json, print any violations and exit
// non-zero. With --update: regenerate the baseline file in place,
// preserving its tolerances (run this after an intentional counter
// change and commit the result).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/counter_diff_lib.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "baselines";
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--baselines") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: counter_diff [--baselines <dir>] [--update]\n");
      return 2;
    }
  }
  const std::string path = dir + "/counter_baseline.json";

  std::printf("counter_diff: running canonical workload...\n");
  const auto current = cusw::tools::run_canonical_workload();

  std::map<std::string, double> base, tol;
  std::string text, error;
  const bool have_file = read_file(path, text);
  if (have_file && !cusw::tools::load_baseline(text, base, tol, &error)) {
    std::fprintf(stderr, "counter_diff: cannot parse %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }

  if (update) {
    if (!have_file || tol.empty()) tol = cusw::tools::default_tolerances();
    const std::string json = cusw::tools::baseline_to_json(current, tol);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "counter_diff: cannot write %s\n", path.c_str());
      return 2;
    }
    out << json;
    std::printf("counter_diff: wrote %zu counters to %s\n", current.size(),
                path.c_str());
    return 0;
  }

  if (!have_file) {
    std::fprintf(stderr,
                 "counter_diff: missing %s (generate it with --update)\n",
                 path.c_str());
    return 2;
  }
  const auto r = cusw::tools::diff_counters(current, base, tol);
  for (const std::string& f : r.failures)
    std::fprintf(stderr, "counter_diff: FAIL %s\n", f.c_str());
  if (!r.ok) {
    std::fprintf(stderr,
                 "counter_diff: %zu of %zu counters outside tolerance "
                 "(intentional? rerun with --update and commit)\n",
                 r.failures.size(), r.compared);
    return 1;
  }
  std::printf("counter_diff: %zu counters within tolerance of %s\n",
              r.compared, path.c_str());
  return 0;
}
