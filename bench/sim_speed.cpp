// Simulator fast-path harness: wall-clock of the four-kernel Fig. 2
// workload with block memoization (CUSW_SIM_MEMO, DESIGN.md §12) off vs
// on, over a batch of same-length queries — the database-serving scenario
// the memo exists for. Every simulated figure must be bit-identical
// between the modes (that identity is asserted, not just reported); the
// only thing allowed to change is how long the host takes to produce it.
//
// Flags: --queries=N batch size (default 16); --repeat=N best-of-N timed
// passes per mode. Writes BENCH_sim_speed.json.
#include "bench_common.h"

#include "cudasw/inter_task.h"
#include "cudasw/inter_task_simd.h"
#include "cudasw/intra_task_improved.h"
#include "cudasw/intra_task_original.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace cusw {
namespace {

struct Simulated {
  double wall_seconds = 0.0;
  // Exact accumulators over every kernel run: any divergence between the
  // memo-on and memo-off runs shows up here bit for bit.
  double makespan_cycles = 0.0;
  std::uint64_t charged_ticks = 0;
  std::uint64_t transactions = 0;
  std::uint64_t site_stall_ticks = 0;
  long long score_sum = 0;

  void fold(const cudasw::KernelRun& run) {
    makespan_cycles += run.stats.makespan_cycles;
    charged_ticks += run.stats.stall.charged;
    transactions += run.stats.global.transactions +
                    run.stats.local.transactions +
                    run.stats.texture.transactions;
    for (const auto& site : run.stats.sites)
      site_stall_ticks += site.counters.stall_ticks;
    for (const int s : run.scores) score_sum += s;
  }

  bool identical_to(const Simulated& o) const {
    return makespan_cycles == o.makespan_cycles &&
           charged_ticks == o.charged_ticks &&
           transactions == o.transactions &&
           site_stall_ticks == o.site_stall_ticks &&
           score_sum == o.score_sum;
  }
};

void run(std::size_t batch, int repeat) {
  bench::print_header(
      "Simulator speed — block memoization off vs on, Fig. 2 workload",
      "this repo's simulator fast path (DESIGN.md §12); workload from "
      "Hains et al., IPDPS'11, Fig. 2");

  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};

  // A batch of same-length queries, as a scan service sees: block shapes
  // repeat across launches, residues do not.
  std::vector<std::vector<seq::Code>> queries;
  for (std::size_t q = 0; q < batch; ++q) {
    Rng rng(0x51D0 + q);
    queries.push_back(seq::random_protein(567, rng).residues);
  }

  const bench::Gpu gpu = bench::c1060();
  const std::size_t s = bench::scaled(std::max<std::size_t>(
      96, cudasw::inter_task_group_size(gpu.spec, cudasw::InterTaskParams{}) /
              8));
  auto db = seq::lognormal_db(s, 2000.0, 500.0, 0xF162, 32, 20000);
  db.sort_by_length();
  const seq::SequenceDB intra_db =
      db.sample_stride(std::max<std::size_t>(1, db.size() / 24));

  const auto measure = [&](const char* memo) {
    setenv("CUSW_SIM_MEMO", memo, 1);
    Simulated best;
    for (int r = 0; r < repeat; ++r) {
      Simulated pass;
      gpusim::Device dev(gpu.spec);  // fresh device: cold memo store
      WallTimer timer;
      for (const auto& query : queries) {
        pass.fold(cudasw::run_inter_task(dev, query, db, matrix, gap, {}));
        pass.fold(
            cudasw::run_inter_task_simd(dev, query, db, matrix, gap, {}));
        pass.fold(cudasw::run_intra_task_original(dev, query, intra_db,
                                                  matrix, gap, {}));
        pass.fold(cudasw::run_intra_task_improved(dev, query, intra_db,
                                                  matrix, gap, {}));
      }
      pass.wall_seconds = timer.seconds();
      if (r == 0 || pass.wall_seconds < best.wall_seconds) best = pass;
    }
    unsetenv("CUSW_SIM_MEMO");
    return best;
  };

  const Simulated off = measure("off");
  const obs::Snapshot before = obs::Registry::global().snapshot();
  const Simulated on = measure("on");
  const obs::Snapshot delta = obs::Registry::global().snapshot().diff(before);
  const std::uint64_t hits = delta.counter("gpusim.memo.hits");
  const std::uint64_t misses = delta.counter("gpusim.memo.misses");

  const bool identical = on.identical_to(off);
  const double speedup =
      on.wall_seconds > 0.0 ? off.wall_seconds / on.wall_seconds : 0.0;

  Table t({"memo", "wall s", "charged ticks", "makespan cycles", "speedup"});
  t.add_row({std::string("off"), off.wall_seconds,
             static_cast<std::int64_t>(off.charged_ticks),
             off.makespan_cycles, 1.0});
  t.add_row({std::string("on"), on.wall_seconds,
             static_cast<std::int64_t>(on.charged_ticks), on.makespan_cycles,
             speedup});
  bench::emit(t);
  std::printf(
      "queries: %zu (length 567); db: %zu sequences; memo hits/misses "
      "(last on-pass set): %llu/%llu\n"
      "expected shape: every simulated column identical between the modes\n"
      "(asserted below); wall-clock drops by the fraction of blocks whose\n"
      "shape repeats across the batch — typically >= 5x at batch %zu.\n\n",
      queries.size(), db.size(), static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), queries.size());

  // Keys and filename are the cross-PR perf-trajectory contract; keep
  // them stable.
  char payload[512];
  std::snprintf(payload, sizeof(payload),
                "{\n"
                "  \"bench\": \"sim_speed\",\n"
                "  \"workload\": \"fig2-lognormal, %zu sequences, "
                "%zu queries\",\n"
                "  \"memo_off_wall_seconds\": %.6f,\n"
                "  \"memo_on_wall_seconds\": %.6f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"identical_cycles\": %s,\n"
                "  \"memo_hits\": %llu,\n"
                "  \"memo_misses\": %llu\n"
                "}\n",
                db.size(), queries.size(), off.wall_seconds, on.wall_seconds,
                speedup, identical ? "true" : "false",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
  bench::emit_json("sim_speed", payload);

  // The memo's whole contract: not one simulated number may move.
  CUSW_CHECK(identical,
             "memoized run diverged from the reference simulation");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::note_seed(0xF162);  // primary workload seed, stamped into the JSON
  cusw::Cli cli(argc, argv);
  const auto batch = cli.get_int("queries", 16);
  const auto repeat = static_cast<int>(cli.get_int("repeat", 1));
  cusw::run(static_cast<std::size_t>(batch < 1 ? 1 : batch),
            std::max(1, repeat));
  return 0;
}
