// Fig. 7 — whole-application GCUPs as a function of query length on the
// (scaled) Swiss-Prot database: improved/original CUDASW++ on C1060 and
// C2050, plus the SWPS3 CPU baseline.
//
// "CUDASW++ outperforms SWPS3 at all points tested [...] the performance
// [of the improved version] is consistent for query lengths above 1000. In
// general, our improved CUDASW++ implementation is less sensitive to
// varying query lengths and outperforms both the original CUDASW++
// implementation and SWPS3."
//
// Note: SWPS3 here is the from-scratch striped (lazy-F) kernel measured in
// real wall-clock on this host's cores, so its absolute GCUPs depend on the
// machine; its *shape* (lowest curve, query-length sensitivity) is the
// reproduced result. The lazy-F iteration count per column is also
// reported, since the paper attributes the sensitivity to that loop.
#include "bench_common.h"
#include "swps3/search.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("Fig. 7 — GCUPs vs query length (+ SWPS3 baseline)",
                      "Hains et al., IPDPS'11, Figure 7");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(2400), 0xF167);

  ThreadPool pool(4);  // the paper runs SWPS3 on four Xeon cores
  Table t({"query_len", "Imp (C2050)", "Orig (C2050)", "Imp (C1060)",
           "Orig (C1060)", "SWPS3 (real)", "lazyF/col"},
          2);
  for (std::size_t qlen : bench::paper_query_lengths()) {
    Rng rng(1000 + qlen);
    const auto query = seq::random_protein(qlen, rng).residues;

    auto gcups_for = [&](const bench::Gpu& gpu, cudasw::IntraKernel k) {
      gpusim::Device dev(gpu.spec);
      cudasw::SearchConfig cfg;
      cfg.intra_kernel = k;
      return gpu.eq(cudasw::search(dev, query, db, matrix, cfg).gcups());
    };
    const auto sw3 = swps3::search(query, db, matrix, gap, pool);
    t.add_row({static_cast<std::int64_t>(qlen),
               gcups_for(bench::c2050(), cudasw::IntraKernel::kImproved),
               gcups_for(bench::c2050(), cudasw::IntraKernel::kOriginal),
               gcups_for(bench::c1060(), cudasw::IntraKernel::kImproved),
               gcups_for(bench::c1060(), cudasw::IntraKernel::kOriginal),
               sw3.gcups(),
               static_cast<double>(sw3.lazy_f_iterations) /
                   static_cast<double>(db.total_residues())});
  }
  bench::emit(t);
  std::printf(
      "expected shape: improved >= original on both GPUs at every query\n"
      "length, by ~25%% on average on (scaled) Swiss-Prot; both GPU curves\n"
      "flatten for long queries while SWPS3 stays lowest and varies with\n"
      "the query (lazy-F correction work).\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "fig7_query_sweep");
  cusw::bench::note_seed(0xF167);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
