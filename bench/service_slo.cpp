// Search-as-a-service under load: arrival rate x batching policy x fleet
// health, with SLO standing (DESIGN.md §11, EXPERIMENTS.md).
//
// Each cell runs the event-driven scheduler over the same pooled query
// set against the same database, so the only things that change across
// the sweep are the offered load, the batch ordering policy and whether
// the fleet lost a device at t=0 (the PR 3 fault ladder redistributes its
// shard). Everything is simulated time: the reported latencies, goodput
// and burn rates are bit-identical for any CUSW_THREADS.
#include "bench_common.h"

#include "cudasw/multi_gpu.h"
#include "serve/service.h"

namespace cusw {
namespace {

constexpr std::uint64_t kSeed = 0x510A;
const char* const kSloSpec = "p99<250ms,goodput>0.9";

serve::ServiceConfig base_config(double rate_rps, serve::BatchPolicy policy) {
  serve::ServiceConfig cfg;
  cfg.arrival.kind = serve::ArrivalConfig::Kind::kPoisson;
  cfg.arrival.rate_rps = rate_rps;
  cfg.admission.max_queue = 32;
  cfg.admission.max_inflight = 64;
  cfg.admission.cells_per_second = 2.5e9;
  cfg.policy = policy;
  cfg.max_batch = 8;
  cfg.deadline_ms = 250.0;
  cfg.num_requests = bench::scaled(400);
  cfg.seed = kSeed;
  cfg.window_ms = 250.0;
  cfg.slo = serve::SloSpec::parse(kSloSpec);
  cfg.apply_env();  // CUSW_SERVE / CUSW_SLO override the sweep defaults
  cfg.arrival.rate_rps = rate_rps;  // the sweep owns the rate and policy
  cfg.policy = policy;
  return cfg;
}

void run_sweep() {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(250), kSeed);
  const bench::Gpu slice = bench::c1060();
  const int gpus = 4;

  // Pooled queries the request stream draws from (short, interactive-end
  // lengths; the sweep is about scheduling, not about Fig. 7's curve).
  Rng qrng(kSeed);
  std::vector<std::vector<seq::Code>> pool;
  for (const std::size_t len : {64, 144, 256, 367})
    pool.push_back(seq::random_protein(len, qrng).residues);

  struct Fleet {
    const char* name;
    cudasw::MultiGpuConfig cfg;
  };
  Fleet fleets[2];
  fleets[0].name = "clean";
  fleets[1].name = "degraded";
  fleets[1].cfg.faults.lose_device = 0;  // loses one shard-holding device
  fleets[1].cfg.faults.lose_at = 0;      // on its first launch

  const double rates[] = {8.0, 20.0, 60.0};
  const serve::BatchPolicy policies[] = {serve::BatchPolicy::kFifo,
                                         serve::BatchPolicy::kShortestFirst,
                                         serve::BatchPolicy::kDeadline};

  std::string runs_json;
  std::string sample_dashboard;
  for (const Fleet& fleet : fleets) {
    // One executor per fleet state: the memo is shared across every
    // (rate, policy) cell, so each distinct query simulates one scan.
    serve::Executor exec(slice.spec, gpus, db, matrix, fleet.cfg);
    Table t({"policy", "rate (rps)", "arrivals", "rejected", "completed",
             "goodput", "p50 (ms)", "p99 (ms)", "GCUPS", "SLO"},
            3);
    for (const serve::BatchPolicy policy : policies) {
      for (const double rate : rates) {
        serve::ServiceConfig cfg = base_config(rate, policy);
        char cat[96];
        std::snprintf(cat, sizeof(cat), "serve.request.%s.%s.r%g", fleet.name,
                      serve::batch_policy_name(policy), rate);
        cfg.trace_cat = cat;
        serve::Service svc(cfg, exec, pool);
        const serve::ServiceReport rep = svc.run();

        std::string slo_ok = "ok";
        for (const serve::SloStatus& s : rep.slo)
          if (!s.ok) slo_ok = "VIOLATED";
        t.add_row({std::string(serve::batch_policy_name(policy)), rate,
                   static_cast<std::int64_t>(rep.arrivals),
                   static_cast<std::int64_t>(rep.rejected()),
                   static_cast<std::int64_t>(rep.completed), rep.goodput(),
                   rep.latency_ms.quantile(0.50), rep.latency_ms.quantile(0.99),
                   slice.eq(rep.gcups()), slo_ok});

        util::JsonFields rf;
        rf.field("fleet", fleet.name)
            .field("policy", serve::batch_policy_name(policy))
            .field("rate_rps", rate)
            .field("slo_spec", kSloSpec);
        rf.raw("report", rep.to_json());
        runs_json += runs_json.empty() ? "\n   " : ",\n   ";
        runs_json += rf.object();

        // One representative dashboard snapshot: the degraded fleet at the
        // top rate under EDF, where the burn-rate story is richest.
        if (std::string(fleet.name) == "degraded" &&
            policy == serve::BatchPolicy::kDeadline && rate == rates[2]) {
          sample_dashboard = rep.dashboard();
        }
      }
    }
    std::printf("--- %s fleet, %d GPUs (C1060 slices) ---\n", fleet.name,
                gpus);
    bench::emit(t, std::string("fleet ") + fleet.name);
  }

  if (!sample_dashboard.empty()) {
    std::printf("--- dashboard: degraded fleet, edf, %.0f rps ---\n%s\n",
                rates[2], sample_dashboard.c_str());
  }

  util::JsonFields doc;
  doc.field("bench", "service_slo").field("slo_spec", kSloSpec);
  doc.raw("runs", "[" + runs_json + "\n  ]");
  bench::emit_json("service_slo", doc.object() + "\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "");
  cusw::bench::note_seed(cusw::kSeed);  // primary workload seed, stamped into the JSON
  cusw::bench::print_header(
      "Service SLOs: arrival rate x batching policy x fleet health",
      "this repo's search-as-a-service layer (DESIGN.md §11) over the "
      "CUDASW++ pipeline of Hains et al., IPDPS'11");
  cusw::run_sweep();
  std::printf(
      "expected shapes: at low rate every policy meets the SLO; near\n"
      "saturation sqf cuts p50 (short queries jump the queue) while edf\n"
      "protects goodput; past saturation admission control rejects the\n"
      "excess and burn rates exceed 1. The degraded fleet saturates at a\n"
      "lower rate - the same sweep shifted left.\n");
  return 0;
}
