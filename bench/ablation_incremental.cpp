// §III-A/B ablation — the incremental improvements that took the new
// intra-task kernel from parity with the original to 11x.
//
//   v0: shallow pointer swap + texture fetch inside a non-unrolled loop
//       (both force nvcc to demote register arrays to local memory) and a
//       per-cell profile fetch.
//   v1: deep swap (H/E tile arrays back in registers).
//   v2: + hand-unrolled profile loop (all tile arrays in registers).
//       "Fixing both these issues yielded about a two-fold performance
//       increase."
//   v3: + packed query profile: one texture fetch per four cells (§III-B).
#include "bench_common.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("§III ablation — incremental intra-task improvements",
                      "Hains et al., IPDPS'11, Sections III-A and III-B");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  Rng rng(31);
  const auto query = seq::random_protein(567, rng).residues;
  const auto db = seq::uniform_db(bench::scaled(24), 3200, 5000, 0xAB7A);

  struct Version {
    const char* name;
    bool deep_swap, unroll, packed;
  };
  const Version versions[] = {
      {"v0: shallow swap, rolled loop, plain profile", false, false, false},
      {"v1: + deep swap", true, false, false},
      {"v2: + hand-unrolled loop", true, true, false},
      {"v3: + packed query profile (final)", true, true, true},
  };

  for (const auto* gpu : {"C1060", "C2050"}) {
    const bench::Gpu slice =
        std::string(gpu) == "C1060" ? bench::c1060() : bench::c2050();
    gpusim::Device dev(slice.spec);
    Table t({"version", "GCUPs", "speedup vs v0", "local-mem txns",
             "texture fetches"},
            2);
    double v0 = 0.0;
    for (const Version& v : versions) {
      cudasw::ImprovedIntraParams p;
      p.deep_swap = v.deep_swap;
      p.unroll_profile_loop = v.unroll;
      p.packed_profile = v.packed;
      const auto r =
          cudasw::run_intra_task_improved(dev, query, db, matrix, gap, p);
      const double g = slice.eq(cudasw::kernel_gcups(r));
      if (v0 == 0.0) v0 = g;
      t.add_row({std::string(v.name), g, g / v0,
                 static_cast<std::int64_t>(r.stats.local.transactions),
                 static_cast<std::int64_t>(r.stats.texture.requests)});
    }
    std::printf("--- %s ---\n", gpu);
    bench::emit(t);
  }
  // §II-A: the query-profile optimisation in the *inter-task* kernel (one
  // packed fetch per tile column instead of one lookup per cell) — the
  // Rognes/Seeberg idea the improved intra-task kernel also adopts.
  {
    const bench::Gpu slice = bench::c1060();
    gpusim::Device dev(slice.spec);
    const auto inter_db = seq::uniform_db(bench::scaled(384), 330, 390, 0x11A);
    Table t({"inter-task variant", "GCUPs", "profile fetches"}, 2);
    for (const bool profile : {false, true}) {
      cudasw::InterTaskParams p;
      p.use_query_profile = profile;
      const auto r = cudasw::run_inter_task(dev, query, inter_db, matrix, gap, p);
      t.add_row({std::string(profile ? "packed query profile (CUDASW++)"
                                     : "per-cell similarity lookups"),
                 slice.eq(cudasw::kernel_gcups(r)),
                 static_cast<std::int64_t>(r.stats.texture.requests)});
    }
    std::printf("--- §II-A inter-task query profile ---\n");
    bench::emit(t);
  }

  std::printf(
      "expected shape: each step helps; v0->v2 (register fixes) is about\n"
      "2x; v3 cuts texture fetches 4x; the inter-task query profile cuts\n"
      "per-cell lookups 4x (the §II-A optimisation the improved intra-task\n"
      "kernel adopts). Local-memory transactions drop to 0 at v2.\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "ablation_incremental");
  cusw::bench::note_seed(0xAB7A);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
