// §IV-A parameter exploration — thread-block size x tile height (their
// product, the strip height, is the parameter that matters) and §III-C tile
// width.
//
// "To determine the optimal values for n_th and t_height, we ran CUDASW++
// with our implementation of the intra-task kernel using 64, 128, 192, 256
// and 320 threads per block and tile height of 4 and 8. We found that a
// strip size of 512 was optimal on the Tesla C1060 and 1024 was optimal on
// the Tesla C2050." And: "a tile width of one is optimal."
#include "bench_common.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("§IV-A ablation — strip height and tile width",
                      "Hains et al., IPDPS'11, Sections III-C and IV-A");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  Rng rng(41);
  // A long query so several strip passes happen at every strip height.
  const auto query = seq::random_protein(2048, rng).residues;
  const auto db = seq::uniform_db(bench::scaled(16), 3200, 5000, 0x57B1);

  for (const auto* gpu : {"C1060", "C2050"}) {
    const bench::Gpu slice =
        std::string(gpu) == "C1060" ? bench::c1060() : bench::c2050();
    gpusim::Device dev(slice.spec);
    Table t({"threads", "tile_h", "strip", "GCUPs", "passes@2048"}, 2);
    for (int threads : {64, 128, 192, 256, 320}) {
      for (int tile_h : {4, 8}) {
        if (threads > dev.spec().max_threads_per_block) continue;
        cudasw::ImprovedIntraParams p;
        p.threads_per_block = threads;
        p.tile_height = tile_h;
        const auto strip = p.strip_height();
        const auto r =
            cudasw::run_intra_task_improved(dev, query, db, matrix, gap, p);
        t.add_row({static_cast<std::int64_t>(threads),
                   static_cast<std::int64_t>(tile_h),
                   static_cast<std::int64_t>(strip),
                   slice.eq(cudasw::kernel_gcups(r)),
                   static_cast<std::int64_t>((2048 + strip - 1) / strip)});
      }
    }
    std::printf("--- %s (strip height sweep) ---\n", gpu);
    bench::emit(t);
  }

  // Tile width: 1 vs 2 vs 4 at the default 256x4 configuration.
  const bench::Gpu slice = bench::c1060();
  gpusim::Device dev(slice.spec);
  Table w({"tile_width", "GCUPs", "syncs", "shared accesses"}, 2);
  for (int tw : {1, 2, 4}) {
    cudasw::ImprovedIntraParams p;
    p.tile_width = tw;
    const auto r =
        cudasw::run_intra_task_improved(dev, query, db, matrix, gap, p);
    w.add_row({static_cast<std::int64_t>(tw),
               slice.eq(cudasw::kernel_gcups(r)),
               static_cast<std::int64_t>(r.stats.syncs),
               static_cast<std::int64_t>(r.stats.shared_accesses)});
  }
  std::printf("--- C1060 (tile width) ---\n");
  bench::emit(w);
  std::printf(
      "expected shape: configurations with the same strip height perform\n"
      "about the same; larger strips reduce strip-boundary global traffic\n"
      "but add pipeline fill/drain latency. Tile width 1 is (marginally)\n"
      "optimal: widening cuts synchronisations but not shared-memory\n"
      "traffic, and the added pipeline latency dominates.\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "ablation_strip");
  cusw::bench::note_seed(0x57B1);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
