// Fault-resilience overhead: how much simulated time the degradation
// ladder (DESIGN.md §8) costs as transient fault rates rise, and what a
// device loss costs at each fleet size. Scores are verified bit-identical
// to the clean run at every point — resilience must never buy speed with
// wrong answers.
#include "bench_common.h"
#include "cudasw/multi_gpu.h"

namespace cusw {
namespace {

void transfer_rate_sweep() {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(71);
  const auto query = seq::random_protein(367, rng).residues;
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(900), 0xFA17);
  const bench::Gpu slice = bench::c1060();
  const int gpus = 4;

  const auto clean = cudasw::multi_gpu_search(slice.spec, gpus, query, db,
                                              matrix, cudasw::SearchConfig{});

  Table t({"transfer fault rate", "retries", "backoff (s)", "seconds (sim)",
           "overhead %", "scores"},
          3);
  for (const double rate : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    cudasw::MultiGpuConfig cfg;
    cfg.faults.seed = 1234;
    cfg.faults.transfer_fail_rate = rate;
    cfg.backoff.max_retries = 16;
    const auto r =
        cudasw::multi_gpu_search(slice.spec, gpus, query, db, matrix, cfg);
    t.add_row({rate, static_cast<std::int64_t>(r.faults.retries),
               r.faults.backoff_seconds, r.seconds,
               100.0 * (r.seconds / clean.seconds - 1.0),
               std::string(r.scores == clean.scores ? "identical" : "WRONG")});
  }
  std::printf("--- transient transfer faults, %d GPUs (C1060) ---\n", gpus);
  bench::emit(t);
}

void device_loss_sweep() {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(72);
  const auto query = seq::random_protein(144, rng).residues;
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(900), 0x10E5);
  const bench::Gpu slice = bench::c1060();

  Table t({"GPUs", "clean (s)", "one lost (s)", "slowdown", "failovers",
           "degraded"},
          3);
  for (const int gpus : {1, 2, 4, 8}) {
    const auto clean = cudasw::multi_gpu_search(slice.spec, gpus, query, db,
                                                matrix, cudasw::SearchConfig{});
    cudasw::MultiGpuConfig cfg;
    cfg.faults.lose_device = 0;  // always a device that holds a shard
    cfg.faults.lose_at = 0;      // dies on its first launch
    const auto r =
        cudasw::multi_gpu_search(slice.spec, gpus, query, db, matrix, cfg);
    if (r.scores != clean.scores) {
      std::printf("FATAL: faulted scores differ at %d GPUs\n", gpus);
      std::exit(1);
    }
    t.add_row({static_cast<std::int64_t>(gpus), clean.seconds, r.seconds,
               r.seconds / clean.seconds,
               static_cast<std::int64_t>(r.faults.failovers),
               std::string(r.faults.degraded_to_cpu ? "cpu" : "no")});
  }
  std::printf("--- losing one device after its first launch ---\n");
  bench::emit(t);
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "fault_resilience");
  cusw::bench::note_seed(0xFA17);  // primary workload seed, stamped into the JSON
  cusw::bench::print_header(
      "Fault-injection resilience: overhead of retries, failover and "
      "degradation",
      "this repo's fault model (DESIGN.md §8); workloads from Hains et al., "
      "IPDPS'11");
  cusw::transfer_rate_sweep();
  cusw::device_loss_sweep();
  std::printf(
      "expected shapes: overhead grows smoothly with the fault rate (each\n"
      "retry re-pays its copy plus backoff); losing 1 of N devices costs\n"
      "about N/(N-1) minus load-balance slack; 1 GPU lost means a CPU-\n"
      "degraded scan; scores are identical everywhere.\n");
  return 0;
}
