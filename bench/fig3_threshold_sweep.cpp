// Fig. 3 — GCUPs of the original CUDASW++ on (scaled) Swiss-Prot as a
// function of the fraction of sequences compared by the intra-task kernel.
//
// "We measured the GCUPs of the overall algorithm while comparing a query
// sequence of length 572 to the entire Swissprot database while decreasing
// the threshold [...] even small variations in the threshold result in
// large performance impacts. Therefore, the intra-task kernel is indeed a
// bottleneck."
#include "bench_common.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("Fig. 3 — original CUDASW++ GCUPs vs threshold",
                      "Hains et al., IPDPS'11, Figure 3");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(572);
  const auto query = seq::random_protein(572, rng).residues;
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(2400), 0xF163);

  // Thresholds chosen on length quantiles so the x-axis (fraction of
  // sequences dispatched to intra-task) is spread usefully.
  auto st = db.length_stats();
  std::sort(st.lengths.begin(), st.lengths.end());
  std::vector<std::size_t> thresholds = {3072};
  for (double pct : {0.2, 0.5, 1.0, 2.0, 3.5, 5.0, 8.0, 12.0}) {
    const auto idx = static_cast<std::size_t>(
        static_cast<double>(st.lengths.size()) * (1.0 - pct / 100.0));
    thresholds.push_back(st.lengths[std::min(idx, st.lengths.size() - 1)]);
  }

  const bench::Gpu gpu = bench::c1060();
  gpusim::Device dev(gpu.spec);
  Table t({"threshold", "% seqs intra", "GCUPs", "% time in intra"}, 2);
  for (std::size_t thr : thresholds) {
    cudasw::SearchConfig cfg;
    cfg.threshold = thr;
    cfg.intra_kernel = cudasw::IntraKernel::kOriginal;
    const auto r = cudasw::search(dev, query, db, matrix, cfg);
    t.add_row({static_cast<std::int64_t>(thr),
               100.0 * static_cast<double>(r.intra_sequences) /
                   static_cast<double>(db.size()),
               gpu.eq(r.gcups()), 100.0 * r.intra_time_fraction()});
  }
  bench::emit(t);
  std::printf(
      "expected shape: GCUPs fall sharply as even a small extra fraction of\n"
      "sequences moves to the (original, slow) intra-task kernel — the\n"
      "paper's evidence that the intra-task kernel is the bottleneck.\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "fig3_threshold_sweep");
  cusw::bench::note_seed(0xF163);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
