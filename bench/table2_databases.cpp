// Table II — whole-application GCUPs for both CUDASW++ versions on six
// protein databases (scaled synthetic stand-ins fitted to each database's
// published mean length and % of sequences over 3072), on both GPUs, for a
// range of query lengths.
//
// "The improved intra-task kernel increases the performance of CUDASW++ on
// all databases tested. The performance gain is typically more pronounced
// when there are more sequences over the threshold, with the lowest
// performance gain occurring on the TAIR database with only 0.06% of the
// sequences over the threshold."
#include "bench_common.h"

namespace cusw {
namespace {

void run() {
  bench::print_header("Table II — GCUPs on six databases, both GPUs",
                      "Hains et al., IPDPS'11, Table II");
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const std::vector<std::size_t> qlens = {144, 567, 1500};

  std::vector<std::string> headers = {"database", "% over", "GPU", "kernel"};
  for (auto q : qlens) headers.push_back("q=" + std::to_string(q));
  headers.push_back("mean gain %");
  Table t(std::move(headers), 2);

  for (const auto& prof : seq::DatabaseProfile::all_paper_databases()) {
    const auto db = prof.synthesize(bench::scaled(1000), 0x7AB2E);
    for (const auto* gpu : {"C1060", "C2050"}) {
      const auto slice =
          std::string(gpu) == "C1060" ? bench::c1060() : bench::c2050();
      double orig_gcups[8] = {}, imp_gcups[8] = {};
      for (std::size_t qi = 0; qi < qlens.size(); ++qi) {
        Rng rng(qlens[qi] + 7);
        const auto query = seq::random_protein(qlens[qi], rng).residues;
        for (const bool improved : {false, true}) {
          gpusim::Device dev(slice.spec);
          cudasw::SearchConfig cfg;
          cfg.intra_kernel = improved ? cudasw::IntraKernel::kImproved
                                      : cudasw::IntraKernel::kOriginal;
          const double g =
              slice.eq(cudasw::search(dev, query, db, matrix, cfg).gcups());
          (improved ? imp_gcups : orig_gcups)[qi] = g;
        }
      }
      for (const bool improved : {false, true}) {
        std::vector<Table::Cell> row = {prof.name, prof.pct_over_3072,
                                        std::string(gpu),
                                        std::string(improved ? "Improved"
                                                             : "Original")};
        double gain = 0.0;
        for (std::size_t qi = 0; qi < qlens.size(); ++qi) {
          row.push_back((improved ? imp_gcups : orig_gcups)[qi]);
          gain += imp_gcups[qi] / orig_gcups[qi] - 1.0;
        }
        row.push_back(improved ? 100.0 * gain / static_cast<double>(qlens.size())
                               : 0.0);
        t.add_row(std::move(row));
      }
    }
  }
  bench::emit(t);
  std::printf(
      "expected shape: Improved >= Original on every database and GPU; the\n"
      "gain grows with the %% of sequences over the threshold (largest for\n"
      "RefSeq Human/Mouse and Ensembl Dog, smallest for TAIR at 0.06%%);\n"
      "gains are larger on the C1060 than on the C2050.\n");
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "table2_databases");
  cusw::bench::note_seed(0x7AB2E);  // primary workload seed, stamped into the JSON
  cusw::run();
  return 0;
}
