// §VI future work — all five proposed improvements, implemented and
// measured: coalesced strip I/O, shared-memory-only mode, persistent
// pipeline, automatic threshold detection (the TAIR 3072 -> 1500 example),
// multi-GPU scaling, and streamed host-to-device transfer.
#include "bench_common.h"
#include "cudasw/autotune.h"
#include "cudasw/multi_gpu.h"

namespace cusw {
namespace {

void kernel_extensions() {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  const sw::GapPenalty gap{10, 2};
  Rng rng(61);
  const auto query = seq::random_protein(2048, rng).residues;
  const auto db = seq::uniform_db(bench::scaled(16), 3200, 5000, 0xF0BB);

  Table t({"variant", "GPU", "GCUPs", "global txns", "syncs"}, 2);
  struct V {
    const char* name;
    bool coalesced, shared_only, persistent;
    bool fermi_only;
  };
  const V variants[] = {
      {"baseline (paper's final kernel)", false, false, false, false},
      {"+ coalesced strip I/O", true, false, false, false},
      {"+ persistent pipeline", false, false, true, false},
      {"+ shared-only rows (Fermi, len<10k)", false, true, false, true},
      {"all three", true, true, true, true},
  };
  for (const V& v : variants) {
    for (const auto* gpu : {"C1060", "C2050"}) {
      if (v.fermi_only && std::string(gpu) == "C1060") continue;
      const bench::Gpu slice =
          std::string(gpu) == "C1060" ? bench::c1060() : bench::c2050();
      gpusim::Device dev(slice.spec);
      cudasw::ImprovedIntraParams p;
      p.coalesced_strip_io = v.coalesced;
      p.shared_only = v.shared_only;
      p.persistent_pipeline = v.persistent;
      const auto r =
          cudasw::run_intra_task_improved(dev, query, db, matrix, gap, p);
      t.add_row({std::string(v.name), std::string(gpu),
                 slice.eq(cudasw::kernel_gcups(r)),
                 static_cast<std::int64_t>(r.stats.global.transactions),
                 static_cast<std::int64_t>(r.stats.syncs)});
    }
  }
  std::printf("--- §VI kernel extensions ---\n");
  bench::emit(t);
}

void threshold_autotune() {
  // "We decreased the threshold from 3072 to 1500 and reran CUDASW++ with
  // our improved kernel on the TAIR database. [...] This is close to a 4
  // GCUPs increase [...] by simply decreasing the threshold."
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(62);
  const auto query = seq::random_protein(567, rng).residues;
  const auto db = seq::DatabaseProfile::tair().synthesize(bench::scaled(1400),
                                                          0x7A12);
  const bench::Gpu slice = bench::c2050();
  gpusim::Device dev(slice.spec);
  cudasw::SearchConfig cfg;  // improved kernel

  Table t({"threshold", "% seqs intra", "GCUPs"}, 2);
  for (std::size_t thr : {3072u, 1500u}) {
    cfg.threshold = thr;
    const auto r = cudasw::search(dev, query, db, matrix, cfg);
    t.add_row({static_cast<std::int64_t>(thr),
               100.0 * static_cast<double>(r.intra_sequences) /
                   static_cast<double>(db.size()),
               slice.eq(r.gcups())});
  }

  // The automatic tuner (calibrated probes + group model) picks for itself.
  const cudasw::ThresholdAutotuner tuner(dev, matrix, cfg, 256);
  const auto pick =
      tuner.tune(db, query.size(), {500, 800, 1200, 1500, 2000, 3072, 100000});
  cfg.threshold = pick.threshold;
  const auto r = cudasw::search(dev, query, db, matrix, cfg);
  t.add_row({static_cast<std::int64_t>(pick.threshold),
             100.0 * static_cast<double>(r.intra_sequences) /
                 static_cast<double>(db.size()),
             slice.eq(r.gcups())});
  std::printf("--- §VI threshold auto-detection (TAIR, C2050, improved) ---\n");
  std::printf("(last row = tuner's automatic pick)\n");
  bench::emit(t);
}

void multi_gpu() {
  const auto& matrix = sw::ScoringMatrix::blosum62();
  Rng rng(63);
  const auto query = seq::random_protein(567, rng).residues;
  // Enough sequences that every shard still fills its device with whole
  // occupancy groups — the regime where the paper's linearity claim lives.
  const auto db =
      seq::DatabaseProfile::swissprot().synthesize(bench::scaled(3600), 0x96B0);
  Table t({"GPUs", "seconds (sim)", "GCUPs", "speedup"}, 3);
  double base = 0.0;
  for (int gpus : {1, 2, 4}) {
    const bench::Gpu slice = bench::c1060();
    const auto r = cudasw::multi_gpu_search(slice.spec, gpus, query, db,
                                            matrix, cudasw::SearchConfig{});
    if (base == 0.0) base = r.seconds;
    t.add_row({static_cast<std::int64_t>(gpus), r.seconds,
               slice.eq(r.gcups()), base / r.seconds});
  }
  std::printf("--- §VI multi-GPU scaling (C1060) ---\n");
  bench::emit(t);
}

void streaming() {
  // Copy schedules for real database scales against scan times for a range
  // of query lengths (at ~17 GCUPs). Streaming matters exactly where the
  // paper says it does: short queries and very large databases (NR/TrEMBL),
  // where the up-front copy is a visible fraction of the run.
  Table t({"database", "bytes", "query", "copy (s)", "blocking (s)",
           "streamed (s)", "copy overhead removed"},
          2);
  struct Db {
    const char* name;
    std::uint64_t bytes;
  };
  const Db dbs[] = {{"Swiss-Prot", 185'000'000},
                    {"TrEMBL-scale", 20'000'000'000ull}};
  for (const Db& d : dbs) {
    for (std::size_t qlen : {144u, 5478u}) {
      const double compute =
          static_cast<double>(d.bytes) * static_cast<double>(qlen) / 17e9;
      const auto r = cudasw::model_streaming_transfer(d.bytes, compute, 32);
      t.add_row({std::string(d.name),
                 static_cast<std::int64_t>(d.bytes),
                 static_cast<std::int64_t>(qlen), r.transfer_seconds,
                 r.blocking_total, r.streamed_total,
                 std::string(r.saved_seconds >
                                     0.9 * (r.blocking_total - compute -
                                            r.transfer_seconds / 32)
                                 ? "~all"
                                 : "partial")});
    }
  }
  std::printf("--- §VI streamed host-to-device transfer (model) ---\n");
  bench::emit(t);
}

}  // namespace
}  // namespace cusw

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "futurework_extensions");
  cusw::bench::note_seed(0xF0BB);  // primary workload seed, stamped into the JSON
  cusw::bench::print_header("§VI future-work extensions, implemented",
                            "Hains et al., IPDPS'11, Section VI");
  cusw::kernel_extensions();
  cusw::threshold_autotune();
  cusw::multi_gpu();
  cusw::streaming();
  std::printf(
      "expected shapes: coalesced strip I/O cuts strip transactions;\n"
      "persistent pipeline removes per-strip fill/drain syncs; shared-only\n"
      "eliminates strip global traffic on Fermi; the tuner picks a\n"
      "threshold at or below 1500 on TAIR and beats the 3072 default;\n"
      "multi-GPU speedup is near linear; streaming hides most of the copy.\n");
  return 0;
}
