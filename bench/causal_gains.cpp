// Causal what-if profile of the Table I original-kernel workload
// (DESIGN.md §14, EXPERIMENTS.md): virtual-speedup sweeps per hot target,
// ranked by end-to-end causal gain, cross-validated against
// tools/perf_explain's differential attribution.
//
// Where the other benches measure what the simulated clock *did*, this
// one measures what it *would have done*: each row re-runs the workload
// with one cost scaled, so the gains include every downstream interaction
// (window max() backfill, occupancy idle, scheduling) a local stall share
// cannot see.
//
// Flags: --db=N database size (default scaled 2400); --top=N targets;
// --service adds the p50/p99/burn-rate projection per sweep point
// (slower). Writes BENCH_causal_gains.json with the full report.
#include "bench_common.h"

#include "tools/causal_profile_lib.h"

int main(int argc, char** argv) {
  cusw::bench::BenchMain bench_main(argc, argv, "");
  cusw::bench::note_seed(0xAB1E);  // canonical-workload database seed
  cusw::Cli cli(argc, argv);

  cusw::tools::CausalOptions opts;
  opts.db_sequences = static_cast<std::size_t>(cli.get_int(
      "db", static_cast<std::int64_t>(cusw::bench::scaled(2400))));
  opts.top_n = static_cast<std::size_t>(cli.get_int("top", 6));
  opts.service = cli.get_bool("service", false);

  cusw::bench::print_header(
      "Causal what-if profile: virtual speedups on the simulated clock",
      "this repo's what-if layer (DESIGN.md §14) over the Table I workload "
      "of Hains et al., IPDPS'11");

  const cusw::tools::CausalReport report =
      cusw::tools::causal_profile_canonical(opts);
  std::printf("%s", report.to_ascii().c_str());
  if (!report.ok) {
    std::printf("causal_profile: %s\n", report.error.c_str());
    return 1;
  }
  std::printf(
      "\nexpected shape: the memory-bound original kernel ranks its\n"
      "dominant load site first with a superlinear slope (removing load\n"
      "stalls also drains occupancy idle); stall:occupancy_idle ranks\n"
      "second; compute targets are causally flat.\n");

  cusw::bench::emit_json("causal_gains", report.to_json());
  return 0;
}
